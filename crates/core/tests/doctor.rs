//! Integration tests of the extrapolation-validation harness on the
//! simulated DEEP preset: the paper's §4 evaluation loop (model on the five
//! cheap small-scale runs, judge at held-out larger scales) plus the
//! mis-specification guard the doctor exists to provide.

use extradeep::doctor::{validate_at_scales, validate_model, DoctorThresholds, QualityFlag};
use extradeep::modelset::{build_model_set, ModelSetOptions};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_model::{
    model_single_parameter, ExperimentData, Fraction, ModelerOptions, SearchSpace,
};
use extradeep_sim::ExperimentSpec;
use extradeep_trace::MetricKind;

fn deep_preset_report() -> extradeep::doctor::DoctorReport {
    // The paper's five repetitions: enough held-out values per point for a
    // meaningful empirical coverage estimate.
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.profiler.max_recorded_ranks = 4;
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
    validate_at_scales(
        &models,
        &spec,
        &agg,
        &[16, 32],
        &DoctorThresholds::default(),
    )
}

#[test]
fn deep_preset_reports_per_kernel_mpe_at_held_out_scales() {
    let report = deep_preset_report();

    assert_eq!(report.holdout_scales, vec![16.0, 32.0]);
    assert!(
        report.kernels.len() > 30,
        "only {} kernels",
        report.kernels.len()
    );
    for k in &report.kernels {
        assert!(
            !k.validation_mpe.is_nan(),
            "{} has NaN validation MPE",
            k.name
        );
        // Every validated kernel carries one error entry per held-out scale.
        assert_eq!(k.per_scale_percent_error.len(), 2, "{}", k.name);
    }
    // The aggregate matches the paper's Table 3 framing: a single MPE number
    // per benchmark, small for the simulated case study.
    assert!(
        report.aggregate_kernel_mpe < 20.0,
        "aggregate kernel MPE {}",
        report.aggregate_kernel_mpe
    );
    assert_eq!(report.per_scale_aggregate_mpe.len(), 2);
}

#[test]
fn deep_preset_epoch_model_extrapolates_calibrated() {
    let report = deep_preset_report();
    let epoch = &report.app[0];
    assert_eq!(epoch.name, "epoch");
    assert!(
        epoch.validation_mpe < DoctorThresholds::default().max_mpe_percent,
        "epoch validation MPE {}",
        epoch.validation_mpe
    );
    // Empirical 95%-band coverage at the held-out scales.
    let coverage = epoch.band_coverage.expect("epoch model carries a band");
    assert!(
        (0.85..=1.0).contains(&coverage),
        "epoch band coverage {coverage}"
    );
}

#[test]
fn deep_preset_well_behaved_kernels_are_calibrated_and_unflagged() {
    let report = deep_preset_report();
    let unflagged: Vec<_> = report.kernels.iter().filter(|k| !k.is_flagged()).collect();
    assert!(
        unflagged.len() * 2 > report.kernels.len(),
        "most kernels should pass: {} of {}",
        unflagged.len(),
        report.kernels.len()
    );
    // Well-behaved kernels: the 95% band holds at the held-out scales.
    let mut coverages: Vec<f64> = unflagged.iter().filter_map(|k| k.band_coverage).collect();
    coverages.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = coverages[coverages.len() / 2];
    assert!(
        (0.85..=1.0).contains(&median),
        "median coverage of unflagged kernels {median}"
    );
}

#[test]
fn misspecified_model_is_flagged_and_correct_fit_is_not() {
    // Ground truth follows the paper's epoch-time shape. A deliberately
    // crippled search space forces a linear fit; the full PMNF search finds
    // the right shape. Only the former must trip the doctor.
    let truth = |x: f64| 158.58 + 0.58 * x.powf(2.0 / 3.0) * x.log2().powi(2);
    let reps = |x: f64| {
        let base = truth(x);
        vec![base * 0.99, base * 0.995, base, base * 1.005, base * 1.01]
    };
    let fit_pts: Vec<(f64, Vec<f64>)> = [2.0, 4.0, 6.0, 8.0, 10.0]
        .iter()
        .map(|&x| (x, reps(x)))
        .collect();
    let fit_data = ExperimentData::univariate_with_reps("ranks", &fit_pts);
    let holdout =
        ExperimentData::univariate_with_reps("ranks", &[(48.0, reps(48.0)), (64.0, reps(64.0))]);

    let mut linear_only = ModelerOptions::default();
    linear_only.search_space = SearchSpace {
        poly_exponents: vec![Fraction::whole(1)],
        log_exponents: vec![0],
        allow_negative_exponents: false,
        max_terms: 1,
    };
    linear_only.growth_bound_margin = None;
    let wrong = model_single_parameter(&fit_data, &linear_only).unwrap();
    let right = model_single_parameter(&fit_data, &ModelerOptions::default()).unwrap();

    let thresholds = DoctorThresholds::default();
    let v_wrong = validate_model("epoch-linear", &wrong, &fit_data, &holdout, &thresholds);
    let v_right = validate_model("epoch-pmnf", &right, &fit_data, &holdout, &thresholds);

    assert!(
        v_wrong.flags.contains(&QualityFlag::HighError),
        "linear fit must be flagged, got {:?} (MPE {:.1}%)",
        v_wrong.flags,
        v_wrong.validation_mpe
    );
    assert!(
        !v_right.is_flagged(),
        "correct fit must pass, got {:?} (MPE {:.1}%, coverage {:?})",
        v_right.flags,
        v_right.validation_mpe,
        v_right.band_coverage
    );
    assert!(v_wrong.validation_mpe > 3.0 * v_right.validation_mpe);
}

#[test]
fn doctor_report_serializes_and_renders() {
    let report = deep_preset_report();
    let json = serde_json::to_string(&report).unwrap();
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["metric"], "time");
    assert_eq!(value["holdout_scales"][1], 32.0);
    assert_eq!(
        value["kernels"].as_array().unwrap().len(),
        report.kernels.len()
    );
    assert_eq!(value["thresholds"]["max_mpe_percent"], 20.0);

    let text = report.render(10);
    assert!(text.contains("Model-quality report"));
    assert!(text.contains("aggregate MPE"));
    let md = report.render_markdown();
    assert!(md.contains("## Application models"));
    assert!(md.contains("## Kernel models"));
}
