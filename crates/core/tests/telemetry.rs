//! Round-trip tests for the telemetry stream: whatever
//! `extradeep_obs::TelemetryWriter` emits, the `extradeep tail` parser must
//! read back into an equivalent snapshot — identical phase report, counters,
//! and histograms — and the CLI must drive the whole loop end to end.

use extradeep::obs::{
    phase_report, CounterValue, HistogramSummary, JournalEvent, Snapshot, SpanRecord,
    TelemetryWriter,
};
use extradeep::tail::parse_stream;
use std::sync::Mutex;

/// CLI runs flip global obs state; serialize them within this binary.
static LOCK: Mutex<()> = Mutex::new(());

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("extradeep-telemetry-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

fn argv(s: &str) -> Vec<String> {
    s.split_whitespace().map(str::to_string).collect()
}

/// A snapshot with every field populated, in the sort order the registry
/// produces.
fn sample_snapshot() -> Snapshot {
    Snapshot {
        spans: vec![
            SpanRecord {
                name: "core.pipeline".into(),
                start_ns: 1_000,
                dur_ns: 900_000,
                tid: 0,
                depth: 0,
            },
            SpanRecord {
                name: "sim.run".into(),
                start_ns: 2_000,
                dur_ns: 498_000,
                tid: 0,
                depth: 1,
            },
            SpanRecord {
                name: "model.search".into(),
                start_ns: 600_000,
                dur_ns: 250_000,
                tid: 1,
                depth: 0,
            },
        ],
        counters: vec![
            CounterValue {
                name: "model.search.hypotheses".to_string(),
                value: 40,
            },
            CounterValue {
                name: "sim.steps".to_string(),
                value: 7,
            },
        ],
        histograms: vec![HistogramSummary::from_samples(
            "model.fit_ns",
            &[44, 10_000, 1_000_000],
        )],
        captured_ns: 950_000,
    }
}

/// Serializes the snapshot the way the sampler does — journal span edges
/// plus one periodic snapshot record — and returns the stream text.
fn write_stream(snap: &Snapshot) -> String {
    let mut buf = Vec::new();
    {
        let mut w = TelemetryWriter::new(&mut buf);
        w.write_meta(100, 4096, Some(250)).unwrap();
        for s in &snap.spans {
            // The journal names are `&'static str`; the test snapshot uses
            // borrowed literals, so leak-free static access is fine here.
            let name: &'static str = match s.name.as_ref() {
                "core.pipeline" => "core.pipeline",
                "sim.run" => "sim.run",
                _ => "model.search",
            };
            w.write_event(&JournalEvent::SpanBegin {
                name,
                tid: s.tid,
                depth: s.depth,
                t_ns: s.start_ns,
            })
            .unwrap();
            w.write_event(&JournalEvent::SpanEnd {
                name,
                tid: s.tid,
                depth: s.depth,
                t_ns: s.end_ns(),
                dur_ns: s.dur_ns,
            })
            .unwrap();
        }
        w.write_snapshot(0, snap, &snap.spans, 0).unwrap();
        w.flush().unwrap();
    }
    String::from_utf8(buf).unwrap()
}

#[test]
fn stream_round_trips_to_identical_phase_report() {
    let snap = sample_snapshot();
    let stream = parse_stream(&write_stream(&snap));
    assert_eq!(stream.malformed_lines, 0, "writer output must parse clean");
    assert_eq!(stream.unknown_records, 0);

    let back = stream.to_snapshot();
    assert_eq!(back.spans, snap.spans);
    assert_eq!(back.counters, snap.counters);
    assert_eq!(back.histograms, snap.histograms);
    assert_eq!(back.captured_ns, snap.captured_ns);
    assert_eq!(
        phase_report(&back),
        phase_report(&snap),
        "reconstructed snapshot must render the identical report"
    );
}

#[test]
fn stream_survives_truncation_of_the_final_line() {
    // A live reader can catch the file mid-write: cutting the last record
    // anywhere must cost exactly that record, nothing else.
    let text = write_stream(&sample_snapshot());
    let cut = text.len() - 17;
    let stream = parse_stream(&text[..cut]);
    assert_eq!(stream.malformed_lines, 1);
    // All span events preceded the snapshot record, so spans survive.
    assert_eq!(stream.spans.len(), 3);
    assert!(stream.snapshots.is_empty());
    // Reconstruction falls back to span-derived capture time.
    assert_eq!(stream.to_snapshot().captured_ns, 901_000);
}

#[test]
fn cli_telemetry_flag_streams_and_tail_renders_it() {
    let _l = LOCK.lock().unwrap();
    let path = tmp("doctor_telemetry.jsonl");
    let out = extradeep::cli::run(&argv(&format!(
        "--telemetry {path} --telemetry-interval-ms 20 doctor --ranks 2,4,6,8,10"
    )))
    .expect("doctor with telemetry succeeds");
    assert!(out.contains("Telemetry ->"), "{out}");

    let text = std::fs::read_to_string(&path).unwrap();
    let stream = parse_stream(&text);
    assert_eq!(stream.malformed_lines, 0, "live stream must parse clean");
    let meta = stream.meta.clone().expect("meta header present");
    assert_eq!(meta.interval_ms, 20);
    assert!(!stream.snapshots.is_empty(), "at least the final snapshot");
    assert!(!stream.samples.is_empty(), "resource samples present");
    assert!(
        stream.spans.iter().any(|s| s.name == "core.doctor"),
        "command span must reach the stream"
    );

    let rendered = extradeep::cli::run(&argv(&format!("tail {path}"))).unwrap();
    assert!(rendered.contains("Telemetry stream"), "{rendered}");
    assert!(rendered.contains("core.doctor"), "{rendered}");
    assert!(rendered.contains("snapshots"), "{rendered}");
}

#[test]
fn cli_tail_prometheus_mode_renders_exposition_text() {
    let _l = LOCK.lock().unwrap();
    let path = tmp("prom_stream.jsonl");
    std::fs::write(&path, write_stream(&sample_snapshot())).unwrap();
    let out = extradeep::cli::run(&argv(&format!("tail {path} --prometheus"))).unwrap();
    assert!(
        out.contains("extradeep_model_search_hypotheses_total 40"),
        "{out}"
    );
    assert!(out.contains("_bucket"), "{out}");
    assert!(out.contains("le=\"+Inf\""), "{out}");
}

#[test]
fn tail_prometheus_matches_in_process_exposition() {
    // Satellite check: the exposition re-exported from a *streamed* file
    // must be byte-identical to what `prometheus_text` produces on the
    // in-process snapshot — same counters, same histogram bucket counts.
    let snap = sample_snapshot();
    let direct = extradeep::obs::prometheus_text(&snap);
    let streamed =
        extradeep::obs::prometheus_text(&parse_stream(&write_stream(&snap)).to_snapshot());
    assert_eq!(streamed, direct);
    // Belt and braces: the properties named in the check, explicitly.
    for needle in [
        "extradeep_model_search_hypotheses_total 40",
        "extradeep_sim_steps_total 7",
        "extradeep_model_fit_ns_count 3",
    ] {
        assert!(direct.contains(needle), "{needle} missing:\n{direct}");
    }
    let buckets = |text: &str| {
        text.lines()
            .filter(|l| l.contains("_bucket"))
            .map(str::to_string)
            .collect::<Vec<_>>()
    };
    let direct_buckets = buckets(&direct);
    assert!(!direct_buckets.is_empty());
    assert_eq!(buckets(&streamed), direct_buckets);
}

#[test]
fn cli_tail_follow_reads_a_file_written_concurrently() {
    let _l = LOCK.lock().unwrap();
    let path = tmp("follow_stream.jsonl");
    let _ = std::fs::remove_file(&path);
    let text = write_stream(&sample_snapshot());
    let writer = {
        let path = path.clone();
        std::thread::spawn(move || {
            use std::io::Write;
            let mut f = std::fs::File::create(&path).unwrap();
            for line in text.lines() {
                writeln!(f, "{line}").unwrap();
                f.flush().unwrap();
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        })
    };
    let out = extradeep::cli::run(&argv(&format!(
        "tail {path} --follow --poll-ms 5 --idle-timeout-ms 300"
    )))
    .unwrap();
    writer.join().unwrap();
    assert!(out.contains("Telemetry stream"), "{out}");
    assert!(out.contains("core.pipeline"), "{out}");
    assert!(out.contains("1 snapshots"), "{out}");

    // Follow + prometheus compose: the re-export equals the direct one.
    let prom = extradeep::cli::run(&argv(&format!(
        "tail {path} --follow --idle-timeout-ms 50 --prometheus"
    )))
    .unwrap();
    assert_eq!(prom, extradeep::obs::prometheus_text(&sample_snapshot()));
}

#[test]
fn cli_tail_rejects_malformed_follow_flags() {
    let _l = LOCK.lock().unwrap();
    let path = tmp("follow_bad_flags.jsonl");
    std::fs::write(&path, "").unwrap();
    assert!(matches!(
        extradeep::cli::run(&argv(&format!("tail {path} --follow --poll-ms fast"))),
        Err(extradeep::cli::CliError::Usage(_))
    ));
}

#[test]
fn cli_tail_without_a_file_is_a_usage_error() {
    let _l = LOCK.lock().unwrap();
    assert!(matches!(
        extradeep::cli::run(&argv("tail")),
        Err(extradeep::cli::CliError::Usage(_))
    ));
}

#[test]
fn cli_rejects_malformed_interval() {
    let _l = LOCK.lock().unwrap();
    let path = tmp("never_written.jsonl");
    assert!(matches!(
        extradeep::cli::run(&argv(&format!(
            "--telemetry {path} --telemetry-interval-ms soon help"
        ))),
        Err(extradeep::cli::CliError::Usage(_))
    ));
}
