//! Acceptance tests for the workload observatory (`extradeep inspect`):
//!
//! 1. On noise-free traces, the timeline analysis must agree with the
//!    simulator's *analytic* activity oracle — critical path and overlap
//!    within 5% (in practice they match to floating-point precision,
//!    because the quiet profiler replays the same schedule the oracle
//!    integrates).
//! 2. With a targeted straggler injected on a known rank, the inspection
//!    must name that rank as the top imbalance contributor, and its
//!    per-step skew must exceed the clean-run value by at least 1.5x.

use extradeep::inspect::{inspect_experiment, InspectOptions};
use extradeep_sim::{
    activity_estimate, Benchmark, ExperimentSpec, FaultPlan, NoiseProfile, ParallelStrategy,
    ScalingMode, SyncMode, SystemConfig, TrainingJob,
};
use extradeep_trace::analyze_config;

fn quiet_spec(sync: SyncMode, ranks: Vec<u32>) -> ExperimentSpec {
    let mut spec = ExperimentSpec::case_study(ranks);
    spec.system.noise = NoiseProfile::quiet();
    spec.sync = sync;
    spec.repetitions = 1;
    spec.profiler.max_recorded_ranks = 4;
    spec
}

fn job_for(spec: &ExperimentSpec, ranks: u32) -> TrainingJob {
    TrainingJob {
        system: spec.system.clone(),
        benchmark: spec.benchmark.clone(),
        strategy: spec.strategy,
        scaling: spec.scaling,
        sync: spec.sync,
        ranks,
    }
}

/// `|measured - truth|` must stay within 5% of the truth (absolute floor
/// for quantities whose true value is zero, e.g. BSP overlap).
fn assert_within_5pct(measured: f64, truth: f64, what: &str) {
    let tol = (truth.abs() * 0.05).max(1e-9);
    assert!(
        (measured - truth).abs() <= tol,
        "{what}: measured {measured} vs analytic {truth} (tolerance {tol})"
    );
}

#[test]
fn clean_traces_match_analytic_critical_path_and_overlap() {
    for sync in [SyncMode::Bsp, SyncMode::Asp] {
        let spec = quiet_spec(sync, vec![2, 4, 8]);
        let profiles = spec.run();
        assert_eq!(profiles.len(), 3);
        for profile in &profiles.profiles {
            let ranks = profile.config.parameters[0].1 as u32;
            let truth = activity_estimate(&job_for(&spec, ranks), &spec.profiler);
            let analysis = analyze_config(profile);
            assert_within_5pct(
                analysis.critical_path_seconds,
                truth.critical_path_seconds,
                &format!("{sync:?} x{ranks} critical path"),
            );
            assert_within_5pct(
                analysis.overlap_fraction,
                truth.overlap_fraction,
                &format!("{sync:?} x{ranks} overlap fraction"),
            );
            assert_within_5pct(
                analysis.idle_fraction * analysis.max_span_seconds,
                truth.idle_seconds,
                &format!("{sync:?} x{ranks} idle seconds"),
            );
        }
        // ASP actually hides communication behind compute; BSP does not.
        let report = inspect_experiment(&profiles, &InspectOptions::default());
        let overlap = report
            .trends
            .iter()
            .find(|t| t.metric == "overlap_fraction")
            .unwrap();
        let mean: f64 = overlap.per_config.iter().map(|(_, v)| v).sum::<f64>()
            / overlap.per_config.len() as f64;
        match sync {
            SyncMode::Asp => assert!(mean > 0.01, "ASP should overlap: {mean}"),
            SyncMode::Bsp => assert!(mean.abs() < 1e-9, "BSP must not overlap: {mean}"),
        }
    }
}

#[test]
fn injected_straggler_is_named_and_inflates_step_skew() {
    let mut spec = ExperimentSpec::case_study(vec![4, 6, 8]);
    spec.repetitions = 1;
    spec.profiler.max_recorded_ranks = 4;
    let clean = spec.run();
    let mut struck = clean.clone();
    let plan = FaultPlan {
        straggler_rank: Some(1),
        straggler_factor: 3.0,
        ..Default::default()
    };
    let (_, log) = plan.apply_detailed(&mut struck);
    assert_eq!(log.straggler_ranks(), vec![1]);

    let clean_report = inspect_experiment(&clean, &InspectOptions::default());
    let mut report = inspect_experiment(&struck, &InspectOptions::default());
    report.injected_straggler_ranks = log.straggler_ranks();

    assert_eq!(report.flagged_ranks, vec![1], "straggler not attributed");
    for (c, base) in report.configs.iter().zip(&clean_report.configs) {
        assert_eq!(c.config_id, base.config_id);
        assert_eq!(
            c.top_rank,
            Some(1),
            "{}: top contributor should be the injected rank",
            c.config_id
        );
        assert!(
            c.max_step_skew >= 1.5 * base.max_step_skew,
            "{}: skew {} not >= 1.5x clean {}",
            c.config_id,
            c.max_step_skew,
            base.max_step_skew
        );
        // The slowdown must also surface on the critical path: the struck
        // run's path runs through rank 1's inflated steps.
        assert!(c.critical_path_seconds > base.critical_path_seconds);
    }
    // Sanity on the fixture: with quiet faults off, the clean run is
    // balanced and flags nobody.
    assert!(clean_report.flagged_ranks.is_empty());
}

#[test]
fn oracle_stays_exact_under_both_benchmark_shapes() {
    // The 5% criterion above is deliberately loose; on quiet traces the
    // simulated span itself must match the oracle almost exactly, for a
    // second benchmark shape too (different plan mix: imdb has attention /
    // embedding kernels and a different validation split).
    for benchmark in [Benchmark::cifar10(), Benchmark::imdb()] {
        let mut system = SystemConfig::deep();
        system.noise = NoiseProfile::quiet();
        let job = TrainingJob {
            system,
            benchmark,
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks: 4,
        };
        let mut spec = ExperimentSpec::case_study(vec![4]);
        spec.system = job.system.clone();
        spec.benchmark = job.benchmark.clone();
        spec.repetitions = 1;
        let profiles = spec.run();
        let truth = activity_estimate(&job, &spec.profiler);
        let analysis = analyze_config(&profiles.profiles[0]);
        let rel = (analysis.critical_path_seconds - truth.critical_path_seconds).abs()
            / truth.critical_path_seconds;
        assert!(
            rel < 1e-9,
            "{}: relative critical-path error {rel}",
            profiles.profiles[0].config.id()
        );
    }
}
