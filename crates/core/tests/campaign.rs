//! Kill-and-resume integration suite for the campaign runner: drives the
//! real `extradeep campaign` binary through crash drills, quarantine, and
//! checkpoint corruption, asserting the crash-safety contract end to end —
//! completed cells are never re-executed, the manifest's valid prefix
//! replays byte-identically, and an interrupted-and-resumed sweep produces
//! exactly the roll-up of an uninterrupted one.

use extradeep::{replay_manifest, CampaignReport, ManifestRecord};
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_extradeep");

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("extradeep-campaign-it")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A fast four-cell matrix: one benchmark at four seeds, five cheap scales,
/// a single recorded rank, sequential execution so the crash drill cuts at
/// a deterministic cell boundary.
fn spec_json(extra: &str) -> String {
    format!(
        r#"{{
  "name": "it",
  "grid": {{
    "ranks": [[2, 4, 6, 8, 10]],
    "seeds": [1, 2, 3, 4],
    "max_recorded_ranks": 1
  }},
  "execution": {{
    "parallelism": 1,
    "backoff_base_ms": 1,
    "backoff_cap_ms": 4
  }}{extra}
}}"#
    )
}

fn run(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(BIN).args(args).output().unwrap();
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn rollup(path: &Path) -> CampaignReport {
    let text = std::fs::read_to_string(path).unwrap();
    serde_json::from_str(&text).unwrap()
}

fn done_counts(manifest: &Path) -> std::collections::BTreeMap<String, u32> {
    let mut counts = std::collections::BTreeMap::new();
    for rec in replay_manifest(manifest).unwrap().records {
        if let ManifestRecord::Done { cell, .. } = rec {
            *counts.entry(cell).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn kill_and_resume_skips_completed_cells_and_matches_the_uninterrupted_run() {
    let dir = tmp("kill-resume");
    let spec = dir.join("sweep.json");
    std::fs::write(&spec, spec_json("")).unwrap();

    // Reference: the same matrix run uninterrupted in a separate directory.
    let ref_dir = dir.join("reference");
    let ref_json = dir.join("reference.json");
    let (code, out, err) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        ref_dir.to_str().unwrap(),
        "--json",
        ref_json.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "reference run failed:\n{out}\n{err}");
    let reference = rollup(&ref_json);
    assert_eq!(reference.cells.len(), 4);
    assert!(reference.quarantined.is_empty());

    // Crash drill: exit(3) right after the second durable `done` record.
    let run_dir = dir.join("run");
    let (code, _, _) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
        "--crash-after",
        "2",
    ]);
    assert_eq!(code, 3, "crash drill must exit with the injected code");
    let manifest = run_dir.join("manifest.jsonl");
    let before = std::fs::read(&manifest).unwrap();
    let counts = done_counts(&manifest);
    assert_eq!(counts.len(), 2, "expected exactly 2 done cells: {counts:?}");

    // Resume: the two finished cells replay from the journal, the other two
    // execute, and the manifest grows strictly append-only.
    let resumed_json = dir.join("resumed.json");
    let (code, out, err) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
        "--json",
        resumed_json.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "resume failed:\n{out}\n{err}");
    assert!(out.contains("2 resumed"), "{out}");

    let after = std::fs::read(&manifest).unwrap();
    assert!(
        after.starts_with(&before),
        "resume must append, never rewrite, the surviving prefix"
    );
    let counts = done_counts(&manifest);
    assert_eq!(counts.len(), 4);
    assert!(
        counts.values().all(|&n| n == 1),
        "a completed cell was re-executed: {counts:?}"
    );

    let resumed = rollup(&resumed_json);
    assert_eq!(resumed.resumed_done, 2);
    assert_eq!(resumed.executed, 2);
    assert_eq!(
        resumed.fingerprint(),
        reference.fingerprint(),
        "interrupted+resumed results differ from the uninterrupted run"
    );

    // A third invocation is a no-op replay: everything resumed, nothing run.
    let (code, out, _) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);
    assert!(out.contains("4 resumed"), "{out}");
}

#[test]
fn poisoned_cell_is_quarantined_and_attributed_without_failing_the_matrix() {
    let dir = tmp("poison");
    let spec = dir.join("sweep.json");
    let poisoned = "cifar10-deep-data-weak-bsp-r2.4.6.8.10-s3";
    std::fs::write(
        &spec,
        spec_json(&format!(
            r#",
  "sabotage": {{ "{poisoned}": "panic" }}"#
        )),
    )
    .unwrap();

    let run_dir = dir.join("run");
    let json = dir.join("rollup.json");
    let (code, out, err) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    // Without --strict a quarantined cell is a survivable, attributed loss.
    assert_eq!(code, 0, "{out}\n{err}");
    let report = rollup(&json);
    assert_eq!(report.cells.len(), 3);
    assert_eq!(report.quarantined.len(), 1);
    assert_eq!(report.quarantined[0].id, poisoned);
    // Bounded retries: the default budget of 3 attempts, all journaled.
    assert_eq!(report.quarantined[0].attempts, 3);
    assert!(report.quarantined[0].error.contains("panicked"));
    assert!(out.contains("Quarantined cells"), "{out}");
    assert!(out.contains(poisoned), "{out}");

    // --strict turns the same (already-journaled) state into exit 1.
    let (code, out, _) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
        "--strict",
    ]);
    assert_eq!(code, 1, "{out}");

    // Quarantine is terminal across resumes: no new attempts were burned.
    let replay = replay_manifest(&run_dir.join("manifest.jsonl")).unwrap();
    let starts = replay
        .records
        .iter()
        .filter(|r| matches!(r, ManifestRecord::Start { cell, .. } if cell == poisoned))
        .count();
    assert_eq!(starts, 3, "quarantined cell must not be retried on resume");
}

#[test]
fn corrupt_checkpoint_reruns_only_that_cell_on_resume() {
    let dir = tmp("corrupt");
    let spec = dir.join("sweep.json");
    std::fs::write(&spec, spec_json("")).unwrap();

    let run_dir = dir.join("run");
    let (code, out, err) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}\n{err}");

    // Tear one checkpoint in half, as if the process died mid-write after
    // the `done` record had already been journaled by an earlier version.
    let victim = run_dir.join("cells/cifar10-deep-data-weak-bsp-r2.4.6.8.10-s2.models.json");
    let body = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &body[..body.len() / 2]).unwrap();

    let json = dir.join("rollup.json");
    let (code, out, err) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}\n{err}");
    let report = rollup(&json);
    assert_eq!(report.corrupt_checkpoints, 1);
    assert_eq!(report.cells.len(), 4, "all cells must end done again");
    assert_eq!(report.executed, 1, "only the torn cell re-executes");
    assert!(out.contains("1 corrupt checkpoint(s)"), "{out}");

    // The regenerated checkpoint parses again.
    assert!(extradeep::load_models(&victim).is_ok());
}

#[test]
fn resume_against_a_different_spec_is_a_typed_mismatch_error() {
    let dir = tmp("mismatch");
    let spec = dir.join("sweep.json");
    std::fs::write(&spec, spec_json("")).unwrap();
    let run_dir = dir.join("run");
    let (code, _, _) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0);

    // Same directory, different grid: the digest differs.
    std::fs::write(
        &spec,
        spec_json("").replacen("\"seeds\": [1, 2, 3, 4]", "\"seeds\": [1, 2, 3]", 1),
    )
    .unwrap();
    let (code, _, err) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "digest mismatch must be a hard error: {err}");
    assert!(err.contains("different spec"), "{err}");
}

#[test]
fn hang_once_straggler_times_out_once_then_recovers() {
    let dir = tmp("straggler");
    let spec = dir.join("sweep.json");
    std::fs::write(
        &spec,
        r#"{
  "name": "straggler",
  "grid": { "ranks": [[2, 4, 6, 8, 10]], "seeds": [1], "max_recorded_ranks": 1 },
  "execution": {
    "parallelism": 1,
    "timeout_ms": 1000,
    "backoff_base_ms": 1,
    "backoff_cap_ms": 4
  },
  "sabotage": { "*": "hang-once=30000" }
}"#,
    )
    .unwrap();
    let run_dir = dir.join("run");
    let json = dir.join("rollup.json");
    let (code, out, err) = run(&[
        "campaign",
        spec.to_str().unwrap(),
        "--dir",
        run_dir.to_str().unwrap(),
        "--json",
        json.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "{out}\n{err}");
    let report = rollup(&json);
    assert_eq!(report.cells.len(), 1);
    assert!(report.quarantined.is_empty());
    assert_eq!(report.cells[0].attempts, 2, "timeout then recovery");
    assert_eq!(report.failed_attempts, 1);
}
