//! Plain-text report rendering: aligned tables and simple series output used
//! by the experiment regenerators to print the paper's figures as text.

use std::fmt::Write;

/// A simple aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with a fixed number of decimals.
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:.1}%")
}

/// Renders an `(x, y)` series as two aligned columns.
pub fn render_series(title: &str, xlabel: &str, ylabel: &str, series: &[(f64, f64)]) -> String {
    let mut t = Table::new(&[xlabel, ylabel]);
    for &(x, y) in series {
        t.add_row(vec![fmt(x, 0), fmt(y, 2)]);
    }
    format!("== {title} ==\n{}", t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.add_row(vec!["a".into(), "1.0".into()]);
        t.add_row(vec!["long-name".into(), "123.45".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows have equal width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn series_rendering() {
        let s = render_series("test", "x", "y", &[(2.0, 1.5), (4.0, 3.25)]);
        assert!(s.contains("== test =="));
        assert!(s.contains("3.25"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(12.34), "12.3%");
    }

    #[test]
    fn ragged_rows_render() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.add_row(vec!["1".into()]);
        let r = t.render();
        assert!(r.lines().count() == 3);
    }

    #[test]
    fn empty_table_renders_without_panic() {
        // Zero columns used to underflow the separator-width arithmetic.
        let t = Table::new(&[]);
        let r = t.render();
        assert_eq!(r.lines().count(), 2);
        assert_eq!(t.num_rows(), 0);
    }

    #[test]
    fn header_only_table_renders() {
        let t = Table::new(&["x", "y"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains('x') && lines[0].contains('y'));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn single_cell_table_renders() {
        let mut t = Table::new(&["only"]);
        t.add_row(vec!["v".into()]);
        let r = t.render();
        assert_eq!(r.lines().count(), 3);
        assert!(r.starts_with("only"));
    }

    #[test]
    fn empty_series_renders_title_and_header() {
        let s = render_series("empty", "x", "y", &[]);
        assert!(s.contains("== empty =="));
        assert!(s.contains('x'));
    }
}
