//! The `extradeep` command-line interface.
//!
//! A thin, dependency-free argument layer over the library: simulate
//! measurement runs, model profiles, and run the §3 analyses from the shell.
//! The binary (`src/bin/extradeep.rs`) forwards to [`run`], which returns the
//! rendered report — keeping every code path unit-testable.

use crate::analysis::{find_cost_effective, rank_by_growth, Constraints, CostModel};
use crate::doctor::{validate_at_scales, DoctorThresholds};
use crate::modelset::{build_model_set, ModelSetOptions};
use crate::questions;
use crate::report::{fmt, pct, Table};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_sim::{
    Benchmark, ExperimentSpec, ParallelStrategy, ScalingMode, SyncMode, SystemConfig,
};
use extradeep_trace::{import_csv, json, ExperimentProfiles, MetricKind};
use std::fmt as stdfmt;

/// CLI failure.
#[derive(Debug)]
pub enum CliError {
    Usage(String),
    Io(std::io::Error),
    Trace(String),
    Modeling(String),
    /// `--strict` quality gate tripped: models exceeded the doctor
    /// thresholds. Carries the full report so CI logs show *what* failed.
    QualityGate(String),
}

impl stdfmt::Display for CliError {
    fn fmt(&self, f: &mut stdfmt::Formatter<'_>) -> stdfmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}\n\n{USAGE}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Trace(e) => write!(f, "trace error: {e}"),
            CliError::Modeling(e) => write!(f, "modeling error: {e}"),
            CliError::QualityGate(report) => {
                write!(f, "{report}\nmodel quality gate failed (--strict)")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

pub const USAGE: &str = "\
extradeep — automated empirical performance modeling for distributed DL

USAGE:
  extradeep simulate --out <file.json> [--benchmark <name>] [--system deep|jureca]
                     [--ranks 2,4,6,8,10] [--reps N] [--strategy data|tensor|pipeline]
                     [--scaling weak|strong] [--asp]
  extradeep model    --in <file.json> [--metric time|visits|bytes] [--top N]
                     [--save-models <models.json>]
  extradeep predict  --models <models.json> --at RANKS[,RANKS...]
  extradeep analyze  --in <file.json> [--probe RANKS] [--budget CORE_HOURS]
                     [--max-time SECONDS] [--candidates 2,4,...]
  extradeep pipeline [simulate options] [--probe RANKS] [--out <file.json>]
                     [--holdout 16,32] [--no-doctor] [--strict]
                     [--inject-faults <spec>] [--repair-report <report.json>]
  extradeep doctor   [simulate options | --in <file.json>] [--holdout 16,32]
                     [--metric time|visits|bytes] [--top N] [--strict]
                     [--max-mpe PCT] [--min-coverage FRAC]
                     [--json <report.json>] [--markdown <report.md>]
  extradeep import   --csv <trace.csv>... --out <file.json>
  extradeep summary  --in <file.json> [--top N]
  extradeep calltree --in <file.json> [--top N]
  extradeep compare  --a <file.json> --b <file.json> [--probe RANKS] [--top N]
  extradeep export-chrome --in <file.json> --out <trace.json>
  extradeep inspect  [simulate options | --in <file.json>] [--top N]
                     [--predict RANKS] [--inject-faults <spec>]
                     [--json <report.json>] [--markdown <report.md>]
                     [--chrome <trace.json>]
  extradeep tail     <telemetry.jsonl> [--prometheus] [--follow]
                     [--poll-ms N] [--idle-timeout-ms N]
  extradeep campaign <spec.json> [--dir <dir>] [--parallelism N] [--strict]
                     [--json <rollup.json>] [--markdown <rollup.md>]
                     [--crash-after N]

GLOBAL FLAGS (any command):
  --profile-self <out.json>   record the pipeline's own spans/counters and
                              export them as Chrome trace-event JSON
                              (chrome://tracing, ui.perfetto.dev)
  --self-trace <out.json>     re-emit the recorded spans as an extradeep
                              trace so the modeler can model the pipeline
  --report-phases             append a per-phase wall-time table
  --telemetry <out.jsonl>     stream live JSON-Lines telemetry (span edges,
                              counters, RSS/CPU samples, periodic snapshots)
                              while the command runs; render with
                              `extradeep tail <out.jsonl>`
  --telemetry-interval-ms N   sampling/flush interval (default 500)
  --span-budget-ms N          watchdog: warn when a span stays open past N ms
  -q, --quiet                 errors only (also suppresses the stdout report)
  --verbose                   debug-level logging on stderr

CAMPAIGN (batch sweeps with checkpoint/resume):
  The spec is a JSON grid (benchmarks × systems × strategies × scaling ×
  sync × rank lists × seeds) plus execution policy (parallelism, retries,
  timeout, backoff) — see EXPERIMENTS.md. Every cell's lifecycle is
  journaled to <dir>/manifest.jsonl (fsync'd, checksummed); re-running the
  same command resumes after a crash, skipping completed cells. Cells that
  exhaust retries are quarantined and attributed in the roll-up report;
  --strict turns a non-empty quarantine into exit 1. --crash-after N kills
  the process (exit 3) after N cell completions — a deterministic SIGKILL
  stand-in for crash drills.

FAULT INJECTION (pipeline/inspect --inject-faults):
  comma-separated key=value spec, e.g.
    --inject-faults 'seed=7,drop-rank=0.25,truncate=0.3,corrupt-json=16'
  keys: seed, drop-rank, truncate, drop-epoch-marks, drop-step-mark,
        dup-step-mark, clock-skew-ns, straggler, straggler-rank,
        straggler-factor, zero-dur, shuffle-steps, corrupt-json

Benchmarks: cifar10, cifar100, imagenet, imdb, speech_commands";

/// Tiny flag parser: `--key value` pairs plus boolean flags.
struct Args {
    items: Vec<String>,
}

impl Args {
    fn new(argv: &[String]) -> Self {
        Args {
            items: argv.to_vec(),
        }
    }

    fn value(&self, key: &str) -> Option<&str> {
        self.items
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.items.get(i + 1))
            .map(String::as_str)
    }

    fn values(&self, key: &str) -> Vec<&str> {
        let mut out = Vec::new();
        let mut i = 0;
        while i + 1 < self.items.len() {
            if self.items[i] == key {
                out.push(self.items[i + 1].as_str());
                i += 2;
            } else {
                i += 1;
            }
        }
        out
    }

    fn flag(&self, key: &str) -> bool {
        self.items.iter().any(|a| a == key)
    }
}

fn parse_benchmark(name: &str) -> Result<Benchmark, CliError> {
    Benchmark::from_name(name).ok_or_else(|| CliError::Usage(format!("unknown benchmark '{name}'")))
}

fn parse_system(name: &str) -> Result<SystemConfig, CliError> {
    SystemConfig::from_name(name).ok_or_else(|| CliError::Usage(format!("unknown system '{name}'")))
}

fn parse_metric(name: &str) -> Result<MetricKind, CliError> {
    match name {
        "time" => Ok(MetricKind::Time),
        "visits" => Ok(MetricKind::Visits),
        "bytes" => Ok(MetricKind::Bytes),
        other => Err(CliError::Usage(format!("unknown metric '{other}'"))),
    }
}

fn parse_list(raw: &str) -> Result<Vec<u32>, CliError> {
    raw.split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid number '{s}'")))
        })
        .collect()
}

fn load_profiles(path: &str) -> Result<ExperimentProfiles, CliError> {
    json::load(path).map_err(|e| CliError::Trace(e.to_string()))
}

/// Builds an [`ExperimentSpec`] from the shared simulate flags (used by
/// `simulate` and `pipeline`).
fn spec_from_args(args: &Args) -> Result<ExperimentSpec, CliError> {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    if let Some(b) = args.value("--benchmark") {
        spec.benchmark = parse_benchmark(b)?;
    }
    if let Some(s) = args.value("--system") {
        spec.system = parse_system(s)?;
    }
    if let Some(r) = args.value("--ranks") {
        spec.rank_counts = parse_list(r)?;
    }
    if let Some(n) = args.value("--reps") {
        spec.repetitions = n
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --reps '{n}'")))?;
    }
    if let Some(s) = args.value("--strategy") {
        spec.strategy = ParallelStrategy::from_name(s)
            .ok_or_else(|| CliError::Usage(format!("unknown strategy '{s}'")))?;
    }
    if let Some(s) = args.value("--scaling") {
        spec.scaling = ScalingMode::from_name(s)
            .ok_or_else(|| CliError::Usage(format!("unknown scaling '{s}'")))?;
    }
    if args.flag("--asp") {
        spec.sync = SyncMode::Asp;
    }
    Ok(spec)
}

/// Doctor thresholds from `--max-mpe` / `--min-coverage`.
fn thresholds_from_args(args: &Args) -> Result<DoctorThresholds, CliError> {
    let mut t = DoctorThresholds::default();
    if let Some(v) = args.value("--max-mpe") {
        t.max_mpe_percent = v
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --max-mpe '{v}'")))?;
    }
    if let Some(v) = args.value("--min-coverage") {
        t.min_band_coverage = v
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --min-coverage '{v}'")))?;
    }
    Ok(t)
}

/// Held-out rank counts from `--holdout` (default: the paper's first two
/// evaluation scales beyond the DEEP modeling points).
fn holdout_from_args(args: &Args) -> Result<Vec<u32>, CliError> {
    match args.value("--holdout") {
        Some(h) => parse_list(h),
        None => Ok(vec![16, 32]),
    }
}

/// `doctor`: fit models on the modeling-scale runs, re-simulate at held-out
/// larger scales, and report per-model extrapolation error and 95%-band
/// calibration. With `--strict`, flagged models fail the process (CI gate).
fn cmd_doctor(args: &Args) -> Result<String, CliError> {
    let metric = match args.value("--metric") {
        Some(m) => parse_metric(m)?,
        None => MetricKind::Time,
    };
    let top: usize = args
        .value("--top")
        .and_then(|t| t.parse().ok())
        .unwrap_or(15);
    let spec = spec_from_args(args)?;
    let holdout = holdout_from_args(args)?;
    let thresholds = thresholds_from_args(args)?;

    // Modeling data: an existing profile file (--in) or a fresh simulation
    // of the modeling-scale runs.
    let profiles = match args.value("--in") {
        Some(path) => load_profiles(path)?,
        None => {
            extradeep_obs::info!(
                "doctor: simulating {} modeling scales",
                spec.rank_counts.len()
            );
            spec.run()
        }
    };
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, metric, &ModelSetOptions::default())
        .map_err(|e| CliError::Modeling(e.to_string()))?;
    let report = validate_at_scales(&models, &spec, &agg, &holdout, &thresholds);

    let mut out = report.render(top);
    // Workload health line: the observatory's one-line verdict on the same
    // modeling-scale profiles (imbalance, idle, overlap, stragglers), so a
    // doctor run also flags a sick *workload*, not just a sick model.
    let inspection =
        crate::inspect::inspect_experiment(&profiles, &crate::inspect::InspectOptions::default());
    out.push_str(&format!("{}\n", inspection.health_line()));
    if let Some(path) = args.value("--json") {
        let body =
            serde_json::to_string_pretty(&report).map_err(|e| CliError::Modeling(e.to_string()))?;
        std::fs::write(path, body)?;
        out.push_str(&format!("\nJSON report -> {path}\n"));
    }
    if let Some(path) = args.value("--markdown") {
        std::fs::write(path, report.render_markdown())?;
        out.push_str(&format!("Markdown report -> {path}\n"));
    }
    if args.flag("--strict") && !report.is_healthy() {
        return Err(CliError::QualityGate(out));
    }
    Ok(out)
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let out = args
        .value("--out")
        .ok_or_else(|| CliError::Usage("simulate requires --out".to_string()))?;
    let spec = spec_from_args(args)?;
    extradeep_obs::info!("simulating {} rank counts", spec.rank_counts.len());
    let profiles = spec.run();
    json::save(&profiles, out).map_err(|e| CliError::Trace(e.to_string()))?;
    Ok(format!(
        "Simulated and profiled {} runs over {} configurations -> {}",
        profiles.len(),
        profiles.configs().len(),
        out
    ))
}

/// Validates every configuration of an experiment and surfaces the
/// findings as leveled logs: one `warn!` summary per affected configuration
/// (individual issues at `debug!` — a heavily corrupted profile can carry
/// thousands). Returns the total issue count.
fn warn_validation_issues(profiles: &ExperimentProfiles) -> usize {
    let _span = extradeep_obs::span("core.validate_profiles");
    let mut total = 0;
    for p in &profiles.profiles {
        let issues = extradeep_trace::validate_config(p);
        if issues.is_empty() {
            continue;
        }
        total += issues.len();
        extradeep_obs::warn!(
            "validation: {} rep {}: {} issue(s) across {} rank(s)",
            p.config.id(),
            p.repetition,
            issues.len(),
            p.ranks.len()
        );
        for issue in &issues {
            extradeep_obs::debug!(
                "validation: {} rep {}: {issue}",
                p.config.id(),
                p.repetition
            );
        }
    }
    total
}

/// `pipeline`: the whole workflow in one process — simulate, save, reload,
/// validate, repair, aggregate, model, analyze. Exists chiefly as the
/// self-profiling driver: one invocation under `--profile-self` touches
/// every instrumented crate (sim, trace, agg, model, core). With
/// `--inject-faults <spec>` the emitted profiles are deterministically
/// corrupted between simulation and reload, exercising the repair path the
/// way a degraded real campaign would.
fn cmd_pipeline(args: &Args) -> Result<String, CliError> {
    let spec = spec_from_args(args)?;
    let keep = args.value("--out").map(str::to_string);
    let path = keep.clone().unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("extradeep-pipeline-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let probe: f64 = args
        .value("--probe")
        .and_then(|p| p.parse().ok())
        .unwrap_or(64.0);
    let fault_plan = args
        .value("--inject-faults")
        .map(extradeep_sim::FaultPlan::parse)
        .transpose()
        .map_err(|e| CliError::Usage(e.to_string()))?;

    extradeep_obs::info!("pipeline: simulate -> {path}");
    let mut profiles = spec.run();

    let fault_summary = fault_plan.as_ref().map(|plan| {
        let summary = plan.apply(&mut profiles);
        extradeep_obs::warn!("fault injection: {summary}");
        summary
    });
    // Save, applying byte-level corruption on the serialized form when the
    // plan asks for it (the structural faults above happen pre-save).
    match fault_plan.as_ref().filter(|p| p.corrupt_json_bytes > 0) {
        Some(plan) => {
            let mut body = json::to_json(&profiles).map_err(|e| CliError::Trace(e.to_string()))?;
            let n = plan.corrupt_json(&mut body);
            extradeep_obs::warn!("fault injection: corrupted {n} byte(s) of {path}");
            std::fs::write(&path, body)?;
        }
        None => json::save(&profiles, &path).map_err(|e| CliError::Trace(e.to_string()))?,
    }
    // Reload from disk so the (de)serialization stage is genuinely
    // exercised, exactly as in the two-command workflow. When injected
    // byte corruption makes the file unreadable, fall back to the
    // in-memory profiles — the corruption experiment then continues with
    // the structural faults only, instead of aborting the run.
    let mut profiles = match load_profiles(&path) {
        Ok(p) => p,
        Err(e) if fault_plan.is_some() => {
            extradeep_obs::warn!(
                "pipeline: reload failed ({e}); continuing with in-memory profiles"
            );
            extradeep_obs::counter("pipeline.corrupt_reload_fallback").add(1);
            profiles
        }
        Err(e) => return Err(e),
    };

    // Validation + repair on the main path: report what is wrong, fix or
    // quarantine what can be, and carry on with the salvaged data.
    let issues = warn_validation_issues(&profiles);
    let repair = extradeep_trace::repair_experiment(&mut profiles);
    if !repair.is_clean() {
        extradeep_obs::warn!(
            "repair: {} repair(s): {} rank(s) quarantined, {} epoch mark(s) reconstructed, {} config(s) dropped",
            repair.counts.total_repairs(),
            repair.counts.ranks_quarantined,
            repair.counts.marks_reconstructed,
            repair.counts.configs_dropped
        );
    }
    if let Some(report_path) = args.value("--repair-report") {
        let body =
            serde_json::to_string_pretty(&repair).map_err(|e| CliError::Trace(e.to_string()))?;
        std::fs::write(report_path, body)?;
    }

    extradeep_obs::info!("pipeline: aggregate + model {} profiles", profiles.len());
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())
        .map_err(|e| CliError::Modeling(e.to_string()))?;
    if keep.is_none() {
        std::fs::remove_file(&path).ok(); // analyze:allow(swallowed-result) best-effort scratch-file cleanup
    }

    let mut out = String::new();
    out.push_str(&format!(
        "Pipeline: {} runs over {} configurations\n",
        profiles.len(),
        profiles.configs().len()
    ));
    if let Some(summary) = fault_summary {
        out.push_str(&format!("Faults injected: {summary}\n"));
    }
    if issues > 0 || !repair.is_clean() {
        out.push_str(&format!(
            "Repair: {issues} validation issue(s); {} repair(s), {} rank(s) quarantined, \
             {} epoch mark(s) reconstructed, {} config(s) dropped\n",
            repair.counts.total_repairs(),
            repair.counts.ranks_quarantined,
            repair.counts.marks_reconstructed,
            repair.counts.configs_dropped
        ));
    }
    if let Some(p) = args.value("--repair-report") {
        out.push_str(&format!("Repair report -> {p}\n"));
    }
    out.push_str(&format!("T_epoch(x1) = {}\n", models.app.epoch.formatted()));
    out.push_str(&format!(
        "{} kernel models created ({} unmodelable)\n",
        models.kernels.len(),
        models.failed.len()
    ));
    out.push_str(&format!(
        "Q1. Training time per epoch at {probe} ranks: {:.2} s\n",
        questions::q1_epoch_seconds(&models, probe)
    ));
    let q3 = questions::q3_bottlenecks(&models, probe);
    out.push_str(&format!(
        "Q3. Communication share at {probe} ranks: {}\n",
        pct(q3.communication_share_percent)
    ));
    if let Some(p) = keep {
        out.push_str(&format!("Profiles kept at {p}\n"));
    }

    // Doctor stage: validate the freshly built models at held-out scales.
    if !args.flag("--no-doctor") {
        let holdout = holdout_from_args(args)?;
        let thresholds = thresholds_from_args(args)?;
        extradeep_obs::info!("pipeline: doctor at held-out scales {holdout:?}");
        let report = validate_at_scales(&models, &spec, &agg, &holdout, &thresholds);
        out.push_str(&format!(
            "Doctor: aggregate kernel MPE {:.2}% at scales {:?}, {} model(s) flagged\n",
            report.aggregate_kernel_mpe,
            report.holdout_scales,
            report.num_flagged()
        ));
        if args.flag("--strict") && !report.is_healthy() {
            out.push_str(&report.render(10));
            return Err(CliError::QualityGate(out));
        }
    }
    Ok(out)
}

fn models_from(args: &Args, metric: MetricKind) -> Result<crate::modelset::ModelSet, CliError> {
    let input = args
        .value("--in")
        .ok_or_else(|| CliError::Usage("missing --in <file.json>".to_string()))?;
    let profiles = load_profiles(input)?;
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    build_model_set(&agg, metric, &ModelSetOptions::default())
        .map_err(|e| CliError::Modeling(e.to_string()))
}

fn cmd_model(args: &Args) -> Result<String, CliError> {
    let metric = match args.value("--metric") {
        Some(m) => parse_metric(m)?,
        None => MetricKind::Time,
    };
    let top: usize = args
        .value("--top")
        .map(|t| t.parse().unwrap_or(10))
        .unwrap_or(10);
    let models = models_from(args, metric)?;

    if let Some(path) = args.value("--save-models") {
        crate::persist::save_models(&models, path)
            .map_err(|e| CliError::Modeling(e.to_string()))?;
    }

    let mut out = String::new();
    out.push_str(&format!("Application models ({}):\n", metric.label()));
    out.push_str(&format!(
        "  epoch:          {}\n",
        models.app.epoch.formatted()
    ));
    out.push_str(&format!(
        "  computation:    {}\n",
        models.app.computation.formatted()
    ));
    out.push_str(&format!(
        "  communication:  {}\n",
        models.app.communication.formatted()
    ));
    out.push_str(&format!(
        "  memory ops.:    {}\n",
        models.app.memory_ops.formatted()
    ));
    out.push_str(&format!(
        "\n{} kernel models created ({} kernels unmodelable).\n",
        models.kernels.len(),
        models.failed.len()
    ));
    out.push_str(&format!("\nTop {top} kernels by growth trend:\n"));
    let mut t = Table::new(&["kernel", "growth", "model"]);
    // Row rendering (model formatting) is independent per kernel; rayon's
    // ordered collect keeps the table rows in ranking order.
    let ranked: Vec<_> = rank_by_growth(&models, 64.0)
        .into_iter()
        .take(top)
        .collect();
    let rows: Vec<Vec<String>> = {
        use rayon::prelude::*;
        ranked
            .par_iter()
            .map(|r| {
                let model = &models.kernels[&r.id];
                vec![r.id.name.clone(), r.growth.clone(), model.formatted()]
            })
            .collect()
    };
    for row in rows {
        t.add_row(row);
    }
    out.push_str(&t.render());
    Ok(out)
}

fn cmd_analyze(args: &Args) -> Result<String, CliError> {
    let probe: f64 = args
        .value("--probe")
        .map(|p| p.parse().unwrap_or(64.0))
        .unwrap_or(64.0);
    let models = models_from(args, MetricKind::Time)?;
    let cores = args
        .value("--cores-per-rank")
        .and_then(|c| c.parse().ok())
        .unwrap_or(8);
    let cost = CostModel::new(cores);

    let mut out = String::new();
    out.push_str(&format!(
        "T_epoch(x1) = {}\n\n",
        models.app.epoch.formatted()
    ));
    out.push_str(&format!(
        "Q1. Training time per epoch at {probe} ranks: {:.2} s\n",
        questions::q1_epoch_seconds(&models, probe)
    ));
    let q3 = questions::q3_bottlenecks(&models, probe);
    out.push_str(&format!(
        "Q3. Communication share at {probe} ranks: {} ({:.1} s of {:.1} s)\n",
        pct(q3.communication_share_percent),
        q3.communication_seconds,
        q3.epoch_seconds
    ));
    out.push_str("    Top growth kernels:\n");
    for k in &q3.top_kernels {
        out.push_str(&format!("      {k}\n"));
    }
    out.push_str(&format!(
        "Q4. Cost per epoch at {probe} ranks: {:.2} core-hours\n",
        questions::q4_epoch_core_hours(&models, &cost, probe)
    ));

    let candidates: Vec<f64> = match args.value("--candidates") {
        Some(c) => parse_list(c)?.into_iter().map(|v| v as f64).collect(),
        None => vec![2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
    };
    let constraints = Constraints {
        max_seconds: args.value("--max-time").and_then(|v| v.parse().ok()),
        max_core_hours: args.value("--budget").and_then(|v| v.parse().ok()),
    };
    let scaling = if args.flag("--strong") {
        ScalingMode::Strong
    } else {
        ScalingMode::Weak
    };
    let search = find_cost_effective(&models.app.epoch, &cost, &candidates, constraints, scaling);
    out.push_str("Q5. Cost-effective configuration search:\n");
    let mut t = Table::new(&["ranks", "time [s]", "core-h", "eff %", "feasible"]);
    for c in &search.candidates {
        t.add_row(vec![
            fmt(c.ranks, 0),
            fmt(c.seconds, 2),
            fmt(c.core_hours, 2),
            fmt(c.efficiency_percent, 1),
            if c.feasible { "yes" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    match search.best {
        Some(best) => out.push_str(&format!("    Recommendation: {} ranks\n", best.ranks)),
        None => out.push_str("    No feasible configuration.\n"),
    }
    Ok(out)
}

fn cmd_summary(args: &Args) -> Result<String, CliError> {
    let input = args
        .value("--in")
        .ok_or_else(|| CliError::Usage("summary requires --in".to_string()))?;
    let top: usize = args
        .value("--top")
        .map(|t| t.parse().unwrap_or(15))
        .unwrap_or(15);
    let profiles = load_profiles(input)?;
    let mut out = String::new();
    for p in &profiles.profiles {
        if p.repetition == 0 {
            out.push_str(&extradeep_trace::render_summary(p, top));
            out.push('\n');
        }
    }
    Ok(out)
}

fn cmd_predict(args: &Args) -> Result<String, CliError> {
    let path = args
        .value("--models")
        .ok_or_else(|| CliError::Usage("predict requires --models".to_string()))?;
    let at = args
        .value("--at")
        .ok_or_else(|| CliError::Usage("predict requires --at".to_string()))?;
    let models =
        crate::persist::load_models(path).map_err(|e| CliError::Modeling(e.to_string()))?;
    let mut out = String::new();
    out.push_str(&format!("T_epoch(x1) = {}\n", models.app.epoch.formatted()));
    let mut t = Table::new(&["ranks", "epoch [s]", "comm [s]", "95% CI"]);
    for ranks in parse_list(at)? {
        let x = ranks as f64;
        let p = models.app.epoch.predict_at(x);
        let ci = models
            .app
            .epoch
            .confidence_interval(&[x])
            .map(|(lo, hi)| format!("[{lo:.1}, {hi:.1}]"))
            .unwrap_or_else(|| "-".to_string());
        t.add_row(vec![
            ranks.to_string(),
            fmt(p, 2),
            fmt(models.app.communication.predict_at(x).max(0.0), 2),
            ci,
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

fn models_from_path(path: &str) -> Result<crate::modelset::ModelSet, CliError> {
    let profiles = load_profiles(path)?;
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())
        .map_err(|e| CliError::Modeling(e.to_string()))
}

fn cmd_calltree(args: &Args) -> Result<String, CliError> {
    let input = args
        .value("--in")
        .ok_or_else(|| CliError::Usage("calltree requires --in".to_string()))?;
    let top: usize = args
        .value("--top")
        .and_then(|t| t.parse().ok())
        .unwrap_or(3);
    let profiles = load_profiles(input)?;
    let first = profiles
        .profiles
        .first()
        .ok_or_else(|| CliError::Trace("no profiles in input".to_string()))?;
    Ok(extradeep_trace::render_call_tree(first, top))
}

fn cmd_compare(args: &Args) -> Result<String, CliError> {
    let a = args
        .value("--a")
        .ok_or_else(|| CliError::Usage("compare requires --a".to_string()))?;
    let b = args
        .value("--b")
        .ok_or_else(|| CliError::Usage("compare requires --b".to_string()))?;
    let probe: f64 = args
        .value("--probe")
        .and_then(|p| p.parse().ok())
        .unwrap_or(64.0);
    let top: usize = args
        .value("--top")
        .and_then(|t| t.parse().ok())
        .unwrap_or(15);
    let set_a = models_from_path(a)?;
    let set_b = models_from_path(b)?;
    let report = crate::analysis::compare_model_sets(&set_a, &set_b, probe);
    Ok(report.render(top))
}

fn cmd_export_chrome(args: &Args) -> Result<String, CliError> {
    let input = args
        .value("--in")
        .ok_or_else(|| CliError::Usage("export-chrome requires --in".to_string()))?;
    let out = args
        .value("--out")
        .ok_or_else(|| CliError::Usage("export-chrome requires --out".to_string()))?;
    let profiles = load_profiles(input)?;
    let first = profiles
        .profiles
        .first()
        .ok_or_else(|| CliError::Trace("no profiles in input".to_string()))?;
    let body =
        extradeep_trace::to_chrome_trace(first).map_err(|e| CliError::Trace(e.to_string()))?;
    std::fs::write(out, body)?;
    Ok(format!(
        "Exported {} ({} ranks) -> {out} (open in ui.perfetto.dev)",
        first.config.id(),
        first.num_ranks()
    ))
}

fn cmd_import(args: &Args) -> Result<String, CliError> {
    let csvs = args.values("--csv");
    if csvs.is_empty() {
        return Err(CliError::Usage(
            "import requires at least one --csv".to_string(),
        ));
    }
    let out = args
        .value("--out")
        .ok_or_else(|| CliError::Usage("import requires --out".to_string()))?;
    let mut profiles = ExperimentProfiles::new();
    for path in csvs {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Trace(format!("cannot read {path}: {e}")))?;
        let profile = import_csv(&text).map_err(|e| CliError::Trace(format!("{path}: {e}")))?;
        profiles.push(profile);
    }
    json::save(&profiles, out).map_err(|e| CliError::Trace(e.to_string()))?;
    Ok(format!("Imported {} profiles -> {}", profiles.len(), out))
}

/// `inspect`: the workload observatory — per-rank compute/communication/
/// idle breakdown, load-imbalance and straggler attribution, comm/compute
/// overlap, and the cross-rank critical path per configuration, with PMNF
/// growth models of those health metrics over scale.
fn cmd_inspect(args: &Args) -> Result<String, CliError> {
    let mut opts = crate::inspect::InspectOptions::default();
    if let Some(t) = args.value("--top") {
        opts.top = t
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid --top '{t}'")))?;
    }
    if let Some(p) = args.value("--predict") {
        opts.predict_at = Some(
            p.parse()
                .map_err(|_| CliError::Usage(format!("invalid --predict '{p}'")))?,
        );
    }
    let fault_plan = args
        .value("--inject-faults")
        .map(extradeep_sim::FaultPlan::parse)
        .transpose()
        .map_err(|e| CliError::Usage(e.to_string()))?;

    let mut profiles = match args.value("--in") {
        Some(path) => load_profiles(path)?,
        None => {
            let spec = spec_from_args(args)?;
            extradeep_obs::info!("inspect: simulating {} scales", spec.rank_counts.len());
            spec.run()
        }
    };
    let mut injected = Vec::new();
    if let Some(plan) = &fault_plan {
        let (summary, log) = plan.apply_detailed(&mut profiles);
        extradeep_obs::warn!("fault injection: {summary}");
        injected = log.straggler_ranks();
    }
    let mut report = crate::inspect::inspect_experiment(&profiles, &opts);
    report.injected_straggler_ranks = injected;

    let mut out = report.render(opts.top);
    if let Some(path) = args.value("--json") {
        let body =
            serde_json::to_string_pretty(&report).map_err(|e| CliError::Modeling(e.to_string()))?;
        std::fs::write(path, body)?;
        out.push_str(&format!("\nJSON report -> {path}\n"));
    }
    if let Some(path) = args.value("--markdown") {
        std::fs::write(path, report.render_markdown())?;
        out.push_str(&format!("Markdown report -> {path}\n"));
    }
    if let Some(path) = args.value("--chrome") {
        // Annotated Chrome trace of the most skewed configuration's first
        // repetition: straggler instants plus critical-path flow arrows.
        if let Some(worst) = report.worst_config() {
            let profile = profiles
                .profiles
                .iter()
                .find(|p| p.config.id() == worst.config_id);
            if let Some(profile) = profile {
                let analysis = extradeep_trace::analyze_config(profile);
                let ann = extradeep_trace::annotations(profile, &analysis);
                let body = extradeep_trace::to_chrome_trace_annotated(profile, &ann)
                    .map_err(|e| CliError::Trace(e.to_string()))?;
                std::fs::write(path, body)?;
                out.push_str(&format!(
                    "Annotated Chrome trace ({}) -> {path}\n",
                    worst.config_id
                ));
            }
        }
    }
    Ok(out)
}

/// `campaign`: expand a declarative sweep spec into cells and execute them
/// with checkpoint/resume, retry/timeout/backoff, and quarantine — see
/// [`crate::campaign`]. Re-running the same command against the same
/// directory resumes an interrupted sweep.
fn cmd_campaign(args: &Args) -> Result<String, CliError> {
    let spec_path = args
        .items
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("campaign needs a spec file".to_string()))?;
    let spec_text = std::fs::read_to_string(spec_path)
        .map_err(|e| CliError::Usage(format!("cannot read spec '{spec_path}': {e}")))?;
    let spec = crate::campaign::CampaignSpec::from_json(&spec_text)
        .map_err(|e| CliError::Usage(e.to_string()))?;

    let dir = match args.value("--dir") {
        Some(d) => std::path::PathBuf::from(d),
        None => crate::campaign::default_campaign_dir(std::path::Path::new(spec_path)),
    };
    let mut opts = crate::campaign::RunOptions::default();
    if let Some(p) = args.value("--parallelism") {
        opts.parallelism = Some(
            p.parse()
                .map_err(|_| CliError::Usage(format!("invalid --parallelism '{p}'")))?,
        );
    }
    if let Some(n) = args.value("--crash-after") {
        opts.crash_after_done = Some(
            n.parse()
                .map_err(|_| CliError::Usage(format!("invalid --crash-after '{n}'")))?,
        );
    }

    let report = crate::campaign::run_campaign(&spec, &dir, &opts).map_err(|e| match e {
        crate::campaign::CampaignError::Io(io) => CliError::Io(io),
        crate::campaign::CampaignError::Spec(msg) => CliError::Usage(msg),
        mismatch @ crate::campaign::CampaignError::ManifestMismatch { .. } => {
            CliError::Trace(mismatch.to_string())
        }
    })?;

    let mut out = report.render();
    if let Some(path) = args.value("--json") {
        let body =
            serde_json::to_string_pretty(&report).map_err(|e| CliError::Trace(e.to_string()))?;
        std::fs::write(path, body)?;
        out.push_str(&format!("\nJSON roll-up -> {path}\n"));
    }
    if let Some(path) = args.value("--markdown") {
        std::fs::write(path, report.render_markdown())?;
        out.push_str(&format!("Markdown roll-up -> {path}\n"));
    }
    if (args.flag("--strict") || spec.execution.strict) && !report.is_complete() {
        return Err(CliError::QualityGate(out));
    }
    Ok(out)
}

fn cmd_tail(args: &Args) -> Result<String, CliError> {
    let path = args
        .items
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("tail needs a telemetry file".to_string()))?;
    let stream = if args.flag("--follow") {
        let mut opts = crate::tail::FollowOptions::default();
        if let Some(ms) = args.value("--poll-ms") {
            opts.poll_ms = ms
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid --poll-ms '{ms}'")))?;
        }
        if let Some(ms) = args.value("--idle-timeout-ms") {
            opts.idle_timeout_ms = ms
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid --idle-timeout-ms '{ms}'")))?;
        }
        crate::tail::follow_stream(std::path::Path::new(path), &opts, |s| {
            extradeep_obs::info!(
                "tail: {} record(s), {} snapshot(s), {} span(s) closed",
                s.lines,
                s.snapshots.len(),
                s.spans.len()
            );
        })?
    } else {
        let text = std::fs::read_to_string(path)?;
        crate::tail::parse_stream(&text)
    };
    if args.flag("--prometheus") {
        Ok(extradeep_obs::prometheus_text(&stream.to_snapshot()))
    } else {
        Ok(stream.render())
    }
}

/// Global flags shared by every command, stripped from the argument list
/// before command dispatch.
#[derive(Debug, Default)]
struct GlobalFlags {
    /// Write the pipeline's own spans as Chrome trace-event JSON here.
    profile_self: Option<String>,
    /// Re-emit the pipeline's own spans as an extradeep trace here.
    self_trace: Option<String>,
    /// Append the per-phase wall-time table to the report.
    report_phases: bool,
    /// Stream JSON-Lines telemetry to this file while the command runs.
    telemetry: Option<String>,
    /// Sampler interval in milliseconds (raw; parsed in [`run`]).
    telemetry_interval_ms: Option<String>,
    /// Watchdog span budget in milliseconds (raw; parsed in [`run`]).
    span_budget_ms: Option<String>,
    quiet: bool,
    verbose: bool,
}

impl GlobalFlags {
    fn profiling(&self) -> bool {
        self.profile_self.is_some()
            || self.self_trace.is_some()
            || self.report_phases
            || self.telemetry.is_some()
    }
}

fn parse_ms(raw: &Option<String>, flag: &str) -> Result<Option<u64>, CliError> {
    match raw {
        None => Ok(None),
        Some(s) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("{flag} expects milliseconds, got '{s}'"))),
    }
}

fn extract_global_flags(argv: &[String]) -> (Vec<String>, GlobalFlags) {
    let mut flags = GlobalFlags::default();
    let mut rest = Vec::with_capacity(argv.len());
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--profile-self"
            | "--self-trace"
            | "--telemetry"
            | "--telemetry-interval-ms"
            | "--span-budget-ms"
                if i + 1 < argv.len() =>
            {
                let value = Some(argv[i + 1].clone());
                match argv[i].as_str() {
                    "--profile-self" => flags.profile_self = value,
                    "--self-trace" => flags.self_trace = value,
                    "--telemetry" => flags.telemetry = value,
                    "--telemetry-interval-ms" => flags.telemetry_interval_ms = value,
                    _ => flags.span_budget_ms = value,
                }
                i += 2;
            }
            "--report-phases" => {
                flags.report_phases = true;
                i += 1;
            }
            "-q" | "--quiet" => {
                flags.quiet = true;
                i += 1;
            }
            "--verbose" => {
                flags.verbose = true;
                i += 1;
            }
            _ => {
                rest.push(argv[i].clone());
                i += 1;
            }
        }
    }
    (rest, flags)
}

/// The `core.<command>` span name of a dispatched command.
fn command_span(command: &str) -> &'static str {
    match command {
        "simulate" => "core.simulate",
        "model" => "core.model",
        "analyze" => "core.analyze",
        "predict" => "core.predict",
        "summary" => "core.summary",
        "calltree" => "core.calltree",
        "compare" => "core.compare",
        "export-chrome" => "core.export_chrome",
        "import" => "core.import",
        "pipeline" => "core.pipeline",
        "doctor" => "core.doctor",
        "inspect" => "core.inspect",
        "tail" => "core.tail",
        "campaign" => "core.campaign_cmd",
        _ => "core.command",
    }
}

fn dispatch(command: &str, args: &Args) -> Result<String, CliError> {
    match command {
        "simulate" => cmd_simulate(args),
        "model" => cmd_model(args),
        "analyze" => cmd_analyze(args),
        "predict" => cmd_predict(args),
        "summary" => cmd_summary(args),
        "calltree" => cmd_calltree(args),
        "compare" => cmd_compare(args),
        "export-chrome" => cmd_export_chrome(args),
        "import" => cmd_import(args),
        "pipeline" => cmd_pipeline(args),
        "doctor" => cmd_doctor(args),
        "inspect" => cmd_inspect(args),
        "tail" => cmd_tail(args),
        "campaign" => cmd_campaign(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

/// Entry point: dispatches on the first argument, returns the report text.
///
/// Handles the global flags first: `-q`/`--verbose` set the log level, and
/// any of `--profile-self`/`--self-trace`/`--report-phases` turn the
/// self-profiling runtime on around the command and export what it recorded.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let (argv, flags) = extract_global_flags(argv);
    if flags.quiet {
        extradeep_obs::log::set_max_level(extradeep_obs::log::Level::Error);
    } else if flags.verbose {
        extradeep_obs::log::set_max_level(extradeep_obs::log::Level::Debug);
    }
    let Some(command) = argv.first() else {
        return Err(CliError::Usage("no command given".to_string()));
    };
    let args = Args::new(&argv[1..]);

    if flags.profiling() {
        extradeep_obs::set_enabled(true);
    }
    // Live telemetry: a background sampler drains the journal to a
    // JSON-Lines file every interval while the command runs.
    let mut sampler = None;
    if let Some(path) = &flags.telemetry {
        let interval = parse_ms(&flags.telemetry_interval_ms, "--telemetry-interval-ms")?
            .unwrap_or(500)
            .max(1);
        let budget = parse_ms(&flags.span_budget_ms, "--span-budget-ms")?;
        let sink = std::io::BufWriter::new(std::fs::File::create(path)?);
        let cfg = extradeep_obs::SamplerConfig {
            interval: std::time::Duration::from_millis(interval),
            span_budget: budget.map(std::time::Duration::from_millis),
            ..Default::default()
        };
        sampler = Some(extradeep_obs::sampler::start(sink, cfg)?);
    }
    let result = {
        let _span = extradeep_obs::span(command_span(command));
        dispatch(command, &args)
    };
    // Stop after the command span has closed so its end event reaches the
    // stream in the sampler's final tick.
    let telemetry_report = sampler.map(extradeep_obs::SamplerHandle::stop);
    if !flags.profiling() {
        return result;
    }

    extradeep_obs::set_enabled(false);
    let snap = extradeep_obs::drain();
    let mut report = result?;
    if let (Some(path), Some(tr)) = (&flags.telemetry, &telemetry_report) {
        report.push_str(&format!(
            "\nTelemetry -> {path} ({} records, {} snapshots, {} stall(s), {} journal event(s) dropped)\n",
            tr.records_written, tr.snapshots_emitted, tr.stalls, tr.journal_dropped
        ));
    }
    if let Some(path) = &flags.profile_self {
        let series = telemetry_report
            .as_ref()
            .map(|tr| tr.counter_series.as_slice())
            .unwrap_or(&[]);
        std::fs::write(
            path,
            extradeep_obs::chrome_trace_json_with_counters(&snap, series),
        )?;
        report.push_str(&format!("\nSelf-profile (Chrome trace) -> {path}\n"));
    }
    if let Some(path) = &flags.self_trace {
        let exp = crate::selfprofile::self_profile_experiment(&[(1.0, snap.clone())]);
        json::save(&exp, path).map_err(|e| CliError::Trace(e.to_string()))?;
        report.push_str(&format!("\nSelf-trace (extradeep format) -> {path}\n"));
    }
    if flags.report_phases {
        report.push('\n');
        report.push_str(&extradeep_obs::phase_report(&snap));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("extradeep-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&argv("help")).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        assert!(matches!(run(&argv("frobnicate")), Err(CliError::Usage(_))));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn simulate_then_model_then_analyze() {
        let path = tmp("cli_pipeline.json");
        let out = run(&argv(&format!(
            "simulate --out {path} --ranks 2,4,6,8,10 --reps 2 --benchmark cifar10"
        )))
        .unwrap();
        assert!(out.contains("5 configurations"));

        let out = run(&argv(&format!("model --in {path} --top 3"))).unwrap();
        assert!(out.contains("epoch:"));
        assert!(out.contains("kernel models created"));

        let out = run(&argv(&format!(
            "analyze --in {path} --probe 32 --candidates 2,8,32"
        )))
        .unwrap();
        assert!(out.contains("Q1."));
        assert!(out.contains("Q5."));
        assert!(out.contains("Recommendation: 2 ranks"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_predict_from_persisted_models() {
        let profiles = tmp("persist_profiles.json");
        let models = tmp("persist_models.json");
        run(&argv(&format!(
            "simulate --out {profiles} --ranks 2,4,6,8,10 --reps 1"
        )))
        .unwrap();
        run(&argv(&format!(
            "model --in {profiles} --save-models {models}"
        )))
        .unwrap();
        let out = run(&argv(&format!("predict --models {models} --at 16,64"))).unwrap();
        assert!(out.contains("T_epoch"));
        assert!(out.contains("16"));
        assert!(out.contains("64"));
        std::fs::remove_file(profiles).ok();
        std::fs::remove_file(models).ok();
    }

    #[test]
    fn summary_renders_kernel_tables() {
        let path = tmp("cli_summary.json");
        run(&argv(&format!(
            "simulate --out {path} --ranks 2,4 --reps 1"
        )))
        .unwrap();
        let out = run(&argv(&format!("summary --in {path} --top 5"))).unwrap();
        assert!(out.contains("Kernel summary for app.x2"));
        assert!(out.contains("Kernel summary for app.x4"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn calltree_renders_phases() {
        let path = tmp("cli_calltree.json");
        run(&argv(&format!(
            "simulate --out {path} --ranks 2,4 --reps 1"
        )))
        .unwrap();
        let out = run(&argv(&format!("calltree --in {path}"))).unwrap();
        assert!(out.contains("train"));
        assert!(out.contains("exchange"));
        assert!(out.contains("forward"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn compare_and_export_chrome() {
        let a = tmp("cmp_a.json");
        let b = tmp("cmp_b.json");
        run(&argv(&format!(
            "simulate --out {a} --ranks 2,4,6,8,10 --reps 1"
        )))
        .unwrap();
        run(&argv(&format!(
            "simulate --out {b} --ranks 2,4,6,8,10 --reps 1 --system jureca --ranks 8,16,24,32,40"
        )))
        .unwrap();
        let out = run(&argv(&format!("compare --a {a} --b {b} --probe 40"))).unwrap();
        assert!(out.contains("epoch ratio"));

        let chrome = tmp("trace_chrome.json");
        let out = run(&argv(&format!("export-chrome --in {a} --out {chrome}"))).unwrap();
        assert!(out.contains("perfetto"));
        let body = std::fs::read_to_string(&chrome).unwrap();
        assert!(body.starts_with('['));
        for f in [a, b, chrome] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn global_flags_are_stripped_before_dispatch() {
        let (rest, flags) = extract_global_flags(&argv(
            "model --in x.json --profile-self prof.json --report-phases -q --top 3",
        ));
        assert_eq!(rest, argv("model --in x.json --top 3"));
        assert_eq!(flags.profile_self.as_deref(), Some("prof.json"));
        assert!(flags.report_phases);
        assert!(flags.quiet);
        assert!(!flags.verbose);
        assert!(flags.profiling());
    }

    #[test]
    fn pipeline_with_self_profiling_exports_traces() {
        let chrome = tmp("self_profile.json");
        let selftrace = tmp("self_trace.json");
        let out = run(&argv(&format!(
            "pipeline --ranks 2,4,6,8,10 --reps 1 \
             --profile-self {chrome} --self-trace {selftrace} --report-phases"
        )))
        .unwrap();
        assert!(out.contains("kernel models created"));
        assert!(
            out.contains("Doctor: aggregate kernel MPE"),
            "missing doctor stage:\n{out}"
        );
        assert!(out.contains("phase report"), "missing phase table:\n{out}");

        // The Chrome export contains spans from every pipeline layer.
        let body = std::fs::read_to_string(&chrome).unwrap();
        assert!(body.trim_start().starts_with('['));
        for cat in ["sim", "trace", "agg", "model", "core"] {
            assert!(
                body.contains(&format!("\"cat\":\"{cat}\"")),
                "no '{cat}' spans in the self-profile"
            );
        }

        // The self-trace round-trips through the ordinary trace loader.
        let exp = json::load(&selftrace).unwrap();
        assert_eq!(exp.len(), 1);
        assert!(!exp.profiles[0].ranks[0].events.is_empty());
        std::fs::remove_file(chrome).ok();
        std::fs::remove_file(selftrace).ok();
    }

    #[test]
    fn doctor_reports_and_writes_artifacts() {
        let json = tmp("doctor_report.json");
        let md = tmp("doctor_report.md");
        let out = run(&argv(&format!(
            "doctor --ranks 2,4,6,8,10 --reps 1 --holdout 12 --top 5 \
             --json {json} --markdown {md}"
        )))
        .unwrap();
        assert!(out.contains("Model-quality report"));
        assert!(out.contains("kernel models validated"));

        let body = std::fs::read_to_string(&json).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed["holdout_scales"][0], 12.0);
        assert!(parsed["kernels"].as_array().unwrap().len() > 10);

        let md_body = std::fs::read_to_string(&md).unwrap();
        assert!(md_body.starts_with("# Model quality report"));
        assert!(md_body.contains("| Kernel |"));
        std::fs::remove_file(json).ok();
        std::fs::remove_file(md).ok();
    }

    #[test]
    fn doctor_strict_gate_trips_on_impossible_thresholds() {
        let err = run(&argv(
            "doctor --ranks 2,4,6,8,10 --reps 1 --holdout 12 --strict --max-mpe 0",
        ));
        match err {
            Err(CliError::QualityGate(report)) => {
                assert!(report.contains("FLAGGED"), "report:\n{report}");
            }
            other => panic!("expected QualityGate, got {other:?}"),
        }
    }

    #[test]
    fn doctor_rejects_bad_thresholds() {
        let err = run(&argv("doctor --ranks 2,4 --max-mpe abc"));
        assert!(matches!(err, Err(CliError::Usage(_))));
    }

    #[test]
    fn simulate_rejects_bad_benchmark() {
        let path = tmp("never_written.json");
        let err = run(&argv(&format!("simulate --out {path} --benchmark mnist")));
        assert!(matches!(err, Err(CliError::Usage(_))));
    }

    #[test]
    fn import_roundtrip() {
        // Export a simulated profile to CSV, import via the CLI, model it.
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
        spec.repetitions = 1;
        spec.profiler.max_recorded_ranks = 1;
        let profiles = spec.run();
        let mut csv_paths = Vec::new();
        for (i, p) in profiles.profiles.iter().enumerate() {
            let path = tmp(&format!("import_{i}.csv"));
            std::fs::write(&path, extradeep_trace::export_csv(p)).unwrap();
            csv_paths.push(path);
        }
        let out_json = tmp("imported.json");
        let mut cmd = String::from("import");
        for p in &csv_paths {
            cmd.push_str(&format!(" --csv {p}"));
        }
        cmd.push_str(&format!(" --out {out_json}"));
        let out = run(&argv(&cmd)).unwrap();
        assert!(out.contains("Imported 5 profiles"));

        let modeled = run(&argv(&format!("model --in {out_json}"))).unwrap();
        assert!(modeled.contains("epoch:"));
        for p in csv_paths {
            std::fs::remove_file(p).ok();
        }
        std::fs::remove_file(out_json).ok();
    }

    #[test]
    fn inspect_reports_breakdown_and_trends() {
        let out = run(&argv("inspect --ranks 2,4,6 --reps 1")).unwrap();
        assert!(out.contains("== Workload observatory =="));
        assert!(out.contains("Metric growth models"));
        assert!(out.contains("No straggler candidates flagged."));
        assert!(out.contains("Per-configuration breakdown"));
    }

    #[test]
    fn inspect_names_injected_straggler_and_writes_markdown() {
        let md = tmp("inspect_report.md");
        let out = run(&argv(&format!(
            "inspect --ranks 4,6 --reps 1 \
             --inject-faults straggler-rank=1,straggler-factor=3 --markdown {md}"
        )))
        .unwrap();
        assert!(out.contains("Straggler candidates flagged: [1]"), "{out}");
        assert!(out.contains("Injected straggler rank(s): [1]"), "{out}");

        let rendered = std::fs::read_to_string(&md).unwrap();
        assert!(rendered.contains("# Workload observatory"));
        assert!(rendered.contains("r1"));
        std::fs::remove_file(md).ok();
    }

    #[test]
    fn campaign_runs_resumes_and_writes_artifacts() {
        let dir =
            std::env::temp_dir().join(format!("extradeep-cli-campaign-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("sweep.json");
        std::fs::write(
            &spec,
            r#"{
                "name": "cli-smoke",
                "grid": {"ranks": [[2, 4, 6]], "max_recorded_ranks": 1},
                "execution": {"parallelism": 1, "timeout_ms": 120000}
            }"#,
        )
        .unwrap();
        let json = dir.join("rollup.json");
        let md = dir.join("rollup.md");
        let out = run(&argv(&format!(
            "campaign {} --json {} --markdown {}",
            spec.display(),
            json.display(),
            md.display()
        )))
        .unwrap();
        assert!(out.contains("== Campaign 'cli-smoke' =="), "{out}");
        assert!(out.contains("1 done"), "{out}");
        assert!(dir.join("sweep.campaign").join("manifest.jsonl").exists());

        let body = std::fs::read_to_string(&json).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(parsed["total_cells"], 1);
        assert_eq!(parsed["quarantined"].as_array().unwrap().len(), 0);
        let rendered = std::fs::read_to_string(&md).unwrap();
        assert!(rendered.starts_with("# Campaign 'cli-smoke'"));

        // Second invocation resumes: nothing re-executes.
        let out = run(&argv(&format!("campaign {}", spec.display()))).unwrap();
        assert!(out.contains("1 resumed"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_strict_gate_trips_on_quarantine() {
        let dir = std::env::temp_dir().join(format!("extradeep-cli-campq-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("poisoned.json");
        std::fs::write(
            &spec,
            r#"{
                "name": "poisoned",
                "grid": {"ranks": [[2, 4, 6]], "max_recorded_ranks": 1},
                "execution": {"parallelism": 1, "max_attempts": 2,
                              "backoff_base_ms": 1, "backoff_cap_ms": 2},
                "sabotage": {"*": "panic"}
            }"#,
        )
        .unwrap();
        match run(&argv(&format!("campaign {} --strict", spec.display()))) {
            Err(CliError::QualityGate(report)) => {
                assert!(report.contains("Quarantined cells"), "{report}");
                assert!(report.contains("panicked"), "{report}");
            }
            other => panic!("expected QualityGate, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_rejects_bad_spec_and_missing_file() {
        assert!(matches!(
            run(&argv("campaign /nonexistent/spec.json")),
            Err(CliError::Usage(_))
        ));
        let dir = std::env::temp_dir().join("extradeep-cli-campaign-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = dir.join("bad.json");
        std::fs::write(&spec, r#"{"name": "x", "grid": {"systems": ["cray"]}}"#).unwrap();
        assert!(matches!(
            run(&argv(&format!("campaign {}", spec.display()))),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_file(&spec).ok();
    }

    #[test]
    fn inspect_rejects_bad_predict_list() {
        assert!(matches!(
            run(&argv("inspect --ranks 2,4 --reps 1 --predict lots")),
            Err(CliError::Usage(_))
        ));
    }
}
