//! Answers to the paper's guiding questions Q1-Q5 (§1.1), as a programmatic
//! API over the created models — the case-study walkthrough of §2-3.

use crate::analysis::config_search::{find_cost_effective, Constraints, SearchResult};
use crate::analysis::cost::CostModel;
use crate::analysis::efficiency::efficiency_series;
use crate::analysis::speedup::speedup_series;
use crate::modelset::ModelSet;
use extradeep_sim::ScalingMode;
use serde::{Deserialize, Serialize};

/// Q1: How long does one training epoch take at a given resource allocation?
pub fn q1_epoch_seconds(models: &ModelSet, ranks: f64) -> f64 {
    models.app.epoch.predict_at(ranks)
}

/// Q2: How do training time and speedup change with the configuration?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingAnswer {
    pub series: Vec<(f64, f64)>,
    pub speedup_percent: Vec<(f64, f64)>,
}

pub fn q2_scaling_behavior(models: &ModelSet, xs: &[f64]) -> ScalingAnswer {
    ScalingAnswer {
        series: xs
            .iter()
            .map(|&x| (x, models.app.epoch.predict_at(x)))
            .collect(),
        speedup_percent: speedup_series(&models.app.epoch, xs),
    }
}

/// Q3: Does the application suffer from latent bottlenecks? Returns the
/// communication share of the epoch at the probe scale (the case study's
/// finding: gradient exchange dominates at scale) plus the top-ranked
/// kernels by growth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BottleneckAnswer {
    pub communication_seconds: f64,
    pub epoch_seconds: f64,
    pub communication_share_percent: f64,
    pub top_kernels: Vec<String>,
}

pub fn q3_bottlenecks(models: &ModelSet, probe_ranks: f64) -> BottleneckAnswer {
    let comm = models.app.communication.predict_at(probe_ranks).max(0.0);
    let epoch = models
        .app
        .epoch
        .predict_at(probe_ranks)
        .max(f64::MIN_POSITIVE);
    let top = crate::analysis::bottleneck::top_bottlenecks(models, probe_ranks, 5)
        .into_iter()
        .map(|r| format!("{} [{}]", r.id.name, r.growth))
        .collect();
    BottleneckAnswer {
        communication_seconds: comm,
        epoch_seconds: epoch,
        communication_share_percent: 100.0 * comm / epoch,
        top_kernels: top,
    }
}

/// Q4: What does training cost per epoch at a given configuration?
pub fn q4_epoch_core_hours(models: &ModelSet, cost: &CostModel, ranks: f64) -> f64 {
    cost.epoch_core_hours(&models.app.epoch, ranks)
}

/// Q5: What is the most cost-effective configuration under the constraints?
pub fn q5_cost_effective(
    models: &ModelSet,
    cost: &CostModel,
    candidates: &[f64],
    constraints: Constraints,
    scaling: ScalingMode,
) -> SearchResult {
    find_cost_effective(&models.app.epoch, cost, candidates, constraints, scaling)
}

/// Parallel efficiency series, supporting the Q5 recommendation.
pub fn efficiency_percent(models: &ModelSet, xs: &[f64]) -> Vec<(f64, f64)> {
    efficiency_series(&models.app.epoch, xs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_model_set, ModelSetOptions};
    use extradeep_agg::{aggregate_experiment, AggregationOptions};
    use extradeep_sim::{ExperimentSpec, ProfilerOptions};
    use extradeep_trace::MetricKind;

    fn models() -> ModelSet {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
        spec.repetitions = 2;
        spec.profiler = ProfilerOptions {
            max_recorded_ranks: 2,
            ..Default::default()
        };
        let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
        build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap()
    }

    #[test]
    fn q1_through_q5_are_answerable() {
        let set = models();
        let cost = CostModel::new(8);

        let t40 = q1_epoch_seconds(&set, 40.0);
        assert!(t40 > 0.0);

        let q2 = q2_scaling_behavior(&set, &[2.0, 16.0, 64.0]);
        assert_eq!(q2.series.len(), 3);
        // Weak scaling: runtime grows, so speedup at 64 is negative.
        assert!(q2.speedup_percent[2].1 < 0.0);

        let q3 = q3_bottlenecks(&set, 64.0);
        assert!(q3.communication_share_percent > 0.0);
        assert_eq!(q3.top_kernels.len(), 5);

        let c32 = q4_epoch_core_hours(&set, &cost, 32.0);
        assert!(c32 > 0.0);
        // Cost grows superlinearly with ranks under weak scaling.
        assert!(q4_epoch_core_hours(&set, &cost, 64.0) > 2.0 * c32);

        let q5 = q5_cost_effective(
            &set,
            &cost,
            &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            Constraints::default(),
            ScalingMode::Weak,
        );
        // Weak scaling: smallest allocation wins (the paper's Q5 answer).
        assert_eq!(q5.best.unwrap().ranks, 2.0);
    }

    #[test]
    fn communication_share_grows_with_scale() {
        let set = models();
        let small = q3_bottlenecks(&set, 4.0);
        let large = q3_bottlenecks(&set, 64.0);
        assert!(
            large.communication_share_percent > small.communication_share_percent,
            "comm share {} -> {}",
            small.communication_share_percent,
            large.communication_share_percent
        );
    }
}
