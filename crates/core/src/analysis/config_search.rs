//! Cost-effective training-configuration search (paper §3.3, Fig. 4).
//!
//! Given a runtime model, a cost model, and the user's constraints (budget in
//! core-hours and/or a target time), find the configurations that are both
//! technically and economically feasible, and among them the one with the
//! highest parallel efficiency.

use crate::analysis::cost::CostModel;
use crate::analysis::efficiency::efficiency_series;
use extradeep_model::Model;
use extradeep_sim::ScalingMode;
use serde::{Deserialize, Serialize};

/// The user's constraints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Constraints {
    /// Maximum training time per epoch, seconds.
    pub max_seconds: Option<f64>,
    /// Maximum budget per epoch, core-hours.
    pub max_core_hours: Option<f64>,
}

/// One evaluated candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    pub ranks: f64,
    pub seconds: f64,
    pub core_hours: f64,
    pub efficiency_percent: f64,
    pub feasible: bool,
}

/// The search outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    pub candidates: Vec<Candidate>,
    /// The recommended configuration, when any candidate is feasible.
    pub best: Option<Candidate>,
}

/// Evaluates all candidate rank counts and picks the most cost-effective
/// feasible one.
///
/// * Weak scaling: every feasible configuration costs more and is less
///   efficient the larger it is, so the recommendation is simply the
///   smallest feasible rank count (paper: "the configuration with the
///   smallest resource allocation will always be the one with the lowest
///   cost and the highest parallel efficiency").
/// * Strong scaling: feasibility is a genuine intersection (time falls,
///   cost rises with scale); the recommendation maximizes parallel
///   efficiency within the feasible set.
pub fn find_cost_effective(
    runtime: &Model,
    cost: &CostModel,
    candidates: &[f64],
    constraints: Constraints,
    scaling: ScalingMode,
) -> SearchResult {
    let efficiencies = efficiency_series(runtime, candidates);
    let evaluated: Vec<Candidate> = candidates
        .iter()
        .zip(&efficiencies)
        .map(|(&ranks, &(_, eff))| {
            let seconds = runtime.predict_at(ranks);
            let core_hours = cost.core_hours(seconds, ranks);
            let time_ok = constraints.max_seconds.is_none_or(|t| seconds <= t);
            let budget_ok = constraints.max_core_hours.is_none_or(|b| core_hours <= b);
            Candidate {
                ranks,
                seconds,
                core_hours,
                efficiency_percent: eff,
                feasible: time_ok && budget_ok,
            }
        })
        .collect();

    let best = match scaling {
        ScalingMode::Weak => evaluated
            .iter()
            .filter(|c| c.feasible)
            .min_by(|a, b| a.ranks.total_cmp(&b.ranks))
            .copied(),
        ScalingMode::Strong => evaluated
            .iter()
            .filter(|c| c.feasible)
            .max_by(|a, b| a.efficiency_percent.total_cmp(&b.efficiency_percent))
            .copied(),
    };

    SearchResult {
        candidates: evaluated,
        best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_model::{model_single_parameter, ExperimentData, ModelerOptions};

    fn model(f: impl Fn(f64) -> f64, strong: bool) -> Model {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, f(x))).collect();
        let opts = if strong {
            ModelerOptions::strong_scaling()
        } else {
            ModelerOptions::default()
        };
        model_single_parameter(&ExperimentData::univariate("ranks", &pts), &opts).unwrap()
    }

    #[test]
    fn weak_scaling_picks_smallest_feasible() {
        // The paper's case-study answer to Q5: under weak scaling the most
        // cost-effective configuration is the smallest one (x1 = 2).
        let runtime = model(
            |x| 158.0 + 0.6 * x.powf(2.0 / 3.0) * x.log2().powi(2),
            false,
        );
        let cost = CostModel::new(8);
        let r = find_cost_effective(
            &runtime,
            &cost,
            &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            Constraints::default(),
            ScalingMode::Weak,
        );
        assert_eq!(r.best.unwrap().ranks, 2.0);
    }

    #[test]
    fn strong_scaling_intersects_time_and_budget() {
        // Mirrors Fig. 4b: a target time cuts off small configurations, a
        // budget cuts off large ones; the pick maximizes efficiency inside.
        let runtime = model(|x| 40.0 + 1600.0 / x, true);
        let cost = CostModel::new(8);
        let constraints = Constraints {
            max_seconds: Some(90.0),   // excludes very small rank counts
            max_core_hours: Some(9.0), // excludes very large ones
        };
        let candidates = [8.0, 16.0, 24.0, 32.0, 40.0, 48.0, 56.0, 64.0];
        let r = find_cost_effective(
            &runtime,
            &cost,
            &candidates,
            constraints,
            ScalingMode::Strong,
        );
        let best = r.best.expect("a feasible window exists");
        assert!(best.feasible);
        // Infeasible extremes must be marked as such.
        assert!(!r.candidates.first().unwrap().feasible || !r.candidates.last().unwrap().feasible);
        // The best candidate has the maximum efficiency among feasible ones.
        for c in r.candidates.iter().filter(|c| c.feasible) {
            assert!(best.efficiency_percent >= c.efficiency_percent - 1e-9);
        }
    }

    #[test]
    fn unsatisfiable_constraints_yield_no_best() {
        let runtime = model(|x| 100.0 + x, false);
        let cost = CostModel::new(8);
        let r = find_cost_effective(
            &runtime,
            &cost,
            &[2.0, 4.0, 8.0],
            Constraints {
                max_seconds: Some(1.0),
                max_core_hours: None,
            },
            ScalingMode::Weak,
        );
        assert!(r.best.is_none());
        assert!(r.candidates.iter().all(|c| !c.feasible));
    }

    #[test]
    fn no_constraints_everything_feasible() {
        let runtime = model(|x| 100.0 + x, false);
        let cost = CostModel::new(8);
        let r = find_cost_effective(
            &runtime,
            &cost,
            &[2.0, 4.0],
            Constraints::default(),
            ScalingMode::Weak,
        );
        assert!(r.candidates.iter().all(|c| c.feasible));
        assert_eq!(r.best.unwrap().ranks, 2.0);
    }
}
