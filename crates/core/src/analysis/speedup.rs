//! Speedup analysis (paper §3.1, Eqs. 11-12).
//!
//! The speedup Δ quantifies the gain or loss in training performance in
//! percent relative to the first measurement point of a series:
//! `Δ_Pk = (T_1 - T_k) / (T_1 / 100)`.

use extradeep_model::{
    model_single_parameter, ExperimentData, Model, ModelerOptions, ModelingError,
};

/// Speedup in percent between a baseline runtime and a runtime at point k.
pub fn speedup_percent(t1: f64, tk: f64) -> f64 {
    if t1 == 0.0 {
        return 0.0;
    }
    (t1 - tk) / (t1 / 100.0)
}

/// Computes the speedup series of a runtime model over a parameter-value
/// series `x1`, with the first value as the baseline (Δ = 0 at k = 1).
pub fn speedup_series(runtime: &Model, xs: &[f64]) -> Vec<(f64, f64)> {
    if xs.is_empty() {
        return Vec::new();
    }
    let t1 = runtime.predict_at(xs[0]);
    xs.iter()
        .map(|&x| (x, speedup_percent(t1, runtime.predict_at(x))))
        .collect()
}

/// Fits a PMNF model to the speedup series (Eq. 12), so speedup itself can be
/// extrapolated. Speedups can be negative and decreasing, so the
/// strong-scaling search space is used.
pub fn speedup_model(runtime: &Model, xs: &[f64]) -> Result<Model, ModelingError> {
    let series = speedup_series(runtime, xs);
    let param = runtime
        .parameters
        .first()
        .cloned()
        .unwrap_or_else(|| "x1".to_string());
    let mut options = ModelerOptions::strong_scaling();
    // Speedup is legitimately negative for weak scaling; don't reject.
    options.reject_negative_predictions = false;
    options.min_points = options.min_points.min(series.len());
    let data = ExperimentData::univariate(&param, &series);
    model_single_parameter(&data, &options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_model::{model_single_parameter, ExperimentData, ModelerOptions};

    fn runtime_model(f: impl Fn(f64) -> f64, strong: bool) -> Model {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, f(x))).collect();
        let opts = if strong {
            ModelerOptions::strong_scaling()
        } else {
            ModelerOptions::default()
        };
        model_single_parameter(&ExperimentData::univariate("p", &pts), &opts).unwrap()
    }

    #[test]
    fn baseline_speedup_is_zero() {
        let m = runtime_model(|x| 100.0 + x, false);
        let s = speedup_series(&m, &[2.0, 4.0, 8.0]);
        assert_eq!(s[0].1, 0.0);
    }

    #[test]
    fn strong_scaling_gives_positive_speedup() {
        // Halving runtime from 2 to 4 ranks = +50% speedup.
        let m = runtime_model(|x| 200.0 / x, true);
        let s = speedup_series(&m, &[2.0, 4.0]);
        assert!((s[1].1 - 50.0).abs() < 2.0, "{}", s[1].1);
    }

    #[test]
    fn weak_scaling_overhead_gives_negative_speedup() {
        let m = runtime_model(|x| 100.0 + 5.0 * x, false);
        let s = speedup_series(&m, &[2.0, 32.0]);
        assert!(
            s[1].1 < 0.0,
            "growing runtime must be a slowdown: {}",
            s[1].1
        );
    }

    #[test]
    fn speedup_model_extrapolates() {
        let m = runtime_model(|x| 200.0 / x, true);
        let sm = speedup_model(&m, &[2.0, 4.0, 8.0, 16.0, 32.0]).unwrap();
        // At 64 ranks: T = 3.125, speedup = (100-3.125)/1 = ~96.9%.
        let p = sm.predict_at(64.0);
        assert!((p - 96.875).abs() < 3.0, "predicted speedup {p}");
    }

    #[test]
    fn speedup_percent_edge_cases() {
        assert_eq!(speedup_percent(0.0, 5.0), 0.0);
        assert_eq!(speedup_percent(100.0, 100.0), 0.0);
        assert_eq!(speedup_percent(100.0, 50.0), 50.0);
        assert_eq!(speedup_percent(100.0, 200.0), -100.0);
    }
}
