//! Training-cost analysis (paper §3.3, Eq. 14).
//!
//! The cost of a configuration is the consumed CPU core-hours:
//! `C(x) = T(x) · o` with `o = x1 · ϱ` total cores. GPU time is included in
//! the core-hour price on the paper's systems; a custom formula hook covers
//! systems that bill differently.

use extradeep_model::Model;
use serde::{Deserialize, Serialize};

/// Cost-model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU cores per MPI rank (ϱ).
    pub cores_per_rank: u32,
    /// Optional price per core-hour to convert to currency.
    pub price_per_core_hour: Option<f64>,
}

impl CostModel {
    pub fn new(cores_per_rank: u32) -> Self {
        CostModel {
            cores_per_rank,
            price_per_core_hour: None,
        }
    }

    pub fn with_price(mut self, price: f64) -> Self {
        self.price_per_core_hour = Some(price);
        self
    }

    /// Core-hours consumed by `ranks` ranks running for `seconds` (Eq. 14).
    pub fn core_hours(&self, seconds: f64, ranks: f64) -> f64 {
        let cores = ranks * self.cores_per_rank as f64;
        seconds / 3600.0 * cores
    }

    /// Cost per epoch of a runtime model evaluated at `ranks`.
    pub fn epoch_core_hours(&self, runtime: &Model, ranks: f64) -> f64 {
        self.core_hours(runtime.predict_at(ranks), ranks)
    }

    /// Monetary cost, when a price is configured.
    pub fn epoch_price(&self, runtime: &Model, ranks: f64) -> Option<f64> {
        self.price_per_core_hour
            .map(|p| p * self.epoch_core_hours(runtime, ranks))
    }

    /// Cost series over a parameter-value series.
    pub fn cost_series(&self, runtime: &Model, xs: &[f64]) -> Vec<(f64, f64)> {
        xs.iter()
            .map(|&x| (x, self.epoch_core_hours(runtime, x)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_model::{model_single_parameter, ExperimentData, ModelerOptions};

    fn runtime_model(f: impl Fn(f64) -> f64) -> Model {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, f(x))).collect();
        model_single_parameter(
            &ExperimentData::univariate("p", &pts),
            &ModelerOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn core_hours_formula() {
        let cm = CostModel::new(8);
        // 3600 s on 4 ranks x 8 cores = 32 core-hours.
        assert!((cm.core_hours(3600.0, 4.0) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn case_study_cost_magnitude() {
        // Paper: C_epoch(32) ≈ 22.49 core-hours for the CIFAR-10 study with
        // T_epoch(32) ≈ 320 s and ϱ = 8 on DEEP.
        let m = runtime_model(|x| 158.58 + 0.58 * x.powf(2.0 / 3.0) * x.log2().powi(2));
        let cm = CostModel::new(8);
        let c = cm.epoch_core_hours(&m, 32.0);
        assert!((c - 22.49).abs() < 2.0, "core-hours {c}");
    }

    #[test]
    fn weak_scaling_cost_grows_superlinearly() {
        let m = runtime_model(|x| 100.0 + 3.0 * x.log2().powi(2));
        let cm = CostModel::new(8);
        let series = cm.cost_series(&m, &[2.0, 8.0, 32.0]);
        // Cost at 32 ranks is more than 16x cost at 2 ranks (time also grew).
        assert!(series[2].1 > 16.0 * series[0].1);
    }

    #[test]
    fn price_conversion() {
        let m = runtime_model(|x| 100.0 + x);
        let cm = CostModel::new(8).with_price(0.05);
        let hours = cm.epoch_core_hours(&m, 4.0);
        assert_eq!(cm.epoch_price(&m, 4.0), Some(0.05 * hours));
        assert_eq!(CostModel::new(8).epoch_price(&m, 4.0), None);
    }
}
