//! Performance analysis on top of the created models (paper §3): training
//! scalability and bottlenecks, parallel efficiency, cost, and cost-effective
//! configuration search.

pub mod bottleneck;
pub mod compare;
pub mod config_search;
pub mod cost;
pub mod efficiency;
pub mod speedup;

pub use bottleneck::{rank_by_growth, top_bottlenecks, RankedKernel};
pub use compare::{compare_model_sets, ComparisonReport, GrowthVerdict, KernelComparison};
pub use config_search::{find_cost_effective, Candidate, Constraints, SearchResult};
pub use cost::CostModel;
pub use efficiency::{efficiency_model, efficiency_series, theoretical_speedup_percent};
pub use speedup::{speedup_model, speedup_percent, speedup_series};
