//! Parallel-efficiency analysis (paper §3.2, Eq. 13).
//!
//! `ε = Δ_a / Δ_t`, the ratio of the true speedup to the theoretical speedup
//! assuming zero parallelization overhead; the baseline point has ε = 100%.

use crate::analysis::speedup::speedup_series;
use extradeep_model::{
    model_single_parameter, ExperimentData, Model, ModelerOptions, ModelingError,
};

/// Theoretical speedup between the baseline rank count and `xk` (Eq. 13):
/// `Δ_t = (x_k - x_1) / (x_1 / 100)`.
pub fn theoretical_speedup_percent(x1: f64, xk: f64) -> f64 {
    if x1 == 0.0 {
        return 0.0;
    }
    (xk - x1) / (x1 / 100.0)
}

/// Efficiency series of a runtime model over a parameter series. The first
/// point is the baseline with ε = 100%.
pub fn efficiency_series(runtime: &Model, xs: &[f64]) -> Vec<(f64, f64)> {
    let speedups = speedup_series(runtime, xs);
    speedups
        .iter()
        .map(|&(x, delta_a)| {
            let delta_t = theoretical_speedup_percent(xs[0], x);
            let eps = if delta_t == 0.0 {
                100.0
            } else {
                100.0 * delta_a / delta_t
            };
            (x, eps)
        })
        .collect()
}

/// Fits a PMNF model to the efficiency series, so efficiency can be
/// evaluated at unmeasured configurations (paper: ε_kernel(x_m)).
pub fn efficiency_model(runtime: &Model, xs: &[f64]) -> Result<Model, ModelingError> {
    let series = efficiency_series(runtime, xs);
    let param = runtime
        .parameters
        .first()
        .cloned()
        .unwrap_or_else(|| "x1".to_string());
    let mut options = ModelerOptions::strong_scaling();
    options.reject_negative_predictions = false;
    options.min_points = options.min_points.min(series.len());
    model_single_parameter(&ExperimentData::univariate(&param, &series), &options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_model::{model_single_parameter, ExperimentData, ModelerOptions};

    fn runtime_model(f: impl Fn(f64) -> f64) -> Model {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, f(x))).collect();
        model_single_parameter(
            &ExperimentData::univariate("p", &pts),
            &ModelerOptions::strong_scaling(),
        )
        .unwrap()
    }

    #[test]
    fn theoretical_speedup_matches_formula() {
        // Doubling resources: Δt = (4-2)/(2/100) = 100%.
        assert_eq!(theoretical_speedup_percent(2.0, 4.0), 100.0);
        assert_eq!(theoretical_speedup_percent(2.0, 2.0), 0.0);
        assert_eq!(theoretical_speedup_percent(2.0, 64.0), 3100.0);
    }

    #[test]
    fn baseline_efficiency_is_100() {
        let m = runtime_model(|x| 100.0 / x);
        let e = efficiency_series(&m, &[2.0, 4.0, 8.0]);
        assert_eq!(e[0].1, 100.0);
    }

    #[test]
    fn ideal_scaling_keeps_efficiency_below_or_near_linear_bound() {
        // Perfect 1/x scaling: from 2 to 4 ranks the true speedup is 50%,
        // the theoretical is 100% -> ε = 50% under this (paper's) definition.
        let m = runtime_model(|x| 100.0 / x);
        let e = efficiency_series(&m, &[2.0, 4.0]);
        assert!((e[1].1 - 50.0).abs() < 3.0, "{}", e[1].1);
    }

    #[test]
    fn efficiency_decreases_with_overhead() {
        let m = runtime_model(|x| 100.0 / x + 5.0 * x.log2());
        let e = efficiency_series(&m, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        assert!(
            e.windows(2).skip(1).all(|w| w[1].1 <= w[0].1 + 1e-9),
            "efficiency should fall with scale: {e:?}"
        );
    }

    #[test]
    fn efficiency_model_fits_series() {
        let m = runtime_model(|x| 100.0 / x + 2.0);
        let em = efficiency_model(&m, &[2.0, 4.0, 8.0, 16.0, 32.0]).unwrap();
        let series = efficiency_series(&m, &[2.0, 4.0, 8.0, 16.0, 32.0]);
        for (x, eps) in series {
            let err = (em.predict_at(x) - eps).abs();
            assert!(err < 10.0, "model off by {err} at {x}");
        }
    }
}
