//! Cross-experiment model comparison, after Extra-P's comparison feature:
//! given two model sets (e.g. the same application on DEEP vs. JURECA, or
//! before/after an optimization), align kernels by name and report where the
//! growth behavior or predicted magnitude diverges — the "verify if the made
//! changes had the desired effect" step of the paper's Fig. 1 loop (step 6).

use crate::modelset::ModelSet;
use extradeep_agg::KernelId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Comparison verdict for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthVerdict {
    /// Same dominant growth class in both experiments.
    SameGrowth,
    /// The second experiment grows faster.
    FasterGrowth,
    /// The second experiment grows slower.
    SlowerGrowth,
}

/// One aligned kernel pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelComparison {
    pub id: KernelId,
    pub growth_a: String,
    pub growth_b: String,
    pub verdict: GrowthVerdict,
    /// Predicted metric ratio `b / a` at the probe scale.
    pub ratio_at_probe: f64,
}

/// The full comparison report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonReport {
    pub probe_scale: f64,
    /// Kernels present in both sets, sorted by |log ratio| descending.
    pub common: Vec<KernelComparison>,
    /// Kernels only in the first set.
    pub only_in_a: Vec<KernelId>,
    /// Kernels only in the second set.
    pub only_in_b: Vec<KernelId>,
    /// Epoch-model ratio `b / a` at the probe scale.
    pub epoch_ratio: f64,
}

/// Compares two model sets kernel by kernel.
pub fn compare_model_sets(a: &ModelSet, b: &ModelSet, probe_scale: f64) -> ComparisonReport {
    let mut common = Vec::new();
    let mut only_in_a = Vec::new();

    for (id, model_a) in &a.kernels {
        match b.kernels.get(id) {
            Some(model_b) => {
                let key_a = model_a.function.growth_key();
                let key_b = model_b.function.growth_key();
                let verdict = match key_b.cmp(&key_a) {
                    Ordering::Equal => GrowthVerdict::SameGrowth,
                    Ordering::Greater => GrowthVerdict::FasterGrowth,
                    Ordering::Less => GrowthVerdict::SlowerGrowth,
                };
                let pa = model_a.predict_at(probe_scale).max(1e-12);
                let pb = model_b.predict_at(probe_scale).max(1e-12);
                common.push(KernelComparison {
                    id: id.clone(),
                    growth_a: model_a.big_o(),
                    growth_b: model_b.big_o(),
                    verdict,
                    ratio_at_probe: pb / pa,
                });
            }
            None => only_in_a.push(id.clone()),
        }
    }
    let only_in_b: Vec<KernelId> = b
        .kernels
        .keys()
        .filter(|id| !a.kernels.contains_key(*id))
        .cloned()
        .collect();

    common.sort_by(|x, y| {
        y.ratio_at_probe
            .ln()
            .abs()
            .total_cmp(&x.ratio_at_probe.ln().abs())
    });

    let epoch_ratio = b.app.epoch.predict_at(probe_scale).max(1e-12)
        / a.app.epoch.predict_at(probe_scale).max(1e-12);

    ComparisonReport {
        probe_scale,
        common,
        only_in_a,
        only_in_b,
        epoch_ratio,
    }
}

impl ComparisonReport {
    /// Kernels whose growth class changed between the experiments.
    pub fn growth_changes(&self) -> Vec<&KernelComparison> {
        self.common
            .iter()
            .filter(|c| c.verdict != GrowthVerdict::SameGrowth)
            .collect()
    }

    /// Renders a text report of the top `limit` diverging kernels.
    pub fn render(&self, limit: usize) -> String {
        let mut out = format!(
            "Model comparison at scale {} — epoch ratio (B/A): {:.2}x\n",
            self.probe_scale, self.epoch_ratio
        );
        out.push_str(&format!(
            "{} common kernels, {} only in A, {} only in B, {} growth changes\n",
            self.common.len(),
            self.only_in_a.len(),
            self.only_in_b.len(),
            self.growth_changes().len()
        ));
        for c in self.common.iter().take(limit) {
            out.push_str(&format!(
                "  {:<55} {:>7.2}x  {} -> {}\n",
                c.id.name, c.ratio_at_probe, c.growth_a, c.growth_b
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_model_set, ModelSetOptions};
    use extradeep_agg::{aggregate_experiment, AggregationOptions};
    use extradeep_sim::{ExperimentSpec, ProfilerOptions, SystemConfig};
    use extradeep_trace::MetricKind;

    fn models_on(system: SystemConfig) -> ModelSet {
        let mut spec = ExperimentSpec::case_study(vec![8, 16, 24, 32, 40]);
        spec.system = system;
        spec.repetitions = 1;
        spec.profiler = ProfilerOptions {
            max_recorded_ranks: 1,
            ..Default::default()
        };
        let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
        build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap()
    }

    #[test]
    fn identical_sets_compare_as_equal() {
        let a = models_on(SystemConfig::deep());
        let r = compare_model_sets(&a, &a, 64.0);
        assert!(r.only_in_a.is_empty());
        assert!(r.only_in_b.is_empty());
        assert!((r.epoch_ratio - 1.0).abs() < 1e-12);
        assert!(r.growth_changes().is_empty());
        assert!(r
            .common
            .iter()
            .all(|c| (c.ratio_at_probe - 1.0).abs() < 1e-12));
    }

    #[test]
    fn deep_vs_jureca_differ_in_communication() {
        let deep = models_on(SystemConfig::deep());
        let jureca = models_on(SystemConfig::jureca());
        let r = compare_model_sets(&deep, &jureca, 40.0);
        // DEEP's MPI allreduce vs JURECA's NCCL allreduce live under
        // different kernel names, so each appears as exclusive.
        assert!(r.only_in_a.iter().any(|k| k.name == "MPI_Allreduce"));
        assert!(r.only_in_b.iter().any(|k| k.name == "ncclAllReduce"));
        // The A100 is faster: the epoch ratio favors JURECA.
        assert!(r.epoch_ratio < 1.0, "epoch ratio {}", r.epoch_ratio);
        // Common compute kernels exist (same architecture names except the
        // GPU prefix differs — conv kernels are exclusive, Eigen are shared).
        assert!(!r.common.is_empty());
    }

    #[test]
    fn report_renders() {
        let a = models_on(SystemConfig::deep());
        let r = compare_model_sets(&a, &a, 64.0);
        let text = r.render(5);
        assert!(text.contains("epoch ratio"));
        assert!(text.contains("common kernels"));
    }

    /// A model set with application models but not a single kernel model.
    fn kernel_free_set() -> ModelSet {
        use extradeep_model::{model_single_parameter, ExperimentData, ModelerOptions};
        let data = ExperimentData::univariate(
            "ranks",
            &[
                (2.0, 10.0),
                (4.0, 14.0),
                (6.0, 18.0),
                (8.0, 22.0),
                (10.0, 26.0),
            ],
        );
        let m = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        ModelSet {
            metric: MetricKind::Time,
            app: crate::modelset::AppModels {
                epoch: m.clone(),
                computation: m.clone(),
                communication: m.clone(),
                memory_ops: m,
            },
            kernels: Default::default(),
            failed: Default::default(),
        }
    }

    #[test]
    fn empty_model_sets_compare_cleanly() {
        let a = kernel_free_set();
        let r = compare_model_sets(&a, &a, 64.0);
        assert!(r.common.is_empty());
        assert!(r.only_in_a.is_empty());
        assert!(r.only_in_b.is_empty());
        assert!((r.epoch_ratio - 1.0).abs() < 1e-12);
        // Rendering a kernel-free comparison must not panic.
        let text = r.render(5);
        assert!(text.contains("0 common kernels"));
    }

    #[test]
    fn asymmetric_empty_set_lists_all_kernels_as_exclusive() {
        let full = models_on(SystemConfig::deep());
        let empty = kernel_free_set();
        let r = compare_model_sets(&full, &empty, 64.0);
        assert!(r.common.is_empty());
        assert_eq!(r.only_in_a.len(), full.kernels.len());
        assert!(r.only_in_b.is_empty());
        let r = compare_model_sets(&empty, &full, 64.0);
        assert_eq!(r.only_in_b.len(), full.kernels.len());
    }

    #[test]
    fn single_measurement_point_fails_modeling_gracefully() {
        // One rank count is far below MIN_MEASUREMENT_POINTS: model building
        // must report an error, not panic — and compare never sees the set.
        let mut spec = ExperimentSpec::case_study(vec![8]);
        spec.repetitions = 1;
        spec.profiler.max_recorded_ranks = 1;
        let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
        let res = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default());
        assert!(
            res.is_err(),
            "single-point experiment must not produce models"
        );
    }
}
