//! Bottleneck identification (paper §3.1): rank kernel runtime models by
//! their asymptotic growth trends to pinpoint the functions that will
//! dominate at scale.

use crate::modelset::ModelSet;
use extradeep_agg::KernelId;
use extradeep_model::Model;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One entry of the bottleneck ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedKernel {
    pub id: KernelId,
    /// Big-O rendering of the dominant growth term.
    pub growth: String,
    /// Predicted metric value at the probe scale.
    pub predicted_at_probe: f64,
    /// Predicted share of the total at the probe scale, in percent.
    pub share_percent: f64,
}

/// Ranks all kernel models by growth trend (primary) and predicted value at
/// `probe_scale` (secondary): the paper's "ranking them according to their
/// growth trends ... identify the functions that will become the performance
/// bottleneck".
pub fn rank_by_growth(set: &ModelSet, probe_scale: f64) -> Vec<RankedKernel> {
    // Precompute each kernel's sort key (growth key + probe prediction) in
    // parallel over the model set, then sort on the cached keys. This keeps
    // the output order deterministic (pure keys, stable tie-break on the
    // BTreeMap iteration order) while avoiding re-evaluating `predict_at`
    // O(n log n) times inside the comparator.
    let entries: Vec<(&KernelId, &Model)> = set.kernels.iter().collect();
    let mut keyed: Vec<_> = entries
        .par_iter()
        .map(|(id, m)| (m.function.growth_key(), m.predict_at(probe_scale), *id, *m))
        .collect();
    // Summed in BTreeMap key order (the order `keyed` was built in), before
    // sorting, so the reduction order is independent of the ranking.
    let total: f64 = keyed.iter().map(|e| e.1.max(0.0)).sum();
    keyed.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| b.1.total_cmp(&a.1)));
    keyed
        .into_iter()
        .map(|(_, predicted, id, m)| {
            let v = predicted.max(0.0);
            RankedKernel {
                id: id.clone(),
                growth: m.big_o(),
                predicted_at_probe: v,
                share_percent: if total > 0.0 { 100.0 * v / total } else { 0.0 },
            }
        })
        .collect()
}

/// The top-`k` growth-ranked kernels.
pub fn top_bottlenecks(set: &ModelSet, probe_scale: f64, k: usize) -> Vec<RankedKernel> {
    rank_by_growth(set, probe_scale)
        .into_iter()
        .take(k)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_model_set, ModelSetOptions};
    use extradeep_agg::{aggregate_experiment, AggregationOptions};
    use extradeep_sim::{ExperimentSpec, ProfilerOptions};
    use extradeep_trace::MetricKind;

    fn model_set() -> ModelSet {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
        spec.repetitions = 2;
        spec.profiler = ProfilerOptions {
            max_recorded_ranks: 2,
            ..Default::default()
        };
        let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
        build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap()
    }

    #[test]
    fn communication_ranks_near_the_top() {
        let set = model_set();
        let ranking = rank_by_growth(&set, 64.0);
        assert_eq!(ranking.len(), set.kernels.len());
        let allreduce_pos = ranking
            .iter()
            .position(|r| r.id.name == "MPI_Allreduce")
            .expect("allreduce is modeled");
        // The paper's case-study finding: gradient exchange is the top
        // scalability bottleneck. It must rank in the top tier.
        assert!(
            allreduce_pos < ranking.len() / 4,
            "MPI_Allreduce ranked {allreduce_pos} of {}",
            ranking.len()
        );
    }

    #[test]
    fn ranking_is_sorted_by_growth_key() {
        let set = model_set();
        let ranking = rank_by_growth(&set, 64.0);
        for w in ranking.windows(2) {
            let a = &set.kernels[&w[0].id];
            let b = &set.kernels[&w[1].id];
            assert!(
                a.function.growth_key() >= b.function.growth_key(),
                "ranking not sorted: {} before {}",
                w[0].id.name,
                w[1].id.name
            );
        }
    }

    #[test]
    fn shares_sum_to_100() {
        let set = model_set();
        let ranking = rank_by_growth(&set, 64.0);
        let total: f64 = ranking.iter().map(|r| r.share_percent).sum();
        assert!((total - 100.0).abs() < 1e-6, "shares sum to {total}");
    }

    #[test]
    fn top_k_truncates() {
        let set = model_set();
        assert_eq!(top_bottlenecks(&set, 64.0, 5).len(), 5);
    }
}
