//! Chaos harness: fuzzed fault injection end-to-end through the pipeline.
//!
//! Each case takes a clean simulated experiment, corrupts it with a
//! [`FaultPlan`] fuzzed from a seed, pushes the wreckage through
//! validate → repair → aggregate → model, and scores the surviving fit
//! against the simulator's noise-free analytic epoch-runtime oracle.
//!
//! A case passes when the pipeline (a) does not panic and (b) either fits a
//! model whose MPE against the oracle stays within [`mpe_bound`] of the
//! clean-input fit, or fails with a *typed* [`ModelingError`] because too
//! little data survived. Anything else — a panic anywhere, or a silently
//! wrecked model — is a defect in the corruption-tolerance story.

use crate::modelset::{build_model_set, ModelSet, ModelSetOptions};
use crate::questions;
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_model::ModelingError;
use extradeep_sim::{ExperimentSpec, FaultPlan, FaultSummary};
use extradeep_trace::{repair_experiment, ExperimentProfiles, MetricKind, RepairCounts};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scales the fitted epoch model is scored at: the five training scales
/// plus one extrapolation point.
pub const EVAL_RANKS: [u32; 6] = [2, 4, 6, 8, 10, 16];

/// The experiment every chaos case corrupts: the paper's five cheap
/// configurations, sized so a seed matrix stays fast while the median
/// stages keep enough samples (4 recorded ranks, 3 repetitions) to outvote
/// a straggler or clock-skewed rank that injection left behind — that
/// statistical defense, not repair, is what absorbs undetectable faults.
pub fn chaos_spec() -> ExperimentSpec {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 3;
    spec.profiler.max_recorded_ranks = 4;
    spec
}

/// Mean percentage error of the fitted epoch-runtime model against the
/// simulator's analytic estimate, over [`EVAL_RANKS`].
pub fn mpe_vs_oracle(spec: &ExperimentSpec, models: &ModelSet) -> f64 {
    let mut sum = 0.0;
    for &r in &EVAL_RANKS {
        let oracle = spec.epoch_seconds_estimate(r);
        let predicted = questions::q1_epoch_seconds(models, r as f64);
        sum += ((predicted - oracle) / oracle).abs();
    }
    100.0 * sum / EVAL_RANKS.len() as f64
}

/// The pass bound for a repaired fit: twice the clean MPE, with a floor of
/// clean + 2 percentage points. The floor matters because the clean fit can
/// land arbitrarily close to the oracle (MPE near zero), where a pure ratio
/// would declare an excellent 1% repaired fit a failure.
pub fn mpe_bound(clean_mpe: f64) -> f64 {
    (2.0 * clean_mpe).max(clean_mpe + 2.0)
}

/// The clean side of every comparison: one uncorrupted simulation and its
/// fit, shared across the whole seed matrix.
pub struct ChaosBaseline {
    pub spec: ExperimentSpec,
    pub profiles: ExperimentProfiles,
    pub clean_mpe: f64,
}

/// Simulates and fits the clean experiment once.
pub fn clean_baseline() -> Result<ChaosBaseline, ModelingError> {
    let _span = extradeep_obs::span("core.chaos_baseline");
    let spec = chaos_spec();
    let profiles = spec.run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())?;
    let clean_mpe = mpe_vs_oracle(&spec, &models);
    Ok(ChaosBaseline {
        spec,
        profiles,
        clean_mpe,
    })
}

/// One chaos case's outcome, self-describing enough for a CI artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosCaseResult {
    pub seed: u64,
    pub plan: FaultPlan,
    /// The pipeline panicked somewhere — always a failure.
    pub panicked: bool,
    pub faults: Option<FaultSummary>,
    pub repair: Option<RepairCounts>,
    pub clean_mpe: f64,
    pub mpe_bound: f64,
    /// MPE of the repaired-input fit, when modeling succeeded.
    pub repaired_mpe: Option<f64>,
    /// The typed modeling error, when too little data survived to fit.
    pub modeling_error: Option<String>,
    pub passed: bool,
}

/// Runs one fuzzed fault plan end-to-end against the shared baseline.
pub fn run_chaos_case(baseline: &ChaosBaseline, seed: u64) -> ChaosCaseResult {
    let _span = extradeep_obs::span("core.chaos_case");
    let plan = FaultPlan::fuzz(seed);
    let bound = mpe_bound(baseline.clean_mpe);
    let mut result = ChaosCaseResult {
        seed,
        plan: plan.clone(),
        panicked: false,
        faults: None,
        repair: None,
        clean_mpe: baseline.clean_mpe,
        mpe_bound: bound,
        repaired_mpe: None,
        modeling_error: None,
        passed: false,
    };

    type CaseRun = (FaultSummary, RepairCounts, Result<ModelSet, ModelingError>);
    let outcome: Result<CaseRun, _> = catch_unwind(AssertUnwindSafe(|| {
        let mut profiles = baseline.profiles.clone();
        let faults = plan.apply(&mut profiles);
        // Byte-level corruption round-trips through the serializer the way
        // the pipeline does with a file: if the corrupted text no longer
        // parses, the in-memory (structurally faulted) copy carries on.
        if plan.corrupt_json_bytes > 0 {
            if let Ok(mut text) = extradeep_trace::json::to_json(&profiles) {
                plan.corrupt_json(&mut text);
                if let Ok(reparsed) = extradeep_trace::json::from_json(&text) {
                    profiles = reparsed;
                }
            }
        }
        let repair = repair_experiment(&mut profiles);
        let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
        let fit = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default());
        (faults, repair.counts, fit)
    }));

    match outcome {
        Err(_) => {
            result.panicked = true;
            extradeep_obs::error!("chaos: seed {seed} panicked");
        }
        Ok((faults, repair, fit)) => {
            result.faults = Some(faults);
            result.repair = Some(repair);
            match fit {
                Ok(models) => {
                    let mpe = mpe_vs_oracle(&baseline.spec, &models);
                    result.passed = mpe <= bound;
                    result.repaired_mpe = Some(mpe);
                }
                Err(e) => {
                    // Degrading to a typed error is an accepted outcome:
                    // the contract is "model or explain", never "panic".
                    result.modeling_error = Some(e.to_string());
                    result.passed = true;
                }
            }
        }
    }
    result
}

/// A whole seed matrix worth of cases.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    pub clean_mpe: f64,
    pub cases: Vec<ChaosCaseResult>,
}

impl ChaosReport {
    /// Runs `seeds` against a fresh baseline.
    pub fn run(seeds: &[u64]) -> Result<ChaosReport, ModelingError> {
        let baseline = clean_baseline()?;
        let cases = seeds
            .iter()
            .map(|&s| run_chaos_case(&baseline, s))
            .collect();
        Ok(ChaosReport {
            clean_mpe: baseline.clean_mpe,
            cases,
        })
    }

    pub fn passed(&self) -> bool {
        self.cases.iter().all(|c| c.passed)
    }

    pub fn any_panicked(&self) -> bool {
        self.cases.iter().any(|c| c.panicked)
    }

    /// Markdown rendering for the CI artifact.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Chaos report\n\n");
        out.push_str(&format!(
            "Clean-input epoch-model MPE vs oracle: {:.2}% — {} case(s), {} passed\n\n",
            self.clean_mpe,
            self.cases.len(),
            self.cases.iter().filter(|c| c.passed).count()
        ));
        out.push_str(
            "| Seed | Faults | Quarantined | Reconstructed | Repaired MPE | Bound | Outcome |\n",
        );
        out.push_str("|---:|---:|---:|---:|---:|---:|---|\n");
        for c in &self.cases {
            let outcome = if c.panicked {
                "💥 PANIC".to_string()
            } else if let Some(e) = &c.modeling_error {
                format!("typed error: {e}")
            } else if c.passed {
                "✅".to_string()
            } else {
                "❌ over bound".to_string()
            };
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {:.2}% | {} |\n",
                c.seed,
                c.faults.map_or(0, |f| f.total()),
                c.repair.map_or(0, |r| r.ranks_quarantined),
                c.repair.map_or(0, |r| r.marks_reconstructed),
                c.repaired_mpe
                    .map_or_else(|| "—".to_string(), |m| format!("{m:.2}%")),
                c.mpe_bound,
                outcome
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_has_an_absolute_floor() {
        assert!((mpe_bound(0.1) - 2.1).abs() < 1e-12);
        assert!((mpe_bound(5.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn clean_baseline_fits_the_oracle() {
        let baseline = clean_baseline().unwrap();
        assert!(
            baseline.clean_mpe < 25.0,
            "clean MPE {:.2}% — the oracle comparison itself is broken",
            baseline.clean_mpe
        );
    }

    #[test]
    fn chaos_case_is_deterministic() {
        let baseline = clean_baseline().unwrap();
        let a = run_chaos_case(&baseline, 3);
        let b = run_chaos_case(&baseline, 3);
        assert_eq!(a.repaired_mpe, b.repaired_mpe);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.passed, b.passed);
    }
}
