//! Building the full set of models from an aggregated experiment: one model
//! per (kernel × metric) plus the application models (paper Fig. 1 step 4:
//! "calltree: kernel models" and "collectives: application models").

use extradeep_agg::{AggregatedExperiment, AppCategory, KernelId};
use extradeep_model::{Model, ModelerOptions, ModelingError, SearchEngine};
use extradeep_trace::MetricKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The application-level models (Eqs. 6, 8-10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModels {
    /// Training time (or other metric) per epoch, all categories summed.
    pub epoch: Model,
    pub computation: Model,
    pub communication: Model,
    pub memory_ops: Model,
}

impl AppModels {
    pub fn category(&self, cat: AppCategory) -> &Model {
        match cat {
            AppCategory::Computation => &self.computation,
            AppCategory::Communication => &self.communication,
            AppCategory::MemoryOps => &self.memory_ops,
        }
    }
}

/// All models created for one experiment and metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSet {
    pub metric: MetricKind,
    pub app: AppModels,
    /// Per-kernel models, keyed by kernel identity.
    pub kernels: BTreeMap<KernelId, Model>,
    /// Kernels that passed the config filter but could not be modeled
    /// (degenerate data), with the reason.
    pub failed: BTreeMap<KernelId, ModelingError>,
}

/// Options for model building.
#[derive(Debug, Clone)]
pub struct ModelSetOptions {
    /// Options for the (many) per-kernel models: single-term search.
    pub modeler: ModelerOptions,
    /// Options for the four application models. Application phases can mix
    /// opposing trends — e.g. validation work strong-scales (`~1/x`) while
    /// communication grows — so the application search allows two compound
    /// terms and negative exponents by default.
    pub app_modeler: ModelerOptions,
    /// Minimum configurations a kernel must appear in (paper: 5).
    pub min_configs: usize,
}

fn default_app_modeler() -> ModelerOptions {
    let mut opts = ModelerOptions::strong_scaling();
    opts.search_space = opts.search_space.with_max_terms(2);
    opts
}

impl Default for ModelSetOptions {
    fn default() -> Self {
        ModelSetOptions {
            modeler: ModelerOptions::default(),
            app_modeler: default_app_modeler(),
            min_configs: extradeep_model::MIN_MEASUREMENT_POINTS,
        }
    }
}

impl ModelSetOptions {
    pub fn strong_scaling() -> Self {
        ModelSetOptions {
            modeler: ModelerOptions::strong_scaling(),
            ..Default::default()
        }
    }
}

/// Builds the application models for one metric.
pub fn build_app_models(
    agg: &AggregatedExperiment,
    metric: MetricKind,
    options: &ModelSetOptions,
) -> Result<AppModels, ModelingError> {
    let _span = extradeep_obs::span("core.app_models");
    // One engine serves all four application models: the hypothesis-shape
    // list of the (wider, two-term) application space is generated once.
    let engine = SearchEngine::new(options.app_modeler.clone());
    let fit = |cat: Option<AppCategory>| -> Result<Model, ModelingError> {
        engine.model(&agg.app_dataset(metric, cat))
    };
    Ok(AppModels {
        epoch: fit(None)?,
        computation: fit(Some(AppCategory::Computation))?,
        communication: fit(Some(AppCategory::Communication))?,
        memory_ops: fit(Some(AppCategory::MemoryOps))?,
    })
}

/// Builds all kernel and application models for one metric, in parallel.
pub fn build_model_set(
    agg: &AggregatedExperiment,
    metric: MetricKind,
    options: &ModelSetOptions,
) -> Result<ModelSet, ModelingError> {
    let _span = extradeep_obs::span("core.model_set");
    let app = build_app_models(agg, metric, options)?;
    let kernels_to_model = agg.modelable_kernels(options.min_configs);

    // One shared engine across the (potentially hundreds of) kernel models:
    // the search space is expanded into hypothesis shapes exactly once.
    // Dataset extraction is cheap and sequential; the expensive hypothesis
    // search is sharded across models by `model_batch` (one rayon task per
    // kernel — the within-model search itself is single-threaded, so the
    // pool parallelizes across kernels instead of inside one search).
    let engine = SearchEngine::new(options.modeler.clone());
    let datasets: Vec<_> = kernels_to_model
        .iter()
        .map(|id| {
            let _span = extradeep_obs::span("core.kernel_dataset");
            agg.kernel_dataset(id, metric)
        })
        .collect();
    let fitted = {
        let _span = extradeep_obs::span("core.kernel_models");
        engine.model_batch(&datasets)
    };

    let mut kernels = BTreeMap::new();
    let mut failed = BTreeMap::new();
    for (id, res) in kernels_to_model.into_iter().zip(fitted) {
        match res {
            Ok(m) => {
                kernels.insert(id, m);
            }
            Err(e) => {
                failed.insert(id, e);
            }
        }
    }
    Ok(ModelSet {
        metric,
        app,
        kernels,
        failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_agg::{aggregate_experiment, AggregationOptions};
    use extradeep_sim::{ExperimentSpec, ProfilerOptions};

    fn small_experiment() -> AggregatedExperiment {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
        spec.repetitions = 2;
        spec.profiler = ProfilerOptions {
            max_recorded_ranks: 2,
            ..Default::default()
        };
        aggregate_experiment(&spec.run(), &AggregationOptions::default())
    }

    #[test]
    fn builds_app_and_kernel_models() {
        let agg = small_experiment();
        let set = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
        assert!(
            set.kernels.len() > 30,
            "only {} kernel models",
            set.kernels.len()
        );
        assert!(set.failed.is_empty(), "failed: {:?}", set.failed);
        // The epoch model predicts growth with scale under weak scaling.
        let m = &set.app.epoch;
        assert!(m.predict_at(64.0) > m.predict_at(2.0));
    }

    #[test]
    fn communication_model_grows_fastest() {
        let agg = small_experiment();
        let set = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
        let comm_growth =
            set.app.communication.predict_at(64.0) / set.app.communication.predict_at(2.0);
        let comp_growth =
            set.app.computation.predict_at(64.0) / set.app.computation.predict_at(2.0);
        assert!(
            comm_growth > comp_growth,
            "comm x{comm_growth:.2} vs comp x{comp_growth:.2}: the paper's \
             bottleneck analysis hinges on communication growing faster"
        );
    }

    #[test]
    fn visits_models_exist_and_are_near_constant_under_weak_scaling() {
        let agg = small_experiment();
        let set = build_model_set(&agg, MetricKind::Visits, &ModelSetOptions::default()).unwrap();
        let allreduce = set
            .kernels
            .iter()
            .find(|(id, _)| id.name == "MPI_Allreduce")
            .map(|(_, m)| m)
            .expect("allreduce visits model");
        // Weak scaling: steps/epoch constant, so visits/epoch barely move.
        let ratio = allreduce.predict_at(64.0) / allreduce.predict_at(2.0);
        assert!((0.5..2.0).contains(&ratio), "visits ratio {ratio}");
    }
}
