//! # extradeep
//!
//! The Extra-Deep framework facade (Ritter & Wolf, SC-W 2023): automated
//! empirical performance modeling for distributed deep learning.
//!
//! The pipeline mirrors the paper's Fig. 1:
//!
//! 1. **Instrument** Python sources with NVTX (`extradeep-instrument`).
//! 2. **Profile** a few small-scale configurations — here against the
//!    simulated cluster substrate (`extradeep-sim`) using the efficient
//!    sampling strategy (five steps of two epochs).
//! 3. **Preprocess** the profiles into per-kernel, per-category derived
//!    epoch metrics (`extradeep-agg`).
//! 4. **Model** every kernel and the application phases with the PMNF
//!    (`extradeep-model`), selected by cross-validated SMAPE.
//! 5. **Analyze** scalability, bottlenecks, efficiency, and cost, and find
//!    cost-effective training configurations (this crate).
//!
//! ```
//! use extradeep::prelude::*;
//!
//! // Model the CIFAR-10 case study from five cheap measurements.
//! let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
//! spec.repetitions = 2;
//! spec.profiler.max_recorded_ranks = 2;
//! let profiles = spec.run();
//! let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
//! let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
//! // Q1: predicted training time per epoch at 40 ranks.
//! let t40 = models.app.epoch.predict_at(40.0);
//! assert!(t40 > 0.0);
//! ```

pub mod analysis;
pub mod campaign;
pub mod chaos;
pub mod cli;
pub mod doctor;
pub mod evaluate;
pub mod experiment;
pub mod inspect;
pub mod modelset;
pub mod persist;
pub mod questions;
pub mod report;
pub mod selfprofile;
pub mod tail;

/// The self-profiling runtime, re-exported so binaries and downstream users
/// reach spans, counters, and the `error!`/`warn!`/`info!`/`debug!` macros
/// through one crate.
pub use extradeep_obs as obs;

pub use analysis::{
    efficiency_model, efficiency_series, find_cost_effective, rank_by_growth, speedup_model,
    speedup_series, top_bottlenecks, Candidate, Constraints, CostModel, RankedKernel, SearchResult,
};
pub use campaign::{
    default_campaign_dir, replay_manifest, run_campaign, CampaignError, CampaignReport,
    CampaignSpec, CellMetrics, CellReport, CellSpec, ManifestRecord, ManifestReplay,
    QuarantineEntry, RunOptions,
};
pub use chaos::{
    clean_baseline, mpe_bound, run_chaos_case, ChaosBaseline, ChaosCaseResult, ChaosReport,
};
pub use doctor::{
    validate_against, validate_at_scales, validate_model, DoctorReport, DoctorThresholds,
    ModelValidation, QualityFlag,
};
pub use evaluate::{mpe, mpe_at_scale, point_errors, AccuracyReport, PointError};
pub use experiment::{deep_point_sets, jureca_point_sets, ExperimentOutcome, ExperimentPlan};
pub use inspect::{
    inspect_experiment, ConfigInspection, InspectOptions, InspectionReport, MetricTrend,
};
pub use modelset::{build_app_models, build_model_set, AppModels, ModelSet, ModelSetOptions};
pub use persist::{load_models, models_from_json, models_to_json, save_models, PersistError};
pub use selfprofile::{self_profile_config, self_profile_experiment, SELF_PARAMETER};
pub use tail::{follow_stream, parse_stream, FollowOptions, TelemetryStream};

/// Common imports for downstream users.
pub mod prelude {
    pub use crate::analysis::{Constraints, CostModel};
    pub use crate::evaluate::AccuracyReport;
    pub use crate::experiment::{deep_point_sets, jureca_point_sets, ExperimentPlan};
    pub use crate::modelset::{build_model_set, ModelSet, ModelSetOptions};
    pub use crate::questions;
    pub use extradeep_agg::{aggregate_experiment, AggregationOptions};
    pub use extradeep_model::{Model, ModelerOptions};
    pub use extradeep_sim::{
        Benchmark, ExperimentSpec, ParallelStrategy, ProfilerOptions, ScalingMode, SyncMode,
        SystemConfig,
    };
    pub use extradeep_trace::MetricKind;
}
