//! The workload observatory: cross-scale imbalance, overlap, and
//! critical-path analysis of an experiment's traces.
//!
//! `trace::timeline` analyzes one configuration profile at a time; this
//! module runs it over every `(configuration, repetition)` of an
//! [`ExperimentProfiles`], condenses the per-repetition analyses into
//! per-configuration medians, and then closes the loop with the paper:
//! it fits PMNF growth models to the derived health metrics across rank
//! counts (reusing [`SearchEngine`]), so `extradeep inspect` can answer
//! not just "is this run imbalanced?" but "does the imbalance *grow* with
//! scale?" — the question that separates a noisy node from a scalability
//! bug.

use crate::report::{fmt, pct, Table};
use extradeep_model::{ModelerOptions, SearchEngine};
use extradeep_trace::{
    analyze_config, ExperimentProfiles, KernelImbalance, TimelineAnalysis, SKEW_NOTE_THRESHOLD,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Observatory options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InspectOptions {
    /// Rows shown in the per-kernel imbalance table.
    pub top: usize,
    /// Scale at which metric trends are extrapolated (defaults to 4x the
    /// largest measured scale).
    pub predict_at: Option<f64>,
}

impl Default for InspectOptions {
    fn default() -> Self {
        InspectOptions {
            top: 5,
            predict_at: None,
        }
    }
}

/// Condensed observatory result for one measurement configuration:
/// medians across its repetitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigInspection {
    pub config_id: String,
    /// First configuration coordinate (the rank count).
    pub scale: f64,
    pub repetitions: usize,
    pub recorded_ranks: usize,
    pub compute_fraction: f64,
    pub comm_fraction: f64,
    pub memory_fraction: f64,
    pub idle_fraction: f64,
    pub overlap_fraction: f64,
    /// Median (across reps) of the median per-step skew.
    pub step_skew: f64,
    pub max_step_skew: f64,
    pub critical_path_seconds: f64,
    pub critical_path_inflation: f64,
    pub max_span_seconds: f64,
    /// Rank with the largest accumulated step excess (summed over reps),
    /// with that total — the configuration's straggler candidate.
    pub top_rank: Option<u32>,
    pub top_rank_excess_seconds: f64,
    /// Worst kernels by cross-rank excess (from the first repetition).
    pub top_kernels: Vec<KernelImbalance>,
}

/// A PMNF growth model fitted to one observatory metric across scales.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricTrend {
    pub metric: String,
    /// Human-readable fitted function, or the reason no model exists.
    pub function: String,
    pub big_o: Option<String>,
    /// `(scale, median value)` per configuration, ascending by scale.
    pub per_config: Vec<(f64, f64)>,
    /// `(scale, predicted value)` at the extrapolation point.
    pub prediction: Option<(f64, f64)>,
    /// Whether the fitted model keeps growing past the measured range
    /// (>5% increase from the largest measured scale to the prediction
    /// point) — the "does imbalance grow with rank count?" verdict.
    pub growing: bool,
}

/// The full observatory report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InspectionReport {
    pub configs: Vec<ConfigInspection>,
    pub trends: Vec<MetricTrend>,
    /// Ranks flagged as straggler candidates: top imbalance contributor of
    /// a configuration whose worst step skew clears the overlay threshold.
    pub flagged_ranks: Vec<u32>,
    /// Filled by the CLI when `--inject-faults` targeted specific ranks,
    /// so artifacts carry injected-vs-flagged side by side (the CI smoke
    /// job asserts they agree).
    pub injected_straggler_ranks: Vec<u32>,
}

fn median_of(mut values: Vec<f64>) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// The metrics the observatory fits growth models to, with extractors.
const METRICS: &[(&str, fn(&TimelineAnalysis) -> f64)] = &[
    ("step_skew", |a| a.step_skew),
    ("max_step_skew", |a| a.max_step_skew),
    ("overlap_fraction", |a| a.overlap_fraction),
    ("comm_fraction", |a| a.comm_fraction),
    ("idle_fraction", |a| a.idle_fraction),
    ("critical_path_s", |a| a.critical_path_seconds),
    ("cp_inflation", |a| a.critical_path_inflation()),
];

/// The observatory's modeler: the app-model search options (strong-scaling
/// search space, at most two terms) work for derived metric series too.
fn trend_modeler() -> ModelerOptions {
    let mut opts = ModelerOptions::strong_scaling();
    opts.search_space = opts.search_space.with_max_terms(2);
    opts
}

fn condense(
    config_id: String,
    scale: f64,
    analyses: &[TimelineAnalysis],
    top: usize,
) -> ConfigInspection {
    let med = |f: fn(&TimelineAnalysis) -> f64| median_of(analyses.iter().map(f).collect());
    // Straggler candidate: the rank with the largest step excess summed
    // over repetitions (robust against a single noisy rep).
    let mut excess: BTreeMap<u32, f64> = BTreeMap::new();
    for a in analyses {
        for r in &a.rank_excess {
            *excess.entry(r.rank).or_insert(0.0) += r.excess_seconds;
        }
    }
    let top_entry = excess
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(&r, &e)| (r, e));
    let top_kernels = analyses
        .first()
        .map(|a| a.kernels.iter().take(top).cloned().collect())
        .unwrap_or_default();
    ConfigInspection {
        config_id,
        scale,
        repetitions: analyses.len(),
        recorded_ranks: analyses.first().map(|a| a.ranks.len()).unwrap_or(0),
        compute_fraction: med(|a| a.compute_fraction),
        comm_fraction: med(|a| a.comm_fraction),
        memory_fraction: med(|a| a.memory_fraction),
        idle_fraction: med(|a| a.idle_fraction),
        overlap_fraction: med(|a| a.overlap_fraction),
        step_skew: med(|a| a.step_skew),
        max_step_skew: med(|a| a.max_step_skew),
        critical_path_seconds: med(|a| a.critical_path_seconds),
        critical_path_inflation: med(|a| a.critical_path_inflation()),
        max_span_seconds: med(|a| a.max_span_seconds),
        top_rank: top_entry.map(|(r, _)| r),
        top_rank_excess_seconds: top_entry.map(|(_, e)| e).unwrap_or(0.0),
        top_kernels,
    }
}

/// Runs the observatory over an experiment: per-config timeline analyses,
/// condensed medians, straggler flags, and cross-scale metric trends.
pub fn inspect_experiment(
    profiles: &ExperimentProfiles,
    options: &InspectOptions,
) -> InspectionReport {
    let _span = extradeep_obs::span("core.inspect_experiment");
    // Analyses grouped by configuration, keyed by id (scales can repeat
    // across parameterizations; ids cannot).
    let mut by_config: BTreeMap<String, (f64, Vec<TimelineAnalysis>)> = BTreeMap::new();
    let mut total_ranks = 0u64;
    for p in &profiles.profiles {
        let a = analyze_config(p);
        total_ranks += a.ranks.len() as u64;
        by_config
            .entry(p.config.id())
            .or_insert_with(|| (a.scale, Vec::new()))
            .1
            .push(a);
    }
    extradeep_obs::counter("inspect.configs").add(by_config.len() as u64);
    extradeep_obs::counter("inspect.ranks").add(total_ranks);

    let mut configs: Vec<ConfigInspection> = by_config
        .iter()
        .map(|(id, (scale, analyses))| condense(id.clone(), *scale, analyses, options.top))
        .collect();
    configs.sort_by(|a, b| {
        a.scale
            .total_cmp(&b.scale)
            .then(a.config_id.cmp(&b.config_id))
    });

    let mut flagged: Vec<u32> = configs
        .iter()
        .filter(|c| c.max_step_skew >= SKEW_NOTE_THRESHOLD)
        .filter_map(|c| c.top_rank)
        .collect();
    flagged.sort_unstable();
    flagged.dedup();

    // --- Metric trends across scales. ---
    let scales: Vec<f64> = configs.iter().map(|c| c.scale).collect();
    let max_scale = scales.iter().copied().fold(0.0, f64::max);
    let predict_at = options.predict_at.unwrap_or(max_scale * 4.0);
    let engine = SearchEngine::new(trend_modeler());
    let trends = {
        let _span = extradeep_obs::span("core.inspect_trends");
        METRICS
            .iter()
            .map(|&(name, extract)| {
                let points: Vec<(f64, Vec<f64>)> = by_config
                    .values()
                    .map(|(scale, analyses)| (*scale, analyses.iter().map(extract).collect()))
                    .collect();
                let per_config: Vec<(f64, f64)> = configs
                    .iter()
                    .map(|c| {
                        let (_, analyses) = &by_config[&c.config_id];
                        (c.scale, median_of(analyses.iter().map(extract).collect()))
                    })
                    .collect();
                match engine.model_series("ranks", &points) {
                    Ok(model) => {
                        let at_max = model.predict_at(max_scale);
                        let predicted = model.predict_at(predict_at);
                        MetricTrend {
                            metric: name.to_string(),
                            function: model.formatted(),
                            big_o: Some(model.big_o()),
                            per_config,
                            prediction: Some((predict_at, predicted)),
                            growing: predicted > at_max * 1.05 + 1e-12,
                        }
                    }
                    Err(e) => MetricTrend {
                        metric: name.to_string(),
                        function: format!("unmodelable ({e})"),
                        big_o: None,
                        per_config,
                        prediction: None,
                        growing: false,
                    },
                }
            })
            .collect()
    };

    InspectionReport {
        configs,
        trends,
        flagged_ranks: flagged,
        injected_straggler_ranks: Vec::new(),
    }
}

impl InspectionReport {
    /// The worst configuration by maximum step skew (for trace overlays).
    pub fn worst_config(&self) -> Option<&ConfigInspection> {
        self.configs
            .iter()
            .max_by(|a, b| a.max_step_skew.total_cmp(&b.max_step_skew))
    }

    /// One-line workload-health summary (the doctor report hook).
    pub fn health_line(&self) -> String {
        let skew = median_of(self.configs.iter().map(|c| c.step_skew).collect());
        let idle = median_of(self.configs.iter().map(|c| c.idle_fraction).collect());
        let overlap = median_of(self.configs.iter().map(|c| c.overlap_fraction).collect());
        let stragglers = if self.flagged_ranks.is_empty() {
            "no straggler".to_string()
        } else {
            format!("straggler rank(s) {:?}", self.flagged_ranks)
        };
        format!(
            "Workload: median step skew {skew:.2}x, idle {}, comm overlap {}, {stragglers}",
            pct(idle * 100.0),
            pct(overlap * 100.0)
        )
    }

    /// Renders the terminal report.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        out.push_str("== Workload observatory ==\n\n");
        out.push_str("Per-configuration breakdown (medians across repetitions):\n");
        let mut t = Table::new(&[
            "config",
            "ranks",
            "comm %",
            "idle %",
            "overlap %",
            "step skew",
            "max skew",
            "crit path [s]",
            "cp infl",
            "straggler",
        ]);
        for c in &self.configs {
            t.add_row(vec![
                c.config_id.clone(),
                fmt(c.scale, 0),
                pct(c.comm_fraction * 100.0),
                pct(c.idle_fraction * 100.0),
                pct(c.overlap_fraction * 100.0),
                format!("{:.2}x", c.step_skew),
                format!("{:.2}x", c.max_step_skew),
                fmt(c.critical_path_seconds, 3),
                format!("{:.2}x", c.critical_path_inflation),
                c.top_rank
                    .map(|r| format!("r{r}"))
                    .unwrap_or_else(|| "-".to_string()),
            ]);
        }
        out.push_str(&t.render());

        out.push_str("\nMetric growth models (PMNF over rank count):\n");
        let mut t = Table::new(&["metric", "model", "growth", "predicted", "growing?"]);
        for tr in &self.trends {
            t.add_row(vec![
                tr.metric.clone(),
                tr.function.clone(),
                tr.big_o.clone().unwrap_or_else(|| "-".to_string()),
                tr.prediction
                    .map(|(at, v)| format!("{v:.3} @ {at:.0}"))
                    .unwrap_or_else(|| "-".to_string()),
                if tr.growing { "yes" } else { "no" }.to_string(),
            ]);
        }
        out.push_str(&t.render());

        if let Some(worst) = self.worst_config() {
            if !worst.top_kernels.is_empty() {
                out.push_str(&format!(
                    "\nWorst kernels by cross-rank excess ({}):\n",
                    worst.config_id
                ));
                let mut t = Table::new(&["kernel", "median [s]", "max [s]", "skew", "rank"]);
                for k in worst.top_kernels.iter().take(top) {
                    t.add_row(vec![
                        k.name.clone(),
                        fmt(k.median_seconds, 4),
                        fmt(k.max_seconds, 4),
                        format!("{:.2}x", k.skew),
                        format!("r{}", k.slowest_rank),
                    ]);
                }
                out.push_str(&t.render());
            }
        }

        out.push('\n');
        if !self.injected_straggler_ranks.is_empty() {
            out.push_str(&format!(
                "Injected straggler rank(s): {:?}\n",
                self.injected_straggler_ranks
            ));
        }
        if self.flagged_ranks.is_empty() {
            out.push_str("No straggler candidates flagged.\n");
        } else {
            out.push_str(&format!(
                "Straggler candidates flagged: {:?}\n",
                self.flagged_ranks
            ));
        }
        out
    }

    /// Renders the report as Markdown (the `--markdown` artifact).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Workload observatory\n\n");
        out.push_str("## Per-configuration breakdown\n\n");
        out.push_str(
            "| Config | Ranks | Comm % | Idle % | Overlap % | Step skew | Max skew | \
             Critical path [s] | CP inflation | Straggler |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
        for c in &self.configs {
            out.push_str(&format!(
                "| {} | {:.0} | {} | {} | {} | {:.2}x | {:.2}x | {:.3} | {:.2}x | {} |\n",
                c.config_id,
                c.scale,
                pct(c.comm_fraction * 100.0),
                pct(c.idle_fraction * 100.0),
                pct(c.overlap_fraction * 100.0),
                c.step_skew,
                c.max_step_skew,
                c.critical_path_seconds,
                c.critical_path_inflation,
                c.top_rank
                    .map(|r| format!("r{r}"))
                    .unwrap_or_else(|| "-".to_string()),
            ));
        }
        out.push_str("\n## Metric growth models\n\n");
        out.push_str("| Metric | Model | Growth | Predicted | Growing? |\n|---|---|---|---|---|\n");
        for tr in &self.trends {
            out.push_str(&format!(
                "| {} | `{}` | {} | {} | {} |\n",
                tr.metric,
                tr.function,
                tr.big_o.as_deref().unwrap_or("-"),
                tr.prediction
                    .map(|(at, v)| format!("{v:.3} @ {at:.0}"))
                    .unwrap_or_else(|| "-".to_string()),
                if tr.growing { "yes" } else { "no" },
            ));
        }
        out.push('\n');
        if !self.injected_straggler_ranks.is_empty() {
            out.push_str(&format!(
                "Injected straggler rank(s): {:?}\n\n",
                self.injected_straggler_ranks
            ));
        }
        if self.flagged_ranks.is_empty() {
            out.push_str("No straggler candidates flagged.\n");
        } else {
            out.push_str(&format!(
                "Straggler candidates flagged: {:?}\n",
                self.flagged_ranks
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_sim::ExperimentSpec;

    fn experiment(reps: u32) -> ExperimentProfiles {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
        spec.repetitions = reps;
        spec.profiler.max_recorded_ranks = 4;
        spec.run()
    }

    #[test]
    fn inspects_every_configuration_and_fits_trends() {
        let report = inspect_experiment(&experiment(2), &InspectOptions::default());
        assert_eq!(report.configs.len(), 5);
        assert!(report.configs.windows(2).all(|w| w[0].scale <= w[1].scale));
        for c in &report.configs {
            assert_eq!(c.repetitions, 2);
            assert!(c.comm_fraction > 0.0, "{}: no communication", c.config_id);
            assert!(c.step_skew >= 1.0);
            assert!(c.critical_path_seconds > 0.0);
            assert!(!c.top_kernels.is_empty());
        }
        assert_eq!(report.trends.len(), METRICS.len());
        // Communication share grows with scale in the weak-scaling case
        // study, and five scales are enough to model it.
        let comm = report
            .trends
            .iter()
            .find(|t| t.metric == "comm_fraction")
            .unwrap();
        assert!(
            comm.big_o.is_some(),
            "comm trend unmodelable: {}",
            comm.function
        );
        assert_eq!(comm.per_config.len(), 5);
    }

    #[test]
    fn clean_runs_flag_no_stragglers_and_render() {
        let report = inspect_experiment(&experiment(1), &InspectOptions::default());
        // BSP with the default noise profile stays well under the 1.2x
        // overlay threshold at these scales.
        assert!(
            report.flagged_ranks.is_empty(),
            "{:?}",
            report.flagged_ranks
        );
        let text = report.render(5);
        assert!(text.contains("Workload observatory"));
        assert!(text.contains("step skew"));
        assert!(text.contains("No straggler candidates"));
        let md = report.render_markdown();
        assert!(md.starts_with("# Workload observatory"));
        assert!(md.contains("| Metric | Model |"));
        assert!(report.health_line().contains("median step skew"));
    }

    #[test]
    fn injected_straggler_is_flagged_and_attributed() {
        let mut profiles = experiment(1);
        let plan = extradeep_sim::FaultPlan {
            straggler_rank: Some(1),
            straggler_factor: 3.0,
            ..Default::default()
        };
        let (_, log) = plan.apply_detailed(&mut profiles);
        let mut report = inspect_experiment(&profiles, &InspectOptions::default());
        report.injected_straggler_ranks = log.straggler_ranks();
        assert_eq!(report.injected_straggler_ranks, vec![1]);
        assert_eq!(report.flagged_ranks, vec![1], "straggler not attributed");
        for c in &report.configs {
            assert_eq!(c.top_rank, Some(1), "{}", c.config_id);
            // With two ranks the median is the midpoint of fast and slow, so
            // a 3x straggler caps the skew at 1.5; three or more recorded
            // ranks keep the median at the fast side and the skew near 3x.
            let floor = if c.scale > 2.0 { 2.0 } else { 1.4 };
            assert!(
                c.max_step_skew > floor,
                "{}: skew {}",
                c.config_id,
                c.max_step_skew
            );
        }
        let text = report.render(5);
        assert!(text.contains("Straggler candidates flagged: [1]"));
        assert!(text.contains("Injected straggler rank(s): [1]"));
    }

    #[test]
    fn empty_experiment_degrades_gracefully() {
        let report = inspect_experiment(&ExperimentProfiles::new(), &InspectOptions::default());
        assert!(report.configs.is_empty());
        assert!(report.flagged_ranks.is_empty());
        assert!(report.worst_config().is_none());
        // Trends exist but are unmodelable on zero points.
        assert!(report.trends.iter().all(|t| t.big_o.is_none()));
        let _ = report.render(5);
        let _ = report.render_markdown();
    }
}
