//! `extradeep tail`: parse and render a telemetry stream.
//!
//! The sampler in `extradeep-obs` writes JSON-Lines telemetry (see
//! `extradeep_obs::export` for the schema); this module reads such a stream
//! — recorded, or still being written, since the sampler flushes every
//! interval — and renders it for a terminal: a phase timeline of top-level
//! spans, a counter rate table, and RSS/CPU sparklines from the resource
//! samples.
//!
//! Parsing is hand-rolled (a ~150-line recursive-descent JSON reader) so
//! the tail path has the same zero-dependency property as the emitting
//! side: it works in stripped-down environments where serde is unavailable,
//! and it is guaranteed to accept exactly what `TelemetryWriter` produces.
//! Malformed or truncated lines (a live stream can end mid-record) are
//! counted, never fatal; unknown record types are skipped, keeping the
//! reader forward-compatible with schema additions.

use extradeep_obs::{CounterValue, HistogramSummary, ResourceSample, Snapshot, SpanRecord};
use extradeep_trace::units::ns_to_secs;
use std::borrow::Cow;
use std::collections::BTreeMap;

// --- Minimal JSON value parser ------------------------------------------

/// A parsed JSON value. Objects keep insertion order in a `Vec` — the
/// telemetry reader only ever looks keys up linearly, and avoiding a hash
/// map keeps iteration deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn u64_field(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(Json::as_u64)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced pos itself
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    if let Some(ch) = text.chars().next() {
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let v = u32::from_str_radix(digits, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    /// Called with `pos` on the `u`; leaves `pos` after the escape.
    fn unicode_escape(&mut self) -> Result<char, String> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // Surrogate pair: expect "\uXXXX" low half.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                self.pos += 2;
                let lo = self.hex4()?;
                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                return char::from_u32(cp).ok_or_else(|| "bad surrogate pair".to_string());
            }
            return Err("lone high surrogate".to_string());
        }
        char::from_u32(hi).ok_or_else(|| "bad \\u escape".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        token
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{token}'"))
    }
}

// --- Telemetry stream model ---------------------------------------------

/// The `meta` header record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Meta {
    pub version: u64,
    pub pid: u64,
    pub interval_ms: u64,
    pub journal_capacity: u64,
    pub budget_ms: Option<u64>,
}

/// One periodic `snapshot` record (cumulative counters/histograms,
/// per-interval span aggregates).
#[derive(Debug, Clone, Default)]
pub struct SnapshotRec {
    pub seq: u64,
    pub t_ns: u64,
    pub journal_dropped: u64,
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSummary>,
    /// `(name, count, total_ns)` for spans finished in this interval.
    pub spans: Vec<(String, u64, u64)>,
}

/// One `stall` record from the watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallRec {
    pub name: String,
    pub tid: u64,
    pub t_ns: u64,
    pub active_ns: u64,
    pub budget_ns: u64,
}

/// One `log` record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRec {
    pub level: String,
    pub message: String,
    pub t_ns: u64,
}

/// Everything read out of one telemetry stream.
#[derive(Debug, Clone, Default)]
pub struct TelemetryStream {
    pub meta: Option<Meta>,
    /// Spans reconstructed from `span`/`end` records, in arrival order.
    pub spans: Vec<SpanRecord>,
    /// Spans that began but never ended in the stream (still running, or
    /// the stream was cut): `(name, tid, depth, begin t_ns)`.
    pub unclosed: Vec<(String, u64, u32, u64)>,
    pub samples: Vec<ResourceSample>,
    pub snapshots: Vec<SnapshotRec>,
    pub stalls: Vec<StallRec>,
    pub logs: Vec<LogRec>,
    /// Total counter deltas seen in `counter` records, by name.
    pub counter_deltas: BTreeMap<String, u64>,
    /// Lines that failed to parse (truncated tail of a live file, noise).
    pub malformed_lines: usize,
    /// Records with an unknown `type` (schema from a newer writer).
    pub unknown_records: usize,
    /// Total lines consumed.
    pub lines: usize,
}

fn histogram_from_json(v: &Json) -> Option<HistogramSummary> {
    let mut h = HistogramSummary::empty(v.get("name")?.as_str()?);
    h.count = v.u64_field("count")?;
    h.sum = v.u64_field("sum")?;
    h.max = v.u64_field("max")?;
    h.p50 = v.u64_field("p50")?;
    h.p95 = v.u64_field("p95")?;
    for b in v.get("buckets")?.as_arr()? {
        let pair = b.as_arr()?;
        if pair.len() == 2 {
            h.buckets
                .push((pair[0].as_u64()? as u32, pair[1].as_u64()?));
        }
    }
    Some(h)
}

fn snapshot_rec_from_json(v: &Json) -> Option<SnapshotRec> {
    let mut rec = SnapshotRec {
        seq: v.u64_field("seq")?,
        t_ns: v.u64_field("t_ns")?,
        journal_dropped: v.u64_field("journal_dropped").unwrap_or(0),
        ..SnapshotRec::default()
    };
    if let Some(Json::Obj(fields)) = v.get("counters") {
        for (name, value) in fields {
            rec.counters.push((name.clone(), value.as_u64()?));
        }
    }
    if let Some(hists) = v.get("histograms").and_then(Json::as_arr) {
        for h in hists {
            rec.histograms.push(histogram_from_json(h)?);
        }
    }
    if let Some(spans) = v.get("spans").and_then(Json::as_arr) {
        for s in spans {
            rec.spans.push((
                s.get("name")?.as_str()?.to_string(),
                s.u64_field("count")?,
                s.u64_field("total_ns")?,
            ));
        }
    }
    Some(rec)
}

/// Parses a whole telemetry stream. Never fails: a malformed line (e.g. the
/// cut-off last line of a live file) increments `malformed_lines` and is
/// skipped.
pub fn parse_stream(text: &str) -> TelemetryStream {
    let mut out = TelemetryStream::default();
    for line in text.lines() {
        out.ingest_line(line);
    }
    out
}

impl TelemetryStream {
    /// Feeds one line into the stream. This is the incremental core behind
    /// [`parse_stream`] and the live [`follow_stream`] path: a follower holds
    /// back the partial trailing line of a growing file and only ingests
    /// complete lines, so truncation noise shows up as `malformed_lines`
    /// exactly once (at end of stream) instead of once per poll.
    pub fn ingest_line(&mut self, line: &str) {
        let out = self;
        if line.trim().is_empty() {
            return;
        }
        out.lines += 1;
        let Ok(v) = Json::parse(line) else {
            out.malformed_lines += 1;
            return;
        };
        let parsed = match v.get("type").and_then(Json::as_str) {
            Some("meta") => (|| {
                out.meta = Some(Meta {
                    version: v.u64_field("version")?,
                    pid: v.u64_field("pid")?,
                    interval_ms: v.u64_field("interval_ms")?,
                    journal_capacity: v.u64_field("journal_capacity")?,
                    budget_ms: v.u64_field("budget_ms"),
                });
                Some(())
            })(),
            Some("span") => (|| {
                let name = v.get("name")?.as_str()?.to_string();
                let tid = v.u64_field("tid")?;
                let depth = v.u64_field("depth")? as u32;
                let t_ns = v.u64_field("t_ns")?;
                match v.get("event")?.as_str()? {
                    "begin" => out.unclosed.push((name, tid, depth, t_ns)),
                    "end" => {
                        let dur_ns = v.u64_field("dur_ns")?;
                        // Close the matching begin, if it is in the stream.
                        if let Some(i) = out
                            .unclosed
                            .iter()
                            .rposition(|(n, t, d, _)| *n == name && *t == tid && *d == depth)
                        {
                            out.unclosed.remove(i);
                        }
                        out.spans.push(SpanRecord {
                            name: Cow::Owned(name),
                            start_ns: t_ns.saturating_sub(dur_ns),
                            dur_ns,
                            tid,
                            depth,
                        });
                    }
                    _ => return None,
                }
                Some(())
            })(),
            Some("counter") => (|| {
                let name = v.get("name")?.as_str()?.to_string();
                let delta = v.u64_field("delta")?;
                *out.counter_deltas.entry(name).or_insert(0) += delta;
                Some(())
            })(),
            Some("log") => (|| {
                out.logs.push(LogRec {
                    level: v.get("level")?.as_str()?.to_string(),
                    message: v.get("message")?.as_str()?.to_string(),
                    t_ns: v.u64_field("t_ns")?,
                });
                Some(())
            })(),
            Some("sample") => (|| {
                out.samples.push(ResourceSample {
                    t_ns: v.u64_field("t_ns")?,
                    rss_bytes: v.u64_field("rss_bytes")?,
                    cpu_user_ns: v.u64_field("cpu_user_ns")?,
                    cpu_system_ns: v.u64_field("cpu_system_ns")?,
                    threads: v.u64_field("threads")?,
                });
                Some(())
            })(),
            Some("snapshot") => snapshot_rec_from_json(&v).map(|rec| {
                out.snapshots.push(rec);
            }),
            Some("stall") => (|| {
                out.stalls.push(StallRec {
                    name: v.get("name")?.as_str()?.to_string(),
                    tid: v.u64_field("tid")?,
                    t_ns: v.u64_field("t_ns")?,
                    active_ns: v.u64_field("active_ns")?,
                    budget_ns: v.u64_field("budget_ns")?,
                });
                Some(())
            })(),
            Some(_) => {
                out.unknown_records += 1;
                Some(())
            }
            None => None,
        };
        if parsed.is_none() {
            out.malformed_lines += 1;
        }
    }
}

// --- Live follow mode ----------------------------------------------------

/// Polling parameters for [`follow_stream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FollowOptions {
    /// How often to re-stat the file for growth, in milliseconds.
    pub poll_ms: u64,
    /// Stop once the file has not grown for this long, in milliseconds. The
    /// sampler flushes every interval, so any live run keeps the file
    /// growing; a quiet file means the run is over (or hung — either way
    /// there is nothing more to stream).
    pub idle_timeout_ms: u64,
}

impl Default for FollowOptions {
    fn default() -> Self {
        Self {
            poll_ms: 200,
            idle_timeout_ms: 2000,
        }
    }
}

/// Follows a telemetry file that may still be written to: polls for growth,
/// ingests complete lines as they appear, and returns once the file stays
/// idle for `idle_timeout_ms`. A file that shrinks (rotation, truncation)
/// resets the stream and re-reads from the start. A partial trailing line is
/// buffered across polls and only force-ingested at the very end, so a
/// record split across two flushes is parsed whole.
///
/// `on_batch` is invoked with the stream after every poll that made
/// progress — the CLI uses it for a live one-line status.
pub fn follow_stream(
    path: &std::path::Path,
    opts: &FollowOptions,
    mut on_batch: impl FnMut(&TelemetryStream),
) -> std::io::Result<TelemetryStream> {
    use std::io::{Read, Seek, SeekFrom};

    let mut stream = TelemetryStream::default();
    let mut offset: u64 = 0;
    let mut pending = String::new();
    let mut last_growth = std::time::Instant::now();
    let idle = std::time::Duration::from_millis(opts.idle_timeout_ms);
    loop {
        let len = match std::fs::metadata(path) {
            Ok(m) => m.len(),
            // The file may not exist yet (follower started before the run);
            // treat as empty and keep polling until the idle timeout.
            Err(_) => 0,
        };
        if len < offset {
            // Truncated or rotated underneath us: start over.
            offset = 0;
            pending.clear();
            stream = TelemetryStream::default();
        }
        if len > offset {
            let mut file = match std::fs::File::open(path) {
                Ok(f) => f,
                // Deleted or rotated between the stat and the open: the next
                // poll re-stats and restarts the stream from the new file
                // (or times out if nothing reappears) — not a follower death.
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    std::thread::sleep(std::time::Duration::from_millis(opts.poll_ms.max(1)));
                    continue;
                }
                Err(e) => return Err(e),
            };
            file.seek(SeekFrom::Start(offset))?;
            let mut buf = Vec::new();
            file.read_to_end(&mut buf)?;
            offset += buf.len() as u64;
            pending.push_str(&String::from_utf8_lossy(&buf));
            while let Some(nl) = pending.find('\n') {
                let line: String = pending.drain(..=nl).collect();
                stream.ingest_line(line.trim_end_matches(['\n', '\r']));
            }
            last_growth = std::time::Instant::now();
            on_batch(&stream);
        } else if last_growth.elapsed() >= idle {
            break;
        } else {
            std::thread::sleep(std::time::Duration::from_millis(opts.poll_ms.max(1)));
        }
    }
    if !pending.trim().is_empty() {
        // The writer stopped mid-line; ingest the fragment so it is counted
        // (usually as one malformed line), matching parse_stream on the same
        // final bytes.
        stream.ingest_line(pending.trim_end_matches(['\n', '\r']));
    }
    Ok(stream)
}

impl TelemetryStream {
    /// Reconstructs a cumulative [`Snapshot`] from the stream: every span
    /// closed in the stream (exact timestamps from the journal events) plus
    /// the cumulative counters/histograms of the *last* periodic snapshot.
    /// For a stream recorded by the sampler this reproduces what
    /// `extradeep_obs::drain()` would have returned in the emitting process.
    pub fn to_snapshot(&self) -> Snapshot {
        let mut spans = self.spans.clone();
        spans.sort_by_key(|s| (s.tid, s.start_ns, s.depth, s.end_ns()));
        let (counters, histograms, captured_ns) = match self.snapshots.last() {
            Some(last) => (
                last.counters
                    .iter()
                    .map(|(name, value)| CounterValue {
                        name: name.clone(),
                        value: *value,
                    })
                    .collect(),
                last.histograms.clone(),
                last.t_ns,
            ),
            None => (
                Vec::new(),
                Vec::new(),
                spans.iter().map(SpanRecord::end_ns).max().unwrap_or(0),
            ),
        };
        Snapshot {
            spans,
            counters,
            histograms,
            captured_ns,
        }
    }

    /// Stream duration: first to last record timestamp, in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        let mut feed = |t: u64| {
            lo = lo.min(t);
            hi = hi.max(t);
        };
        for s in &self.spans {
            feed(s.start_ns);
            feed(s.end_ns());
        }
        for s in &self.samples {
            feed(s.t_ns);
        }
        for s in &self.snapshots {
            feed(s.t_ns);
        }
        if hi >= lo {
            hi - lo
        } else {
            0
        }
    }

    /// Renders the terminal report: header, phase timeline, counter rates,
    /// resource sparklines, stalls.
    pub fn render(&self) -> String {
        let mut out = String::new();
        match &self.meta {
            Some(m) => out.push_str(&format!(
                "Telemetry stream: pid {}, interval {} ms, journal capacity {}{}\n",
                m.pid,
                m.interval_ms,
                m.journal_capacity,
                match m.budget_ms {
                    Some(b) => format!(", span budget {b} ms"),
                    None => String::new(),
                }
            )),
            None => out.push_str("Telemetry stream: (no meta record)\n"),
        }
        let dur_s = ns_to_secs(self.duration_ns());
        let dropped = self
            .snapshots
            .last()
            .map(|s| s.journal_dropped)
            .unwrap_or(0);
        out.push_str(&format!(
            "{} records over {:.2} s: {} snapshots, {} samples, {} spans closed ({} open), {} journal event(s) dropped\n",
            self.lines,
            dur_s,
            self.snapshots.len(),
            self.samples.len(),
            self.spans.len(),
            self.unclosed.len(),
            dropped,
        ));
        if self.malformed_lines > 0 || self.unknown_records > 0 {
            out.push_str(&format!(
                "({} malformed line(s) skipped, {} unknown record type(s))\n",
                self.malformed_lines, self.unknown_records
            ));
        }

        self.render_timeline(&mut out);
        self.render_rates(&mut out, dur_s);
        self.render_resources(&mut out);

        if !self.stalls.is_empty() {
            out.push_str(&format!("\nWatchdog stalls ({}):\n", self.stalls.len()));
            for s in &self.stalls {
                out.push_str(&format!(
                    "  {}: open {:.3} s (budget {:.3} s) on tid {}\n",
                    s.name,
                    ns_to_secs(s.active_ns),
                    ns_to_secs(s.budget_ns),
                    s.tid
                ));
            }
        }
        let (errors, warns) =
            self.logs
                .iter()
                .fold((0usize, 0usize), |(e, w), l| match l.level.as_str() {
                    "error" => (e + 1, w),
                    "warn" => (e, w + 1),
                    _ => (e, w),
                });
        if errors + warns > 0 {
            out.push_str(&format!("\nLogs: {errors} error(s), {warns} warning(s)\n"));
        }
        out
    }

    fn render_timeline(&self, out: &mut String) {
        // Top-level phases: depth-0 spans in chronological order.
        let mut phases: Vec<&SpanRecord> = self.spans.iter().filter(|s| s.depth == 0).collect();
        phases.sort_by_key(|s| (s.start_ns, s.tid));
        if phases.is_empty() {
            return;
        }
        let t0 = phases.iter().map(|s| s.start_ns).min().unwrap_or(0);
        let t1 = phases.iter().map(|s| s.end_ns()).max().unwrap_or(t0);
        let total = (t1 - t0).max(1);
        const WIDTH: usize = 32;
        out.push_str("\nPhase timeline (top-level spans):\n");
        let name_w = phases
            .iter()
            .map(|s| s.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        for s in phases {
            let lo = ((s.start_ns - t0) as u128 * WIDTH as u128 / total as u128) as usize;
            let hi = ((s.end_ns() - t0) as u128 * WIDTH as u128 / total as u128) as usize;
            let hi = hi.clamp(lo + 1, WIDTH);
            let mut bar = String::with_capacity(WIDTH);
            for i in 0..WIDTH {
                bar.push(if (lo..hi).contains(&i) { '#' } else { '.' });
            }
            out.push_str(&format!(
                "  {:<name_w$} [{bar}] {:>9.3} ms @ {:.3} s\n",
                s.name,
                s.dur_ns as f64 / 1e6,
                ns_to_secs(s.start_ns - t0),
            ));
        }
    }

    fn render_rates(&self, out: &mut String, dur_s: f64) {
        // Totals from the last snapshot (cumulative) are authoritative;
        // counter deltas fill in anything never snapshotted.
        let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
        for (name, delta) in &self.counter_deltas {
            totals.insert(name, *delta);
        }
        if let Some(last) = self.snapshots.last() {
            for (name, value) in &last.counters {
                totals.insert(name, *value);
            }
        }
        totals.retain(|_, v| *v > 0);
        if totals.is_empty() {
            return;
        }
        out.push_str("\nCounters:\n");
        let name_w = totals.keys().map(|n| n.len()).max().unwrap_or(8).max(8);
        out.push_str(&format!(
            "  {:<name_w$} {:>12} {:>14}\n",
            "counter", "total", "per second"
        ));
        for (name, total) in &totals {
            let rate = if dur_s > 0.0 {
                format!("{:.1}", *total as f64 / dur_s)
            } else {
                "-".to_string()
            };
            out.push_str(&format!("  {name:<name_w$} {total:>12} {rate:>14}\n"));
        }
    }

    fn render_resources(&self, out: &mut String) {
        if self.samples.is_empty() {
            return;
        }
        let rss: Vec<f64> = self.samples.iter().map(|s| s.rss_bytes as f64).collect();
        let rss_max = rss.iter().fold(0.0f64, |a, &b| a.max(b));
        out.push_str("\nResources:\n");
        out.push_str(&format!(
            "  RSS     {} peak {:.1} MiB\n",
            sparkline(&rss),
            rss_max / (1024.0 * 1024.0)
        ));
        // CPU utilization per interval: Δ(user+sys) / Δwall.
        let mut util = Vec::new();
        for w in self.samples.windows(2) {
            let cpu0 = w[0].cpu_user_ns + w[0].cpu_system_ns;
            let cpu1 = w[1].cpu_user_ns + w[1].cpu_system_ns;
            let wall = w[1].t_ns.saturating_sub(w[0].t_ns);
            if wall > 0 {
                util.push((cpu1.saturating_sub(cpu0)) as f64 / wall as f64 * 100.0);
            }
        }
        if !util.is_empty() {
            let avg = util.iter().sum::<f64>() / util.len() as f64;
            out.push_str(&format!("  CPU     {} avg {:.0}%\n", sparkline(&util), avg));
        }
        if let Some(last) = self.samples.last() {
            out.push_str(&format!("  Threads {}\n", last.threads));
        }
    }
}

/// Renders values as a Unicode sparkline (resampled to ≤ 48 cells).
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    const MAX_CELLS: usize = 48;
    if values.is_empty() {
        return String::new();
    }
    // Resample by averaging fixed-size chunks.
    let chunk = values.len().div_ceil(MAX_CELLS);
    let cells: Vec<f64> = values
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let lo = cells.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    let hi = cells.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let span = hi - lo;
    cells
        .iter()
        .map(|&v| {
            let idx = if span > 0.0 {
                (((v - lo) / span) * (LEVELS.len() - 1) as f64).round() as usize
            } else {
                LEVELS.len() / 2
            };
            LEVELS[idx.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_scalars_and_nesting() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".to_string())
        );
        let v = Json::parse("{\"a\":[1,2,{\"b\":\"c\"}],\"d\":{}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2]
                .get("b")
                .unwrap()
                .as_str(),
            Some("c")
        );
    }

    #[test]
    fn json_parser_handles_surrogate_pairs_and_unicode() {
        assert_eq!(
            Json::parse("\"\\uD83D\\uDE00\"").unwrap(),
            Json::Str("😀".to_string())
        );
        assert_eq!(
            Json::parse("\"naïve → ünïcode\"").unwrap(),
            Json::Str("naïve → ünïcode".to_string())
        );
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Json::parse("{not json").is_err());
        assert!(Json::parse("[1,2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("").is_err());
    }

    fn demo_stream() -> String {
        [
            r#"{"type":"meta","version":1,"pid":77,"interval_ms":100,"journal_capacity":4096,"budget_ms":500}"#,
            r#"{"type":"span","event":"begin","name":"core.pipeline","tid":0,"depth":0,"t_ns":1000}"#,
            r#"{"type":"span","event":"begin","name":"sim.run","tid":0,"depth":1,"t_ns":2000}"#,
            r#"{"type":"counter","name":"model.search.hypotheses","delta":40,"t_ns":2500}"#,
            r#"{"type":"span","event":"end","name":"sim.run","tid":0,"depth":1,"t_ns":500000,"dur_ns":498000}"#,
            r#"{"type":"sample","t_ns":600000,"rss_bytes":1048576,"cpu_user_ns":10000000,"cpu_system_ns":0,"threads":3}"#,
            r#"{"type":"snapshot","seq":0,"t_ns":700000,"journal_dropped":0,"counters":{"model.search.hypotheses":40},"histograms":[],"spans":[{"name":"sim.run","count":1,"total_ns":498000}]}"#,
            r#"{"type":"log","level":"warn","message":"something odd","t_ns":710000}"#,
            r#"{"type":"stall","name":"core.pipeline","tid":0,"t_ns":800000,"active_ns":799000,"budget_ns":500000}"#,
            r#"{"type":"span","event":"end","name":"core.pipeline","tid":0,"depth":0,"t_ns":900000,"dur_ns":899000}"#,
            r#"{"type":"sample","t_ns":900000,"rss_bytes":2097152,"cpu_user_ns":20000000,"cpu_system_ns":10000000,"threads":3}"#,
            r#"{"type":"snapshot","seq":1,"t_ns":950000,"journal_dropped":0,"counters":{"model.search.hypotheses":40},"histograms":[],"spans":[{"name":"core.pipeline","count":1,"total_ns":899000}]}"#,
            r#"{"type":"future-record","anything":true}"#,
            r#"{"type":"snapsho"#, // truncated live tail
        ]
        .join("\n")
    }

    #[test]
    fn parse_stream_reads_all_record_types() {
        let s = parse_stream(&demo_stream());
        let meta = s.meta.clone().unwrap();
        assert_eq!(meta.pid, 77);
        assert_eq!(meta.budget_ms, Some(500));
        assert_eq!(s.spans.len(), 2);
        assert_eq!(s.unclosed.len(), 0);
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.snapshots.len(), 2);
        assert_eq!(s.stalls.len(), 1);
        assert_eq!(s.logs.len(), 1);
        assert_eq!(s.counter_deltas["model.search.hypotheses"], 40);
        assert_eq!(s.unknown_records, 1);
        assert_eq!(s.malformed_lines, 1);
    }

    #[test]
    fn to_snapshot_rebuilds_spans_and_counters() {
        let snap = parse_stream(&demo_stream()).to_snapshot();
        assert_eq!(snap.spans.len(), 2);
        let sim = snap.spans.iter().find(|s| s.name == "sim.run").unwrap();
        assert_eq!(sim.start_ns, 2000);
        assert_eq!(sim.dur_ns, 498_000);
        assert_eq!(sim.depth, 1);
        assert_eq!(snap.counter("model.search.hypotheses"), Some(40));
        assert_eq!(snap.captured_ns, 950_000);
    }

    #[test]
    fn render_covers_timeline_rates_resources_and_stalls() {
        let text = parse_stream(&demo_stream()).render();
        assert!(text.contains("pid 77"), "{text}");
        assert!(text.contains("Phase timeline"), "{text}");
        assert!(text.contains("core.pipeline"), "{text}");
        assert!(text.contains("Counters:"), "{text}");
        assert!(text.contains("model.search.hypotheses"), "{text}");
        assert!(text.contains("RSS"), "{text}");
        assert!(text.contains("CPU"), "{text}");
        assert!(text.contains("Watchdog stalls (1)"), "{text}");
        assert!(text.contains("1 warning(s)"), "{text}");
        assert!(text.contains("malformed"), "{text}");
    }

    #[test]
    fn begin_without_end_is_reported_open() {
        let s = parse_stream(
            r#"{"type":"span","event":"begin","name":"core.hung","tid":0,"depth":0,"t_ns":10}"#,
        );
        assert_eq!(s.unclosed.len(), 1);
        assert_eq!(s.spans.len(), 0);
        let text = s.render();
        assert!(text.contains("(1 open)"), "{text}");
    }

    #[test]
    fn sparkline_is_monotone_and_bounded() {
        assert_eq!(sparkline(&[]), "");
        let line = sparkline(&[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(line.chars().count(), 4);
        assert!(line.starts_with('▁') && line.ends_with('█'));
        // Constant input renders mid-level cells, and long input resamples.
        assert!(sparkline(&[5.0; 3]).chars().all(|c| c == '▅'));
        assert!(sparkline(&vec![1.0; 500]).chars().count() <= 48);
    }

    #[test]
    fn follow_reads_a_growing_file_including_split_lines() {
        let path = std::env::temp_dir().join(format!(
            "extradeep-tail-follow-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let full = demo_stream();
        let writer = {
            let path = path.clone();
            std::thread::spawn(move || {
                use std::io::Write;
                // Append in chunks that deliberately split a record across
                // two flushes, like a sampler flush racing the reader.
                let bytes = full.as_bytes();
                let cuts = [bytes.len() / 3, bytes.len() / 3 + 40, 2 * bytes.len() / 3];
                let mut file = std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(&path)
                    .unwrap();
                let mut done = 0;
                for cut in cuts.into_iter().chain([bytes.len()]) {
                    file.write_all(&bytes[done..cut]).unwrap();
                    file.flush().unwrap();
                    done = cut;
                    std::thread::sleep(std::time::Duration::from_millis(30));
                }
            })
        };
        let opts = FollowOptions {
            poll_ms: 5,
            idle_timeout_ms: 400,
        };
        let mut batches = 0;
        let live = follow_stream(&path, &opts, |_| batches += 1).unwrap();
        writer.join().unwrap();
        let whole = parse_stream(&demo_stream());
        assert!(batches >= 2, "saw only {batches} growth batches");
        assert_eq!(live.lines, whole.lines);
        assert_eq!(live.spans.len(), whole.spans.len());
        assert_eq!(live.snapshots.len(), whole.snapshots.len());
        assert_eq!(live.malformed_lines, whole.malformed_lines);
        assert_eq!(live.counter_deltas, whole.counter_deltas);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn follow_restarts_after_truncation() {
        let path = std::env::temp_dir().join(format!(
            "extradeep-tail-trunc-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, demo_stream()).unwrap();
        let writer = {
            let path = path.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(60));
                // Rotate: replace the long stream with a two-line one.
                std::fs::write(
                    &path,
                    concat!(
                        r#"{"type":"meta","version":1,"pid":9,"interval_ms":50,"journal_capacity":64}"#,
                        "\n",
                        r#"{"type":"counter","name":"x","delta":7,"t_ns":10}"#,
                        "\n"
                    ),
                )
                .unwrap();
            })
        };
        let opts = FollowOptions {
            poll_ms: 5,
            idle_timeout_ms: 300,
        };
        let live = follow_stream(&path, &opts, |_| {}).unwrap();
        writer.join().unwrap();
        assert_eq!(live.meta.as_ref().unwrap().pid, 9);
        assert_eq!(live.lines, 2);
        assert_eq!(live.counter_deltas["x"], 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn follow_picks_up_a_late_created_file() {
        // Follower starts before the run does: the file does not exist yet
        // and appears only after a few polls. The follower must neither die
        // nor give up before its idle timeout, then stream the file whole.
        let path = std::env::temp_dir().join(format!(
            "extradeep-tail-late-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let writer = {
            let path = path.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(80));
                std::fs::write(&path, demo_stream()).unwrap();
            })
        };
        let opts = FollowOptions {
            poll_ms: 5,
            idle_timeout_ms: 300,
        };
        let live = follow_stream(&path, &opts, |_| {}).unwrap();
        writer.join().unwrap();
        let whole = parse_stream(&demo_stream());
        assert_eq!(live.lines, whole.lines);
        assert_eq!(live.spans.len(), whole.spans.len());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn follow_on_missing_file_times_out_empty() {
        let path = std::env::temp_dir().join(format!(
            "extradeep-tail-missing-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let opts = FollowOptions {
            poll_ms: 5,
            idle_timeout_ms: 50,
        };
        let live = follow_stream(&path, &opts, |_| {}).unwrap();
        assert_eq!(live.lines, 0);
        assert!(live.meta.is_none());
    }

    #[test]
    fn empty_stream_parses_and_renders() {
        let s = parse_stream("");
        assert_eq!(s.lines, 0);
        let text = s.render();
        assert!(text.contains("no meta record"), "{text}");
        assert!(s.to_snapshot().spans.is_empty());
    }
}
