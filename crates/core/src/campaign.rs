//! Crash-safe campaign runner: fleet-scale modeling sweeps that survive
//! anything short of disk loss.
//!
//! The paper's Fig. 1 workflow models one experiment at a time; answering
//! capacity-planning questions over a fleet means running a declarative grid
//! of benchmarks × systems × strategies × scales × seeds — hundreds of
//! *cells*, each a full simulate → aggregate → model → analyze pipeline. At
//! that scale two failure modes dominate:
//!
//! 1. **The process dies** (OOM kill, preemption, power). A sweep that
//!    restarts from zero at cell 412 of 600 is unusable, so every cell's
//!    lifecycle (pending → running → done/failed/quarantined) is journaled
//!    to an append-only, fsync'd, line-delimited **manifest** with a
//!    per-record FNV-1a checksum. A killed process resumes by replaying the
//!    manifest: completed cells are skipped (their metrics come straight
//!    from the journal), a torn trailing record — the half-written line of
//!    the very write the crash interrupted — is truncated rather than fatal,
//!    mirroring the truncation-tolerant parsing discipline of [`crate::tail`].
//! 2. **One cell is poisoned** (panics, hangs, or fails transiently). Each
//!    attempt runs in its own worker thread under `catch_unwind` with a
//!    wall-clock deadline (the scheduler-side analogue of the obs watchdog);
//!    transient failures retry with capped exponential backoff and a
//!    deterministic seed-derived jitter, and a cell that exhausts its
//!    attempts — or fails permanently — is **quarantined**: the matrix keeps
//!    going and the roll-up report attributes the loss explicitly.
//!
//! Progress is observable through the `campaign.cells_done`,
//! `campaign.cells_retried`, `campaign.cells_timed_out`, and
//! `campaign.cells_quarantined` counters, and the `--strict` CLI gate turns
//! a non-empty quarantine table into a failing exit for CI.

use crate::analysis::CostModel;
use crate::modelset::{build_model_set, ModelSetOptions};
use crate::persist::{load_models, save_models, PersistError};
use crate::questions;
use crate::report::{fmt, pct, Table};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_sim::{
    Benchmark, ExperimentSpec, FaultPlan, ParallelStrategy, ScalingMode, SyncMode, SystemConfig,
};
use extradeep_trace::MetricKind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Manifest journal format version (bumped on incompatible record changes).
pub const MANIFEST_VERSION: u32 = 1;

/// File name of the manifest journal inside the campaign directory.
pub const MANIFEST_FILE: &str = "manifest.jsonl";

// ---------------------------------------------------------------------------
// Campaign specification
// ---------------------------------------------------------------------------

/// A declarative campaign: the grid to expand, how to execute it, and what
/// to report. Parsed from the JSON file given to `extradeep campaign`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(default, deny_unknown_fields)]
pub struct CampaignSpec {
    /// Human-readable campaign name (also the default artifact prefix).
    pub name: String,
    pub grid: GridSpec,
    pub execution: ExecutionSpec,
    pub analysis: AnalysisSpec,
    /// Per-cell fault injection for chaos coverage: cell id (or `"*"` for
    /// every cell) → a [`FaultPlan`] spec string such as
    /// `"seed=7,drop-rank=0.25"`. A cell-specific entry overrides `"*"`.
    pub faults: BTreeMap<String, String>,
    /// Scheduler-level sabotage for robustness drills: cell id (or `"*"`)
    /// → one of `panic`, `hang=<ms>`, `hang-once=<ms>`, `fail=<n>`.
    /// Unlike `faults` (which corrupt the *measurement*), sabotage attacks
    /// the *executor*: panics, stragglers, and transient attempt failures.
    pub sabotage: BTreeMap<String, String>,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            name: "campaign".to_string(),
            grid: GridSpec::default(),
            execution: ExecutionSpec::default(),
            analysis: AnalysisSpec::default(),
            faults: BTreeMap::new(),
            sabotage: BTreeMap::new(),
        }
    }
}

/// The cartesian grid a campaign expands into cells.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(default, deny_unknown_fields)]
pub struct GridSpec {
    /// Benchmark short names (see [`Benchmark::NAMES`]).
    pub benchmarks: Vec<String>,
    /// System short names: `deep`, `jureca`.
    pub systems: Vec<String>,
    /// Strategy short names: `data`, `tensor`, `pipeline`.
    pub strategies: Vec<String>,
    /// Scaling modes: `weak`, `strong`.
    pub scaling: Vec<String>,
    /// Sync modes: `bsp`, `asp`.
    pub sync: Vec<String>,
    /// Modeling-scale rank lists; each list is one grid axis value.
    pub ranks: Vec<Vec<u32>>,
    /// Profiler base seeds; each seed is a separate cell.
    pub seeds: Vec<u64>,
    /// Measurement repetitions per configuration.
    pub repetitions: u32,
    /// Record the traces of at most this many ranks per cell.
    pub max_recorded_ranks: u32,
}

impl Default for GridSpec {
    fn default() -> Self {
        GridSpec {
            benchmarks: vec!["cifar10".to_string()],
            systems: vec!["deep".to_string()],
            strategies: vec!["data".to_string()],
            scaling: vec!["weak".to_string()],
            sync: vec!["bsp".to_string()],
            ranks: vec![vec![2, 4, 6, 8, 10]],
            seeds: vec![0xED05],
            repetitions: 1,
            max_recorded_ranks: 2,
        }
    }
}

/// Executor policy: concurrency, retry budget, deadline, and backoff.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(default, deny_unknown_fields)]
pub struct ExecutionSpec {
    /// Concurrent cells (bounded rayon pool; clamped to [1, 64]).
    pub parallelism: usize,
    /// Total attempts per cell across all process lives (≥ 1).
    pub max_attempts: u32,
    /// Wall-clock deadline per attempt, in milliseconds.
    pub timeout_ms: u64,
    /// First retry delay; doubles per attempt up to `backoff_cap_ms`.
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
    /// Fail the run (exit 1) when any cell ends up quarantined.
    pub strict: bool,
}

impl Default for ExecutionSpec {
    fn default() -> Self {
        ExecutionSpec {
            parallelism: 2,
            max_attempts: 3,
            timeout_ms: 120_000,
            backoff_base_ms: 50,
            backoff_cap_ms: 2_000,
            strict: false,
        }
    }
}

/// Analysis knobs applied to every surviving cell's model set.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(default, deny_unknown_fields)]
pub struct AnalysisSpec {
    /// Rank count the roll-up report probes predictions at.
    pub probe_ranks: f64,
    /// CPU cores per MPI rank (ϱ in the cost model, Eq. 14).
    pub cores_per_rank: u32,
    /// Optional €/core-hour price for absolute cost columns.
    pub price_per_core_hour: Option<f64>,
}

impl Default for AnalysisSpec {
    fn default() -> Self {
        AnalysisSpec {
            probe_ranks: 64.0,
            cores_per_rank: 8,
            price_per_core_hour: None,
        }
    }
}

impl CampaignSpec {
    /// Parses a spec from JSON, rejecting unknown fields (a typo'd knob
    /// silently ignored is how a 600-cell sweep runs with the wrong
    /// timeout).
    pub fn from_json(json: &str) -> Result<CampaignSpec, CampaignError> {
        serde_json::from_str(json).map_err(|e| CampaignError::Spec(format!("invalid spec: {e}")))
    }

    /// Stable FNV-1a-64 digest of the spec, stored in the manifest header
    /// so a resume against a *different* spec is a typed error instead of a
    /// silently inconsistent matrix.
    pub fn digest(&self) -> String {
        let canonical = serde_json::to_string(self).unwrap_or_default();
        format!("{:016x}", fnv1a64(canonical.as_bytes()))
    }

    /// Expands the grid into cells, in deterministic declaration order.
    /// Unknown names and malformed fault/sabotage entries are typed errors
    /// here — before anything executes.
    pub fn expand(&self) -> Result<Vec<CellSpec>, CampaignError> {
        let bad = |what: &str, name: &str| {
            CampaignError::Spec(format!("unknown {what} '{name}' in campaign grid"))
        };
        let mut cells = Vec::new();
        for bench in &self.grid.benchmarks {
            Benchmark::from_name(bench).ok_or_else(|| bad("benchmark", bench))?;
            for system in &self.grid.systems {
                SystemConfig::from_name(system).ok_or_else(|| bad("system", system))?;
                for strategy in &self.grid.strategies {
                    ParallelStrategy::from_name(strategy)
                        .ok_or_else(|| bad("strategy", strategy))?;
                    for scaling in &self.grid.scaling {
                        ScalingMode::from_name(scaling).ok_or_else(|| bad("scaling", scaling))?;
                        for sync in &self.grid.sync {
                            SyncMode::from_name(sync).ok_or_else(|| bad("sync", sync))?;
                            for ranks in &self.grid.ranks {
                                for &seed in &self.grid.seeds {
                                    cells.push(self.cell(
                                        bench, system, strategy, scaling, sync, ranks, seed,
                                    )?);
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut ids = BTreeSet::new();
        for cell in &cells {
            if !ids.insert(cell.id.clone()) {
                return Err(CampaignError::Spec(format!(
                    "duplicate cell id '{}' (repeated grid axis value?)",
                    cell.id
                )));
            }
        }
        Ok(cells)
    }

    fn cell(
        &self,
        bench: &str,
        system: &str,
        strategy: &str,
        scaling: &str,
        sync: &str,
        ranks: &[u32],
        seed: u64,
    ) -> Result<CellSpec, CampaignError> {
        let ranks_label = ranks
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(".");
        let id = format!("{bench}-{system}-{strategy}-{scaling}-{sync}-r{ranks_label}-s{seed}");
        let lookup =
            |map: &BTreeMap<String, String>| map.get(&id).or_else(|| map.get("*")).cloned();
        let faults = lookup(&self.faults);
        if let Some(spec) = &faults {
            FaultPlan::parse(spec).map_err(|e| CampaignError::Spec(format!("cell '{id}': {e}")))?;
        }
        let sabotage = lookup(&self.sabotage);
        if let Some(spec) = &sabotage {
            Sabotage::parse(spec).map_err(|e| CampaignError::Spec(format!("cell '{id}': {e}")))?;
        }
        Ok(CellSpec {
            id,
            benchmark: bench.to_string(),
            system: system.to_string(),
            strategy: strategy.to_string(),
            scaling: scaling.to_string(),
            sync: sync.to_string(),
            ranks: ranks.to_vec(),
            seed,
            repetitions: self.grid.repetitions.max(1),
            max_recorded_ranks: self.grid.max_recorded_ranks.max(1),
            faults,
            sabotage,
        })
    }
}

/// One fully-resolved cell of the campaign matrix.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CellSpec {
    /// Deterministic, filesystem-safe identity; also the checkpoint stem.
    pub id: String,
    pub benchmark: String,
    pub system: String,
    pub strategy: String,
    pub scaling: String,
    pub sync: String,
    pub ranks: Vec<u32>,
    pub seed: u64,
    pub repetitions: u32,
    pub max_recorded_ranks: u32,
    pub faults: Option<String>,
    pub sabotage: Option<String>,
}

impl CellSpec {
    /// Builds the experiment this cell measures. Names were validated at
    /// expansion time; a mismatch here means the manifest and binary
    /// disagree, which is a permanent (non-retryable) cell error.
    pub fn experiment_spec(&self) -> Result<ExperimentSpec, String> {
        let mut spec = ExperimentSpec::case_study(self.ranks.clone());
        spec.benchmark = Benchmark::from_name(&self.benchmark)
            .ok_or_else(|| format!("unknown benchmark '{}'", self.benchmark))?;
        spec.system = SystemConfig::from_name(&self.system)
            .ok_or_else(|| format!("unknown system '{}'", self.system))?;
        spec.strategy = ParallelStrategy::from_name(&self.strategy)
            .ok_or_else(|| format!("unknown strategy '{}'", self.strategy))?;
        spec.scaling = ScalingMode::from_name(&self.scaling)
            .ok_or_else(|| format!("unknown scaling '{}'", self.scaling))?;
        spec.sync = SyncMode::from_name(&self.sync)
            .ok_or_else(|| format!("unknown sync mode '{}'", self.sync))?;
        spec.repetitions = self.repetitions;
        spec.profiler.seed = self.seed;
        spec.profiler.max_recorded_ranks = self.max_recorded_ranks;
        Ok(spec)
    }

    /// Checkpoint path of this cell's fitted models, relative to the
    /// campaign directory.
    pub fn checkpoint_rel(&self) -> String {
        format!("cells/{}.models.json", self.id)
    }
}

// ---------------------------------------------------------------------------
// Sabotage (executor-level chaos)
// ---------------------------------------------------------------------------

/// Scheduler-level chaos injected *around* a cell's pipeline: where
/// [`FaultPlan`] corrupts measurements, sabotage attacks the executor
/// itself — exactly the failure modes the retry/timeout/quarantine machinery
/// exists for, so CI can drill them deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sabotage {
    /// Panic on every attempt (a permanently poisoned cell).
    Panic,
    /// Sleep this long on every attempt (a hopeless straggler).
    Hang { ms: u64 },
    /// Sleep only on the first attempt (a straggler that recovers on retry).
    HangOnce { ms: u64 },
    /// Fail transiently on the first `attempts` attempts, then succeed.
    Fail { attempts: u32 },
}

impl Sabotage {
    fn parse(spec: &str) -> Result<Sabotage, String> {
        let (verb, arg) = match spec.split_once('=') {
            Some((v, a)) => (v, Some(a)),
            None => (spec, None),
        };
        let num = |what: &str| -> Result<u64, String> {
            arg.ok_or_else(|| format!("sabotage '{verb}' needs =<{what}>"))?
                .parse::<u64>()
                .map_err(|_| format!("sabotage '{verb}' has a non-numeric {what}"))
        };
        match verb {
            "panic" => Ok(Sabotage::Panic),
            "hang" => Ok(Sabotage::Hang { ms: num("ms")? }),
            "hang-once" => Ok(Sabotage::HangOnce { ms: num("ms")? }),
            "fail" => Ok(Sabotage::Fail {
                attempts: num("n")? as u32,
            }),
            other => Err(format!("unknown sabotage verb '{other}'")),
        }
    }

    /// Applied inside the attempt worker, before any real work.
    fn apply(self, attempt: u32) -> Result<(), CellError> {
        match self {
            Sabotage::Panic => panic!("sabotage: injected panic"),
            Sabotage::Hang { ms } => std::thread::sleep(Duration::from_millis(ms)),
            Sabotage::HangOnce { ms } if attempt == 1 => {
                std::thread::sleep(Duration::from_millis(ms))
            }
            Sabotage::HangOnce { .. } => {}
            Sabotage::Fail { attempts } if attempt <= attempts => {
                return Err(CellError::Transient(format!(
                    "injected transient failure (attempt {attempt}/{attempts})"
                )));
            }
            Sabotage::Fail { .. } => {}
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Campaign-level failure: the run itself could not proceed (cell failures
/// are *not* errors — they quarantine).
#[derive(Debug)]
pub enum CampaignError {
    Io(std::io::Error),
    /// The spec is malformed (parse error, unknown name, empty grid).
    Spec(String),
    /// The manifest in the campaign directory belongs to a different spec.
    ManifestMismatch {
        expected: String,
        found: String,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::Io(e) => write!(f, "campaign I/O error: {e}"),
            CampaignError::Spec(msg) => write!(f, "campaign spec error: {msg}"),
            CampaignError::ManifestMismatch { expected, found } => write!(
                f,
                "campaign manifest belongs to a different spec \
                 (digest {found}, expected {expected}); use a fresh --dir \
                 or restore the original spec"
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Why a single attempt of a cell failed.
#[derive(Debug, Clone)]
pub enum CellError {
    /// The worker panicked (caught via `catch_unwind`).
    Panicked(String),
    /// The attempt exceeded its wall-clock deadline.
    Timeout { ms: u64 },
    /// Injected transient failure (sabotage `fail=<n>`).
    Transient(String),
    /// The pipeline failed structurally (too little data to model, bad
    /// fault spec at run time) — permanent, retrying cannot help.
    Modeling(String),
    /// Checkpoint or manifest I/O failed for this cell.
    Io(String),
}

impl CellError {
    /// Transient errors are retried with backoff; permanent ones quarantine
    /// immediately.
    pub fn is_transient(&self) -> bool {
        !matches!(self, CellError::Modeling(_))
    }
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CellError::Panicked(msg) => write!(f, "panicked: {msg}"),
            CellError::Timeout { ms } => write!(f, "timed out after {ms} ms"),
            CellError::Transient(msg) => write!(f, "transient: {msg}"),
            CellError::Modeling(msg) => write!(f, "modeling failed: {msg}"),
            CellError::Io(msg) => write!(f, "I/O failed: {msg}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest journal
// ---------------------------------------------------------------------------

/// One journaled lifecycle event. Serialized as a single JSON line prefixed
/// with its FNV-1a-32 checksum: `crc json\n`.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum ManifestRecord {
    /// Header: first record of a fresh manifest.
    Campaign {
        name: String,
        digest: String,
        cells: u64,
        version: u32,
    },
    /// An attempt began (a `start` without a terminal event means the
    /// process died mid-cell — the cell is pending again on resume).
    Start { cell: String, attempt: u32 },
    /// The cell completed; `checkpoint` is the models file relative to the
    /// campaign directory, written and flushed *before* this record.
    Done {
        cell: String,
        attempt: u32,
        metrics: CellMetrics,
        checkpoint: String,
    },
    /// An attempt failed; `transient` records whether it was retryable.
    Failed {
        cell: String,
        attempt: u32,
        error: String,
        transient: bool,
    },
    /// Terminal failure: retries exhausted or the error was permanent.
    Quarantined {
        cell: String,
        attempts: u32,
        error: String,
    },
}

impl ManifestRecord {
    /// Encodes the record as a checksummed journal line.
    fn encode(&self) -> Result<String, CampaignError> {
        let body = serde_json::to_string(self)
            .map_err(|e| CampaignError::Spec(format!("unencodable manifest record: {e}")))?;
        Ok(format!("{:08x} {body}\n", fnv1a32(body.as_bytes())))
    }

    /// Decodes one journal line (without the trailing newline). `None`
    /// means the line is torn or corrupt — replay stops there.
    fn decode(line: &str) -> Option<ManifestRecord> {
        let (crc_hex, body) = line.split_at_checked(8)?;
        let body = body.strip_prefix(' ')?;
        let crc = u32::from_str_radix(crc_hex, 16).ok()?;
        if crc != fnv1a32(body.as_bytes()) {
            return None;
        }
        serde_json::from_str(body).ok()
    }
}

/// Append-only, fsync-per-record journal writer. No buffering: a record
/// either reaches the disk before the next state transition or the crash
/// leaves (at most) one torn trailing line for replay to truncate.
struct ManifestWriter {
    file: std::fs::File,
}

impl ManifestWriter {
    fn open(path: &Path) -> std::io::Result<ManifestWriter> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(ManifestWriter { file })
    }

    fn append(&mut self, record: &ManifestRecord) -> Result<(), CampaignError> {
        let line = record.encode()?;
        self.file.write_all(line.as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }
}

/// Result of replaying a manifest file.
#[derive(Debug, Default)]
pub struct ManifestReplay {
    pub records: Vec<ManifestRecord>,
    /// Byte length of the valid record prefix.
    pub valid_bytes: u64,
    /// Bytes past the valid prefix (a torn or corrupt tail to truncate).
    pub torn_bytes: u64,
}

/// Replays a manifest journal, stopping at the first torn or corrupt line.
/// A missing file is an empty (fresh) manifest, exactly like
/// [`crate::tail::follow_stream`] treats a not-yet-created telemetry file.
pub fn replay_manifest(path: &Path) -> Result<ManifestReplay, CampaignError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(ManifestReplay::default()),
        Err(e) => return Err(e.into()),
    };
    let mut replay = ManifestReplay::default();
    let mut offset = 0usize;
    while offset < text.len() {
        let Some(nl) = text[offset..].find('\n') else {
            break; // unterminated tail: the crash interrupted this write
        };
        let line = &text[offset..offset + nl];
        match ManifestRecord::decode(line) {
            Some(rec) => {
                replay.records.push(rec);
                offset += nl + 1;
            }
            None => break, // checksum or parse failure: stop at last good record
        }
    }
    replay.valid_bytes = offset as u64;
    replay.torn_bytes = (text.len() - offset) as u64;
    Ok(replay)
}

/// Per-cell state folded out of a manifest replay (last event wins).
#[derive(Debug, Default)]
struct ResumeState {
    header: Option<(String, String)>,
    /// Attempts already journaled per cell (start records).
    attempts: BTreeMap<String, u32>,
    done: BTreeMap<String, (u32, CellMetrics, String)>,
    quarantined: BTreeMap<String, (u32, String)>,
    failed_attempts: u64,
}

impl ResumeState {
    fn fold(records: &[ManifestRecord]) -> ResumeState {
        let mut state = ResumeState::default();
        for rec in records {
            match rec {
                ManifestRecord::Campaign { name, digest, .. } => {
                    state.header = Some((name.clone(), digest.clone()));
                }
                ManifestRecord::Start { cell, attempt } => {
                    let seen = state.attempts.entry(cell.clone()).or_insert(0);
                    *seen = (*seen).max(*attempt);
                }
                ManifestRecord::Done {
                    cell,
                    attempt,
                    metrics,
                    checkpoint,
                } => {
                    state.done.insert(
                        cell.clone(),
                        (*attempt, metrics.clone(), checkpoint.clone()),
                    );
                    state.quarantined.remove(cell);
                }
                ManifestRecord::Failed { .. } => state.failed_attempts += 1,
                ManifestRecord::Quarantined {
                    cell,
                    attempts,
                    error,
                } => {
                    state
                        .quarantined
                        .insert(cell.clone(), (*attempts, error.clone()));
                }
            }
        }
        state
    }
}

// ---------------------------------------------------------------------------
// Cell execution
// ---------------------------------------------------------------------------

/// The roll-up metrics of one completed cell — a deterministic projection
/// of its fitted model set, stored in the manifest so resumes never refit.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CellMetrics {
    /// Human-readable `T_epoch(x1)` formula.
    pub epoch_formula: String,
    pub epoch_seconds_at_probe: f64,
    pub communication_share_percent: f64,
    pub core_hours_at_probe: f64,
    pub kernels_modeled: u64,
    pub kernels_failed: u64,
    /// Mean percentage error of the epoch model vs. the simulator's
    /// analytic oracle over the modeling scales.
    pub mpe_vs_oracle_percent: f64,
}

/// Runs one cell's full pipeline: sabotage gate → simulate → (faults +
/// repair) → aggregate → model → analyze. Pure compute: all journal and
/// checkpoint writes happen on the scheduler side, so an abandoned
/// (timed-out) worker can never corrupt campaign state.
fn execute_cell(
    cell: &CellSpec,
    attempt: u32,
    analysis: &AnalysisSpec,
) -> Result<(CellMetrics, crate::modelset::ModelSet), CellError> {
    if let Some(spec) = &cell.sabotage {
        let sabotage = Sabotage::parse(spec).map_err(CellError::Modeling)?;
        sabotage.apply(attempt)?;
    }
    let espec = cell.experiment_spec().map_err(CellError::Modeling)?;
    let mut profiles = espec.run();
    if let Some(fault_spec) = &cell.faults {
        let plan = FaultPlan::parse(fault_spec).map_err(|e| CellError::Modeling(e.to_string()))?;
        let summary = plan.apply(&mut profiles);
        if summary.total() > 0 {
            extradeep_obs::warn!("campaign: cell {}: fault injection: {summary}", cell.id);
        }
        // Repair what the faults broke, exactly like the pipeline command:
        // the campaign degrades gracefully on corrupted measurements.
        let repair = extradeep_trace::repair_experiment(&mut profiles);
        if !repair.is_clean() {
            extradeep_obs::warn!(
                "campaign: cell {}: {} repair(s) after fault injection",
                cell.id,
                repair.counts.total_repairs()
            );
        }
    }
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())
        .map_err(|e| CellError::Modeling(e.to_string()))?;

    let probe = analysis.probe_ranks;
    let mut cost = CostModel::new(analysis.cores_per_rank);
    if let Some(price) = analysis.price_per_core_hour {
        cost = cost.with_price(price);
    }
    let q3 = questions::q3_bottlenecks(&models, probe);
    let metrics = CellMetrics {
        epoch_formula: models.app.epoch.formatted(),
        epoch_seconds_at_probe: questions::q1_epoch_seconds(&models, probe),
        communication_share_percent: q3.communication_share_percent,
        core_hours_at_probe: questions::q4_epoch_core_hours(&models, &cost, probe),
        kernels_modeled: models.kernels.len() as u64,
        kernels_failed: models.failed.len() as u64,
        mpe_vs_oracle_percent: crate::chaos::mpe_vs_oracle(&espec, &models),
    };
    Ok((metrics, models))
}

/// Extracts a printable message from a `catch_unwind` payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one attempt in a dedicated worker thread under `catch_unwind`,
/// bounded by the wall-clock deadline. On timeout the worker is *abandoned*
/// (std threads cannot be killed): it keeps computing into a dropped
/// channel and its result is discarded — safe because workers are pure
/// (see [`execute_cell`]) — while the scheduler moves on to the retry.
fn run_attempt(
    cell: &CellSpec,
    attempt: u32,
    analysis: &AnalysisSpec,
    timeout_ms: u64,
) -> Result<(CellMetrics, crate::modelset::ModelSet), CellError> {
    let (tx, rx) = mpsc::channel();
    let worker_cell = cell.clone();
    let worker_analysis = analysis.clone();
    std::thread::Builder::new()
        .name(format!("campaign-{}", cell.id))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                execute_cell(&worker_cell, attempt, &worker_analysis)
            }));
            // analyze:allow(swallowed-result) receiver gone only after timeout; the cell is already quarantined
            let _ = tx.send(outcome);
        })
        .map_err(|e| CellError::Io(format!("cannot spawn cell worker: {e}")))?;
    match rx.recv_timeout(Duration::from_millis(timeout_ms)) {
        Ok(Ok(result)) => result,
        Ok(Err(payload)) => Err(CellError::Panicked(panic_message(payload))),
        Err(mpsc::RecvTimeoutError::Timeout) => Err(CellError::Timeout { ms: timeout_ms }),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err(CellError::Io("cell worker vanished".to_string()))
        }
    }
}

/// Retry delay before `attempt + 1`: capped exponential backoff plus a
/// deterministic jitter derived from (cell id, attempt, seed) — replayable
/// like everything else, no ambient entropy.
fn backoff_delay(exec: &ExecutionSpec, cell_id: &str, attempt: u32, seed: u64) -> Duration {
    let base = exec.backoff_base_ms.max(1);
    let cap = exec.backoff_cap_ms.max(base);
    let exp = base.saturating_mul(1u64 << (attempt.saturating_sub(1)).min(16));
    let delay = exp.min(cap);
    let jitter = fnv1a64(format!("{cell_id}:{attempt}:{seed}").as_bytes()) % (delay / 2 + 1);
    Duration::from_millis(delay + jitter)
}

// ---------------------------------------------------------------------------
// The runner
// ---------------------------------------------------------------------------

/// Per-invocation options that are not part of the (digested) spec.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Overrides `execution.parallelism` without changing the spec digest.
    pub parallelism: Option<usize>,
    /// Crash drill: `std::process::exit(3)` immediately after the Nth cell
    /// completion record reaches the disk — a deterministic stand-in for
    /// SIGKILL used by the kill-and-resume tests and the CI smoke job.
    pub crash_after_done: Option<u64>,
}

enum Outcome {
    Done {
        id: String,
        attempts: u32,
        metrics: CellMetrics,
    },
    Quarantined {
        id: String,
        attempts: u32,
        error: String,
    },
}

struct Shared<'a> {
    writer: Mutex<ManifestWriter>,
    outcomes: Mutex<Vec<Outcome>>,
    exec: &'a ExecutionSpec,
    analysis: &'a AnalysisSpec,
    dir: &'a Path,
    /// Remaining `done` records before the injected crash (-1 = disabled).
    crash_budget: AtomicI64,
    failed_attempts: AtomicU64,
    /// First manifest I/O error (aborts the run at the next cell boundary).
    io_error: Mutex<Option<CampaignError>>,
}

impl Shared<'_> {
    fn append(&self, record: &ManifestRecord) -> bool {
        let mut writer = match self.writer.lock() {
            Ok(w) => w,
            Err(poisoned) => poisoned.into_inner(),
        };
        match writer.append(record) {
            Ok(()) => true,
            Err(e) => {
                let mut slot = match self.io_error.lock() {
                    Ok(s) => s,
                    Err(poisoned) => poisoned.into_inner(),
                };
                slot.get_or_insert(e);
                false
            }
        }
    }

    fn push(&self, outcome: Outcome) {
        let mut outcomes = match self.outcomes.lock() {
            Ok(o) => o,
            Err(poisoned) => poisoned.into_inner(),
        };
        outcomes.push(outcome);
    }

    /// The crash drill: fires after the Nth durable completion.
    fn maybe_crash(&self) {
        if self.crash_budget.load(Ordering::Relaxed) < 0 {
            return;
        }
        if self.crash_budget.fetch_sub(1, Ordering::SeqCst) == 1 {
            extradeep_obs::warn!("campaign: injected crash (--crash-after reached)");
            std::process::exit(3);
        }
    }
}

/// Schedules one cell: attempt → classify → retry/quarantine, journaling
/// every transition before acting on it.
fn run_cell(cell: &CellSpec, prior_attempts: u32, shared: &Shared<'_>) {
    let max_attempts = shared.exec.max_attempts.max(1);
    let mut attempt = prior_attempts;
    loop {
        attempt += 1;
        if !shared.append(&ManifestRecord::Start {
            cell: cell.id.clone(),
            attempt,
        }) {
            return; // manifest is gone; the run aborts with the I/O error
        }
        let result = run_attempt(cell, attempt, shared.analysis, shared.exec.timeout_ms);
        let err = match result {
            Ok((metrics, models)) => {
                let checkpoint = cell.checkpoint_rel();
                // Checkpoint first, then the durable `done` record: a crash
                // between the two re-runs the cell, never trusts a missing
                // or half-written checkpoint.
                match save_models(&models, shared.dir.join(&checkpoint)) {
                    Ok(()) => {
                        if !shared.append(&ManifestRecord::Done {
                            cell: cell.id.clone(),
                            attempt,
                            metrics: metrics.clone(),
                            checkpoint,
                        }) {
                            return;
                        }
                        extradeep_obs::counter("campaign.cells_done").add(1);
                        extradeep_obs::info!("campaign: cell {} done (attempt {attempt})", cell.id);
                        shared.push(Outcome::Done {
                            id: cell.id.clone(),
                            attempts: attempt,
                            metrics,
                        });
                        shared.maybe_crash();
                        return;
                    }
                    Err(e) => CellError::Io(format!("checkpoint write failed: {e}")),
                }
            }
            Err(e) => e,
        };

        shared.failed_attempts.fetch_add(1, Ordering::Relaxed);
        if matches!(err, CellError::Timeout { .. }) {
            extradeep_obs::counter("campaign.cells_timed_out").add(1);
        }
        if !shared.append(&ManifestRecord::Failed {
            cell: cell.id.clone(),
            attempt,
            error: err.to_string(),
            transient: err.is_transient(),
        }) {
            return;
        }
        if !err.is_transient() || attempt >= max_attempts {
            extradeep_obs::warn!(
                "campaign: cell {} quarantined after {attempt} attempt(s): {err}",
                cell.id
            );
            if !shared.append(&ManifestRecord::Quarantined {
                cell: cell.id.clone(),
                attempts: attempt,
                error: err.to_string(),
            }) {
                return;
            }
            extradeep_obs::counter("campaign.cells_quarantined").add(1);
            shared.push(Outcome::Quarantined {
                id: cell.id.clone(),
                attempts: attempt,
                error: err.to_string(),
            });
            return;
        }
        extradeep_obs::counter("campaign.cells_retried").add(1);
        let delay = backoff_delay(shared.exec, &cell.id, attempt, cell.seed);
        extradeep_obs::warn!(
            "campaign: cell {} attempt {attempt} failed ({err}); retrying in {} ms",
            cell.id,
            delay.as_millis()
        );
        std::thread::sleep(delay);
    }
}

/// Runs (or resumes) a campaign in `dir`. The directory owns the manifest
/// journal and the per-cell checkpoint files; pointing a second invocation
/// at the same directory with the same spec continues where the first died.
pub fn run_campaign(
    spec: &CampaignSpec,
    dir: &Path,
    opts: &RunOptions,
) -> Result<CampaignReport, CampaignError> {
    let _span = extradeep_obs::span("core.campaign");
    let started = std::time::Instant::now();
    let cells = spec.expand()?;
    if cells.is_empty() {
        return Err(CampaignError::Spec(
            "campaign expands to zero cells".to_string(),
        ));
    }
    std::fs::create_dir_all(dir.join("cells"))?;
    let manifest_path = dir.join(MANIFEST_FILE);

    // Replay whatever a previous life left behind; truncate the torn tail.
    let replay = replay_manifest(&manifest_path)?;
    if replay.torn_bytes > 0 {
        extradeep_obs::warn!(
            "campaign: manifest has a torn tail ({} byte(s)); truncating to last good record",
            replay.torn_bytes
        );
        extradeep_obs::counter("campaign.torn_bytes_recovered").add(replay.torn_bytes);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&manifest_path)?;
        file.set_len(replay.valid_bytes)?;
        file.sync_data()?;
    }

    let digest = spec.digest();
    let mut state = ResumeState::fold(&replay.records);
    if let Some((_, found)) = &state.header {
        if *found != digest {
            return Err(CampaignError::ManifestMismatch {
                expected: digest,
                found: found.clone(),
            });
        }
    }

    // Validate resumed checkpoints: a cell whose models file was torn
    // mid-write (CorruptCheckpoint) — or lost entirely — is pending again.
    let mut corrupt_checkpoints = 0usize;
    let invalid: Vec<String> = state
        .done
        .iter()
        .filter_map(
            |(id, (_, _, checkpoint))| match load_models(dir.join(checkpoint)) {
                Ok(_) => None,
                Err(e) => {
                    let detail = match &e {
                        PersistError::CorruptCheckpoint { path, offset } => {
                            format!("torn checkpoint {path} (valid to byte {offset})")
                        }
                        other => other.to_string(),
                    };
                    extradeep_obs::warn!(
                        "campaign: cell {id}: checkpoint invalid ({detail}); re-running"
                    );
                    Some(id.clone())
                }
            },
        )
        .collect();
    for id in &invalid {
        state.done.remove(id);
        corrupt_checkpoints += 1;
        extradeep_obs::counter("campaign.corrupt_checkpoints").add(1);
    }
    let resumed_done = state.done.len();

    let mut writer = ManifestWriter::open(&manifest_path)?;
    if state.header.is_none() {
        writer.append(&ManifestRecord::Campaign {
            name: spec.name.clone(),
            digest: digest.clone(),
            cells: cells.len() as u64,
            version: MANIFEST_VERSION,
        })?;
    }

    let pending: Vec<&CellSpec> = cells
        .iter()
        .filter(|c| !state.done.contains_key(&c.id) && !state.quarantined.contains_key(&c.id))
        .collect();
    extradeep_obs::info!(
        "campaign '{}': {} cell(s), {} resumed done, {} quarantined, {} pending",
        spec.name,
        cells.len(),
        resumed_done,
        state.quarantined.len(),
        pending.len()
    );

    let shared = Shared {
        writer: Mutex::new(writer),
        outcomes: Mutex::new(Vec::new()),
        exec: &spec.execution,
        analysis: &spec.analysis,
        dir,
        crash_budget: AtomicI64::new(match opts.crash_after_done {
            Some(n) => n as i64,
            None => -1,
        }),
        failed_attempts: AtomicU64::new(0),
        io_error: Mutex::new(None),
    };

    if !pending.is_empty() {
        let parallelism = opts
            .parallelism
            .unwrap_or(spec.execution.parallelism)
            .clamp(1, 64)
            .min(pending.len());
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(parallelism)
            .thread_name(|i| format!("campaign-pool-{i}"))
            .build()
            .map_err(|e| CampaignError::Spec(format!("cannot build scheduler pool: {e}")))?;
        pool.install(|| {
            use rayon::prelude::*;
            pending.par_iter().for_each(|cell| {
                let prior = state.attempts.get(&cell.id).copied().unwrap_or(0);
                run_cell(cell, prior, &shared);
            });
        });
    }

    let io_error = match shared.io_error.lock() {
        Ok(mut slot) => slot.take(),
        Err(poisoned) => poisoned.into_inner().take(),
    };
    if let Some(e) = io_error {
        return Err(e);
    }

    // Roll-up: resumed results (from the journal) + this life's outcomes.
    let mut done: BTreeMap<String, CellReport> = state
        .done
        .into_iter()
        .map(|(id, (attempt, metrics, _))| {
            let attempts = state.attempts.get(&id).copied().unwrap_or(attempt);
            (
                id.clone(),
                CellReport {
                    id,
                    attempts,
                    metrics,
                },
            )
        })
        .collect();
    let mut quarantined: BTreeMap<String, QuarantineEntry> = state
        .quarantined
        .into_iter()
        .map(|(id, (attempts, error))| {
            (
                id.clone(),
                QuarantineEntry {
                    id,
                    attempts,
                    error,
                },
            )
        })
        .collect();
    let outcomes = match shared.outcomes.into_inner() {
        Ok(o) => o,
        Err(poisoned) => poisoned.into_inner(),
    };
    let executed = outcomes.len();
    for outcome in outcomes {
        match outcome {
            Outcome::Done {
                id,
                attempts,
                metrics,
            } => {
                done.insert(
                    id.clone(),
                    CellReport {
                        id,
                        attempts,
                        metrics,
                    },
                );
            }
            Outcome::Quarantined {
                id,
                attempts,
                error,
            } => {
                quarantined.insert(
                    id.clone(),
                    QuarantineEntry {
                        id,
                        attempts,
                        error,
                    },
                );
            }
        }
    }

    Ok(CampaignReport {
        name: spec.name.clone(),
        digest,
        probe_ranks: spec.analysis.probe_ranks,
        total_cells: cells.len(),
        resumed_done,
        executed,
        failed_attempts: state.failed_attempts + shared.failed_attempts.load(Ordering::Relaxed),
        torn_bytes_recovered: replay.torn_bytes,
        corrupt_checkpoints,
        wall_ms: started.elapsed().as_millis() as u64,
        cells: done.into_values().collect(),
        quarantined: quarantined.into_values().collect(),
    })
}

// ---------------------------------------------------------------------------
// Roll-up report
// ---------------------------------------------------------------------------

/// One surviving cell in the roll-up.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct CellReport {
    pub id: String,
    pub attempts: u32,
    pub metrics: CellMetrics,
}

/// One quarantined cell: the explicit attribution the matrix owes the
/// operator for every cell it gave up on.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct QuarantineEntry {
    pub id: String,
    pub attempts: u32,
    pub error: String,
}

/// The campaign roll-up: every surviving cell's metrics plus the
/// quarantine table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    pub name: String,
    pub digest: String,
    pub probe_ranks: f64,
    pub total_cells: usize,
    /// Cells whose results were replayed from the manifest (earlier life).
    pub resumed_done: usize,
    /// Cells actually executed by this invocation.
    pub executed: usize,
    pub failed_attempts: u64,
    pub torn_bytes_recovered: u64,
    pub corrupt_checkpoints: usize,
    pub wall_ms: u64,
    pub cells: Vec<CellReport>,
    pub quarantined: Vec<QuarantineEntry>,
}

impl CampaignReport {
    /// True when every cell completed.
    pub fn is_complete(&self) -> bool {
        self.quarantined.is_empty() && self.cells.len() == self.total_cells
    }

    /// Deterministic projection of the campaign *results* — cell metrics
    /// and quarantined ids, excluding attempt counts and wall time — so an
    /// interrupted-and-resumed run can be proven equal to an uninterrupted
    /// one byte-for-byte.
    pub fn fingerprint(&self) -> String {
        let metrics: BTreeMap<&str, &CellMetrics> = self
            .cells
            .iter()
            .map(|c| (c.id.as_str(), &c.metrics))
            .collect();
        let mut quarantined: Vec<&str> = self.quarantined.iter().map(|q| q.id.as_str()).collect();
        quarantined.sort_unstable();
        serde_json::to_string(&(metrics, quarantined)).unwrap_or_default()
    }

    /// Plain-text roll-up with the cells table and the quarantine table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== Campaign '{}' ==\n{} cell(s): {} done ({} resumed), {} quarantined, \
             {} failed attempt(s), {:.1} s wall\n",
            self.name,
            self.total_cells,
            self.cells.len(),
            self.resumed_done,
            self.quarantined.len(),
            self.failed_attempts,
            self.wall_ms as f64 / 1000.0
        ));
        if self.torn_bytes_recovered > 0 {
            out.push_str(&format!(
                "Recovered a torn manifest tail ({} byte(s) truncated).\n",
                self.torn_bytes_recovered
            ));
        }
        if self.corrupt_checkpoints > 0 {
            out.push_str(&format!(
                "{} corrupt checkpoint(s) detected and re-run.\n",
                self.corrupt_checkpoints
            ));
        }
        if !self.cells.is_empty() {
            out.push_str(&format!(
                "\nSurviving cells (probe {} ranks):\n",
                self.probe_ranks
            ));
            let mut t = Table::new(&["cell", "att", "epoch [s]", "comm", "core-h", "mpe"]);
            for c in &self.cells {
                t.add_row(vec![
                    c.id.clone(),
                    c.attempts.to_string(),
                    fmt(c.metrics.epoch_seconds_at_probe, 2),
                    pct(c.metrics.communication_share_percent),
                    fmt(c.metrics.core_hours_at_probe, 2),
                    pct(c.metrics.mpe_vs_oracle_percent),
                ]);
            }
            out.push_str(&t.render());
            if let Some(best) = self.cells.iter().min_by(|a, b| {
                a.metrics
                    .core_hours_at_probe
                    .total_cmp(&b.metrics.core_hours_at_probe)
            }) {
                out.push_str(&format!(
                    "Cheapest at probe: {} ({} core-hours/epoch)\n",
                    best.id,
                    fmt(best.metrics.core_hours_at_probe, 2)
                ));
            }
        }
        if !self.quarantined.is_empty() {
            out.push_str("\nQuarantined cells:\n");
            let mut t = Table::new(&["cell", "attempts", "last error"]);
            for q in &self.quarantined {
                t.add_row(vec![q.id.clone(), q.attempts.to_string(), q.error.clone()]);
            }
            out.push_str(&t.render());
        }
        out
    }

    /// Markdown roll-up for CI artifacts.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# Campaign '{}'\n\n", self.name));
        out.push_str(&format!(
            "{} cell(s): **{} done** ({} resumed), **{} quarantined**, \
             {} failed attempt(s), {:.1} s wall.\n\n",
            self.total_cells,
            self.cells.len(),
            self.resumed_done,
            self.quarantined.len(),
            self.failed_attempts,
            self.wall_ms as f64 / 1000.0
        ));
        if !self.cells.is_empty() {
            out.push_str(&format!(
                "## Surviving cells (probe {} ranks)\n\n\
                 | Cell | Attempts | Epoch [s] | Comm share | Core-h | MPE vs oracle |\n\
                 |---|---|---|---|---|---|\n",
                self.probe_ranks
            ));
            for c in &self.cells {
                out.push_str(&format!(
                    "| `{}` | {} | {:.2} | {:.1}% | {:.2} | {:.2}% |\n",
                    c.id,
                    c.attempts,
                    c.metrics.epoch_seconds_at_probe,
                    c.metrics.communication_share_percent,
                    c.metrics.core_hours_at_probe,
                    c.metrics.mpe_vs_oracle_percent
                ));
            }
            out.push('\n');
        }
        if !self.quarantined.is_empty() {
            out.push_str(
                "## Quarantined cells\n\n| Cell | Attempts | Last error |\n|---|---|---|\n",
            );
            for q in &self.quarantined {
                out.push_str(&format!("| `{}` | {} | {} |\n", q.id, q.attempts, q.error));
            }
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Hashes
// ---------------------------------------------------------------------------

/// FNV-1a 32-bit: the per-line manifest checksum. Not cryptographic — it
/// detects torn writes and bit rot, which is all a local journal needs.
fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// FNV-1a 64-bit: spec digests and deterministic backoff jitter.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Resolves the default campaign directory for a spec file:
/// `<spec-stem>.campaign` next to the spec.
pub fn default_campaign_dir(spec_path: &Path) -> PathBuf {
    let stem = spec_path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "campaign".to_string());
    spec_path.with_file_name(format!("{stem}.campaign"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> CampaignSpec {
        let mut spec = CampaignSpec {
            name: "unit".to_string(),
            ..CampaignSpec::default()
        };
        spec.grid.ranks = vec![vec![2, 4, 6]];
        spec.grid.max_recorded_ranks = 1;
        spec.execution.parallelism = 1;
        spec.execution.timeout_ms = 60_000;
        spec.execution.backoff_base_ms = 1;
        spec.execution.backoff_cap_ms = 4;
        spec
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("extradeep-campaign-unit")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn spec_parses_with_defaults_and_rejects_unknown_fields() {
        let spec = CampaignSpec::from_json(r#"{"name": "x"}"#).unwrap();
        assert_eq!(spec.name, "x");
        assert_eq!(spec.grid.benchmarks, vec!["cifar10"]);
        assert_eq!(spec.execution.max_attempts, 3);

        let err = CampaignSpec::from_json(r#"{"name": "x", "timout_ms": 5}"#);
        assert!(matches!(err, Err(CampaignError::Spec(_))));
    }

    #[test]
    fn expansion_is_deterministic_and_ids_are_stable() {
        let mut spec = tiny_spec();
        spec.grid.systems = vec!["deep".to_string(), "jureca".to_string()];
        spec.grid.seeds = vec![1, 2];
        let a = spec.expand().unwrap();
        let b = spec.expand().unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert_eq!(a[0].id, "cifar10-deep-data-weak-bsp-r2.4.6-s1");
        assert_eq!(a[3].id, "cifar10-jureca-data-weak-bsp-r2.4.6-s2");
    }

    #[test]
    fn expansion_rejects_unknown_names_and_bad_sabotage() {
        let mut spec = tiny_spec();
        spec.grid.strategies = vec!["magic".to_string()];
        assert!(matches!(spec.expand(), Err(CampaignError::Spec(_))));

        let mut spec = tiny_spec();
        spec.sabotage.insert("*".to_string(), "explode".to_string());
        assert!(matches!(spec.expand(), Err(CampaignError::Spec(_))));
    }

    #[test]
    fn digest_tracks_spec_content() {
        let a = tiny_spec();
        let mut b = tiny_spec();
        assert_eq!(a.digest(), b.digest());
        b.execution.timeout_ms += 1;
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn sabotage_grammar_round_trips() {
        assert_eq!(Sabotage::parse("panic").unwrap(), Sabotage::Panic);
        assert_eq!(
            Sabotage::parse("hang=250").unwrap(),
            Sabotage::Hang { ms: 250 }
        );
        assert_eq!(
            Sabotage::parse("hang-once=10").unwrap(),
            Sabotage::HangOnce { ms: 10 }
        );
        assert_eq!(
            Sabotage::parse("fail=2").unwrap(),
            Sabotage::Fail { attempts: 2 }
        );
        assert!(Sabotage::parse("hang").is_err());
        assert!(Sabotage::parse("fail=lots").is_err());
        assert!(Sabotage::parse("frobnicate").is_err());
    }

    #[test]
    fn manifest_records_round_trip_through_the_journal() {
        let records = vec![
            ManifestRecord::Campaign {
                name: "x".to_string(),
                digest: "abc".to_string(),
                cells: 3,
                version: MANIFEST_VERSION,
            },
            ManifestRecord::Start {
                cell: "c1".to_string(),
                attempt: 1,
            },
            ManifestRecord::Failed {
                cell: "c1".to_string(),
                attempt: 1,
                error: "timed out after 5 ms".to_string(),
                transient: true,
            },
            ManifestRecord::Quarantined {
                cell: "c1".to_string(),
                attempts: 3,
                error: "panicked: boom".to_string(),
            },
        ];
        let dir = tmp_dir("roundtrip");
        let path = dir.join(MANIFEST_FILE);
        let mut writer = ManifestWriter::open(&path).unwrap();
        for rec in &records {
            writer.append(rec).unwrap();
        }
        let replay = replay_manifest(&path).unwrap();
        assert_eq!(replay.records, records);
        assert_eq!(replay.torn_bytes, 0);
        assert_eq!(replay.valid_bytes, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_stops_at_torn_tail_and_reports_byte_offsets() {
        let dir = tmp_dir("torn");
        let path = dir.join(MANIFEST_FILE);
        let rec = ManifestRecord::Start {
            cell: "c1".to_string(),
            attempt: 1,
        };
        let good = rec.encode().unwrap();
        // A valid record followed by the torn prefix of a second write.
        let torn = &good[..good.len() / 2];
        std::fs::write(&path, format!("{good}{torn}")).unwrap();
        let replay = replay_manifest(&path).unwrap();
        assert_eq!(replay.records, vec![rec]);
        assert_eq!(replay.valid_bytes, good.len() as u64);
        assert_eq!(replay.torn_bytes, torn.len() as u64);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rejects_checksum_mismatch_mid_file() {
        let dir = tmp_dir("crc");
        let path = dir.join(MANIFEST_FILE);
        let a = ManifestRecord::Start {
            cell: "a".to_string(),
            attempt: 1,
        };
        let b = ManifestRecord::Start {
            cell: "b".to_string(),
            attempt: 1,
        };
        let mut text = a.encode().unwrap();
        // Flip one payload byte of the second record: its CRC no longer
        // matches, so replay must stop after the first record.
        let corrupted = b.encode().unwrap().replace("\"b\"", "\"c\"");
        text.push_str(&corrupted);
        std::fs::write(&path, &text).unwrap();
        let replay = replay_manifest(&path).unwrap();
        assert_eq!(replay.records, vec![a]);
        assert!(replay.torn_bytes > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_of_missing_manifest_is_empty_not_fatal() {
        let replay = replay_manifest(Path::new("/nonexistent/extradeep/manifest.jsonl")).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.valid_bytes, 0);
    }

    #[test]
    fn resume_state_treats_start_without_terminal_event_as_pending() {
        let records = vec![
            ManifestRecord::Start {
                cell: "c1".to_string(),
                attempt: 1,
            },
            ManifestRecord::Start {
                cell: "c1".to_string(),
                attempt: 2,
            },
        ];
        let state = ResumeState::fold(&records);
        assert!(state.done.is_empty());
        assert!(state.quarantined.is_empty());
        assert_eq!(state.attempts.get("c1"), Some(&2));
    }

    #[test]
    fn backoff_is_capped_deterministic_and_grows() {
        let exec = ExecutionSpec {
            backoff_base_ms: 10,
            backoff_cap_ms: 100,
            ..ExecutionSpec::default()
        };
        let d1 = backoff_delay(&exec, "cell", 1, 7);
        let d2 = backoff_delay(&exec, "cell", 2, 7);
        assert_eq!(d1, backoff_delay(&exec, "cell", 1, 7));
        // Delay at attempt n is in [base·2^(n-1), 1.5·base·2^(n-1)] up to
        // the cap (+50% jitter).
        assert!(d1.as_millis() >= 10 && d1.as_millis() <= 15, "{d1:?}");
        assert!(d2.as_millis() >= 20 && d2.as_millis() <= 30, "{d2:?}");
        let d9 = backoff_delay(&exec, "cell", 9, 7);
        assert!(d9.as_millis() <= 150, "cap exceeded: {d9:?}");
        // Jitter differs across cells (no thundering herd).
        assert_ne!(
            backoff_delay(&exec, "cell-a", 4, 7),
            backoff_delay(&exec, "cell-b", 4, 7)
        );
    }

    #[test]
    fn fnv_hashes_are_stable() {
        // Reference vectors for the FNV-1a constants; a silent change here
        // would orphan every existing manifest.
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn default_campaign_dir_derives_from_spec_stem() {
        assert_eq!(
            default_campaign_dir(Path::new("/tmp/sweep.json")),
            PathBuf::from("/tmp/sweep.campaign")
        );
    }

    #[test]
    fn transient_classification_matches_retry_policy() {
        assert!(CellError::Timeout { ms: 5 }.is_transient());
        assert!(CellError::Panicked("x".to_string()).is_transient());
        assert!(CellError::Transient("x".to_string()).is_transient());
        assert!(CellError::Io("x".to_string()).is_transient());
        assert!(!CellError::Modeling("x".to_string()).is_transient());
    }
}
