//! Feeding the pipeline's own profile back into the modeler.
//!
//! [`extradeep_obs`] records what the pipeline does; this module re-emits
//! that recording as an [`extradeep_trace`] event stream — the same format
//! the pipeline consumes — so the unmodified aggregation and modeling stages
//! can fit scaling models *of the pipeline itself* ("how does the hypothesis
//! search scale with input size?").
//!
//! ## Encoding
//!
//! One obs [`Snapshot`] becomes one [`ConfigProfile`]:
//!
//! - All spans land in a **single rank** (rank 0). The aggregation takes the
//!   median over ranks that executed a kernel; splitting the pipeline's
//!   threads across synthetic ranks would turn totals into medians and break
//!   them. Within one rank everything sums, which is what a wall-time total
//!   means.
//! - Each span becomes an [`ApiDomain::Nvtx`] event named after the span, so
//!   the `<crate>.` prefix survives as the kernel name and per-stage models
//!   fall out of the ordinary per-kernel loop.
//! - **Epoch 0 is empty**: the default [`AggregationOptions`] treats the
//!   first epoch as warm-up and drops its steps. The real content sits in
//!   epoch 1 as one all-covering training step.
//! - The [`TrainingMeta`] pins `n_t = 1, n_v = 0`, so the derived per-epoch
//!   metric `F = n_t·ṽ_t + outside` equals the raw recorded totals.
//! - Counters become zero-duration events whose `visits` field carries the
//!   count, making them modelable under [`MetricKind::Visits`].
//!
//! [`AggregationOptions`]: extradeep_agg::AggregationOptions
//! [`MetricKind::Visits`]: extradeep_trace::MetricKind::Visits

use extradeep_obs::Snapshot;
use extradeep_trace::{
    ApiDomain, ConfigProfile, EpochMark, Event, ExperimentProfiles, MeasurementConfig, RankProfile,
    StepMark, StepPhase, TrainingMeta,
};

/// The modeled coordinate of a self-profile experiment: the work scale the
/// pipeline run corresponds to (e.g. rank-count sweep size, kernel count).
pub const SELF_PARAMETER: &str = "work";

/// Padding around the recorded spans inside the synthetic training step.
const PAD_NS: u64 = 1_000;

fn self_meta() -> TrainingMeta {
    TrainingMeta {
        batch_size: 1,
        train_samples: 1,
        val_samples: 0,
        data_parallel: 1,
        model_parallel: 1,
        cores_per_rank: 1,
    }
}

/// Converts one obs snapshot into a trace profile at coordinate `work`.
pub fn self_profile_config(snap: &Snapshot, work: f64, repetition: u32) -> ConfigProfile {
    let config = MeasurementConfig::new(vec![(SELF_PARAMETER.to_string(), work)]);
    let mut profile = ConfigProfile::new(config, repetition, self_meta());

    // Normalize span timestamps so the stream starts shortly after the
    // (empty, warm-up) epoch 0.
    let t0 = snap.spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    let shift = |t: u64| t - t0 + 2 * PAD_NS;

    let mut rank = RankProfile::new(0);
    for s in &snap.spans {
        rank.events.push(Event::new(
            s.name.as_ref(),
            ApiDomain::Nvtx,
            shift(s.start_ns),
            s.dur_ns.max(1),
        ));
    }
    let step_start = PAD_NS;
    let content_end = snap
        .spans
        .iter()
        .map(|s| shift(s.end_ns()))
        .max()
        .unwrap_or(step_start);
    for c in &snap.counters {
        if c.value == 0 {
            continue;
        }
        // `visits` carries the counter reading; `with_visits` clamps to ≥ 1,
        // which is fine here since zero counters are skipped above.
        rank.events.push(
            Event::new(c.name.as_str(), ApiDomain::Nvtx, content_end, 1).with_visits(c.value),
        );
    }
    let step_end = content_end + PAD_NS;

    // Epoch 0: the synthetic warm-up round the default aggregation drops.
    rank.epoch_marks.push(EpochMark::new(0, 0, 1));
    // Epoch 1: one training step covering every recorded span and counter.
    rank.step_marks.push(StepMark::new(
        1,
        0,
        StepPhase::Training,
        step_start,
        step_end,
    ));
    rank.epoch_marks
        .push(EpochMark::new(1, step_start, step_end));

    profile.execution_seconds = extradeep_trace::units::ns_to_secs(step_end - step_start);
    profile.ranks.push(rank);
    profile
}

/// Bundles `(work, snapshot)` pairs — e.g. one pipeline run per input scale
/// — into an experiment the ordinary modeling stack can fit.
pub fn self_profile_experiment(runs: &[(f64, Snapshot)]) -> ExperimentProfiles {
    use rayon::prelude::*;
    // Snapshot → profile conversion is independent per run; rayon's ordered
    // collect keeps the profiles in the caller's run order.
    let profiles: Vec<ConfigProfile> = runs
        .par_iter()
        .map(|(work, snap)| self_profile_config(snap, *work, 0))
        .collect();
    let mut exp = ExperimentProfiles::new();
    for p in profiles {
        exp.push(p);
    }
    exp
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_obs::{CounterValue, SpanRecord};

    fn snap_with(spans: Vec<SpanRecord>, counters: Vec<CounterValue>) -> Snapshot {
        Snapshot {
            spans,
            counters,
            ..Default::default()
        }
    }

    fn span(name: &'static str, start: u64, dur: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            start_ns: start,
            dur_ns: dur,
            tid: 0,
            depth: 0,
        }
    }

    #[test]
    fn spans_land_inside_the_training_step() {
        let p = self_profile_config(
            &snap_with(
                vec![
                    span("model.search", 5_000, 2_000),
                    span("agg.experiment", 9_000, 500),
                ],
                vec![],
            ),
            4.0,
            0,
        );
        assert_eq!(p.num_ranks(), 1);
        let rank = &p.ranks[0];
        let step = &rank.step_marks[0];
        assert_eq!(step.epoch, 1);
        for e in &rank.events {
            assert!(e.start_ns >= step.start_ns && e.end_ns() <= step.end_ns);
        }
        assert_eq!(p.config.value(SELF_PARAMETER), Some(4.0));
        // n_t = 1, n_v = 0: per-epoch totals equal raw totals.
        assert_eq!(p.meta.training_steps_per_epoch(), 1);
        assert_eq!(p.meta.validation_steps_per_epoch(), 0);
    }

    #[test]
    fn counters_become_visit_events() {
        let p = self_profile_config(
            &snap_with(
                vec![span("model.search", 0, 100)],
                vec![
                    CounterValue {
                        name: "model.search.hypotheses".to_string(),
                        value: 61,
                    },
                    CounterValue {
                        name: "model.loocv.fallback_folds".to_string(),
                        value: 0,
                    },
                ],
            ),
            2.0,
            0,
        );
        let events = &p.ranks[0].events;
        let c = events
            .iter()
            .find(|e| &*e.name == "model.search.hypotheses")
            .unwrap();
        assert_eq!(c.visits, 61);
        // Zero counters are dropped, not emitted as visits=1 noise.
        assert!(!events
            .iter()
            .any(|e| &*e.name == "model.loocv.fallback_folds"));
    }

    #[test]
    fn empty_snapshot_still_yields_a_wellformed_profile() {
        let p = self_profile_config(&Snapshot::default(), 1.0, 0);
        assert_eq!(p.num_ranks(), 1);
        assert!(p.ranks[0].events.is_empty());
        assert_eq!(p.ranks[0].step_marks.len(), 1);
    }

    #[test]
    fn experiment_carries_one_config_per_work_scale() {
        let runs: Vec<(f64, Snapshot)> = (1..=5)
            .map(|w| {
                (
                    w as f64,
                    snap_with(vec![span("core.model_set", 0, 1000 * w)], vec![]),
                )
            })
            .collect();
        let exp = self_profile_experiment(&runs);
        assert_eq!(exp.len(), 5);
        assert_eq!(exp.configs().len(), 5);
    }
}
