//! End-to-end experiment orchestration: simulate (or load) profiles at the
//! modeling points, aggregate, model, then measure predictive power against
//! held-out evaluation points — the workflow behind every figure of §4.

use crate::evaluate::AccuracyReport;
use crate::modelset::{build_model_set, ModelSet, ModelSetOptions};
use extradeep_agg::{aggregate_experiment, AggregatedExperiment, AggregationOptions};
use extradeep_model::{ExperimentData, ModelingError};
use extradeep_sim::{ExperimentSpec, ScalingMode};
use extradeep_trace::MetricKind;

/// A full modeling experiment: measurement configurations split into the
/// modeling set `P(x1)` and the evaluation set `P+(x1)` (paper §2.3/§4.1).
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    pub spec: ExperimentSpec,
    /// Rank counts used for model creation, e.g. `{2,4,6,8,10}` on DEEP.
    pub modeling_points: Vec<u32>,
    /// Held-out rank counts for predictive-power evaluation,
    /// e.g. `{12,16,24,32,40,48,56,64}` on DEEP.
    pub evaluation_points: Vec<u32>,
}

/// The paper's point sets per system (§4.1, "Experiment configuration").
pub fn deep_point_sets() -> (Vec<u32>, Vec<u32>) {
    (vec![2, 4, 6, 8, 10], vec![12, 16, 24, 32, 40, 48, 56, 64])
}

pub fn jureca_point_sets() -> (Vec<u32>, Vec<u32>) {
    (
        vec![8, 16, 24, 32, 40],
        vec![12, 48, 64, 96, 128, 160, 192, 224, 256],
    )
}

/// The outcome of one experiment for one metric.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    pub models: ModelSet,
    /// Aggregated data of the modeling configurations.
    pub modeling_agg: AggregatedExperiment,
    /// Aggregated data of the evaluation configurations.
    pub evaluation_agg: AggregatedExperiment,
    /// Accuracy of the application epoch model.
    pub epoch_report: AccuracyReport,
    /// Measured epoch data (modeling, evaluation) used for the report.
    pub epoch_modeling_data: ExperimentData,
    pub epoch_evaluation_data: ExperimentData,
}

impl ExperimentPlan {
    /// Modeler options appropriate for this plan's scaling mode.
    pub fn default_model_options(&self) -> ModelSetOptions {
        match self.spec.scaling {
            ScalingMode::Weak => ModelSetOptions::default(),
            ScalingMode::Strong => ModelSetOptions::strong_scaling(),
        }
    }

    /// Runs the full pipeline for one metric.
    pub fn execute(&self, metric: MetricKind) -> Result<ExperimentOutcome, ModelingError> {
        self.execute_with(metric, &self.default_model_options())
    }

    /// Runs the measurements of both point sets and aggregates them,
    /// without modeling: `(modeling, evaluation)` aggregates.
    pub fn aggregate(&self) -> (AggregatedExperiment, AggregatedExperiment) {
        let agg_opts = AggregationOptions::default();

        let mut modeling_spec = self.spec.clone();
        modeling_spec.rank_counts = self.modeling_points.clone();
        let modeling_agg = aggregate_experiment(&modeling_spec.run(), &agg_opts);

        let mut eval_spec = self.spec.clone();
        eval_spec.rank_counts = self.evaluation_points.clone();
        // Evaluation measurements use an independent noise stream: the model
        // must predict runs it has never seen.
        eval_spec.profiler.seed = self.spec.profiler.seed.wrapping_add(0x5EED_0E7A);
        let evaluation_agg = aggregate_experiment(&eval_spec.run(), &agg_opts);
        (modeling_agg, evaluation_agg)
    }

    /// Runs the full pipeline with explicit model options.
    pub fn execute_with(
        &self,
        metric: MetricKind,
        options: &ModelSetOptions,
    ) -> Result<ExperimentOutcome, ModelingError> {
        let (modeling_agg, evaluation_agg) = self.aggregate();
        let models = build_model_set(&modeling_agg, metric, options)?;

        let epoch_modeling_data = modeling_agg.app_dataset(metric, None);
        let epoch_evaluation_data = evaluation_agg.app_dataset(metric, None);
        let epoch_report = AccuracyReport::new(
            &models.app.epoch,
            &epoch_modeling_data,
            &epoch_evaluation_data,
        );

        Ok(ExperimentOutcome {
            models,
            modeling_agg,
            evaluation_agg,
            epoch_report,
            epoch_modeling_data,
            epoch_evaluation_data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_sim::ProfilerOptions;

    fn quick_plan() -> ExperimentPlan {
        let mut spec = ExperimentSpec::case_study(vec![]);
        spec.repetitions = 2;
        spec.profiler = ProfilerOptions {
            max_recorded_ranks: 2,
            ..Default::default()
        };
        ExperimentPlan {
            spec,
            modeling_points: vec![2, 4, 6, 8, 10],
            evaluation_points: vec![16, 32],
        }
    }

    #[test]
    fn point_sets_match_the_paper() {
        let (m, e) = deep_point_sets();
        assert_eq!(m, vec![2, 4, 6, 8, 10]);
        assert_eq!(e.last(), Some(&64));
        let (mj, ej) = jureca_point_sets();
        assert_eq!(mj, vec![8, 16, 24, 32, 40]);
        assert_eq!(ej.last(), Some(&256));
    }

    #[test]
    fn pipeline_produces_accurate_epoch_model() {
        let outcome = quick_plan().execute(MetricKind::Time).unwrap();
        // Model accuracy at fit points should be high (paper: MPE 0.4-1.4%).
        let acc = outcome.epoch_report.model_accuracy_mpe();
        assert!(acc < 5.0, "model accuracy MPE {acc}%");
        // Predictive power within the paper's band at modest extrapolation.
        let pp = outcome.epoch_report.predictive_power_mpe();
        assert!(pp < 30.0, "predictive power MPE {pp}%");
    }

    #[test]
    fn evaluation_uses_fresh_noise() {
        let plan = quick_plan();
        let outcome = plan.execute(MetricKind::Time).unwrap();
        // Evaluation configs exist and differ from modeling configs.
        assert_eq!(outcome.epoch_evaluation_data.len(), 2);
        assert_eq!(outcome.epoch_modeling_data.len(), 5);
    }
}
