//! Extrapolation-validation harness — the "can I trust this model?" layer.
//!
//! The paper's headline result is prediction accuracy at *extrapolated*
//! scale (§4, Table 3): models are fitted at a handful of cheap small-scale
//! configurations and evaluated against held-out larger runs. This module
//! closes that loop inside the pipeline: given a fitted [`ModelSet`], it
//! re-runs the simulator at one or more held-out scales, evaluates every
//! kernel and application model there, checks the empirical calibration of
//! the 95% prediction band, and flags models whose error or miscalibration
//! exceeds configurable thresholds.
//!
//! The result feeds three consumers: the `extradeep doctor` CLI subcommand
//! (terminal table + JSON + markdown report), the `doctor` stage of
//! `extradeep pipeline` (with `--strict` as a CI quality gate), and the
//! `bench_doctor` accuracy-trajectory emitter.

use crate::modelset::ModelSet;
use crate::report::{fmt, Table};
use extradeep_agg::{aggregate_experiment, AggregatedExperiment, AggregationOptions};
use extradeep_model::measurement::median;
use extradeep_model::{diagnose, ExperimentData, Model};
use extradeep_sim::ExperimentSpec;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Quality thresholds a model must meet at the held-out scales.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DoctorThresholds {
    /// Maximum tolerated median percentage error at the held-out scales.
    pub max_mpe_percent: f64,
    /// Minimum tolerated empirical coverage of the 95% prediction band
    /// (fraction of held-out repetition values inside the band). A
    /// well-calibrated band sits near 0.95; below this floor the band's
    /// confidence claim is considered broken.
    pub min_band_coverage: f64,
}

impl Default for DoctorThresholds {
    fn default() -> Self {
        DoctorThresholds {
            max_mpe_percent: 20.0,
            min_band_coverage: 0.85,
        }
    }
}

/// Why a model was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QualityFlag {
    /// Median percentage error at the held-out scales exceeds the threshold.
    HighError,
    /// The 95% band covered too few held-out repetition values.
    Miscalibrated,
}

impl QualityFlag {
    pub fn label(self) -> &'static str {
        match self {
            QualityFlag::HighError => "high-error",
            QualityFlag::Miscalibrated => "miscalibrated",
        }
    }
}

/// Validation verdict for one model (a kernel or an application phase).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelValidation {
    pub name: String,
    /// The fitted function, rendered with parameter names.
    pub function: String,
    /// Median percentage error at the fit points ("model accuracy").
    pub fit_mpe: f64,
    /// Adjusted R² at the fit points.
    pub adjusted_r_squared: f64,
    /// Median percentage error at the held-out scales ("predictive power").
    pub validation_mpe: f64,
    /// Percentage error per held-out scale `(scale, percent_error)`.
    pub per_scale_percent_error: Vec<(f64, f64)>,
    /// Empirical 95%-band coverage over held-out repetitions, `[0, 1]`
    /// (absent when the model carries no band).
    pub band_coverage: Option<f64>,
    pub flags: Vec<QualityFlag>,
}

impl ModelValidation {
    pub fn is_flagged(&self) -> bool {
        !self.flags.is_empty()
    }

    fn flag_cell(&self) -> String {
        if self.flags.is_empty() {
            "ok".to_string()
        } else {
            self.flags
                .iter()
                .map(|f| f.label())
                .collect::<Vec<_>>()
                .join(",")
        }
    }
}

/// Validates one model against its fit data and a held-out dataset.
///
/// This is the unit the whole harness builds on; it is public so tests and
/// downstream tools can validate synthetic or externally measured data
/// without running the simulator.
pub fn validate_model(
    name: &str,
    model: &Model,
    fit_data: &ExperimentData,
    holdout_data: &ExperimentData,
    thresholds: &DoctorThresholds,
) -> ModelValidation {
    let fit = diagnose(model, fit_data);
    let holdout = diagnose(model, holdout_data);

    let per_scale: Vec<(f64, f64)> = holdout
        .points
        .iter()
        .map(|p| (p.coordinate[0], p.percent_error))
        .collect();
    let coverage = holdout.coverage();

    let mut flags = Vec::new();
    if !holdout.mpe.is_finite() || holdout.mpe > thresholds.max_mpe_percent {
        flags.push(QualityFlag::HighError);
    }
    if let Some(cov) = coverage {
        if cov < thresholds.min_band_coverage {
            flags.push(QualityFlag::Miscalibrated);
        }
    }

    ModelValidation {
        name: name.to_string(),
        function: model.formatted(),
        fit_mpe: fit.mpe,
        adjusted_r_squared: fit.adjusted_r_squared,
        validation_mpe: holdout.mpe,
        per_scale_percent_error: per_scale,
        band_coverage: coverage,
        flags,
    }
}

/// The full doctor report: per-model verdicts plus aggregate error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoctorReport {
    pub metric: String,
    pub holdout_scales: Vec<f64>,
    pub thresholds: DoctorThresholds,
    /// Application models: epoch, computation, communication, memory ops.
    pub app: Vec<ModelValidation>,
    /// Kernel models, sorted worst-first by validation MPE.
    pub kernels: Vec<ModelValidation>,
    /// Kernels in the model set that never appeared at the held-out scales
    /// and therefore could not be validated.
    pub unvalidated_kernels: usize,
    /// Median validation MPE over all kernel models — the aggregate number
    /// the paper's Table 3 reports per benchmark.
    pub aggregate_kernel_mpe: f64,
    /// Median percentage error across kernels per held-out scale.
    pub per_scale_aggregate_mpe: Vec<(f64, f64)>,
}

impl DoctorReport {
    /// All flagged models (application and kernel), worst first.
    pub fn flagged(&self) -> Vec<&ModelValidation> {
        self.app
            .iter()
            .chain(&self.kernels)
            .filter(|v| v.is_flagged())
            .collect()
    }

    pub fn num_flagged(&self) -> usize {
        self.flagged().len()
    }

    /// `true` when no model exceeded the thresholds.
    pub fn is_healthy(&self) -> bool {
        self.num_flagged() == 0
    }

    fn coverage_cell(v: &ModelValidation) -> String {
        v.band_coverage
            .map(|c| format!("{c:.2}"))
            .unwrap_or_else(|| "-".to_string())
    }

    /// Terminal report: application table plus the `top` worst kernels.
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Model-quality report ({}) — validated at held-out scales {:?}",
            self.metric, self.holdout_scales
        );
        let _ = writeln!(
            out,
            "Thresholds: MPE <= {:.1}%, band coverage >= {:.2}",
            self.thresholds.max_mpe_percent, self.thresholds.min_band_coverage
        );
        out.push('\n');

        let mut t = Table::new(&[
            "application model",
            "fit MPE",
            "val MPE",
            "coverage",
            "status",
        ]);
        for v in &self.app {
            t.add_row(vec![
                v.name.clone(),
                fmt(v.fit_mpe, 2),
                fmt(v.validation_mpe, 2),
                Self::coverage_cell(v),
                v.flag_cell(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');

        let _ = writeln!(
            out,
            "{} kernel models validated ({} without held-out data), aggregate MPE {:.2}%",
            self.kernels.len(),
            self.unvalidated_kernels,
            self.aggregate_kernel_mpe
        );
        for (scale, mpe) in &self.per_scale_aggregate_mpe {
            let _ = writeln!(out, "  scale {scale:>6}: median kernel error {mpe:.2}%");
        }
        out.push('\n');

        let mut t = Table::new(&["kernel", "fit MPE", "val MPE", "coverage", "status"]);
        for v in self.kernels.iter().take(top) {
            t.add_row(vec![
                v.name.clone(),
                fmt(v.fit_mpe, 2),
                fmt(v.validation_mpe, 2),
                Self::coverage_cell(v),
                v.flag_cell(),
            ]);
        }
        out.push_str(&t.render());

        let flagged = self.num_flagged();
        if flagged == 0 {
            out.push_str("\nAll models within thresholds.\n");
        } else {
            let _ = writeln!(out, "\n{flagged} model(s) FLAGGED above thresholds:");
            for v in self.flagged() {
                let _ = writeln!(
                    out,
                    "  {} — val MPE {:.1}%, coverage {} [{}]",
                    v.name,
                    v.validation_mpe,
                    Self::coverage_cell(v),
                    v.flag_cell()
                );
            }
        }
        out
    }

    /// GitHub-flavored-markdown report (criterion-table style), suitable for
    /// CI artifacts and committed quality dashboards.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Model quality report\n");
        let _ = writeln!(
            out,
            "Metric: `{}` — validated at held-out scales `{:?}` \
             (thresholds: MPE ≤ {:.1}%, coverage ≥ {:.2})\n",
            self.metric,
            self.holdout_scales,
            self.thresholds.max_mpe_percent,
            self.thresholds.min_band_coverage
        );

        let row = |out: &mut String, v: &ModelValidation| {
            let status = if v.is_flagged() {
                format!("⚠️ {}", v.flag_cell())
            } else {
                "✅".to_string()
            };
            let _ = writeln!(
                out,
                "| `{}` | `{}` | {:.2}% | {:.2}% | {} | {} |",
                v.name,
                v.function,
                v.fit_mpe,
                v.validation_mpe,
                Self::coverage_cell(v),
                status
            );
        };

        let _ = writeln!(out, "## Application models\n");
        let _ = writeln!(
            out,
            "| Model | Function | Fit MPE | Validation MPE | Coverage | Status |"
        );
        let _ = writeln!(out, "|---|---|---:|---:|---:|---|");
        for v in &self.app {
            row(&mut out, v);
        }

        let _ = writeln!(
            out,
            "\n## Kernel models (aggregate MPE {:.2}%, {} validated, {} flagged)\n",
            self.aggregate_kernel_mpe,
            self.kernels.len(),
            self.kernels.iter().filter(|v| v.is_flagged()).count()
        );
        let _ = writeln!(
            out,
            "| Kernel | Function | Fit MPE | Validation MPE | Coverage | Status |"
        );
        let _ = writeln!(out, "|---|---|---:|---:|---:|---|");
        for v in &self.kernels {
            row(&mut out, v);
        }
        out
    }
}

/// Validates a model set against an already aggregated held-out experiment.
///
/// Split from [`validate_at_scales`] so callers that measured (or imported)
/// the held-out runs themselves can reuse the verdict logic without touching
/// the simulator.
pub fn validate_against(
    models: &ModelSet,
    modeling_agg: &AggregatedExperiment,
    holdout_agg: &AggregatedExperiment,
    thresholds: &DoctorThresholds,
) -> DoctorReport {
    let _span = extradeep_obs::span("core.doctor.validate");
    let metric = models.metric;

    let app_categories = [
        ("epoch", None, &models.app.epoch),
        (
            "computation",
            Some(extradeep_agg::AppCategory::Computation),
            &models.app.computation,
        ),
        (
            "communication",
            Some(extradeep_agg::AppCategory::Communication),
            &models.app.communication,
        ),
        (
            "memory ops",
            Some(extradeep_agg::AppCategory::MemoryOps),
            &models.app.memory_ops,
        ),
    ];
    let app: Vec<ModelValidation> = app_categories
        .iter()
        .map(|(name, cat, model)| {
            validate_model(
                name,
                model,
                &modeling_agg.app_dataset(metric, *cat),
                &holdout_agg.app_dataset(metric, *cat),
                thresholds,
            )
        })
        .collect();

    let mut unvalidated = 0usize;
    let kernel_inputs: Vec<_> = models
        .kernels
        .iter()
        .filter_map(|(id, model)| {
            let holdout = holdout_agg.kernel_dataset(id, metric);
            if holdout.is_empty() {
                unvalidated += 1;
                None
            } else {
                Some((id, model, holdout))
            }
        })
        .collect();
    let mut kernels: Vec<ModelValidation> = kernel_inputs
        .par_iter()
        .map(|(id, model, holdout)| {
            let _span = extradeep_obs::span("core.doctor.kernel");
            validate_model(
                &id.name,
                model,
                &modeling_agg.kernel_dataset(id, metric),
                holdout,
                thresholds,
            )
        })
        .collect();

    kernels.sort_by(|a, b| {
        let fa = f64::from(u8::from(!a.is_flagged()));
        let fb = f64::from(u8::from(!b.is_flagged()));
        fa.total_cmp(&fb)
            .then_with(|| (-a.validation_mpe).total_cmp(&-b.validation_mpe))
    });

    let finite_mpes: Vec<f64> = kernels
        .iter()
        .map(|v| v.validation_mpe)
        .filter(|m| m.is_finite())
        .collect();
    let aggregate_kernel_mpe = median(&finite_mpes);

    let mut holdout_scales: Vec<f64> = kernels
        .iter()
        .chain(&app)
        .flat_map(|v| v.per_scale_percent_error.iter().map(|&(s, _)| s))
        .collect();
    holdout_scales.sort_by(f64::total_cmp);
    holdout_scales.dedup();

    let per_scale_aggregate_mpe: Vec<(f64, f64)> = holdout_scales
        .iter()
        .map(|&scale| {
            let errs: Vec<f64> = kernels
                .iter()
                .flat_map(|v| {
                    v.per_scale_percent_error
                        .iter()
                        .filter(move |&&(s, _)| (s - scale).abs() < 1e-9)
                        .map(|&(_, e)| e)
                })
                .filter(|e| e.is_finite())
                .collect();
            (scale, median(&errs))
        })
        .collect();

    let report = DoctorReport {
        metric: metric.label().to_string(),
        holdout_scales,
        thresholds: *thresholds,
        app,
        kernels,
        unvalidated_kernels: unvalidated,
        aggregate_kernel_mpe,
        per_scale_aggregate_mpe,
    };
    extradeep_obs::counter("doctor.kernels_flagged").add(report.num_flagged() as u64);
    report
}

/// The full harness: re-runs the simulator of `spec` at the held-out
/// `holdout_ranks` (fresh noise stream — the models must predict runs they
/// have never seen), aggregates, and validates every model there.
pub fn validate_at_scales(
    models: &ModelSet,
    spec: &ExperimentSpec,
    modeling_agg: &AggregatedExperiment,
    holdout_ranks: &[u32],
    thresholds: &DoctorThresholds,
) -> DoctorReport {
    let _span = extradeep_obs::span("core.doctor.harness");
    let mut holdout_spec = spec.clone();
    holdout_spec.rank_counts = holdout_ranks.to_vec();
    // Same perturbation the §4 experiment plans use: held-out runs must not
    // share the modeling runs' noise stream.
    holdout_spec.profiler.seed = spec.profiler.seed.wrapping_add(0x5EED_0E7A);
    extradeep_obs::counter("doctor.validation_sims").add(holdout_ranks.len() as u64);
    extradeep_obs::info!(
        "doctor: validating {} kernel models at held-out scales {:?}",
        models.kernels.len(),
        holdout_ranks
    );
    let holdout_agg = aggregate_experiment(&holdout_spec.run(), &AggregationOptions::default());
    validate_against(models, modeling_agg, &holdout_agg, thresholds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_model_set, ModelSetOptions};
    use extradeep_model::{model_single_parameter, ExperimentData, ModelerOptions};
    use extradeep_sim::ProfilerOptions;
    use extradeep_trace::MetricKind;

    fn reps(base: f64) -> Vec<f64> {
        vec![base * 0.99, base, base * 1.01]
    }

    #[test]
    fn validate_model_passes_a_good_fit_and_flags_a_bad_one() {
        let truth = |x: f64| 10.0 + 3.0 * x;
        let fit_pts: Vec<(f64, Vec<f64>)> = [2.0, 4.0, 6.0, 8.0, 10.0]
            .iter()
            .map(|&x| (x, reps(truth(x))))
            .collect();
        let fit = ExperimentData::univariate_with_reps("p", &fit_pts);
        let holdout = ExperimentData::univariate_with_reps("p", &[(64.0, reps(truth(64.0)))]);
        let model = model_single_parameter(&fit, &ModelerOptions::default()).unwrap();
        let v = validate_model("lin", &model, &fit, &holdout, &DoctorThresholds::default());
        assert!(!v.is_flagged(), "flags: {:?}", v.flags);
        assert!(v.validation_mpe < 5.0);

        // A constant model of growing data misses badly at scale.
        let flat = ExperimentData::univariate_with_reps(
            "p",
            &[
                (2.0, reps(16.0)),
                (4.0, reps(16.0)),
                (6.0, reps(16.0)),
                (8.0, reps(16.0)),
                (10.0, reps(16.0)),
            ],
        );
        let constant = model_single_parameter(&flat, &ModelerOptions::default()).unwrap();
        let v = validate_model(
            "const",
            &constant,
            &flat,
            &holdout,
            &DoctorThresholds::default(),
        );
        assert!(
            v.flags.contains(&QualityFlag::HighError),
            "flags: {:?}",
            v.flags
        );
    }

    #[test]
    fn full_harness_on_simulated_preset() {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
        spec.repetitions = 2;
        spec.profiler = ProfilerOptions {
            max_recorded_ranks: 2,
            ..Default::default()
        };
        let modeling_agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
        let models =
            build_model_set(&modeling_agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
        let report = validate_at_scales(
            &models,
            &spec,
            &modeling_agg,
            &[16, 32],
            &DoctorThresholds::default(),
        );
        assert_eq!(report.app.len(), 4);
        assert!(!report.kernels.is_empty());
        assert_eq!(report.holdout_scales, vec![16.0, 32.0]);
        // The epoch model extrapolates within the paper's error band.
        let epoch = &report.app[0];
        assert_eq!(epoch.name, "epoch");
        assert!(
            epoch.validation_mpe < 30.0,
            "epoch MPE {}",
            epoch.validation_mpe
        );
        // Rendering works in all three formats.
        let text = report.render(10);
        assert!(text.contains("Model-quality report"));
        let md = report.render_markdown();
        assert!(md.contains("| Kernel |"));
    }

    #[test]
    fn strict_thresholds_flag_everything() {
        let truth = |x: f64| 10.0 + 3.0 * x;
        let fit_pts: Vec<(f64, Vec<f64>)> = [2.0, 4.0, 6.0, 8.0, 10.0]
            .iter()
            .map(|&x| (x, reps(truth(x))))
            .collect();
        let fit = ExperimentData::univariate_with_reps("p", &fit_pts);
        let holdout =
            ExperimentData::univariate_with_reps("p", &[(64.0, reps(truth(64.0) * 1.10))]);
        let model = model_single_parameter(&fit, &ModelerOptions::default()).unwrap();
        let zero_tolerance = DoctorThresholds {
            max_mpe_percent: 0.0,
            min_band_coverage: 0.85,
        };
        let v = validate_model("lin", &model, &fit, &holdout, &zero_tolerance);
        assert!(v.flags.contains(&QualityFlag::HighError));
    }
}
