//! Accuracy evaluation (paper §4): model accuracy at the modeling points and
//! predictive power at the evaluation points, summarized as (median)
//! percentage errors.

use extradeep_model::measurement::median;
use extradeep_model::{ExperimentData, Model};
use serde::{Deserialize, Serialize};

/// Percentage error of a model at one coordinate against a measured value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointError {
    pub coordinate: Vec<f64>,
    pub predicted: f64,
    pub measured: f64,
    pub percent_error: f64,
}

/// Errors of one model over a measured dataset.
pub fn point_errors(model: &Model, measured: &ExperimentData) -> Vec<PointError> {
    measured
        .measurements
        .iter()
        .map(|m| {
            let actual = m.median();
            let predicted = model.predict(&m.coordinate);
            PointError {
                coordinate: m.coordinate.clone(),
                predicted,
                measured: actual,
                percent_error: extradeep_model::metrics::percentage_error(predicted, actual),
            }
        })
        .collect()
}

/// Accuracy summary of one model against modeling and evaluation data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Errors at the points used for modeling ("model accuracy").
    pub modeling_errors: Vec<PointError>,
    /// Errors at held-out larger-scale points ("predictive power").
    pub evaluation_errors: Vec<PointError>,
}

impl AccuracyReport {
    pub fn new(model: &Model, modeling: &ExperimentData, evaluation: &ExperimentData) -> Self {
        AccuracyReport {
            modeling_errors: point_errors(model, modeling),
            evaluation_errors: point_errors(model, evaluation),
        }
    }

    /// Median percentage error over the modeling points.
    pub fn model_accuracy_mpe(&self) -> f64 {
        mpe(&self.modeling_errors)
    }

    /// Median percentage error over the evaluation points.
    pub fn predictive_power_mpe(&self) -> f64 {
        mpe(&self.evaluation_errors)
    }

    /// Accuracy in the paper's headline form: `100% - mean percentage error`
    /// (the paper reports 97.6% model accuracy / 93.6% prediction accuracy).
    pub fn model_accuracy_percent(&self) -> f64 {
        100.0 - mean(&self.modeling_errors)
    }

    pub fn prediction_accuracy_percent(&self) -> f64 {
        100.0 - mean(&self.evaluation_errors)
    }

    /// Error at the single largest evaluation coordinate.
    pub fn max_scale_error(&self) -> Option<&PointError> {
        self.evaluation_errors
            .iter()
            .max_by(|a, b| extradeep_model::cmp_coordinates(&a.coordinate, &b.coordinate))
    }
}

/// Median percentage error of a set of point errors.
pub fn mpe(errors: &[PointError]) -> f64 {
    let vals: Vec<f64> = errors.iter().map(|e| e.percent_error).collect();
    median(&vals)
}

fn mean(errors: &[PointError]) -> f64 {
    if errors.is_empty() {
        return f64::NAN;
    }
    errors.iter().map(|e| e.percent_error).sum::<f64>() / errors.len() as f64
}

/// Median percentage error across several reports at one evaluation
/// coordinate value (used for the per-node-count bars of Figs. 5-7).
pub fn mpe_at_scale(reports: &[&AccuracyReport], scale: f64) -> f64 {
    let vals: Vec<f64> = reports
        .iter()
        .flat_map(|r| {
            r.modeling_errors
                .iter()
                .chain(&r.evaluation_errors)
                .filter(|e| (e.coordinate[0] - scale).abs() < 1e-9)
                .map(|e| e.percent_error)
        })
        .collect();
    median(&vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_model::{model_single_parameter, ModelerOptions};

    fn setup() -> (Model, ExperimentData, ExperimentData) {
        let truth = |x: f64| 100.0 + 2.0 * x;
        let modeling = ExperimentData::univariate(
            "p",
            &[
                (2.0, truth(2.0)),
                (4.0, truth(4.0)),
                (6.0, truth(6.0)),
                (8.0, truth(8.0)),
                (10.0, truth(10.0)),
            ],
        );
        // Evaluation points drift 5% from the trend, emulating noise at scale.
        let evaluation = ExperimentData::univariate(
            "p",
            &[
                (16.0, truth(16.0) * 1.05),
                (32.0, truth(32.0) * 0.95),
                (64.0, truth(64.0) * 1.05),
            ],
        );
        let model = model_single_parameter(&modeling, &ModelerOptions::default()).unwrap();
        (model, modeling, evaluation)
    }

    #[test]
    fn modeling_errors_are_near_zero_for_exact_data() {
        let (model, modeling, evaluation) = setup();
        let report = AccuracyReport::new(&model, &modeling, &evaluation);
        assert!(report.model_accuracy_mpe() < 0.01);
        assert!(report.model_accuracy_percent() > 99.9);
    }

    #[test]
    fn evaluation_errors_reflect_the_drift() {
        let (model, modeling, evaluation) = setup();
        let report = AccuracyReport::new(&model, &modeling, &evaluation);
        let pp = report.predictive_power_mpe();
        assert!((pp - 4.76).abs() < 1.0, "mpe {pp}"); // 5% drift ≈ 4.76% error
    }

    #[test]
    fn max_scale_error_is_the_largest_point() {
        let (model, modeling, evaluation) = setup();
        let report = AccuracyReport::new(&model, &modeling, &evaluation);
        assert_eq!(report.max_scale_error().unwrap().coordinate, vec![64.0]);
    }

    #[test]
    fn mpe_at_scale_filters_by_coordinate() {
        let (model, modeling, evaluation) = setup();
        let report = AccuracyReport::new(&model, &modeling, &evaluation);
        let at32 = mpe_at_scale(&[&report], 32.0);
        let err32 = report
            .evaluation_errors
            .iter()
            .find(|e| e.coordinate[0] == 32.0)
            .unwrap()
            .percent_error;
        assert!((at32 - err32).abs() < 1e-12);
    }
}
