//! Saving and loading model sets.
//!
//! Model creation is cheap but measurement is not: persisting the fitted
//! models lets an analysis session (or the CLI) reuse models produced
//! elsewhere. JSON requires string map keys, so the kernel map is stored as
//! an explicit pair list.

use crate::modelset::{AppModels, ModelSet};
use extradeep_agg::KernelId;
use extradeep_model::Model;
use extradeep_trace::MetricKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Current on-disk format version.
pub const MODEL_FORMAT_VERSION: u32 = 1;

#[derive(Debug, Serialize, Deserialize)]
struct PersistedModelSet {
    version: u32,
    metric: MetricKind,
    app: AppModels,
    kernels: Vec<(KernelId, Model)>,
}

/// Persistence errors.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Format(serde_json::Error),
    UnsupportedVersion {
        found: u32,
    },
    /// The file ends mid-record: a write was interrupted (crash, full disk)
    /// and left a torn tail. `offset` is the byte length that survived.
    /// Callers that own a source of truth (e.g. the campaign manifest)
    /// should treat the checkpoint as absent and regenerate it.
    CorruptCheckpoint {
        path: String,
        offset: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "model I/O error: {e}"),
            PersistError::Format(e) => write!(f, "model format error: {e}"),
            PersistError::UnsupportedVersion { found } => {
                write!(f, "unsupported model format version {found}")
            }
            PersistError::CorruptCheckpoint { path, offset } => write!(
                f,
                "corrupt checkpoint {path}: file ends mid-record at byte {offset} \
                 (torn write); regenerate the checkpoint"
            ),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serializes a model set to JSON.
pub fn models_to_json(set: &ModelSet) -> Result<String, PersistError> {
    let persisted = PersistedModelSet {
        version: MODEL_FORMAT_VERSION,
        metric: set.metric,
        app: set.app.clone(),
        kernels: set
            .kernels
            .iter()
            .map(|(k, m)| (k.clone(), m.clone()))
            .collect(),
    };
    Ok(serde_json::to_string(&persisted)?)
}

/// Deserializes a model set from JSON. Unmodelable-kernel diagnostics are
/// not persisted (they are a property of the measurement session).
pub fn models_from_json(json: &str) -> Result<ModelSet, PersistError> {
    let persisted: PersistedModelSet = serde_json::from_str(json)?;
    if persisted.version != MODEL_FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            found: persisted.version,
        });
    }
    Ok(ModelSet {
        metric: persisted.metric,
        app: persisted.app,
        kernels: persisted.kernels.into_iter().collect(),
        failed: BTreeMap::new(),
    })
}

/// Writes a model set to a file.
pub fn save_models(set: &ModelSet, path: impl AsRef<Path>) -> Result<(), PersistError> {
    std::fs::write(path, models_to_json(set)?)?;
    Ok(())
}

/// Reads a model set from a file.
///
/// A file truncated mid-write (the process died between `write` and
/// `fsync`) parses as an unexpected end of input; that case is reported as
/// the typed [`PersistError::CorruptCheckpoint`] — with the path and the
/// surviving byte count — instead of a generic format error, so recovery
/// paths (campaign resume) can distinguish "torn tail, regenerate" from
/// "wrong file format, abort".
pub fn load_models(path: impl AsRef<Path>) -> Result<ModelSet, PersistError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    models_from_json(&text).map_err(|e| match e {
        PersistError::Format(f) if f.is_eof() => PersistError::CorruptCheckpoint {
            path: path.display().to_string(),
            offset: text.len() as u64,
        },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelset::{build_model_set, ModelSetOptions};
    use extradeep_agg::{aggregate_experiment, AggregationOptions};
    use extradeep_sim::{ExperimentSpec, ProfilerOptions};

    fn model_set() -> ModelSet {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
        spec.repetitions = 1;
        spec.profiler = ProfilerOptions {
            max_recorded_ranks: 1,
            ..Default::default()
        };
        let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
        build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap()
    }

    #[test]
    fn json_roundtrip_preserves_models() {
        let set = model_set();
        let json = models_to_json(&set).unwrap();
        let back = models_from_json(&json).unwrap();
        assert_eq!(set.metric, back.metric);
        assert_eq!(set.app, back.app);
        assert_eq!(set.kernels, back.kernels);
    }

    #[test]
    fn reloaded_models_predict_identically() {
        let set = model_set();
        let back = models_from_json(&models_to_json(&set).unwrap()).unwrap();
        for x in [2.0, 16.0, 64.0, 256.0] {
            assert_eq!(set.app.epoch.predict_at(x), back.app.epoch.predict_at(x));
        }
        // Confidence bands survive persistence.
        assert_eq!(
            set.app.epoch.confidence_interval(&[40.0]),
            back.app.epoch.confidence_interval(&[40.0])
        );
    }

    #[test]
    fn file_roundtrip() {
        let set = model_set();
        let dir = std::env::temp_dir().join("extradeep-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("models.json");
        save_models(&set, &path).unwrap();
        let back = load_models(&path).unwrap();
        assert_eq!(set.kernels.len(), back.kernels.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_checkpoint_is_a_typed_corrupt_checkpoint_error() {
        let set = model_set();
        let dir = std::env::temp_dir().join("extradeep-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.models.json");
        let full = models_to_json(&set).unwrap();
        // Simulate a crash mid-write: only the first half reached the disk.
        let torn_len = full.len() / 2;
        std::fs::write(&path, &full[..torn_len]).unwrap();
        match load_models(&path) {
            Err(PersistError::CorruptCheckpoint { path: p, offset }) => {
                assert!(p.ends_with("torn.models.json"), "path: {p}");
                assert_eq!(offset, torn_len as u64);
            }
            other => panic!("expected CorruptCheckpoint, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_checkpoint_is_also_corrupt_not_a_format_error() {
        let dir = std::env::temp_dir().join("extradeep-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.models.json");
        std::fs::write(&path, "").unwrap();
        assert!(matches!(
            load_models(&path),
            Err(PersistError::CorruptCheckpoint { offset: 0, .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_rejected() {
        let set = model_set();
        let json = models_to_json(&set)
            .unwrap()
            .replacen("\"version\":1", "\"version\":42", 1);
        assert!(matches!(
            models_from_json(&json),
            Err(PersistError::UnsupportedVersion { found: 42 })
        ));
    }
}
