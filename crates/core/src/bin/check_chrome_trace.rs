//! Validates a Chrome trace-event JSON file (as written by
//! `extradeep --profile-self`): structurally well-formed, matched B/E pairs
//! per thread with non-decreasing timestamps, known phase kinds.
//!
//! ```text
//! check_chrome_trace <trace.json> [--require-cats sim,agg,model,core]
//! ```
//!
//! Exits 0 when valid; prints the first problem and exits 1 otherwise. CI
//! runs this against the self-profile of a small pipeline run.

use std::collections::BTreeMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("check_chrome_trace: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = argv.first() else {
        return fail("usage: check_chrome_trace <trace.json> [--require-cats a,b,c]");
    };
    let required: Vec<String> = argv
        .iter()
        .position(|a| a == "--require-cats")
        .and_then(|i| argv.get(i + 1))
        .map(|v| v.split(',').map(str::to_string).collect())
        .unwrap_or_default();

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let value: serde_json::Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("invalid JSON: {e}")),
    };
    let Some(events) = value.as_array() else {
        return fail("top level is not an array");
    };

    // Per-tid open-span stacks and last-seen timestamps.
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut seen_cats: Vec<String> = Vec::new();
    let mut durations = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let Some(obj) = ev.as_object() else {
            return fail(&format!("event {i} is not an object"));
        };
        let Some(name) = obj.get("name").and_then(|v| v.as_str()) else {
            return fail(&format!("event {i} lacks a string 'name'"));
        };
        let Some(ph) = obj.get("ph").and_then(|v| v.as_str()) else {
            return fail(&format!("event {i} ('{name}') lacks 'ph'"));
        };
        if let Some(cat) = obj.get("cat").and_then(|v| v.as_str()) {
            if !seen_cats.iter().any(|c| c == cat) {
                seen_cats.push(cat.to_string());
            }
        }
        match ph {
            "M" => continue,
            "C" => {
                let ok = obj
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .map(|v| v.is_number())
                    .unwrap_or(false);
                if !ok {
                    return fail(&format!("counter event {i} ('{name}') lacks args.value"));
                }
            }
            "B" | "E" => {
                durations += 1;
                let Some(tid) = obj.get("tid").and_then(|v| v.as_u64()) else {
                    return fail(&format!("event {i} ('{name}') lacks integer 'tid'"));
                };
                let Some(ts) = obj.get("ts").and_then(|v| v.as_f64()) else {
                    return fail(&format!("event {i} ('{name}') lacks numeric 'ts'"));
                };
                let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
                if ts < *prev {
                    return fail(&format!(
                        "event {i} ('{name}'): ts {ts} < previous {prev} on tid {tid}"
                    ));
                }
                *prev = ts;
                let stack = stacks.entry(tid).or_default();
                if ph == "B" {
                    stack.push(name.to_string());
                } else {
                    match stack.pop() {
                        Some(open) if open == name => {}
                        Some(open) => {
                            return fail(&format!(
                                "event {i}: E '{name}' does not match open B '{open}' on tid {tid}"
                            ));
                        }
                        None => {
                            return fail(&format!(
                                "event {i}: E '{name}' with no open B on tid {tid}"
                            ));
                        }
                    }
                }
            }
            other => return fail(&format!("event {i} ('{name}') has unknown ph '{other}'")),
        }
    }

    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return fail(&format!("unclosed B '{open}' on tid {tid}"));
        }
    }
    for cat in &required {
        if !seen_cats.iter().any(|c| c == cat) {
            return fail(&format!(
                "required category '{cat}' absent (saw: {})",
                seen_cats.join(", ")
            ));
        }
    }

    println!(
        "ok: {} events ({durations} B/E, {} threads, categories: {})",
        events.len(),
        stacks.len(),
        seen_cats.join(", ")
    );
    ExitCode::SUCCESS
}
