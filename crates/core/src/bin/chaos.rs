//! Chaos CI driver: sweep fuzzed fault plans through the full pipeline and
//! fail loudly on any panic or out-of-bound repaired fit.
//!
//! ```sh
//! chaos --seeds 8                  # seeds 0..8
//! chaos --seed-list 3,17,42        # explicit seeds
//! chaos --seeds 8 --json report.json --markdown report.md
//! ```
//!
//! Exit codes: 0 all cases passed, 1 a case failed (panic or MPE bound),
//! 2 the harness itself could not run (bad flags, unwritable artifact,
//! clean baseline unfittable).

use extradeep::chaos::ChaosReport;

fn fail(msg: &str) -> ! {
    eprintln!("chaos: {msg}");
    std::process::exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |key: &str| -> Option<&str> {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1))
            .map(String::as_str)
    };

    let mut seeds: Vec<u64> = Vec::new();
    if let Some(n) = value("--seeds") {
        let n: u64 = n
            .parse()
            .unwrap_or_else(|_| fail(&format!("--seeds needs a count, got '{n}'")));
        seeds.extend(0..n);
    }
    if let Some(list) = value("--seed-list") {
        for part in list.split(',') {
            let s = part
                .trim()
                .parse()
                .unwrap_or_else(|_| fail(&format!("bad seed '{part}' in --seed-list")));
            seeds.push(s);
        }
    }
    if seeds.is_empty() {
        seeds.extend(0..8);
    }

    let report = ChaosReport::run(&seeds)
        .unwrap_or_else(|e| fail(&format!("clean baseline failed to fit: {e}")));

    if let Some(path) = value("--json") {
        let body = serde_json::to_string_pretty(&report)
            .unwrap_or_else(|e| fail(&format!("cannot serialize report: {e}")));
        std::fs::write(path, body).unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    }
    let markdown = report.render_markdown();
    if let Some(path) = value("--markdown") {
        std::fs::write(path, &markdown)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
    }
    println!("{markdown}");

    if report.any_panicked() {
        eprintln!("chaos: FAILED — a pipeline stage panicked");
        std::process::exit(1);
    }
    if !report.passed() {
        eprintln!("chaos: FAILED — repaired-input fit exceeded the MPE bound");
        std::process::exit(1);
    }
    println!("chaos: all {} case(s) passed", report.cases.len());
}
