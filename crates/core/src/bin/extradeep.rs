//! The `extradeep` CLI: simulate, import, model, and analyze from the shell.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match extradeep::cli::run(&argv) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}
