//! The `extradeep` CLI: simulate, import, model, and analyze from the shell.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quiet = argv.iter().any(|a| a == "-q" || a == "--quiet");
    match extradeep::cli::run(&argv) {
        Ok(report) => {
            if !quiet {
                println!("{report}");
            }
        }
        Err(e) => {
            extradeep::obs::error!("{e}");
            std::process::exit(2);
        }
    }
}
