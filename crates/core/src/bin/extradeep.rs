//! The `extradeep` CLI: simulate, import, model, and analyze from the shell.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let quiet = argv.iter().any(|a| a == "-q" || a == "--quiet");
    match extradeep::cli::run(&argv) {
        Ok(report) => {
            if !quiet {
                println!("{report}");
            }
        }
        Err(extradeep::cli::CliError::QualityGate(report)) => {
            // The gate is a controlled failure: show the full report on
            // stdout (CI logs) and exit 1, distinct from hard errors (2).
            if !quiet {
                println!("{report}");
            }
            extradeep::obs::error!("model quality gate failed (--strict)");
            std::process::exit(1);
        }
        Err(e) => {
            extradeep::obs::error!("{e}");
            std::process::exit(2);
        }
    }
}
