//! Microbenchmarks of the pipeline stages: simulation, aggregation, and
//! PMNF model search — the costs a user of the framework actually pays.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep::{build_model_set, ModelSetOptions};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_model::{model_single_parameter, ExperimentData, ModelerOptions};
use extradeep_sim::{collective_cost, Collective, ExperimentSpec, SystemConfig};
use extradeep_trace::MetricKind;
use std::hint::black_box;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/simulate");
    g.sample_size(10);
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 1;
    spec.profiler.max_recorded_ranks = 2;
    g.bench_function("case_study_5_configs", |b| b.iter(|| black_box(spec.run())));
    g.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/aggregate");
    g.sample_size(10);
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 2;
    spec.profiler.max_recorded_ranks = 2;
    let profiles = spec.run();
    g.bench_function("median_aggregation", |b| {
        b.iter(|| {
            black_box(aggregate_experiment(
                &profiles,
                &AggregationOptions::default(),
            ))
        })
    });
    g.finish();
}

fn bench_modeling(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/model");
    g.sample_size(10);

    // Single-kernel PMNF hypothesis search.
    let data = ExperimentData::univariate(
        "ranks",
        &[
            (2.0, 160.2),
            (4.0, 163.9),
            (8.0, 172.1),
            (16.0, 187.3),
            (32.0, 213.8),
        ],
    );
    g.bench_function("single_model_search", |b| {
        b.iter(|| black_box(model_single_parameter(&data, &ModelerOptions::default())))
    });

    // Full model set over all kernels of a small experiment.
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 1;
    spec.profiler.max_recorded_ranks = 1;
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    g.bench_function("full_model_set", |b| {
        b.iter(|| {
            black_box(build_model_set(
                &agg,
                MetricKind::Time,
                &ModelSetOptions::default(),
            ))
        })
    });
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline/collectives");
    let deep = SystemConfig::deep();
    g.bench_function("ring_allreduce_cost", |b| {
        b.iter(|| black_box(collective_cost(&deep, Collective::Allreduce, 100 << 20, 64)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_aggregation,
    bench_modeling,
    bench_collectives
);
criterion_main!(benches);
