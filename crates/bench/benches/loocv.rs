//! Leave-one-out cross-validation: the closed-form hat-matrix path against
//! the naive refit-per-fold loop, across point counts and hypothesis widths.
//! This is the inner loop the tentpole speedup comes from — the naive loop
//! is O(n) LDL^T factorizations per hypothesis, the closed form is one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extradeep_bench::inputs;
use extradeep_model::hypothesis::{cross_validate, cross_validate_naive, HypothesisShape};
use extradeep_model::{Fraction, TermShape};
use std::hint::black_box;

fn points(n: usize) -> Vec<(Vec<f64>, f64)> {
    inputs::synthetic_series(n)
        .measurements
        .iter()
        .map(|m| (m.coordinate.clone(), m.median()))
        .collect()
}

fn shapes() -> Vec<(&'static str, HypothesisShape)> {
    vec![
        (
            "one_term",
            HypothesisShape::univariate(&[TermShape::new(Fraction::new(2, 3), 2)]),
        ),
        (
            "two_term",
            HypothesisShape::univariate(&[
                TermShape::new(Fraction::whole(1), 0),
                TermShape::new(Fraction::zero(), 1),
            ]),
        ),
    ]
}

fn bench_loocv(c: &mut Criterion) {
    for (label, shape) in shapes() {
        let mut g = c.benchmark_group(format!("loocv/{label}"));
        for n in [6usize, 10, 20, 40] {
            let pts = points(n);
            g.bench_with_input(BenchmarkId::new("closed_form", n), &pts, |b, p| {
                b.iter(|| black_box(cross_validate(&shape, black_box(p))))
            });
            g.bench_with_input(BenchmarkId::new("naive_refit", n), &pts, |b, p| {
                b.iter(|| black_box(cross_validate_naive(&shape, black_box(p))))
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_loocv);
criterion_main!(benches);
