//! How PMNF model search scales with the search-space size and the number
//! of measurement points — the cost a user pays per kernel model — plus the
//! fast-path engine against the frozen reference implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extradeep_bench::inputs;
use extradeep_model::{
    model_multi_parameter, model_multi_parameter_reference, model_single_parameter,
    model_single_parameter_reference, ExperimentData, ModelerOptions, SearchSpace,
};
use std::hint::black_box;

fn data_with_points(n: usize) -> ExperimentData {
    inputs::synthetic_series(n)
}

fn bench_search_spaces(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_scaling/search_space");
    let data = data_with_points(5);
    for (name, space) in [
        ("paper_example", SearchSpace::paper_example()),
        ("extra_p_default", SearchSpace::extra_p_default()),
        ("strong_scaling", SearchSpace::strong_scaling()),
        ("two_term", SearchSpace::extra_p_default().with_max_terms(2)),
    ] {
        let options = ModelerOptions {
            search_space: space,
            ..ModelerOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &options, |b, opts| {
            b.iter(|| black_box(model_single_parameter(&data, opts)))
        });
    }
    g.finish();
}

fn bench_point_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_scaling/points");
    for n in [5usize, 8, 12, 20] {
        let data = data_with_points(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| black_box(model_single_parameter(d, &ModelerOptions::default())))
        });
    }
    g.finish();
}

/// The tentpole comparison: closed-form LOO-CV + shared basis cache +
/// workspace reuse vs the frozen reference path, end to end.
fn bench_engine_vs_reference(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_scaling/engine_vs_reference");
    let series = data_with_points(8);
    let options = ModelerOptions::default();
    g.bench_function("single_param/engine", |b| {
        b.iter(|| black_box(model_single_parameter(black_box(&series), &options)))
    });
    g.bench_function("single_param/reference", |b| {
        b.iter(|| {
            black_box(model_single_parameter_reference(
                black_box(&series),
                &options,
            ))
        })
    });
    let naive_cv = ModelerOptions {
        use_naive_loocv: true,
        ..ModelerOptions::default()
    };
    g.bench_function("single_param/engine_naive_loocv", |b| {
        b.iter(|| black_box(model_single_parameter(black_box(&series), &naive_cv)))
    });
    let grid = inputs::synthetic_grid();
    g.bench_function("multi_param/engine", |b| {
        b.iter(|| black_box(model_multi_parameter(black_box(&grid), &options)))
    });
    g.bench_function("multi_param/reference", |b| {
        b.iter(|| black_box(model_multi_parameter_reference(black_box(&grid), &options)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_search_spaces,
    bench_point_counts,
    bench_engine_vs_reference
);
criterion_main!(benches);
