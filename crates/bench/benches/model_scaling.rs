//! How PMNF model search scales with the search-space size and the number
//! of measurement points — the cost a user pays per kernel model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use extradeep_model::{model_single_parameter, ExperimentData, ModelerOptions, SearchSpace};
use std::hint::black_box;

fn data_with_points(n: usize) -> ExperimentData {
    let pts: Vec<(f64, f64)> = (1..=n)
        .map(|i| {
            let x = (2u64 << i) as f64;
            (x, 25.0 + 1.7 * x.powf(0.66) * x.log2())
        })
        .collect();
    ExperimentData::univariate("p", &pts)
}

fn bench_search_spaces(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_scaling/search_space");
    let data = data_with_points(5);
    for (name, space) in [
        ("paper_example", SearchSpace::paper_example()),
        ("extra_p_default", SearchSpace::extra_p_default()),
        ("strong_scaling", SearchSpace::strong_scaling()),
        ("two_term", SearchSpace::extra_p_default().with_max_terms(2)),
    ] {
        let options = ModelerOptions {
            search_space: space,
            ..ModelerOptions::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(name), &options, |b, opts| {
            b.iter(|| black_box(model_single_parameter(&data, opts)))
        });
    }
    g.finish();
}

fn bench_point_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_scaling/points");
    for n in [5usize, 8, 12, 20] {
        let data = data_with_points(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| black_box(model_single_parameter(d, &ModelerOptions::default())))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_search_spaces, bench_point_counts);
criterion_main!(benches);
