//! Criterion bench regenerating the paper's table2 artifact at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep_bench::experiments::{table2_kernel_models, RunScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    g.bench_function("table2_kernel_models_quick", |b| {
        b.iter(|| black_box(table2_kernel_models(&RunScale::quick())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
