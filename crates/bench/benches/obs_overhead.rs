//! Criterion view of the self-profiling cost: the full pipeline with
//! instrumentation disabled vs enabled (the acceptance budget is < 5%
//! overhead), plus the microscopic per-site costs.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep::{build_model_set, ModelSetOptions};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_sim::ExperimentSpec;
use extradeep_trace::MetricKind;
use std::hint::black_box;

fn pipeline_once() {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 1;
    spec.profiler.max_recorded_ranks = 2;
    let profiles = spec.run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    black_box(build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap());
}

fn bench_pipeline_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/pipeline");
    g.sample_size(10);

    extradeep_obs::set_enabled(false);
    extradeep_obs::drain();
    g.bench_function("disabled", |b| b.iter(pipeline_once));

    extradeep_obs::set_enabled(true);
    g.bench_function("enabled", |b| {
        b.iter(|| {
            pipeline_once();
            // Drain inside the measured region: an instrumented run is only
            // usable once its buffers are collected, so the export side
            // belongs to the cost being measured — and the buffers must not
            // grow without bound across iterations.
            black_box(extradeep_obs::drain());
        })
    });
    extradeep_obs::set_enabled(false);
    extradeep_obs::drain();
    g.finish();
}

fn bench_span_sites(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs/span");

    extradeep_obs::set_enabled(false);
    g.bench_function("disabled_site", |b| {
        b.iter(|| black_box(extradeep_obs::span("bench.noop")))
    });

    // Enabled sites buffer a record per span, so the measured unit is a
    // 1000-span batch plus its drain — keeping memory bounded across
    // Criterion's iteration count.
    extradeep_obs::set_enabled(true);
    g.bench_function("enabled_1k_spans_plus_drain", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                black_box(extradeep_obs::span("bench.noop"));
            }
            black_box(extradeep_obs::drain())
        })
    });
    extradeep_obs::set_enabled(false);
    extradeep_obs::drain();

    g.bench_function("disabled_counter", |b| {
        b.iter(|| extradeep_obs::counter("bench.counter").add(black_box(1)))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline_overhead, bench_span_sites);
criterion_main!(benches);
