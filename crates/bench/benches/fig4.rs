//! Criterion bench regenerating the paper's fig4 artifact at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep_bench::experiments::{fig4_cost_effectiveness, RunScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("fig4_cost_effectiveness_quick", |b| {
        b.iter(|| black_box(fig4_cost_effectiveness(&RunScale::quick())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
