//! Criterion bench regenerating the paper's fig5 artifact at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep_bench::experiments::{fig5_parallel_strategies, RunScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("fig5_parallel_strategies_quick", |b| {
        b.iter(|| black_box(fig5_parallel_strategies(&RunScale::quick())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
