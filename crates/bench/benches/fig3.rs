//! Criterion bench regenerating the paper's fig3 artifact at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep_bench::experiments::{fig3_case_study, RunScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    g.bench_function("fig3_case_study_quick", |b| {
        b.iter(|| black_box(fig3_case_study(&RunScale::quick())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
