//! Criterion bench regenerating the paper's fig6 artifact at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep_bench::experiments::{fig6_systems, RunScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("fig6_systems_quick", |b| {
        b.iter(|| black_box(fig6_systems(&RunScale::quick())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
