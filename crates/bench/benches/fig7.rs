//! Criterion bench regenerating the paper's fig7 artifact at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep_bench::experiments::{fig7_benchmarks, RunScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("fig7_benchmarks_quick", |b| {
        b.iter(|| black_box(fig7_benchmarks(&RunScale::quick())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
