//! Criterion bench regenerating the paper's fig8 artifact at reduced scale.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep_bench::experiments::{fig8_overhead, RunScale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("fig8_overhead_quick", |b| {
        b.iter(|| black_box(fig8_overhead(&RunScale::quick())))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
