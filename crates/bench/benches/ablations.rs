//! Criterion bench for the ablation drivers.

use criterion::{criterion_group, criterion_main, Criterion};
use extradeep_bench::ablations::ablation_selection;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("selection_variants", |b| {
        b.iter(|| black_box(ablation_selection()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
