//! Ablation studies over the framework's design choices (DESIGN.md):
//! how much does each ingredient of the efficient sampling + modeling recipe
//! contribute to the prediction accuracy?
//!
//! * sampled steps per epoch (the paper fixes 5 — what do 1/2/5/10 buy?),
//! * measurement repetitions (the paper uses 5),
//! * leave-one-out cross-validation vs. plain training-SMAPE selection,
//! * the noise-scaled Occam selection penalty and growth-bound guard.

use extradeep::prelude::*;
use extradeep::report::{pct, Table};
use extradeep::ModelSetOptions;
use extradeep_sim::SamplingStrategy;

fn base_plan(reps: u32, steps: u32) -> ExperimentPlan {
    let mut spec = ExperimentSpec::case_study(vec![]);
    spec.repetitions = reps;
    spec.profiler.max_recorded_ranks = 2;
    spec.profiler.sampling = SamplingStrategy::Efficient { steps, epochs: 2 };
    ExperimentPlan {
        spec,
        modeling_points: vec![2, 4, 6, 8, 10],
        evaluation_points: vec![16, 32, 64],
    }
}

fn run_with(reps: u32, steps: u32, options: &ModelSetOptions) -> Option<(f64, f64)> {
    let outcome = base_plan(reps, steps)
        .execute_with(MetricKind::Time, options)
        .ok()?;
    Some((
        outcome.epoch_report.model_accuracy_mpe(),
        outcome.epoch_report.predictive_power_mpe(),
    ))
}

/// Ablation: number of profiled steps per epoch.
pub fn ablation_sampled_steps() -> String {
    let mut t = Table::new(&["steps/epoch", "fit MPE", "extrapolation MPE"]);
    for steps in [1u32, 2, 5, 10] {
        match run_with(3, steps, &ModelSetOptions::default()) {
            Some((fit, pp)) => t.add_row(vec![steps.to_string(), pct(fit), pct(pp)]),
            None => t.add_row(vec![steps.to_string(), "-".into(), "-".into()]),
        }
    }
    format!(
        "== Ablation: profiled steps per epoch (paper default: 5) ==\n{}",
        t.render()
    )
}

/// Ablation: measurement repetitions.
pub fn ablation_repetitions() -> String {
    let mut t = Table::new(&["repetitions", "fit MPE", "extrapolation MPE"]);
    for reps in [1u32, 3, 5, 9] {
        match run_with(reps, 5, &ModelSetOptions::default()) {
            Some((fit, pp)) => t.add_row(vec![reps.to_string(), pct(fit), pct(pp)]),
            None => t.add_row(vec![reps.to_string(), "-".into(), "-".into()]),
        }
    }
    format!(
        "== Ablation: measurement repetitions (paper default: 5) ==\n{}",
        t.render()
    )
}

/// Ablation: model-selection machinery (cross-validation, Occam-within-noise
/// penalty, growth-bound guard).
pub fn ablation_selection() -> String {
    let mut t = Table::new(&["selection variant", "fit MPE", "extrapolation MPE"]);

    let mut variants: Vec<(&str, ModelSetOptions)> = Vec::new();
    variants.push(("full (default)", ModelSetOptions::default()));

    let mut no_cv = ModelSetOptions::default();
    no_cv.modeler.use_cross_validation = false;
    no_cv.app_modeler.use_cross_validation = false;
    variants.push(("no cross-validation", no_cv));

    let mut no_guard = ModelSetOptions::default();
    no_guard.modeler.growth_bound_margin = None;
    no_guard.app_modeler.growth_bound_margin = None;
    variants.push(("no growth-bound guard", no_guard));

    let mut single_term = ModelSetOptions::default();
    single_term.app_modeler = single_term.modeler.clone();
    variants.push(("single-term app models", single_term));

    for (name, options) in &variants {
        match run_with(3, 5, options) {
            Some((fit, pp)) => t.add_row(vec![name.to_string(), pct(fit), pct(pp)]),
            None => t.add_row(vec![name.to_string(), "-".into(), "-".into()]),
        }
    }
    format!("== Ablation: model-selection machinery ==\n{}", t.render())
}

/// Ablation: BSP vs ASP gradient exchange — how much step time the
/// asynchronous overlap hides, and whether the models stay accurate when
/// collectives fall between the NVTX step marks.
pub fn ablation_sync_mode() -> String {
    let mut t = Table::new(&[
        "sync mode",
        "T_epoch(64) [s]",
        "fit MPE",
        "extrapolation MPE",
    ]);
    for (label, sync) in [("BSP", SyncMode::Bsp), ("ASP", SyncMode::Asp)] {
        let mut plan = base_plan(3, 5);
        plan.spec.sync = sync;
        match plan.execute(MetricKind::Time) {
            Ok(outcome) => t.add_row(vec![
                label.to_string(),
                format!("{:.1}", outcome.models.app.epoch.predict_at(64.0)),
                pct(outcome.epoch_report.model_accuracy_mpe()),
                pct(outcome.epoch_report.predictive_power_mpe()),
            ]),
            Err(_) => t.add_row(vec![label.to_string(), "-".into(), "-".into(), "-".into()]),
        }
    }
    format!(
        "== Ablation: BSP vs ASP gradient exchange ==\n{}",
        t.render()
    )
}

/// All ablations concatenated.
pub fn all_ablations() -> String {
    format!(
        "{}\n{}\n{}\n{}",
        ablation_sampled_steps(),
        ablation_repetitions(),
        ablation_selection(),
        ablation_sync_mode()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_steps_ablation_renders_all_rows() {
        let s = ablation_sampled_steps();
        assert!(s.contains("steps/epoch"));
        for steps in ["1", "2", "5", "10"] {
            assert!(s.lines().any(|l| l.trim_start().starts_with(steps)));
        }
    }

    #[test]
    fn sync_mode_ablation_shows_asp_hiding_time() {
        let s = ablation_sync_mode();
        assert!(s.contains("BSP"));
        assert!(s.contains("ASP"));
    }

    #[test]
    fn selection_ablation_covers_variants() {
        let s = ablation_selection();
        assert!(s.contains("no cross-validation"));
        assert!(s.contains("no growth-bound guard"));
        assert!(s.contains("single-term app models"));
    }
}
