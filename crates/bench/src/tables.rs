//! Deterministic markdown rendering of `BENCH_model.json` into
//! `BENCH_TABLES.md` — the committed three-way comparison tables (reference
//! vs engine vs batched kernel).
//!
//! The render is a pure function of the JSON report: given the same
//! `BENCH_model.json`, the output is byte-identical on every machine, which
//! is what lets CI gate on staleness (`bench_tables --check`) without
//! re-timing anything.

use serde_json::Value;
use std::fmt::Write;

/// Formats a microsecond value with fixed precision, or a dash when the
/// column does not apply to the row (e.g. no batched LOO-CV variant).
fn us(v: Option<&Value>) -> String {
    match v.and_then(Value::as_f64) {
        Some(x) => format!("{x:.3}"),
        None => "—".to_string(),
    }
}

/// Formats a speedup factor, or a dash when absent.
fn x(v: Option<&Value>) -> String {
    match v.and_then(Value::as_f64) {
        Some(x) => format!("{x:.2}×"),
        None => "—".to_string(),
    }
}

fn str_of(v: Option<&Value>) -> String {
    v.and_then(Value::as_str).unwrap_or("—").to_string()
}

/// Renders the committed comparison tables from a `BENCH_model.json` value.
pub fn render_model_tables(report: &Value) -> String {
    let mut out = String::new();
    out.push_str("# Model-search benchmark tables\n\n");
    out.push_str(
        "Rendered from the committed `BENCH_model.json` by\n\
         `cargo run --release -p extradeep-bench --bin bench_tables`.\n\
         Do not edit by hand — regenerate after re-running `bench_model`\n\
         (see README, \"Regenerating the benchmark tables\").\n\n",
    );
    if let Some(b) = report.get("benchmark").and_then(Value::as_str) {
        let _ = writeln!(out, "Benchmark: {b}.");
    }
    if let Some(s) = report.get("search_space").and_then(Value::as_str) {
        let _ = writeln!(out, "Search space: `{s}`.");
    }
    if report.get("quick").and_then(Value::as_bool) == Some(true) {
        out.push_str("Timings from a `--quick` run (CI smoke mode).\n");
    }
    out.push('\n');

    out.push_str("## Search-path comparison (per call)\n\n");
    out.push_str(
        "| shape | reference [µs] | engine [µs] | batched [µs] | \
         engine speedup | batched vs engine | total |\n",
    );
    out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
    let empty = Vec::new();
    let comparisons = report
        .get("comparisons")
        .and_then(Value::as_array)
        .unwrap_or(&empty);
    for c in comparisons {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            str_of(c.get("name")),
            us(c.get("reference_us")),
            us(c.get("engine_us")),
            us(c.get("batched_us")),
            x(c.get("speedup")),
            x(c.get("batched_speedup")),
            x(c.get("total_speedup")),
        );
    }
    out.push('\n');

    if let Some(t) = report.get("throughput") {
        out.push_str("## Throughput\n\n");
        out.push_str("| metric | value |\n|---|---:|\n");
        if let Some(h) = t.get("search_hyps_per_sec").and_then(Value::as_f64) {
            let _ = writeln!(out, "| hypotheses / second (batched search) | {h:.0} |");
        }
        if let Some(s) = t.get("model_set_fit_s").and_then(Value::as_f64) {
            let _ = writeln!(out, "| end-to-end model-set fit [s] | {s:.3} |");
        }
        out.push('\n');
    }

    if let Some(a) = report.get("agreement").and_then(Value::as_object) {
        out.push_str("## Selected-model agreement\n\n");
        out.push_str(
            "All three implementations must select the same model; the \
             benchmark binary asserts this before timing.\n\n",
        );
        out.push_str("| path | selected model |\n|---|---|\n");
        // serde_json::Map preserves insertion order by default, which would
        // make the render depend on how the report was written; sort the
        // keys so the table is a pure function of the *content*.
        let mut keys: Vec<&String> = a.keys().collect();
        keys.sort();
        for k in keys {
            let _ = writeln!(out, "| {} | `{}` |", k, str_of(a.get(k.as_str())));
        }
        out.push('\n');
    }

    out
}

/// Renders the campaign-runner section from a `BENCH_campaign.json` value:
/// throughput and the cost of the crash-safety machinery (fsync'd manifest,
/// checkpoints, worker scheduling) over the same cells' raw pipeline
/// compute. Appended to `BENCH_TABLES.md` after the model tables.
pub fn render_campaign_section(report: &Value) -> String {
    let f = |key: &str| report.get(key).and_then(Value::as_f64);
    let mut out = String::new();
    out.push_str("## Campaign runner\n\n");
    out.push_str(
        "Crash-safe campaign runner vs the same cells' raw sequential\n\
         pipeline compute, rendered from the committed `BENCH_campaign.json`\n\
         (`cargo run --release -p extradeep-bench --bin bench_campaign`).\n\n",
    );
    if report.get("quick").and_then(Value::as_bool) == Some(true) {
        out.push_str("Timings from a `--quick` run (CI smoke mode).\n\n");
    }
    out.push_str("| metric | value |\n|---|---:|\n");
    if let Some(v) = f("cells") {
        let _ = writeln!(out, "| cells in the measured matrix | {v:.0} |");
    }
    if let Some(v) = f("cells_per_sec") {
        let _ = writeln!(out, "| cells / second | {v:.2} |");
    }
    if let Some(v) = f("campaign_wall_s") {
        let _ = writeln!(
            out,
            "| campaign wall (journal + checkpoints) [s] | {v:.3} |"
        );
    }
    if let Some(v) = f("compute_wall_s") {
        let _ = writeln!(out, "| raw pipeline compute wall [s] | {v:.3} |");
    }
    if let Some(v) = f("manifest_overhead_percent") {
        let _ = writeln!(out, "| crash-safety overhead | {v:.1}% |");
    }
    if let Some(v) = f("resume_replay_ms") {
        let _ = writeln!(out, "| full resume replay [ms] | {v:.3} |");
    }
    out.push('\n');
    out
}

/// Renders the static-analyzer section from a `BENCH_analyze.json` value:
/// cold-scan throughput over the whole workspace and the wall time of a
/// warm incremental-cache run. Appended after the campaign section.
pub fn render_analyze_section(report: &Value) -> String {
    let f = |key: &str| report.get(key).and_then(Value::as_f64);
    let mut out = String::new();
    out.push_str("## Static analyzer\n\n");
    out.push_str(
        "Token-aware analyzer over the full workspace: cold scan vs a warm\n\
         incremental-cache run, rendered from the committed `BENCH_analyze.json`\n\
         (`cargo run --release -p extradeep-bench --bin bench_analyze`).\n\n",
    );
    if report.get("quick").and_then(Value::as_bool) == Some(true) {
        out.push_str("Timings from a `--quick` run (CI smoke mode).\n\n");
    }
    out.push_str("| metric | value |\n|---|---:|\n");
    if let Some(v) = f("files") {
        let _ = writeln!(out, "| files scanned | {v:.0} |");
    }
    if let Some(v) = f("files_per_sec") {
        let _ = writeln!(out, "| files / second (cold) | {v:.0} |");
    }
    if let Some(v) = f("cold_scan_ms") {
        let _ = writeln!(out, "| cold scan [ms] | {v:.3} |");
    }
    if let Some(v) = f("warm_cache_ms") {
        let _ = writeln!(out, "| warm cache run [ms] | {v:.3} |");
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        serde_json::json!({
            "benchmark": "bench",
            "search_space": "extra_p_default",
            "quick": false,
            "comparisons": [
                {
                    "name": "single_param",
                    "reference_us": 266.018,
                    "engine_us": 48.998,
                    "batched_us": 12.5,
                    "speedup": 5.43,
                    "batched_speedup": 3.92,
                    "total_speedup": 21.28,
                    "model": "m",
                },
                {
                    "name": "loocv_one_hypothesis",
                    "reference_us": 46.273,
                    "engine_us": 1.503,
                    "speedup": 30.78,
                    "model": "m",
                },
            ],
            "throughput": {"search_hyps_per_sec": 1234567.0, "model_set_fit_s": 0.41},
            "agreement": {"b_model": "f", "a_model": "f"},
        })
    }

    #[test]
    fn renders_all_sections_and_is_deterministic() {
        let v = sample();
        let md = render_model_tables(&v);
        assert_eq!(md, render_model_tables(&v), "render must be pure");
        assert!(md.contains("| single_param | 266.018 | 48.998 | 12.500"));
        assert!(md.contains("3.92×"));
        assert!(md.contains("| hypotheses / second (batched search) | 1234567 |"));
        assert!(md.contains("end-to-end model-set fit [s] | 0.410"));
    }

    #[test]
    fn missing_batched_columns_render_as_dashes() {
        let md = render_model_tables(&sample());
        let loocv = md
            .lines()
            .find(|l| l.contains("loocv_one_hypothesis"))
            .unwrap();
        assert!(loocv.contains("—"), "absent columns dash out: {loocv}");
    }

    #[test]
    fn committed_tables_are_in_sync_with_committed_results() {
        // Same gate as `bench_tables --check`, but reachable from plain
        // `cargo test`: the committed BENCH_TABLES.md must be exactly what
        // the renderer produces from the committed BENCH_model.json plus
        // the campaign section from BENCH_campaign.json (when present).
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let raw = std::fs::read_to_string(format!("{root}/BENCH_model.json"))
            .expect("read committed BENCH_model.json");
        let report: Value = serde_json::from_str(&raw).expect("parse BENCH_model.json");
        let mut rendered = render_model_tables(&report);
        if let Ok(raw) = std::fs::read_to_string(format!("{root}/BENCH_campaign.json")) {
            let campaign: Value = serde_json::from_str(&raw).expect("parse BENCH_campaign.json");
            rendered.push_str(&render_campaign_section(&campaign));
        }
        if let Ok(raw) = std::fs::read_to_string(format!("{root}/BENCH_analyze.json")) {
            let analyze: Value = serde_json::from_str(&raw).expect("parse BENCH_analyze.json");
            rendered.push_str(&render_analyze_section(&analyze));
        }
        let committed = std::fs::read_to_string(format!("{root}/BENCH_TABLES.md"))
            .expect("read committed BENCH_TABLES.md");
        assert_eq!(
            rendered, committed,
            "BENCH_TABLES.md is stale — regenerate with \
             `cargo run --release -p extradeep-bench --bin bench_tables`"
        );
    }

    #[test]
    fn campaign_section_renders_every_metric_row() {
        let v = serde_json::json!({
            "quick": false,
            "cells": 4,
            "cells_per_sec": 3.61,
            "campaign_wall_s": 1.1072,
            "compute_wall_s": 1.0951,
            "manifest_overhead_percent": 1.105,
            "resume_replay_ms": 2.8414,
        });
        let md = render_campaign_section(&v);
        assert_eq!(md, render_campaign_section(&v), "render must be pure");
        assert!(md.contains("## Campaign runner"));
        assert!(md.contains("| cells in the measured matrix | 4 |"));
        assert!(md.contains("| cells / second | 3.61 |"));
        assert!(md.contains("| campaign wall (journal + checkpoints) [s] | 1.107 |"));
        assert!(md.contains("| raw pipeline compute wall [s] | 1.095 |"));
        assert!(md.contains("| crash-safety overhead | 1.1% |"));
        assert!(md.contains("| full resume replay [ms] | 2.841 |"));
        assert!(!md.contains("--quick"), "full runs carry no quick banner");
    }

    #[test]
    fn analyze_section_renders_every_metric_row() {
        let v = serde_json::json!({
            "quick": false,
            "files": 185,
            "files_per_sec": 2644.0,
            "cold_scan_ms": 69.965,
            "warm_cache_ms": 7.927,
        });
        let md = render_analyze_section(&v);
        assert_eq!(md, render_analyze_section(&v), "render must be pure");
        assert!(md.contains("## Static analyzer"));
        assert!(md.contains("| files scanned | 185 |"));
        assert!(md.contains("| files / second (cold) | 2644 |"));
        assert!(md.contains("| cold scan [ms] | 69.965 |"));
        assert!(md.contains("| warm cache run [ms] | 7.927 |"));
        assert!(!md.contains("--quick"), "full runs carry no quick banner");
    }

    #[test]
    fn agreement_keys_render_sorted() {
        let md = render_model_tables(&sample());
        let a = md.find("| a_model |").expect("a_model row");
        let b = md.find("| b_model |").expect("b_model row");
        assert!(a < b, "agreement rows must be key-sorted");
    }
}
