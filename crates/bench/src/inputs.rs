//! Shared construction of the small experiments used by the debug binaries
//! and the modeling benchmarks.
//!
//! The ad-hoc debug binaries (`agg_dbg`, `jureca_dbg`, `imdb_dbg`) and the
//! `bench_model` emitter previously each hand-rolled their own specs and
//! datasets; this module is the single place those inputs are defined, so a
//! number printed by a debug tool and a number recorded in
//! `BENCH_model.json` describe the same workload.

use extradeep_model::{ExperimentData, Measurement};
use extradeep_sim::{Benchmark, ExperimentSpec, SystemConfig};

/// A case-study-derived spec with the common debug knobs applied.
pub fn debug_experiment(
    system: SystemConfig,
    benchmark: Benchmark,
    rank_counts: Vec<u32>,
    repetitions: u32,
    max_recorded_ranks: u32,
) -> ExperimentSpec {
    let mut spec = ExperimentSpec::case_study(rank_counts);
    spec.system = system;
    spec.benchmark = benchmark;
    spec.repetitions = repetitions;
    spec.profiler.max_recorded_ranks = max_recorded_ranks;
    spec
}

/// Synthetic single-parameter series with the case-study growth shape
/// (`c0 + c1 · x^(2/3) · log2(x)`), at `n` geometric coordinates. This is
/// the dataset the modeling benchmarks time the hypothesis search on.
pub fn synthetic_series(n: usize) -> ExperimentData {
    let pts: Vec<(f64, f64)> = (1..=n)
        .map(|i| {
            let x = (2u64 << i) as f64;
            (x, 25.0 + 1.7 * x.powf(0.66) * x.log2())
        })
        .collect();
    ExperimentData::univariate("p", &pts)
}

/// Full ranks × batch-size grid with mixed additive/multiplicative growth,
/// exercising the sparse multi-parameter search end to end.
pub fn synthetic_grid() -> ExperimentData {
    let ranks = [2.0f64, 4.0, 8.0, 16.0, 32.0];
    let batches = [32.0f64, 64.0, 128.0, 256.0, 512.0];
    let mut measurements = Vec::new();
    for &r in &ranks {
        for &b in &batches {
            let y = 5.0 + 0.8 * r * r.log2() + 0.02 * b + 0.001 * r * b;
            measurements.push(Measurement::new(vec![r, b], vec![y]));
        }
    }
    ExperimentData::new(vec!["ranks".into(), "batch".into()], measurements)
}
