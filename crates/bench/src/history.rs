//! Performance-history tracking: ingest `BENCH_*.json` snapshots, maintain a
//! committed history file, and detect speed regressions beyond noise
//! tolerance.
//!
//! The bench binaries (`bench_model`, `bench_obs`, `bench_doctor`) each emit
//! a JSON snapshot of their headline numbers. This module flattens those
//! snapshots into named scalar metrics, appends them to a rolling history
//! (`BENCH_history.json`), and compares a fresh snapshot against the median
//! of the recorded runs — the same robust-center idea the modeler applies to
//! measurement repetitions. CI runs `perf_history check` on every push and
//! fails when a metric is worse than the historical median by more than the
//! tolerance.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a metric is compared across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (times, error percentages).
    LowerIsBetter,
    /// Larger is better (speedups, coverage).
    HigherIsBetter,
    /// Tracked for the record but never gated (counts, identifiers).
    Informational,
}

/// Classifies a metric name by suffix convention: `*_us`/`*_ns`/`*_ms`/
/// `*_s`/`*_percent`/`*_mpe` are costs (lower is better), `*speedup*`,
/// `*coverage*`, and throughput suffixes (`*_per_sec`, e.g.
/// `*_hyps_per_sec`) are scores (higher is better), anything else is
/// tracked but not gated.
pub fn direction_of(metric: &str) -> Direction {
    let lower = ["_us", "_ns", "_ms", "_s", "_percent", "_mpe", "_seconds"];
    if metric.contains("speedup") || metric.contains("coverage") || metric.ends_with("_per_sec") {
        Direction::HigherIsBetter
    } else if lower.iter().any(|suf| metric.ends_with(suf)) {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// One recorded benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Free-form label, e.g. a git revision or `ci`.
    pub label: String,
    /// Unix timestamp (seconds) of the run; 0 when unknown.
    pub unix_seconds: u64,
    /// Flattened `metric name -> value`.
    pub metrics: BTreeMap<String, f64>,
}

/// The rolling history file.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfHistory {
    pub entries: Vec<HistoryEntry>,
}

/// Retain at most this many runs; older entries age out so a one-off slow
/// machine cannot poison the baseline forever.
pub const MAX_ENTRIES: usize = 50;

impl PerfHistory {
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("history serializes")
    }

    /// Appends a run, aging out the oldest beyond [`MAX_ENTRIES`].
    pub fn push(&mut self, entry: HistoryEntry) {
        self.entries.push(entry);
        if self.entries.len() > MAX_ENTRIES {
            let excess = self.entries.len() - MAX_ENTRIES;
            self.entries.drain(..excess);
        }
    }

    /// Median of a metric over the recorded runs (`None` when absent).
    pub fn baseline(&self, metric: &str) -> Option<f64> {
        let mut values: Vec<f64> = self
            .entries
            .iter()
            .filter_map(|e| e.metrics.get(metric).copied())
            .filter(|v| v.is_finite())
            .collect();
        if values.is_empty() {
            return None;
        }
        values.sort_by(f64::total_cmp);
        let n = values.len();
        Some(if n % 2 == 1 {
            values[n / 2]
        } else {
            0.5 * (values[n / 2 - 1] + values[n / 2])
        })
    }
}

/// Flattens a benchmark snapshot (`BENCH_*.json`) into named scalar metrics.
///
/// Numeric leaves become `prefix.path.to.leaf`; array elements that carry a
/// `"name"` field use it as the path segment (the `comparisons` layout of
/// `BENCH_model.json`), others use their index.
pub fn flatten_snapshot(prefix: &str, value: &serde_json::Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(prefix, value, &mut out);
    out
}

fn walk(path: &str, value: &serde_json::Value, out: &mut BTreeMap<String, f64>) {
    match value {
        serde_json::Value::Number(n) => {
            if let Some(v) = n.as_f64() {
                out.insert(path.to_string(), v);
            }
        }
        serde_json::Value::Object(map) => {
            for (k, v) in map {
                walk(&format!("{path}.{k}"), v, out);
            }
        }
        serde_json::Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let seg = item
                    .get("name")
                    .and_then(|n| n.as_str())
                    .map(str::to_string)
                    .unwrap_or_else(|| i.to_string());
                walk(&format!("{path}.{seg}"), item, out);
            }
        }
        _ => {}
    }
}

/// One metric that moved beyond tolerance in the worse direction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    /// Relative change in the *worse* direction, as a fraction (0.3 = 30%).
    pub relative_change: f64,
}

/// Compares `current` against the history's per-metric medians.
///
/// A gated metric regresses when it is worse than its baseline by more than
/// `tolerance` (relative). Informational metrics and metrics without history
/// never regress. Returns regressions sorted worst-first.
pub fn detect_regressions(
    history: &PerfHistory,
    current: &BTreeMap<String, f64>,
    tolerance: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for (metric, &value) in current {
        if !value.is_finite() {
            continue;
        }
        let Some(baseline) = history.baseline(metric) else {
            continue;
        };
        if baseline.abs() < f64::EPSILON {
            continue;
        }
        let worse_by = match direction_of(metric) {
            Direction::LowerIsBetter => (value - baseline) / baseline,
            Direction::HigherIsBetter => (baseline - value) / baseline,
            Direction::Informational => continue,
        };
        if worse_by > tolerance {
            out.push(Regression {
                metric: metric.clone(),
                baseline,
                current: value,
                relative_change: worse_by,
            });
        }
    }
    out.sort_by(|a, b| b.relative_change.total_cmp(&a.relative_change));
    out
}

/// Criterion-table-style markdown report of a check run: every gated metric
/// with its baseline, current value, and verdict.
pub fn render_markdown(
    history: &PerfHistory,
    current: &BTreeMap<String, f64>,
    regressions: &[Regression],
    tolerance: f64,
) -> String {
    use std::fmt::Write as _;
    let regressed: std::collections::BTreeSet<&str> =
        regressions.iter().map(|r| r.metric.as_str()).collect();
    let mut out = String::from("# Performance history check\n\n");
    let _ = writeln!(
        out,
        "Baseline: median of {} recorded run(s); tolerance ±{:.0}%.\n",
        history.entries.len(),
        tolerance * 100.0
    );
    let _ = writeln!(out, "| Metric | Baseline | Current | Change | Status |");
    let _ = writeln!(out, "|---|---:|---:|---:|---|");
    for (metric, &value) in current {
        let dir = direction_of(metric);
        if dir == Direction::Informational {
            continue;
        }
        let Some(baseline) = history.baseline(metric) else {
            let _ = writeln!(out, "| `{metric}` | — | {value:.3} | — | 🆕 new |");
            continue;
        };
        let change = if baseline.abs() > f64::EPSILON {
            (value - baseline) / baseline * 100.0
        } else {
            0.0
        };
        let status = if regressed.contains(metric.as_str()) {
            "❌ regression"
        } else {
            "✅"
        };
        let _ = writeln!(
            out,
            "| `{metric}` | {baseline:.3} | {value:.3} | {change:+.1}% | {status} |"
        );
    }
    if regressions.is_empty() {
        out.push_str("\nNo regressions beyond tolerance.\n");
    } else {
        let _ = writeln!(out, "\n{} metric(s) regressed.", regressions.len());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    fn entry(label: &str, pairs: &[(&str, f64)]) -> HistoryEntry {
        HistoryEntry {
            label: label.to_string(),
            unix_seconds: 0,
            metrics: metrics(pairs),
        }
    }

    #[test]
    fn direction_follows_suffix_convention() {
        assert_eq!(
            direction_of("model.single_param.engine_us"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_of("obs.disabled_span_ns"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_of("doctor.aggregate_kernel_mpe"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_of("model.single_param.speedup"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_of("doctor.epoch_coverage"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_of("doctor.kernels_validated"),
            Direction::Informational
        );
        assert_eq!(
            direction_of("model.throughput.search_hyps_per_sec"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_of("model.throughput.model_set_fit_s"),
            Direction::LowerIsBetter
        );
    }

    #[test]
    fn every_committed_history_metric_has_a_pinned_direction() {
        // Every metric name recorded in the committed BENCH_history.json must
        // classify to the direction its suffix advertises — a rename that
        // silently turns a gated cost into an informational metric (or flips
        // its polarity) is caught here, not in a perf regression postmortem.
        let raw = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_history.json"
        ))
        .expect("read committed BENCH_history.json");
        let hist: PerfHistory = serde_json::from_str(&raw).expect("parse BENCH_history.json");
        assert!(
            !hist.entries.is_empty(),
            "history has at least the seed run"
        );
        for entry in &hist.entries {
            for name in entry.metrics.keys() {
                let expected = if name.ends_with("speedup") || name.ends_with("_per_sec") {
                    Direction::HigherIsBetter
                } else if name.ends_with("_us")
                    || name.ends_with("_ns")
                    || name.ends_with("_ms")
                    || name.ends_with("_s")
                    || name.ends_with("_percent")
                {
                    Direction::LowerIsBetter
                } else {
                    panic!("unpinned metric suffix in BENCH_history.json: {name}");
                };
                assert_eq!(direction_of(name), expected, "direction drifted for {name}");
            }
        }
    }

    #[test]
    fn flatten_walks_objects_and_named_arrays() {
        let snap: serde_json::Value = serde_json::from_str(
            r#"{
                "comparisons": [
                    {"name": "single_param", "engine_us": 49.0, "speedup": 5.4},
                    {"name": "loocv", "engine_us": 1.5}
                ],
                "nested": {"inner_ms": 2.0},
                "text": "ignored"
            }"#,
        )
        .unwrap();
        let m = flatten_snapshot("model", &snap);
        assert_eq!(m["model.comparisons.single_param.engine_us"], 49.0);
        assert_eq!(m["model.comparisons.single_param.speedup"], 5.4);
        assert_eq!(m["model.comparisons.loocv.engine_us"], 1.5);
        assert_eq!(m["model.nested.inner_ms"], 2.0);
        assert!(!m.keys().any(|k| k.contains("text")));
    }

    #[test]
    fn baseline_is_the_median_of_recorded_runs() {
        let mut h = PerfHistory::default();
        for v in [10.0, 12.0, 11.0] {
            h.push(entry("r", &[("t_us", v)]));
        }
        assert_eq!(h.baseline("t_us"), Some(11.0));
        assert_eq!(h.baseline("missing"), None);
    }

    #[test]
    fn regression_detected_beyond_tolerance_in_the_worse_direction_only() {
        let mut h = PerfHistory::default();
        for v in [100.0, 102.0, 98.0] {
            h.push(entry("r", &[("t_us", v), ("x.speedup", 5.0)]));
        }
        // 10% slower with 25% tolerance: fine.
        let r = detect_regressions(&h, &metrics(&[("t_us", 110.0), ("x.speedup", 5.0)]), 0.25);
        assert!(r.is_empty(), "{r:?}");
        // 50% slower: regression.
        let r = detect_regressions(&h, &metrics(&[("t_us", 150.0), ("x.speedup", 5.0)]), 0.25);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "t_us");
        assert!((r[0].relative_change - 0.5).abs() < 1e-9);
        // 50% *faster* is an improvement, not a regression.
        let r = detect_regressions(&h, &metrics(&[("t_us", 50.0), ("x.speedup", 5.0)]), 0.25);
        assert!(r.is_empty());
        // A collapsed speedup regresses (higher is better).
        let r = detect_regressions(&h, &metrics(&[("t_us", 100.0), ("x.speedup", 2.0)]), 0.25);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].metric, "x.speedup");
    }

    #[test]
    fn informational_and_unknown_metrics_never_gate() {
        let mut h = PerfHistory::default();
        h.push(entry("r", &[("kernels_validated", 80.0)]));
        let r = detect_regressions(
            &h,
            &metrics(&[("kernels_validated", 1.0), ("brand_new_us", 9.0)]),
            0.1,
        );
        assert!(r.is_empty());
    }

    #[test]
    fn history_ages_out_old_entries() {
        let mut h = PerfHistory::default();
        for i in 0..(MAX_ENTRIES + 7) {
            h.push(entry(&format!("r{i}"), &[("t_us", i as f64)]));
        }
        assert_eq!(h.entries.len(), MAX_ENTRIES);
        assert_eq!(h.entries.first().unwrap().label, "r7");
    }

    #[test]
    fn markdown_report_labels_regressions_and_new_metrics() {
        let mut h = PerfHistory::default();
        h.push(entry("seed", &[("t_us", 100.0)]));
        let current = metrics(&[("t_us", 200.0), ("fresh_us", 1.0)]);
        let regs = detect_regressions(&h, &current, 0.25);
        let md = render_markdown(&h, &current, &regs, 0.25);
        assert!(md.contains("| `t_us` | 100.000 | 200.000 | +100.0% | ❌ regression |"));
        assert!(md.contains("| `fresh_us` | — | 1.000 | — | 🆕 new |"));
        assert!(md.contains("1 metric(s) regressed."));
    }

    #[test]
    fn history_roundtrips_through_json() {
        let mut h = PerfHistory::default();
        h.push(entry("seed", &[("t_us", 100.0)]));
        let back = PerfHistory::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }
}
