//! Drivers that regenerate the paper's tables and figures (§4) from the
//! simulated substrate. Each returns a rendered text report; the binaries
//! print it, the Criterion benches run it at [`RunScale::quick`].

use extradeep::prelude::*;
use extradeep::report::{fmt, pct, Table};
use extradeep::{
    build_model_set, find_cost_effective, point_errors, speedup_series, ModelSetOptions,
};
use extradeep_agg::AggregatedExperiment;
use extradeep_baselines::compare_overhead;
use extradeep_model::measurement::median;
use extradeep_sim::{SamplingStrategy, TrainingJob};
use extradeep_trace::ApiDomain;

/// How much work a run does: the paper-scale configuration or a reduced one
/// for CI and benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunScale {
    /// Measurement repetitions per configuration (paper: 5).
    pub repetitions: u32,
    /// Ranks whose traces are recorded per configuration.
    pub max_recorded_ranks: u32,
    /// Cap on the number of evaluation points (None = all).
    pub eval_cap: Option<usize>,
    /// Cap on the number of benchmarks (None = all five).
    pub benchmark_cap: Option<usize>,
}

impl RunScale {
    /// The paper's experiment configuration.
    pub fn paper() -> Self {
        RunScale {
            repetitions: 5,
            max_recorded_ranks: 4,
            eval_cap: None,
            benchmark_cap: None,
        }
    }

    /// A reduced configuration for benches and smoke tests.
    pub fn quick() -> Self {
        RunScale {
            repetitions: 2,
            max_recorded_ranks: 2,
            eval_cap: Some(3),
            benchmark_cap: Some(2),
        }
    }

    fn benchmarks(&self) -> Vec<Benchmark> {
        let mut all = Benchmark::all();
        if let Some(cap) = self.benchmark_cap {
            all.truncate(cap);
        }
        all
    }

    fn cap_eval(&self, mut pts: Vec<u32>) -> Vec<u32> {
        if let Some(cap) = self.eval_cap {
            pts.truncate(cap);
        }
        pts
    }
}

/// Node-count axes used by the figures. On DEEP one rank occupies one node;
/// on JURECA four ranks share a node.
fn ranks_for_nodes(system: &SystemConfig, nodes: u32) -> u32 {
    nodes * system.node.gpus_per_node
}

fn plan(
    system: SystemConfig,
    benchmark: Benchmark,
    strategy: ParallelStrategy,
    scaling: ScalingMode,
    modeling_nodes: &[u32],
    eval_nodes: &[u32],
    scale: &RunScale,
) -> ExperimentPlan {
    let modeling_points = modeling_nodes
        .iter()
        .map(|&n| ranks_for_nodes(&system, n))
        .collect();
    let evaluation_points = eval_nodes
        .iter()
        .map(|&n| ranks_for_nodes(&system, n))
        .collect();
    let mut spec = ExperimentSpec::case_study(vec![]);
    spec.system = system;
    spec.benchmark = benchmark;
    spec.strategy = strategy;
    spec.scaling = scaling;
    spec.repetitions = scale.repetitions;
    spec.profiler = ProfilerOptions {
        max_recorded_ranks: scale.max_recorded_ranks,
        ..Default::default()
    };
    ExperimentPlan {
        spec,
        modeling_points,
        evaluation_points,
    }
}

/// The standard node axes of the DEEP experiments (§4.1).
pub const DEEP_MODELING_NODES: [u32; 5] = [2, 4, 6, 8, 10];
pub const DEEP_EVAL_NODES: [u32; 8] = [12, 16, 24, 32, 40, 48, 56, 64];

// ---------------------------------------------------------------- Fig. 3 --

/// Figure 3: the CIFAR-10 case-study epoch-time model vs. measurements, with
/// per-point percentage errors, the 95% CI, and run-to-run variation.
pub fn fig3_case_study(scale: &RunScale) -> String {
    // The case study's point sets (§2.3): P = {2,4,6,10,12},
    // P+ = {14,...,64}.
    let eval = scale.cap_eval(vec![14, 16, 18, 20, 24, 28, 32, 36, 40, 48, 56, 64]);
    let p = plan(
        SystemConfig::deep(),
        Benchmark::cifar10(),
        ParallelStrategy::DataParallel,
        ScalingMode::Weak,
        &[2, 4, 6, 10, 12],
        &eval,
        scale,
    );
    let outcome = p.execute(MetricKind::Time).expect("case study models");
    let model = &outcome.models.app.epoch;

    let mut out = String::new();
    out.push_str(
        "== Figure 3: training time per epoch, CIFAR-10 case study (DEEP, weak scaling) ==\n",
    );
    out.push_str(&format!("Model: T_epoch(x1) = {}\n", model.formatted()));
    out.push_str(&format!("Growth: {}\n\n", model.big_o()));

    let mut t = Table::new(&[
        "ranks",
        "set",
        "measured [s]",
        "predicted [s]",
        "err %",
        "95% CI",
        "bootstrap CI",
        "run-to-run %",
    ]);
    let rows = outcome
        .epoch_modeling_data
        .measurements
        .iter()
        .map(|m| (m, "P"))
        .chain(
            outcome
                .epoch_evaluation_data
                .measurements
                .iter()
                .map(|m| (m, "P+")),
        );
    for (m, set) in rows {
        let x = m.coordinate[0];
        let measured = m.median();
        let predicted = model.predict_at(x);
        let ci = model
            .confidence_interval(&[x])
            .map(|(lo, hi)| format!("[{:.1}, {:.1}]", lo, hi))
            .unwrap_or_else(|| "-".to_string());
        let boot = extradeep_model::bootstrap_interval(
            model,
            &outcome.epoch_modeling_data,
            &[x],
            200,
            0xB007,
        )
        .map(|(lo, hi)| format!("[{:.1}, {:.1}]", lo, hi))
        .unwrap_or_else(|| "-".to_string());
        t.add_row(vec![
            fmt(x, 0),
            set.to_string(),
            fmt(measured, 2),
            fmt(predicted, 2),
            pct(extradeep_model::metrics::percentage_error(
                predicted, measured,
            )),
            ci,
            boot,
            pct(m.run_to_run_variation_percent()),
        ]);
    }
    out.push_str(&t.render());

    // The communication model the case study highlights (Q3).
    out.push_str(&format!(
        "\nCommunication model: T_comm(x1) = {}\n",
        outcome.models.app.communication.formatted()
    ));
    let comm = &outcome.models.app.communication;
    out.push_str(&format!(
        "Communication per epoch: {:.1} s at 2 ranks -> {:.1} s at 64 ranks\n",
        comm.predict_at(2.0),
        comm.predict_at(64.0)
    ));
    out
}

// ---------------------------------------------------------------- Fig. 4 --

/// Figure 4b and Q4/Q5: strong-scaling cost-effectiveness analysis.
pub fn fig4_cost_effectiveness(scale: &RunScale) -> String {
    let eval = scale.cap_eval(vec![12, 16, 24, 32, 40, 48, 56, 64]);
    let p = plan(
        SystemConfig::deep(),
        Benchmark::cifar10(),
        ParallelStrategy::DataParallel,
        ScalingMode::Strong,
        &DEEP_MODELING_NODES,
        &eval,
        scale,
    );
    let outcome = p.execute(MetricKind::Time).expect("strong-scaling models");
    let model = &outcome.models.app.epoch;
    let cost = CostModel::new(SystemConfig::deep().cores_per_rank);

    let candidates: Vec<f64> = [16u32, 24, 32, 40, 48, 56, 64]
        .iter()
        .map(|&n| n as f64)
        .collect();
    // Constraints chosen like Fig. 4b: a target time that excludes the small
    // end and a budget that excludes the large end.
    let mid_time = model.predict_at(24.0);
    let mid_cost = cost.epoch_core_hours(model, 48.0);
    let constraints = Constraints {
        max_seconds: Some(mid_time),
        max_core_hours: Some(mid_cost),
    };
    let result = find_cost_effective(model, &cost, &candidates, constraints, ScalingMode::Strong);

    let mut out = String::new();
    out.push_str("== Figure 4b: cost-effective training configurations (strong scaling) ==\n");
    out.push_str(&format!("Runtime model: {}\n", model.formatted()));
    out.push_str(&format!(
        "Constraints: target time {:.1} s, budget {:.2} core-hours\n\n",
        mid_time, mid_cost
    ));
    let mut t = Table::new(&[
        "nodes",
        "time [s]",
        "cost [core-h]",
        "efficiency %",
        "feasible",
    ]);
    for c in &result.candidates {
        t.add_row(vec![
            fmt(c.ranks, 0),
            fmt(c.seconds, 2),
            fmt(c.core_hours, 3),
            fmt(c.efficiency_percent, 1),
            if c.feasible { "yes" } else { "no" }.to_string(),
        ]);
    }
    out.push_str(&t.render());
    match result.best {
        Some(best) => out.push_str(&format!(
            "\nMost cost-effective configuration: {} nodes ({:.1} s, {:.3} core-hours)\n",
            best.ranks, best.seconds, best.core_hours
        )),
        None => out.push_str("\nNo feasible configuration under these constraints.\n"),
    }

    // Q4: the paper's cost-model example evaluated on this runtime model.
    out.push_str(&format!(
        "\nQ4 (cost per epoch at 32 nodes): C(32) = {:.2} core-hours\n",
        CostModel::new(8).epoch_core_hours(model, 32.0)
    ));
    out
}

// ---------------------------------------------------------------- Fig. 5 --

/// Per-strategy epoch-model errors on JURECA: the Fig. 5 bars (model
/// accuracy at nodes 2-10, predictive power at 12-64).
pub fn fig5_parallel_strategies(scale: &RunScale) -> String {
    let strategies = [
        ParallelStrategy::DataParallel,
        ParallelStrategy::TensorParallel { group: 4 },
        ParallelStrategy::PipelineParallel {
            stages: 4,
            microbatches: 8,
        },
    ];
    let eval = scale.cap_eval(DEEP_EVAL_NODES.to_vec());
    let mut out = String::new();
    out.push_str("== Figure 5: MPE per parallel strategy (JURECA, all benchmarks) ==\n");
    let mut t = Table::new(&["nodes", "set", "data par.", "tensor par.", "pipeline par."]);

    // For each strategy, collect per-node percentage errors across
    // benchmarks and both scaling modes; report the median (MPE).
    let mut per_strategy: Vec<std::collections::BTreeMap<u32, Vec<f64>>> = Vec::new();
    for &strategy in &strategies {
        let mut errors: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
        for benchmark in scale.benchmarks() {
            for scaling in [ScalingMode::Weak, ScalingMode::Strong] {
                let p = plan(
                    SystemConfig::jureca(),
                    benchmark.clone(),
                    strategy,
                    scaling,
                    &DEEP_MODELING_NODES,
                    &eval,
                    scale,
                );
                if let Ok(outcome) = p.execute(MetricKind::Time) {
                    for e in outcome
                        .epoch_report
                        .modeling_errors
                        .iter()
                        .chain(&outcome.epoch_report.evaluation_errors)
                    {
                        let nodes =
                            (e.coordinate[0] as u32) / SystemConfig::jureca().node.gpus_per_node;
                        errors.entry(nodes).or_default().push(e.percent_error);
                    }
                }
            }
        }
        per_strategy.push(errors);
    }

    let mut all_nodes: Vec<u32> = per_strategy
        .iter()
        .flat_map(|m| m.keys().copied())
        .collect();
    all_nodes.sort_unstable();
    all_nodes.dedup();
    for nodes in all_nodes {
        let set = if DEEP_MODELING_NODES.contains(&nodes) {
            "P"
        } else {
            "P+"
        };
        let cells: Vec<String> = per_strategy
            .iter()
            .map(|m| {
                m.get(&nodes)
                    .map(|v| pct(median(v)))
                    .unwrap_or_else(|| "-".to_string())
            })
            .collect();
        let mut row = vec![nodes.to_string(), set.to_string()];
        row.extend(cells);
        t.add_row(row);
    }
    out.push_str(&t.render());
    out.push_str("\n(P = model accuracy at fit points, P+ = predictive power.)\n");
    out
}

// ---------------------------------------------------------------- Fig. 6 --

/// System comparison: DEEP (1 GPU/node, MPI) vs JURECA (4 GPU/node, NCCL).
pub fn fig6_systems(scale: &RunScale) -> String {
    let eval = scale.cap_eval(DEEP_EVAL_NODES.to_vec());
    let mut out = String::new();
    out.push_str("== Table 1: evaluation systems ==\n");
    out.push_str(&format!("{}\n", SystemConfig::deep().table1_row()));
    out.push_str(&format!("{}\n\n", SystemConfig::jureca().table1_row()));
    out.push_str("== Figure 6: MPE per system (data parallelism, all benchmarks) ==\n");

    let mut t = Table::new(&["nodes", "set", "DEEP", "JURECA"]);
    let mut per_system: Vec<std::collections::BTreeMap<u32, Vec<f64>>> = Vec::new();
    for system in [SystemConfig::deep(), SystemConfig::jureca()] {
        let gpus = system.node.gpus_per_node;
        let mut errors: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
        for benchmark in scale.benchmarks() {
            for scaling in [ScalingMode::Weak, ScalingMode::Strong] {
                let p = plan(
                    system.clone(),
                    benchmark.clone(),
                    ParallelStrategy::DataParallel,
                    scaling,
                    &DEEP_MODELING_NODES,
                    &eval,
                    scale,
                );
                if let Ok(outcome) = p.execute(MetricKind::Time) {
                    for e in outcome
                        .epoch_report
                        .modeling_errors
                        .iter()
                        .chain(&outcome.epoch_report.evaluation_errors)
                    {
                        let nodes = e.coordinate[0] as u32 / gpus;
                        errors.entry(nodes).or_default().push(e.percent_error);
                    }
                }
            }
        }
        per_system.push(errors);
    }

    let mut all_nodes: Vec<u32> = per_system.iter().flat_map(|m| m.keys().copied()).collect();
    all_nodes.sort_unstable();
    all_nodes.dedup();
    for nodes in all_nodes {
        let set = if DEEP_MODELING_NODES.contains(&nodes) {
            "P"
        } else {
            "P+"
        };
        let mut row = vec![nodes.to_string(), set.to_string()];
        for m in &per_system {
            row.push(
                m.get(&nodes)
                    .map(|v| pct(median(v)))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        t.add_row(row);
    }
    out.push_str(&t.render());
    out
}

// ---------------------------------------------------------------- Fig. 7 --

/// Per-benchmark predictive power on DEEP (data parallelism).
pub fn fig7_benchmarks(scale: &RunScale) -> String {
    let eval = scale.cap_eval(DEEP_EVAL_NODES.to_vec());
    let benchmarks = scale.benchmarks();
    let mut out = String::new();
    out.push_str("== Figure 7: predictive power per benchmark (DEEP, data parallelism) ==\n");
    let mut header: Vec<&str> = vec!["nodes"];
    let names: Vec<String> = benchmarks.iter().map(|b| b.name.clone()).collect();
    header.extend(names.iter().map(String::as_str));
    let mut t = Table::new(&header);

    let mut columns: Vec<std::collections::BTreeMap<u32, f64>> = Vec::new();
    for benchmark in &benchmarks {
        let p = plan(
            SystemConfig::deep(),
            benchmark.clone(),
            ParallelStrategy::DataParallel,
            ScalingMode::Weak,
            &DEEP_MODELING_NODES,
            &eval,
            scale,
        );
        let mut col = std::collections::BTreeMap::new();
        if let Ok(outcome) = p.execute(MetricKind::Time) {
            for e in &outcome.epoch_report.evaluation_errors {
                col.insert(e.coordinate[0] as u32, e.percent_error);
            }
        }
        columns.push(col);
    }
    for &nodes in &eval {
        let mut row = vec![nodes.to_string()];
        for col in &columns {
            row.push(
                col.get(&nodes)
                    .map(|&v| pct(v))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        t.add_row(row);
    }
    out.push_str(&t.render());
    out
}

// ---------------------------------------------------------------- Fig. 8 --

/// Profiling-overhead study: standard full-epoch profiling vs. the efficient
/// sampling strategy, per benchmark at 64 nodes on DEEP.
pub fn fig8_overhead(scale: &RunScale) -> String {
    let mut out = String::new();
    out.push_str(
        "== Figure 8: execution & profiling time per epoch, standard vs efficient sampling \
         (DEEP, 64 nodes, data parallelism) ==\n",
    );
    let mut t = Table::new(&[
        "benchmark",
        "std exec [s]",
        "std prof [s]",
        "eff exec [s]",
        "eff prof [s]",
        "reduction",
    ]);
    let mut reductions = Vec::new();
    for benchmark in scale.benchmarks() {
        let job = TrainingJob {
            system: SystemConfig::deep(),
            benchmark: benchmark.clone(),
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks: 64,
        };
        let cmp = compare_overhead(&job, SamplingStrategy::paper_default());
        reductions.push(cmp.profiling_reduction_percent());
        t.add_row(vec![
            benchmark.name.clone(),
            fmt(cmp.standard_execution_seconds, 2),
            fmt(cmp.standard_profiling_seconds, 2),
            fmt(cmp.efficient_execution_seconds, 2),
            fmt(cmp.efficient_profiling_seconds, 2),
            pct(cmp.profiling_reduction_percent()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nAverage profiling-time reduction: {} (paper: ~94.9%)\n",
        pct(reductions.iter().sum::<f64>() / reductions.len() as f64)
    ));
    out
}

// --------------------------------------------------------------- Table 2 --

/// One Table-2 row request: an API-domain bucket and a metric.
struct Table2Row {
    label: &'static str,
    domains: &'static [ApiDomain],
    metric: MetricKind,
}

const TABLE2_ROWS: [Table2Row; 10] = [
    Table2Row {
        label: "CUDA kernels / time",
        domains: &[ApiDomain::CudaKernel],
        metric: MetricKind::Time,
    },
    Table2Row {
        label: "CUDA kernels / visits",
        domains: &[ApiDomain::CudaKernel],
        metric: MetricKind::Visits,
    },
    Table2Row {
        label: "NVTX func. / time",
        domains: &[ApiDomain::Nvtx],
        metric: MetricKind::Time,
    },
    Table2Row {
        label: "NVTX func. / visits",
        domains: &[ApiDomain::Nvtx],
        metric: MetricKind::Visits,
    },
    Table2Row {
        label: "OS func. / time",
        domains: &[ApiDomain::Os],
        metric: MetricKind::Time,
    },
    Table2Row {
        label: "cuBLAS / time",
        domains: &[ApiDomain::CuBlas],
        metric: MetricKind::Time,
    },
    Table2Row {
        label: "cuDNN / time",
        domains: &[ApiDomain::CuDnn],
        metric: MetricKind::Time,
    },
    Table2Row {
        label: "MPI / time",
        domains: &[ApiDomain::Mpi, ApiDomain::Nccl],
        metric: MetricKind::Time,
    },
    Table2Row {
        label: "Memory ops. / time",
        domains: &[ApiDomain::MemCpy, ApiDomain::MemSet],
        metric: MetricKind::Time,
    },
    Table2Row {
        label: "Memory ops. / bytes",
        domains: &[ApiDomain::MemCpy, ApiDomain::MemSet],
        metric: MetricKind::Bytes,
    },
];

/// Per-kernel-model evaluation: errors of every kernel model of `domains` ×
/// `metric` at each evaluation node count.
fn kernel_errors_at_scales(
    modeling_agg: &AggregatedExperiment,
    evaluation_agg: &AggregatedExperiment,
    domains: &[ApiDomain],
    metric: MetricKind,
    errors: &mut std::collections::BTreeMap<u32, Vec<f64>>,
    model_count: &mut usize,
    gpus_per_node: u32,
) {
    let options = ModelSetOptions::default();
    let Ok(set) = build_model_set(modeling_agg, metric, &options) else {
        return;
    };
    for (id, model) in &set.kernels {
        if !domains.contains(&id.domain) {
            continue;
        }
        *model_count += 1;
        let eval_data = evaluation_agg.kernel_dataset(id, metric);
        for e in point_errors(model, &eval_data) {
            if e.measured == 0.0 {
                continue;
            }
            let nodes = e.coordinate[0] as u32 / gpus_per_node;
            errors.entry(nodes).or_default().push(e.percent_error);
        }
    }
}

/// Table 2: MPE of the kernel-level models per model type and metric at the
/// evaluation points, plus the number of models evaluated.
pub fn table2_kernel_models(scale: &RunScale) -> String {
    let eval = scale.cap_eval(vec![24, 32, 40, 48, 56, 64]);
    let systems = [SystemConfig::deep(), SystemConfig::jureca()];

    // Pre-aggregate per system x benchmark, then evaluate every row bucket.
    let mut aggs = Vec::new();
    for system in &systems {
        for benchmark in scale.benchmarks() {
            let p = plan(
                system.clone(),
                benchmark,
                ParallelStrategy::DataParallel,
                ScalingMode::Weak,
                &DEEP_MODELING_NODES,
                &eval,
                scale,
            );
            let (modeling, evaluation) = p.aggregate();
            aggs.push((system.node.gpus_per_node, modeling, evaluation));
        }
    }

    let mut out = String::new();
    out.push_str("== Table 2: kernel-model MPE per model type at the evaluation points ==\n");
    let mut header = vec!["model type / metric".to_string()];
    header.extend(eval.iter().map(|n| format!("{n} nodes")));
    header.push("models".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(&header_refs);

    for row in &TABLE2_ROWS {
        let mut errors: std::collections::BTreeMap<u32, Vec<f64>> = Default::default();
        let mut count = 0usize;
        for (gpus, modeling, evaluation) in &aggs {
            kernel_errors_at_scales(
                modeling,
                evaluation,
                row.domains,
                row.metric,
                &mut errors,
                &mut count,
                *gpus,
            );
        }
        let mut cells = vec![row.label.to_string()];
        for &n in &eval {
            cells.push(
                errors
                    .get(&n)
                    .map(|v| pct(median(v)))
                    .unwrap_or_else(|| "-".to_string()),
            );
        }
        cells.push(count.to_string());
        t.add_row(cells);
    }
    out.push_str(&t.render());
    out
}

// -------------------------------------------------------------- Headline --

/// The headline accuracy summary: average model accuracy (paper: 97.6%) and
/// average prediction accuracy at ~4x extrapolation (paper: 93.6%).
pub fn headline_summary(scale: &RunScale) -> String {
    let eval = scale.cap_eval(vec![40, 48, 56, 64]);
    let mut model_acc = Vec::new();
    let mut pred_acc = Vec::new();
    for system in [SystemConfig::deep(), SystemConfig::jureca()] {
        for benchmark in scale.benchmarks() {
            let p = plan(
                system.clone(),
                benchmark,
                ParallelStrategy::DataParallel,
                ScalingMode::Weak,
                &DEEP_MODELING_NODES,
                &eval,
                scale,
            );
            if let Ok(outcome) = p.execute(MetricKind::Time) {
                model_acc.push(outcome.epoch_report.model_accuracy_percent());
                // Prediction accuracy at ~4x the largest modeling scale.
                let at_4x: Vec<f64> = outcome
                    .epoch_report
                    .evaluation_errors
                    .iter()
                    .map(|e| 100.0 - e.percent_error)
                    .collect();
                if !at_4x.is_empty() {
                    pred_acc.push(at_4x.iter().sum::<f64>() / at_4x.len() as f64);
                }
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    format!(
        "== Headline summary ==\n\
         Average model accuracy:      {:.1}% (paper: 97.6%)\n\
         Average prediction accuracy: {:.1}% (paper: 93.6%)\n\
         Experiments aggregated:      {}\n",
        avg(&model_acc),
        avg(&pred_acc),
        model_acc.len()
    )
}

/// Speedup series for the case-study model, exercised by tests and examples.
pub fn case_study_speedup(scale: &RunScale) -> Vec<(f64, f64)> {
    let p = plan(
        SystemConfig::deep(),
        Benchmark::cifar10(),
        ParallelStrategy::DataParallel,
        ScalingMode::Weak,
        &DEEP_MODELING_NODES,
        &[],
        scale,
    );
    let outcome = p.execute(MetricKind::Time).expect("case study");
    speedup_series(
        &outcome.models.app.epoch,
        &[2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_renders() {
        let s = fig3_case_study(&RunScale::quick());
        assert!(s.contains("Figure 3"));
        assert!(s.contains("T_epoch"));
        assert!(s.contains("Communication model"));
    }

    #[test]
    fn fig8_quick_shows_reduction() {
        let s = fig8_overhead(&RunScale::quick());
        assert!(s.contains("reduction"));
        assert!(s.contains("ImageNet") || s.contains("CIFAR-10"));
    }

    #[test]
    fn case_study_speedup_is_negative_at_scale() {
        let series = case_study_speedup(&RunScale::quick());
        assert_eq!(series[0].1, 0.0);
        assert!(series.last().unwrap().1 < 0.0);
    }
}
