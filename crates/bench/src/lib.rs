//! # extradeep-bench
//!
//! Regenerators for every table and figure of the paper's evaluation (§4),
//! plus Criterion benches. Each `fig*`/`table*` binary prints the same rows
//! or series the paper reports; the shared drivers in [`experiments`] are
//! reused by the Criterion benches at a reduced scale.

pub mod ablations;
pub mod experiments;
pub mod history;
pub mod inputs;
pub mod tables;

pub use experiments::RunScale;
