use extradeep_sim::*;
fn main() {
    for r in [8u32, 16, 24, 32, 36, 40, 48, 64, 128] {
        let job = TrainingJob {
            system: SystemConfig::jureca(),
            benchmark: Benchmark::cifar10(),
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks: r,
        };
        let plans = job.plans();
        let comm: f64 = plans
            .train_step
            .rows
            .iter()
            .filter(|x| {
                matches!(
                    x.domain,
                    extradeep_trace::ApiDomain::Nccl | extradeep_trace::ApiDomain::Mpi
                )
            })
            .map(|x| x.seconds)
            .sum();
        println!(
            "ranks {:>4}: epoch {:>8.2}  step {:.4} comm/step {:.4} n_t {} n_v {}",
            r,
            job.epoch_seconds_estimate(),
            plans.train_step.seconds(),
            comm,
            job.training_meta().training_steps_per_epoch(),
            job.training_meta().validation_steps_per_epoch()
        );
    }
}
