use extradeep::prelude::*;
fn main() {
    for scaling in [ScalingMode::Weak, ScalingMode::Strong] {
        println!("=== {:?}", scaling);
        let mut spec = extradeep_bench::inputs::debug_experiment(
            SystemConfig::jureca(),
            Benchmark::cifar10(),
            vec![8, 16, 24, 32, 40],
            5,
            4,
        );
        spec.scaling = scaling;
        let plan = ExperimentPlan {
            spec,
            modeling_points: vec![8, 16, 24, 32, 40],
            evaluation_points: vec![48, 64, 96, 128, 160, 192, 224, 256],
        };
        let out = plan.execute(MetricKind::Time).unwrap();
        println!("model: {}", out.models.app.epoch.formatted());
        for e in out
            .epoch_report
            .modeling_errors
            .iter()
            .chain(&out.epoch_report.evaluation_errors)
        {
            println!(
                "x={:>4} measured={:>10.2} pred={:>10.2} err={:>6.1}%",
                e.coordinate[0], e.measured, e.predicted, e.percent_error
            );
        }
    }
}
