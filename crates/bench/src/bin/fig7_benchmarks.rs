//! Regenerates the paper artifact via `extradeep_bench::experiments::fig7_benchmarks`.
//! Pass `--quick` for a reduced run (fewer repetitions / points).

use extradeep_bench::experiments::{fig7_benchmarks, RunScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    println!("{}", fig7_benchmarks(&scale));
}
