//! Measures the campaign runner (`extradeep campaign`) on a small matrix
//! and records the result in `BENCH_campaign.json`: cell throughput, the
//! cost of a full resume replay (everything served from the manifest), and
//! the overhead of the crash-safety machinery (fsync'd journal + checkpoint
//! writes + scheduling) over the same cells' raw pipeline compute.
//!
//! Run with `cargo run --release -p extradeep-bench --bin bench_campaign`.
//! `--quick` trims the batch count for CI; an optional positional argument
//! overrides the output path. The perf-history ratchet ingests the
//! `*_per_sec`/`*_ms`/`*_s`/`*_percent` metrics under the `campaign`
//! prefix.

use extradeep::modelset::{build_model_set, ModelSetOptions};
use extradeep::{run_campaign, CampaignSpec, RunOptions};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_trace::MetricKind;
use std::hint::black_box;
use std::time::Instant;

/// The measured matrix: one benchmark at `seeds` seeds over the case-study
/// scales, sequential execution so campaign wall time is comparable to the
/// raw sequential compute baseline.
fn bench_spec(seeds: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::default();
    spec.name = "bench".to_string();
    spec.grid.seeds = (1..=seeds).collect();
    spec.grid.max_recorded_ranks = 1;
    spec.execution.parallelism = 1;
    spec
}

fn fresh_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("extradeep-bench-campaign")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Best-of-batches wall time of `f`, in seconds.
fn best_of<T>(batches: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_campaign.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let batches = if quick { 2 } else { 5 };
    let seeds = if quick { 2 } else { 4 };

    let spec = bench_spec(seeds);
    let cells = spec.expand().expect("bench spec expands");

    // Baseline: the same cells' pipelines run back to back with no journal,
    // no checkpoints, no worker threads — pure compute.
    let compute_s = best_of(batches, || {
        for cell in &cells {
            let espec = cell.experiment_spec().expect("cell builds");
            let agg = aggregate_experiment(&espec.run(), &AggregationOptions::default());
            let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default())
                .expect("cells model");
            black_box(models.kernels.len());
        }
    });

    // Campaign wall time, fresh directory every run (no resume shortcuts).
    let campaign_s = best_of(batches, || {
        let dir = fresh_dir("fresh");
        let report = run_campaign(&spec, &dir, &RunOptions::default()).expect("campaign runs");
        assert!(report.is_complete(), "bench matrix must complete");
        report.cells.len()
    });

    // Resume replay: every cell already done, so the invocation is pure
    // manifest replay + checkpoint validation + roll-up.
    let replay_dir = fresh_dir("replay");
    run_campaign(&spec, &replay_dir, &RunOptions::default()).expect("seed run");
    let resume_s = best_of(batches, || {
        let report = run_campaign(&spec, &replay_dir, &RunOptions::default()).expect("resume runs");
        assert_eq!(report.resumed_done, cells.len());
        report.resumed_done
    });

    let overhead_percent = if compute_s > 0.0 {
        100.0 * (campaign_s - compute_s).max(0.0) / compute_s
    } else {
        0.0
    };

    let body = serde_json::json!({
        "benchmark": "campaign runner on the case-study matrix",
        "pipeline": format!(
            "{} cells (simulate 5 scales -> aggregate -> model -> analyze), sequential",
            cells.len()
        ),
        "quick": quick,
        "cells": cells.len(),
        "cells_per_sec": cells.len() as f64 / campaign_s,
        "campaign_wall_s": campaign_s,
        "compute_wall_s": compute_s,
        "manifest_overhead_percent": overhead_percent,
        "resume_replay_ms": resume_s * 1e3,
    });
    let pretty = serde_json::to_string_pretty(&body).expect("serialize report");
    std::fs::write(&out_path, format!("{pretty}\n")).expect("write BENCH_campaign.json");
    println!("{pretty}");
    println!("wrote {out_path}");
}
