//! Measures the workload-observatory path (`extradeep inspect`) on the
//! case-study experiment and records the result in `BENCH_inspect.json`:
//! per-config timeline analysis time, metric-trend fitting time, and the
//! end-to-end inspection time, with best-of-batches timing.
//!
//! Run with `cargo run --release -p extradeep-bench --bin bench_inspect`.
//! `--quick` trims the batch count for CI; an optional positional argument
//! overrides the output path. The perf-history ratchet ingests the timing
//! metrics (`*_ms`) under the `inspect` prefix.

use extradeep::inspect::{inspect_experiment, InspectOptions};
use extradeep_sim::ExperimentSpec;
use extradeep_trace::{analyze_config, ExperimentProfiles};
use std::hint::black_box;
use std::time::Instant;

fn fixture() -> ExperimentProfiles {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 2;
    spec.profiler.max_recorded_ranks = 4;
    spec.run()
}

/// Best-of-batches wall time of `f`, in seconds.
fn best_of<T>(batches: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_inspect.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let batches = if quick { 2 } else { 5 };

    let profiles = fixture();
    let opts = InspectOptions::default();

    // Timeline analysis alone: every per-rank interval merge, step stat,
    // and critical-path tiling, with no model fitting.
    let timeline_s = best_of(batches, || {
        profiles
            .profiles
            .iter()
            .map(|p| analyze_config(p).critical_path_seconds)
            .sum::<f64>()
    });

    // End-to-end inspection (timeline + condensation + PMNF trend fits).
    let inspect_s = best_of(batches, || inspect_experiment(&profiles, &opts));
    let fit_s = (inspect_s - timeline_s).max(0.0);

    let report = inspect_experiment(&profiles, &opts);
    let render_s = best_of(batches, || report.render(opts.top).len());

    let body = serde_json::json!({
        "benchmark": "workload observatory on the case-study experiment",
        "pipeline": "simulate(5 configs x 2 reps) -> inspect(timeline + trends)",
        "quick": quick,
        "timeline_ms": timeline_s * 1e3,
        "inspect_ms": inspect_s * 1e3,
        "fit_ms": fit_s * 1e3,
        "render_ms": render_s * 1e3,
        "configs": report.configs.len(),
        "trends": report.trends.len(),
        "flagged_ranks": report.flagged_ranks,
    });
    let pretty = serde_json::to_string_pretty(&body).expect("serialize report");
    std::fs::write(&out_path, format!("{pretty}\n")).expect("write BENCH_inspect.json");
    println!("{pretty}");
    println!("wrote {out_path}");
}
