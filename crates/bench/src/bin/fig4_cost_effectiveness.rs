//! Regenerates the paper artifact via `extradeep_bench::experiments::fig4_cost_effectiveness`.
//! Pass `--quick` for a reduced run (fewer repetitions / points).

use extradeep_bench::experiments::{fig4_cost_effectiveness, RunScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    println!("{}", fig4_cost_effectiveness(&scale));
}
