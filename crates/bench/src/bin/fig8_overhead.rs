//! Regenerates the paper artifact via `extradeep_bench::experiments::fig8_overhead`.
//! Pass `--quick` for a reduced run (fewer repetitions / points).

use extradeep_bench::experiments::{fig8_overhead, RunScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    println!("{}", fig8_overhead(&scale));
}
