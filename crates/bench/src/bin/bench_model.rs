//! Times the batched search kernel against the previous fast engine and the
//! frozen reference implementation, and records the three-way comparison in
//! `BENCH_model.json`.
//!
//! Run with `cargo run --release -p extradeep-bench --bin bench_model`.
//! An optional first non-flag argument overrides the output path;
//! `--quick` cuts the batch/iteration counts for CI smoke runs where only
//! regression *detection* matters, not publication-grade timings. Quick and
//! full runs emit the *same* JSON schema (same keys); quick runs are flagged
//! with `"quick": true` so downstream tooling can tell them apart.
//!
//! `BENCH_TABLES.md` is rendered from this file's output by the
//! `bench_tables` binary — regenerate it after re-running this benchmark.

use extradeep::modelset::{build_model_set, ModelSetOptions};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_bench::inputs;
use extradeep_model::hypothesis::{cross_validate, cross_validate_naive, HypothesisShape};
use extradeep_model::{
    model_multi_parameter, model_multi_parameter_engine, model_multi_parameter_reference,
    model_single_parameter, model_single_parameter_engine, model_single_parameter_reference,
    Fraction, ModelerOptions, TermShape,
};
use extradeep_sim::ExperimentSpec;
use extradeep_trace::MetricKind;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-batches wall time per call, in seconds. The best batch (rather
/// than the mean) suppresses scheduler noise, which matters because the fast
/// path's per-call cost is microseconds.
fn time_per_call<F: FnMut()>(batches: usize, iters: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

/// One three-way comparison row. `speedup` keeps its historical meaning
/// (reference vs engine) so the perf-history seed metrics stay comparable;
/// `batched_speedup` is the additional factor the batched kernel adds over
/// the engine, and `total_speedup` is reference vs batched.
fn comparison(
    name: &str,
    reference_s: f64,
    engine_s: f64,
    batched_s: f64,
    model: &str,
) -> serde_json::Value {
    serde_json::json!({
        "name": name,
        "reference_us": reference_s * 1e6,
        "engine_us": engine_s * 1e6,
        "batched_us": batched_s * 1e6,
        "speedup": reference_s / engine_s,
        "batched_speedup": engine_s / batched_s,
        "total_speedup": reference_s / batched_s,
        "model": model,
    })
}

/// Counts hypotheses evaluated by one batched single-param + one batched
/// multi-param search, via the obs counters.
fn hypotheses_per_run(
    series: &extradeep_model::ExperimentData,
    grid: &extradeep_model::ExperimentData,
    options: &ModelerOptions,
) -> u64 {
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);
    model_single_parameter(series, options).ok();
    model_multi_parameter(grid, options).ok();
    extradeep_obs::set_enabled(false);
    let snap = extradeep_obs::drain();
    snap.counters
        .iter()
        .filter(|c| &*c.name == "model.search.hypotheses")
        .map(|c| c.value)
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_model.json".to_string());
    let batches = if quick { 3 } else { 5 };
    let options = ModelerOptions::default();

    // --- single-parameter search: the per-kernel cost of the pipeline.
    let series = inputs::synthetic_series(8);
    let batched = model_single_parameter(&series, &options).unwrap();
    let engine = model_single_parameter_engine(&series, &options).unwrap();
    let slow = model_single_parameter_reference(&series, &options).unwrap();
    assert_eq!(
        batched.function.to_string(),
        engine.function.to_string(),
        "batched kernel and engine must select the same model"
    );
    assert_eq!(
        engine.function.to_string(),
        slow.function.to_string(),
        "engine and reference must select the same model"
    );
    let single_iters = if quick { 10 } else { 50 };
    let single_ref = time_per_call(batches, single_iters, || {
        black_box(model_single_parameter_reference(
            black_box(&series),
            &options,
        ))
        .ok();
    });
    let single_eng = time_per_call(batches, single_iters, || {
        black_box(model_single_parameter_engine(black_box(&series), &options)).ok();
    });
    let single_bat = time_per_call(batches, single_iters, || {
        black_box(model_single_parameter(black_box(&series), &options)).ok();
    });

    // --- multi-parameter search on the ranks x batch grid.
    let grid = inputs::synthetic_grid();
    let batched_mp = model_multi_parameter(&grid, &options).unwrap();
    let engine_mp = model_multi_parameter_engine(&grid, &options).unwrap();
    let slow_mp = model_multi_parameter_reference(&grid, &options).unwrap();
    assert_eq!(
        batched_mp.function.to_string(),
        engine_mp.function.to_string(),
        "batched kernel and engine must select the same multi-param model"
    );
    let multi_iters = if quick { 5 } else { 20 };
    let multi_ref = time_per_call(batches, multi_iters, || {
        black_box(model_multi_parameter_reference(black_box(&grid), &options)).ok();
    });
    let multi_eng = time_per_call(batches, multi_iters, || {
        black_box(model_multi_parameter_engine(black_box(&grid), &options)).ok();
    });
    let multi_bat = time_per_call(batches, multi_iters, || {
        black_box(model_multi_parameter(black_box(&grid), &options)).ok();
    });

    // --- LOO-CV in isolation: closed-form vs naive n-refit, one hypothesis.
    // (The batched kernel reuses the same closed-form fold, so this row has
    // no separate batched column.)
    let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::new(2, 3), 2)]);
    let points: Vec<(Vec<f64>, f64)> = inputs::synthetic_series(20)
        .measurements
        .iter()
        .map(|m| (m.coordinate.clone(), m.median()))
        .collect();
    let cv_iters = if quick { 500 } else { 2000 };
    let cv_ref = time_per_call(batches, cv_iters, || {
        black_box(cross_validate_naive(&shape, black_box(&points)));
    });
    let cv_eng = time_per_call(batches, cv_iters, || {
        black_box(cross_validate(&shape, black_box(&points)));
    });

    // --- throughput: hypotheses/second through the batched kernel, and the
    // end-to-end model-set fit (hundreds of kernels via `model_batch`).
    let hyps = hypotheses_per_run(&series, &grid, &options);
    let search_hyps_per_sec = hyps as f64 / (single_bat + multi_bat);

    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 2;
    spec.profiler.max_recorded_ranks = 2;
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    let set_batches = if quick { 1 } else { 3 };
    let model_set_fit_s = time_per_call(set_batches, 1, || {
        black_box(build_model_set(
            black_box(&agg),
            MetricKind::Time,
            &ModelSetOptions::default(),
        ))
        .ok();
    });

    let report = serde_json::json!({
        "benchmark": "PMNF hypothesis search: batched kernel vs engine vs reference",
        "search_space": "extra_p_default",
        "quick": quick,
        "comparisons": [
            comparison(
                "single_param",
                single_ref,
                single_eng,
                single_bat,
                &batched.function.to_string(),
            ),
            comparison(
                "multi_param",
                multi_ref,
                multi_eng,
                multi_bat,
                &batched_mp.function.to_string(),
            ),
            serde_json::json!({
                "name": "loocv_one_hypothesis",
                "reference_us": cv_ref * 1e6,
                "engine_us": cv_eng * 1e6,
                "speedup": cv_ref / cv_eng,
                "model": "x^(2/3) * log2(x)^2, 20 points",
            }),
        ],
        "throughput": {
            "search_hyps_per_sec": search_hyps_per_sec,
            "model_set_fit_s": model_set_fit_s,
        },
        "agreement": {
            "single_param_batched_model": batched.function.to_string(),
            "single_param_reference_model": slow.function.to_string(),
            "multi_param_batched_model": batched_mp.function.to_string(),
            "multi_param_engine_model": engine_mp.function.to_string(),
            "multi_param_reference_model": slow_mp.function.to_string(),
        },
    });
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, format!("{pretty}\n")).expect("write BENCH_model.json");
    println!("{pretty}");
    println!("wrote {out_path}");
}
