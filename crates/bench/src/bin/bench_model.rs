//! Times the fast-path hypothesis search (closed-form LOO-CV, shared basis
//! cache, workspace reuse) against the frozen reference implementation and
//! records the speedups in `BENCH_model.json`.
//!
//! Run with `cargo run --release -p extradeep-bench --bin bench_model`.
//! An optional first non-flag argument overrides the output path;
//! `--quick` cuts the batch/iteration counts for CI smoke runs where only
//! regression *detection* matters, not publication-grade timings.

use extradeep_bench::inputs;
use extradeep_model::hypothesis::{cross_validate, cross_validate_naive, HypothesisShape};
use extradeep_model::{
    model_multi_parameter, model_multi_parameter_reference, model_single_parameter,
    model_single_parameter_reference, Fraction, ModelerOptions, TermShape,
};
use std::hint::black_box;
use std::time::Instant;

/// Best-of-batches wall time per call, in seconds. The best batch (rather
/// than the mean) suppresses scheduler noise, which matters because the fast
/// path's per-call cost is microseconds.
fn time_per_call<F: FnMut()>(batches: usize, iters: usize, mut f: F) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / iters as f64);
    }
    best
}

fn comparison(name: &str, reference_s: f64, engine_s: f64, model: &str) -> serde_json::Value {
    serde_json::json!({
        "name": name,
        "reference_us": reference_s * 1e6,
        "engine_us": engine_s * 1e6,
        "speedup": reference_s / engine_s,
        "model": model,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_model.json".to_string());
    let batches = if quick { 3 } else { 5 };
    let options = ModelerOptions::default();

    // --- single-parameter search: the per-kernel cost of the pipeline.
    let series = inputs::synthetic_series(8);
    let fast = model_single_parameter(&series, &options).unwrap();
    let slow = model_single_parameter_reference(&series, &options).unwrap();
    assert_eq!(
        fast.function.to_string(),
        slow.function.to_string(),
        "fast path and reference must select the same model"
    );
    let single_iters = if quick { 10 } else { 50 };
    let single_ref = time_per_call(batches, single_iters, || {
        black_box(model_single_parameter_reference(
            black_box(&series),
            &options,
        ))
        .ok();
    });
    let single_eng = time_per_call(batches, single_iters, || {
        black_box(model_single_parameter(black_box(&series), &options)).ok();
    });

    // --- multi-parameter search on the ranks x batch grid.
    let grid = inputs::synthetic_grid();
    let fast_mp = model_multi_parameter(&grid, &options).unwrap();
    let slow_mp = model_multi_parameter_reference(&grid, &options).unwrap();
    let multi_iters = if quick { 5 } else { 20 };
    let multi_ref = time_per_call(batches, multi_iters, || {
        black_box(model_multi_parameter_reference(black_box(&grid), &options)).ok();
    });
    let multi_eng = time_per_call(batches, multi_iters, || {
        black_box(model_multi_parameter(black_box(&grid), &options)).ok();
    });

    // --- LOO-CV in isolation: closed-form vs naive n-refit, one hypothesis.
    let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::new(2, 3), 2)]);
    let points: Vec<(Vec<f64>, f64)> = inputs::synthetic_series(20)
        .measurements
        .iter()
        .map(|m| (m.coordinate.clone(), m.median()))
        .collect();
    let cv_iters = if quick { 500 } else { 2000 };
    let cv_ref = time_per_call(batches, cv_iters, || {
        black_box(cross_validate_naive(&shape, black_box(&points)));
    });
    let cv_eng = time_per_call(batches, cv_iters, || {
        black_box(cross_validate(&shape, black_box(&points)));
    });

    let report = serde_json::json!({
        "benchmark": "PMNF hypothesis search: fast path vs reference",
        "search_space": "extra_p_default",
        "comparisons": [
            comparison("single_param", single_ref, single_eng, &fast.function.to_string()),
            comparison("multi_param", multi_ref, multi_eng, &fast_mp.function.to_string()),
            comparison("loocv_one_hypothesis", cv_ref, cv_eng, "x^(2/3) * log2(x)^2, 20 points"),
        ],
        "agreement": {
            "single_param_reference_model": slow.function.to_string(),
            "multi_param_engine_model": fast_mp.function.to_string(),
            "multi_param_reference_model": slow_mp.function.to_string(),
        },
    });
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, format!("{pretty}\n")).expect("write BENCH_model.json");
    println!("{pretty}");
    println!("wrote {out_path}");
}
