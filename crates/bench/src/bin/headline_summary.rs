//! Regenerates the paper artifact via `extradeep_bench::experiments::headline_summary`.
//! Pass `--quick` for a reduced run (fewer repetitions / points).

use extradeep_bench::experiments::{headline_summary, RunScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    println!("{}", headline_summary(&scale));
}
