//! Measures the static analyzer (`extradeep-analyze`) over the real
//! workspace and records the result in `BENCH_analyze.json`: cold-scan
//! throughput (lex + tree + all lints on every file) and the wall time of a
//! warm incremental-cache run, which must serve at least 90% of files from
//! the content-hash cache.
//!
//! Run with `cargo run --release -p extradeep-bench --bin bench_analyze`.
//! `--quick` trims the batch count for CI; an optional positional argument
//! overrides the output path. The perf-history ratchet ingests
//! `analyze.files_per_sec` and `analyze.warm_cache_ms`.

use extradeep_analyze::{analyze_tree, analyze_tree_cached};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// The workspace root: the nearest ancestor of the current directory that
/// holds `analyze-baseline.json`, falling back to the compile-time layout.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().expect("current dir");
    if let Some(root) = cwd
        .ancestors()
        .find(|d| d.join("analyze-baseline.json").is_file())
    {
        return root.to_path_buf();
    }
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// Best-of-batches wall time of `f`, in seconds.
fn best_of<T>(batches: usize, mut f: impl FnMut() -> T) -> f64 {
    black_box(f()); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_analyze.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let batches = if quick { 3 } else { 10 };
    let root = workspace_root();

    // Cold: every file lexed, tree-built and linted from scratch.
    let probe = analyze_tree(&root).expect("workspace scans");
    let files = probe.files_scanned;
    assert!(files > 50, "walk found the workspace sources");
    let cold_s = best_of(batches, || {
        let result = analyze_tree(&root).expect("workspace scans");
        assert_eq!(result.files_from_cache, 0);
        result.violations.len()
    });

    // Warm: a primed content-hash cache must serve >= 90% of files (here:
    // all of them — the tree does not change between runs).
    let cache_dir =
        std::env::temp_dir().join(format!("extradeep-bench-analyze-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();
    std::fs::create_dir_all(&cache_dir).expect("cache dir");
    let cache = cache_dir.join("analyze-cache.json");
    analyze_tree_cached(&root, Some(&cache)).expect("prime the cache");
    let warm_s = best_of(batches, || {
        let result = analyze_tree_cached(&root, Some(&cache)).expect("warm scan");
        assert!(
            result.files_from_cache * 10 >= result.files_scanned * 9,
            "warm run re-lexed too much: {} of {} from cache",
            result.files_from_cache,
            result.files_scanned
        );
        result.files_from_cache
    });
    std::fs::remove_dir_all(&cache_dir).ok();

    let body = serde_json::json!({
        "benchmark": "static analyzer over the full workspace",
        "pipeline": "walk -> lex -> item tree -> 9 lints -> cross-file phases",
        "quick": quick,
        "files": files,
        "files_per_sec": files as f64 / cold_s,
        "cold_scan_ms": cold_s * 1e3,
        "warm_cache_ms": warm_s * 1e3,
    });
    let pretty = serde_json::to_string_pretty(&body).expect("serialize report");
    std::fs::write(&out_path, format!("{pretty}\n")).expect("write BENCH_analyze.json");
    println!("{pretty}");
    println!("wrote {out_path}");
}
