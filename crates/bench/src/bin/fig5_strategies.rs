//! Regenerates the paper artifact via `extradeep_bench::experiments::fig5_parallel_strategies`.
//! Pass `--quick` for a reduced run (fewer repetitions / points).

use extradeep_bench::experiments::{fig5_parallel_strategies, RunScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    println!("{}", fig5_parallel_strategies(&scale));
}
