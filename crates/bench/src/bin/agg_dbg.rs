use extradeep::prelude::*;
use extradeep_agg::AggregatedExperiment;
use extradeep_trace::MetricKind;
fn main() {
    let spec = extradeep_bench::inputs::debug_experiment(
        SystemConfig::jureca(),
        Benchmark::cifar10(),
        vec![32, 40],
        1,
        2,
    );
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    for c in &agg.configs {
        println!(
            "== config {} n_t={} n_v={}",
            c.config.id(),
            c.meta.training_steps_per_epoch(),
            c.meta.validation_steps_per_epoch()
        );
        let mut rows: Vec<(String, f64)> = c
            .kernels
            .values()
            .map(|k| {
                let f =
                    AggregatedExperiment::kernel_epoch_value(&c.meta, &k.reps[0], MetricKind::Time);
                (k.id.name.clone(), f)
            })
            .collect();
        rows.sort_by(|a, b| b.1.total_cmp(&a.1));
        let total: f64 = rows.iter().map(|r| r.1).sum();
        println!("total {total:.2}");
        for (n, f) in rows.iter().take(8) {
            println!("  {:<55} {:>8.3}", n, f);
        }
    }
}
