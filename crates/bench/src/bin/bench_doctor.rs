//! Runs the extrapolation-validation harness (`extradeep doctor`) on the
//! simulated DEEP preset and records its headline quality numbers in
//! `BENCH_doctor.json`, so `perf_history` can track model-quality drift the
//! same way it tracks speed.
//!
//! Run with `cargo run --release -p extradeep-bench --bin bench_doctor`.
//! An optional first non-flag argument overrides the output path.

use extradeep::doctor::{validate_at_scales, DoctorThresholds};
use extradeep::modelset::{build_model_set, ModelSetOptions};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_sim::ExperimentSpec;
use extradeep_trace::MetricKind;
use std::time::Instant;

fn main() {
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "BENCH_doctor.json".to_string());

    // The paper's modeling setup: five cheap small-scale runs, five
    // repetitions, validated at the held-out 16- and 32-rank scales.
    let start = Instant::now();
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.profiler.max_recorded_ranks = 4;
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    let models =
        build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).expect("model set");
    let report = validate_at_scales(
        &models,
        &spec,
        &agg,
        &[16, 32],
        &DoctorThresholds::default(),
    );
    let wall = start.elapsed().as_secs_f64();

    let epoch = &report.app[0];
    let per_scale: Vec<serde_json::Value> = report
        .per_scale_aggregate_mpe
        .iter()
        .map(|(scale, mpe)| {
            serde_json::json!({
                "name": format!("ranks_{scale}"),
                "mpe_percent": mpe,
            })
        })
        .collect();
    let snapshot = serde_json::json!({
        "benchmark": "doctor harness on the simulated DEEP preset",
        "holdout_scales": report.holdout_scales,
        "aggregate_kernel_mpe": report.aggregate_kernel_mpe,
        "epoch_validation_mpe": epoch.validation_mpe,
        "epoch_band_coverage": epoch.band_coverage,
        "kernels_validated": report.kernels.len(),
        "models_flagged": report.num_flagged(),
        "per_scale": per_scale,
        "wall_seconds": wall,
    });
    let pretty = serde_json::to_string_pretty(&snapshot).expect("serialize snapshot");
    std::fs::write(&out_path, format!("{pretty}\n")).expect("write BENCH_doctor.json");
    println!("{pretty}");
    println!("wrote {out_path}");
}
