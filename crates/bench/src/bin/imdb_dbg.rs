use extradeep::prelude::*;
fn main() {
    let spec = extradeep_bench::inputs::debug_experiment(
        SystemConfig::deep(),
        Benchmark::imdb(),
        vec![2, 4, 6, 8, 10],
        5,
        4,
    );
    let agg = aggregate_experiment(&spec.run(), &AggregationOptions::default());
    let data = agg.app_dataset(MetricKind::Time, None);
    for m in &data.measurements {
        println!(
            "x={:>4} median={:.3} vals={:?}",
            m.coordinate[0],
            m.median(),
            m.values
                .iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    let models = build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap();
    println!("model: {}", models.app.epoch.formatted());
    println!(
        "cv_smape {:.3} smape {:.3}",
        models.app.epoch.cv_smape, models.app.epoch.smape
    );
    for x in [12.0, 24.0, 64.0] {
        println!("pred {}: {:.2}", x, models.app.epoch.predict_at(x));
    }
    // candidate inspection
    use extradeep_model::hypothesis::{self, HypothesisShape};
    use extradeep_model::{Fraction, TermShape};
    let pts: Vec<(Vec<f64>, f64)> = data
        .measurements
        .iter()
        .map(|m| (m.coordinate.clone(), m.median()))
        .collect();
    for (name, shape) in [
        ("const", HypothesisShape::constant()),
        (
            "log",
            HypothesisShape::univariate(&[TermShape::new(Fraction::zero(), 1)]),
        ),
        (
            "log2",
            HypothesisShape::univariate(&[TermShape::new(Fraction::zero(), 2)]),
        ),
        (
            "x^1/4",
            HypothesisShape::univariate(&[TermShape::new(Fraction::new(1, 4), 0)]),
        ),
        (
            "x^1/2",
            HypothesisShape::univariate(&[TermShape::new(Fraction::new(1, 2), 0)]),
        ),
        (
            "x^1",
            HypothesisShape::univariate(&[TermShape::new(Fraction::new(1, 1), 0)]),
        ),
    ] {
        if let Some(f) = hypothesis::fit(&shape, &pts) {
            let cv = hypothesis::cross_validate(&shape, &pts);
            println!(
                "{name}: fit={} smape={:.3} cv={:?} pred64={:.2}",
                f.function,
                f.smape,
                cv.map(|c| (c * 1000.0).round() / 1000.0),
                f.function.evaluate_at(64.0)
            );
        }
    }
    // ground truth estimates
    for r in [2u32, 10, 64] {
        let job = extradeep_sim::TrainingJob {
            system: SystemConfig::deep(),
            benchmark: Benchmark::imdb(),
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks: r,
        };
        println!("estimate {}: {:.2}", r, job.epoch_seconds_estimate());
    }
}
