//! Regenerates the paper artifact via `extradeep_bench::experiments::table2_kernel_models`.
//! Pass `--quick` for a reduced run (fewer repetitions / points).

use extradeep_bench::experiments::{table2_kernel_models, RunScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    println!("{}", table2_kernel_models(&scale));
}
