//! Regenerates the design-choice ablation tables (DESIGN.md).

fn main() {
    println!("{}", extradeep_bench::ablations::all_ablations());
}
