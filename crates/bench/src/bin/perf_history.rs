//! Performance-history tool: appends benchmark snapshots to the committed
//! `BENCH_history.json` and gates CI on regressions beyond noise tolerance.
//!
//! ```text
//! perf_history update [--history FILE] [--label NAME] [--snapshot PREFIX=FILE]...
//! perf_history check  [--history FILE] [--tolerance FRAC] [--markdown FILE]
//!                     [--snapshot PREFIX=FILE]...
//! ```
//!
//! Without `--snapshot`, the default snapshots `BENCH_model.json` (prefix
//! `model`), `BENCH_obs.json` (`obs`) and `BENCH_doctor.json` (`doctor`) are
//! ingested when present. `check` compares the current snapshots against the
//! per-metric median of the recorded history and exits 1 when any gated
//! metric is worse by more than the tolerance (default 25%, sized for
//! shared-runner timing noise).

use extradeep_bench::history::{
    detect_regressions, flatten_snapshot, render_markdown, HistoryEntry, PerfHistory,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

const DEFAULT_SNAPSHOTS: &[(&str, &str)] = &[
    ("model", "BENCH_model.json"),
    ("obs", "BENCH_obs.json"),
    ("doctor", "BENCH_doctor.json"),
];

const DEFAULT_TOLERANCE: f64 = 0.25;

struct Args {
    command: String,
    history_path: String,
    label: String,
    tolerance: f64,
    markdown_path: Option<String>,
    snapshots: Vec<(String, String)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: perf_history <update|check> [--history FILE] [--label NAME] \
         [--tolerance FRAC] [--markdown FILE] [--snapshot PREFIX=FILE]..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else { usage() };
    if command != "update" && command != "check" {
        usage();
    }
    let mut args = Args {
        command,
        history_path: "BENCH_history.json".to_string(),
        label: "local".to_string(),
        tolerance: DEFAULT_TOLERANCE,
        markdown_path: None,
        snapshots: Vec::new(),
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match flag.as_str() {
            "--history" => args.history_path = value("--history"),
            "--label" => args.label = value("--label"),
            "--tolerance" => {
                let raw = value("--tolerance");
                args.tolerance = raw.parse().unwrap_or_else(|_| {
                    eprintln!("invalid --tolerance {raw:?}");
                    usage()
                });
            }
            "--markdown" => args.markdown_path = Some(value("--markdown")),
            "--snapshot" => {
                let raw = value("--snapshot");
                let Some((prefix, path)) = raw.split_once('=') else {
                    eprintln!("--snapshot expects PREFIX=FILE, got {raw:?}");
                    usage()
                };
                args.snapshots.push((prefix.to_string(), path.to_string()));
            }
            _ => usage(),
        }
    }
    if args.snapshots.is_empty() {
        args.snapshots = DEFAULT_SNAPSHOTS
            .iter()
            .map(|&(p, f)| (p.to_string(), f.to_string()))
            .collect();
    }
    args
}

/// Flattened metrics of every snapshot that exists and parses. Missing
/// default snapshots are skipped silently; explicitly requested ones abort.
fn collect_metrics(snapshots: &[(String, String)], explicit: bool) -> BTreeMap<String, f64> {
    let mut metrics = BTreeMap::new();
    let mut found = 0;
    for (prefix, path) in snapshots {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(err) => {
                if explicit {
                    eprintln!("cannot read snapshot {path}: {err}");
                    std::process::exit(2);
                }
                continue;
            }
        };
        let value: serde_json::Value = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(err) => {
                eprintln!("cannot parse snapshot {path}: {err}");
                std::process::exit(2);
            }
        };
        metrics.extend(flatten_snapshot(prefix, &value));
        found += 1;
    }
    if found == 0 {
        eprintln!("no benchmark snapshots found; run bench_model/bench_obs/bench_doctor first");
        std::process::exit(2);
    }
    metrics
}

fn load_history(path: &str) -> PerfHistory {
    match std::fs::read_to_string(path) {
        Ok(text) => PerfHistory::from_json(&text).unwrap_or_else(|err| {
            eprintln!("cannot parse history {path}: {err}");
            std::process::exit(2);
        }),
        Err(_) => PerfHistory::default(),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let explicit = std::env::args().any(|a| a == "--snapshot");
    let metrics = collect_metrics(&args.snapshots, explicit);
    let mut history = load_history(&args.history_path);

    match args.command.as_str() {
        "update" => {
            let unix_seconds = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            history.push(HistoryEntry {
                label: args.label,
                unix_seconds,
                metrics,
            });
            std::fs::write(&args.history_path, format!("{}\n", history.to_json())).unwrap_or_else(
                |err| {
                    eprintln!("cannot write {}: {err}", args.history_path);
                    std::process::exit(2);
                },
            );
            println!(
                "recorded run {} of {} in {}",
                history.entries.len(),
                extradeep_bench::history::MAX_ENTRIES,
                args.history_path
            );
            ExitCode::SUCCESS
        }
        "check" => {
            if history.entries.is_empty() {
                eprintln!(
                    "history {} is empty; run `perf_history update` to seed it",
                    args.history_path
                );
                return ExitCode::from(2);
            }
            let regressions = detect_regressions(&history, &metrics, args.tolerance);
            let md = render_markdown(&history, &metrics, &regressions, args.tolerance);
            if let Some(path) = &args.markdown_path {
                std::fs::write(path, &md).unwrap_or_else(|err| {
                    eprintln!("cannot write {path}: {err}");
                    std::process::exit(2);
                });
            }
            println!("{md}");
            if regressions.is_empty() {
                ExitCode::SUCCESS
            } else {
                for r in &regressions {
                    eprintln!(
                        "REGRESSION {}: baseline {:.3} -> current {:.3} ({:+.1}% worse)",
                        r.metric,
                        r.baseline,
                        r.current,
                        r.relative_change * 100.0
                    );
                }
                ExitCode::FAILURE
            }
        }
        _ => unreachable!(),
    }
}
