//! Measures the cost of the self-profiling layer on the full pipeline
//! (simulate → aggregate → model) and records the result in
//! `BENCH_obs.json`: wall time with instrumentation disabled, enabled, and
//! enabled *with the flight-recorder journal streaming telemetry*, the
//! disabled per-span cost, and the phase/counter breakdown of one
//! instrumented run.
//!
//! Run with `cargo run --release -p extradeep-bench --bin bench_obs`.
//! `--quick` trims the batch count for CI; an optional positional argument
//! overrides the output path. The perf-history ratchet ingests the timing
//! metrics (`*_ms`, `*_ns`) under the `obs` prefix.

use extradeep::{build_model_set, ModelSetOptions};
use extradeep_agg::{aggregate_experiment, AggregationOptions};
use extradeep_sim::ExperimentSpec;
use extradeep_trace::MetricKind;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn pipeline_once() {
    let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8, 10]);
    spec.repetitions = 1;
    spec.profiler.max_recorded_ranks = 2;
    let profiles = spec.run();
    let agg = aggregate_experiment(&profiles, &AggregationOptions::default());
    black_box(build_model_set(&agg, MetricKind::Time, &ModelSetOptions::default()).unwrap());
}

/// Best-of-batches wall time per pipeline run, in seconds.
fn time_pipeline(batches: usize) -> f64 {
    pipeline_once(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let start = Instant::now();
        pipeline_once();
        best = best.min(start.elapsed().as_secs_f64());
        // Keep the span buffers from growing across instrumented batches.
        extradeep_obs::drain();
    }
    best
}

/// Per-call cost of a span at a disabled site, in nanoseconds: the price
/// every instrumented hot path pays when `--profile-self` is off.
fn disabled_span_ns() -> f64 {
    extradeep_obs::set_enabled(false);
    const ITERS: u64 = 4_000_000;
    let start = Instant::now();
    for _ in 0..ITERS {
        let _s = black_box(extradeep_obs::span("bench.noop"));
    }
    start.elapsed().as_nanos() as f64 / ITERS as f64
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_obs.json".to_string();
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let batches = if quick { 2 } else { 5 };

    extradeep_obs::set_enabled(false);
    extradeep_obs::drain();
    let disabled_s = time_pipeline(batches);

    extradeep_obs::set_enabled(true);
    extradeep_obs::drain();
    let enabled_s = time_pipeline(batches);

    // Third pass: journal + background sampler streaming JSON-Lines
    // telemetry to a null sink — the full live-telemetry tax.
    let handle = extradeep_obs::sampler::start(
        std::io::sink(),
        extradeep_obs::SamplerConfig {
            interval: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .expect("start telemetry sampler");
    let journal_s = time_pipeline(batches);
    let telemetry = handle.stop();

    // One more instrumented run for the reported breakdown.
    pipeline_once();
    extradeep_obs::set_enabled(false);
    let snap = extradeep_obs::drain();

    let span_ns = disabled_span_ns();
    let overhead_percent = (enabled_s / disabled_s - 1.0) * 100.0;
    let journal_overhead_percent = (journal_s / disabled_s - 1.0) * 100.0;

    let mut names: Vec<&str> = snap.spans.iter().map(|s| s.name.as_ref()).collect();
    names.sort_unstable();
    names.dedup();
    let phases: Vec<serde_json::Value> = names
        .iter()
        .map(|name| {
            serde_json::json!({
                "span": name,
                "count": snap.count(name),
                "total_ms": snap.total_ns(name) as f64 / 1e6,
            })
        })
        .collect();
    let counters: serde_json::Map<String, serde_json::Value> = snap
        .counters
        .iter()
        .map(|c| (c.name.clone(), serde_json::json!(c.value)))
        .collect();

    let report = serde_json::json!({
        "benchmark": "self-profiling overhead on the full pipeline",
        "pipeline": "simulate(5 configs) -> aggregate -> model_set(Time)",
        "quick": quick,
        "disabled_ms": disabled_s * 1e3,
        "enabled_ms": enabled_s * 1e3,
        "journal_ms": journal_s * 1e3,
        "overhead_percent": overhead_percent,
        "journal_overhead_percent": journal_overhead_percent,
        "disabled_span_ns": span_ns,
        "spans_recorded": snap.spans.len(),
        "telemetry": {
            "records": telemetry.records_written,
            "snapshots": telemetry.snapshots_emitted,
            "journal_dropped": telemetry.journal_dropped,
        },
        "phases": phases,
        "counters": counters,
    });
    let pretty = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, format!("{pretty}\n")).expect("write BENCH_obs.json");
    println!("{pretty}");
    println!("wrote {out_path}");
}
