//! Regenerates the paper artifact via `extradeep_bench::experiments::fig3_case_study`.
//! Pass `--quick` for a reduced run (fewer repetitions / points).

use extradeep_bench::experiments::{fig3_case_study, RunScale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        RunScale::quick()
    } else {
        RunScale::paper()
    };
    println!("{}", fig3_case_study(&scale));
}
