//! Renders `BENCH_model.json` into the committed `BENCH_TABLES.md`.
//!
//! The render is deterministic (a pure function of the JSON report), so CI
//! can verify the committed tables are in sync with the committed benchmark
//! results without re-timing anything:
//!
//! ```text
//! cargo run --release -p extradeep-bench --bin bench_tables            # rewrite
//! cargo run --release -p extradeep-bench --bin bench_tables -- --check # verify
//! ```
//!
//! Flags: `--check` compares the render against the existing file and exits
//! non-zero on mismatch; `--in <path>` / `--out <path>` override the default
//! `BENCH_model.json` / `BENCH_TABLES.md` locations; `--campaign <path>` /
//! `--analyze <path>` override the default `BENCH_campaign.json` /
//! `BENCH_analyze.json` (a missing snapshot just skips its section, so
//! older checkouts still render).

use extradeep_bench::tables::{
    render_analyze_section, render_campaign_section, render_model_tables,
};
use std::process::ExitCode;

fn value_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let in_path = value_after(&args, "--in").unwrap_or_else(|| "BENCH_model.json".to_string());
    let out_path = value_after(&args, "--out").unwrap_or_else(|| "BENCH_TABLES.md".to_string());
    let campaign_path =
        value_after(&args, "--campaign").unwrap_or_else(|| "BENCH_campaign.json".to_string());
    let analyze_path =
        value_after(&args, "--analyze").unwrap_or_else(|| "BENCH_analyze.json".to_string());

    let raw = match std::fs::read_to_string(&in_path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_tables: cannot read {in_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report: serde_json::Value = match serde_json::from_str(&raw) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_tables: {in_path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut rendered = render_model_tables(&report);
    if let Ok(raw) = std::fs::read_to_string(&campaign_path) {
        match serde_json::from_str::<serde_json::Value>(&raw) {
            Ok(campaign) => rendered.push_str(&render_campaign_section(&campaign)),
            Err(e) => {
                eprintln!("bench_tables: {campaign_path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Ok(raw) = std::fs::read_to_string(&analyze_path) {
        match serde_json::from_str::<serde_json::Value>(&raw) {
            Ok(analyze) => rendered.push_str(&render_analyze_section(&analyze)),
            Err(e) => {
                eprintln!("bench_tables: {analyze_path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if check {
        match std::fs::read_to_string(&out_path) {
            Ok(existing) if existing == rendered => {
                println!("{out_path} is up to date with {in_path}");
                ExitCode::SUCCESS
            }
            Ok(_) => {
                eprintln!(
                    "bench_tables: {out_path} is stale — regenerate with \
                     `cargo run --release -p extradeep-bench --bin bench_tables`"
                );
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("bench_tables: cannot read {out_path}: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        if let Err(e) = std::fs::write(&out_path, &rendered) {
            eprintln!("bench_tables: cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {out_path}");
        ExitCode::SUCCESS
    }
}
