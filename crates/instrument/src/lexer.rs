//! A line-oriented Python lexer sufficient for static instrumentation.
//!
//! The instrumenter (paper §2.1 step 1) only needs to recognize function
//! definitions, decorators, imports, and indentation — but it must not be
//! fooled by `def` appearing inside strings or comments, and it must track
//! line continuations (open brackets, backslashes, triple-quoted strings) so
//! a multi-line signature is treated as one logical line.

/// Classification of one *logical* source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineKind {
    /// `def name(...)` or `async def name(...)`.
    FunctionDef { name: String, is_async: bool },
    /// `class Name(...)`.
    ClassDef { name: String },
    /// `@decorator` line; payload is the text after `@` (trimmed).
    Decorator { text: String },
    /// `import x` / `from x import y`.
    Import,
    /// Anything else (statements, blank lines, comments).
    Other,
}

/// One logical line: possibly spanning several physical lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalLine {
    /// Index of the first physical line (0-based).
    pub start_line: usize,
    /// Number of physical lines consumed.
    pub num_lines: usize,
    /// Leading whitespace of the first physical line.
    pub indent: String,
    /// The joined text (without the indent of the first line).
    pub text: String,
    pub kind: LineKind,
}

/// Strips comments and (non-triple) string contents from one physical line so
/// keyword detection cannot match inside them. Returns the scrubbed text and
/// whether the line ends inside a triple-quoted string (with its delimiter).
fn scrub_line(line: &str, mut in_triple: Option<char>) -> (String, Option<char>) {
    let mut out = String::with_capacity(line.len());
    let bytes: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if let Some(q) = in_triple {
            // Inside a triple-quoted string: look for the closing delimiter.
            if c == q
                && i + 2 < bytes.len() + 1
                && bytes.get(i + 1) == Some(&q)
                && bytes.get(i + 2) == Some(&q)
            {
                in_triple = None;
                i += 3;
            } else {
                i += 1;
            }
            out.push(' ');
            continue;
        }
        match c {
            '#' => break, // comment: rest of the physical line is ignored
            '\'' | '"' => {
                if bytes.get(i + 1) == Some(&c) && bytes.get(i + 2) == Some(&c) {
                    in_triple = Some(c);
                    out.push(' ');
                    i += 3;
                    continue;
                }
                // Single-quoted string: skip to the closing quote.
                out.push(' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if bytes[i] == c {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                out.push(' ');
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, in_triple)
}

fn bracket_depth_delta(scrubbed: &str) -> i32 {
    scrubbed
        .chars()
        .map(|c| match c {
            '(' | '[' | '{' => 1,
            ')' | ']' | '}' => -1,
            _ => 0,
        })
        .sum()
}

fn classify(text: &str) -> LineKind {
    let trimmed = text.trim_start();
    if let Some(rest) = trimmed.strip_prefix('@') {
        return LineKind::Decorator {
            text: rest.trim().to_string(),
        };
    }
    let (is_async, after_async) = match trimmed.strip_prefix("async ") {
        Some(rest) => (true, rest.trim_start()),
        None => (false, trimmed),
    };
    if let Some(rest) = after_async.strip_prefix("def ") {
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return LineKind::FunctionDef { name, is_async };
        }
    }
    if let Some(rest) = trimmed.strip_prefix("class ") {
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            return LineKind::ClassDef { name };
        }
    }
    if trimmed.starts_with("import ") || trimmed.starts_with("from ") {
        return LineKind::Import;
    }
    LineKind::Other
}

/// Splits a Python source into classified logical lines.
pub fn logical_lines(source: &str) -> Vec<LogicalLine> {
    let physical: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut in_triple: Option<char> = None;

    while i < physical.len() {
        let start = i;
        let raw = physical[i];
        let started_in_triple = in_triple.is_some();
        let (scrubbed, triple_after) = scrub_line(raw, in_triple);
        in_triple = triple_after;
        let mut depth = bracket_depth_delta(&scrubbed);
        let mut joined = scrubbed.clone();
        let mut backslash = raw.trim_end().ends_with('\\') && !started_in_triple;
        i += 1;
        // Continue while brackets are open, a backslash continuation is
        // pending, or we are inside a triple-quoted string.
        while i < physical.len() && (depth > 0 || backslash || in_triple.is_some()) {
            let raw_next = physical[i];
            let (scrubbed_next, triple_next) = scrub_line(raw_next, in_triple);
            in_triple = triple_next;
            depth += bracket_depth_delta(&scrubbed_next);
            backslash = raw_next.trim_end().ends_with('\\') && in_triple.is_none();
            joined.push(' ');
            joined.push_str(scrubbed_next.trim_start());
            i += 1;
        }

        let indent: String = raw
            .chars()
            .take_while(|c| *c == ' ' || *c == '\t')
            .collect();
        let kind = if started_in_triple {
            LineKind::Other
        } else {
            classify(&joined)
        };
        out.push(LogicalLine {
            start_line: start,
            num_lines: i - start,
            indent,
            text: joined,
            kind,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_simple_def() {
        let lines = logical_lines("def train(self):\n    pass\n");
        assert_eq!(
            lines[0].kind,
            LineKind::FunctionDef {
                name: "train".into(),
                is_async: false
            }
        );
        assert_eq!(lines[1].kind, LineKind::Other);
    }

    #[test]
    fn classifies_async_def_and_class() {
        let lines = logical_lines("async def fetch():\n    pass\nclass Model(nn.Module):\n");
        assert_eq!(
            lines[0].kind,
            LineKind::FunctionDef {
                name: "fetch".into(),
                is_async: true
            }
        );
        assert_eq!(
            lines[2].kind,
            LineKind::ClassDef {
                name: "Model".into()
            }
        );
    }

    #[test]
    fn multiline_signature_is_one_logical_line() {
        let src = "def training_step(\n    images,\n    labels,\n):\n    pass\n";
        let lines = logical_lines(src);
        assert_eq!(lines[0].num_lines, 4);
        assert!(matches!(lines[0].kind, LineKind::FunctionDef { .. }));
        assert_eq!(lines[1].start_line, 4);
    }

    #[test]
    fn def_inside_string_is_not_a_def() {
        let lines = logical_lines("x = \"def not_a_function():\"\n");
        assert_eq!(lines[0].kind, LineKind::Other);
    }

    #[test]
    fn def_inside_comment_is_not_a_def() {
        let lines = logical_lines("# def commented():\n");
        assert_eq!(lines[0].kind, LineKind::Other);
    }

    #[test]
    fn triple_quoted_docstring_swallows_defs() {
        let src = "\"\"\"\ndef inside_docstring():\n\"\"\"\ndef real():\n    pass\n";
        let lines = logical_lines(src);
        let defs: Vec<_> = lines
            .iter()
            .filter(|l| matches!(l.kind, LineKind::FunctionDef { .. }))
            .collect();
        assert_eq!(defs.len(), 1);
        if let LineKind::FunctionDef { name, .. } = &defs[0].kind {
            assert_eq!(name, "real");
        }
    }

    #[test]
    fn decorator_and_import_lines() {
        let lines = logical_lines("@tf.function\nimport os\nfrom typing import List\n");
        assert_eq!(
            lines[0].kind,
            LineKind::Decorator {
                text: "tf.function".into()
            }
        );
        assert_eq!(lines[1].kind, LineKind::Import);
        assert_eq!(lines[2].kind, LineKind::Import);
    }

    #[test]
    fn indent_is_preserved() {
        let lines = logical_lines("    def method(self):\n");
        assert_eq!(lines[0].indent, "    ");
    }

    #[test]
    fn backslash_continuation() {
        let src = "x = 1 + \\\n    2\ny = 3\n";
        let lines = logical_lines(src);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].num_lines, 2);
    }

    #[test]
    fn escaped_quote_inside_string() {
        let lines = logical_lines("s = 'it\\'s fine'\ndef f():\n    pass\n");
        assert!(matches!(lines[1].kind, LineKind::FunctionDef { .. }));
    }
}
