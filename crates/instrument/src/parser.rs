//! Extraction of instrumentable function definitions from Python sources.
//!
//! Builds on the logical-line lexer to produce qualified function names
//! (`Class.method`, `outer.inner`) with their decorators, so the rewriter can
//! decide what to annotate and detect already-instrumented code.

use crate::lexer::{logical_lines, LineKind};

/// One function definition found in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PyFunction {
    /// Bare name, e.g. `training_step`.
    pub name: String,
    /// Qualified name including enclosing classes/functions, e.g.
    /// `Trainer.training_step`.
    pub qualified_name: String,
    /// 0-based physical line of the `def` (after any decorators).
    pub def_line: usize,
    /// Indentation string of the `def` line.
    pub indent: String,
    /// Decorator texts directly above the def, innermost last.
    pub decorators: Vec<String>,
    /// 0-based physical line where the decorator block starts (equals
    /// `def_line` when there are no decorators).
    pub insert_line: usize,
    pub is_async: bool,
    /// True when defined directly inside a `class` body.
    pub is_method: bool,
}

impl PyFunction {
    /// Whether any decorator mentions the given marker (e.g. `nvtx.annotate`).
    pub fn has_decorator_containing(&self, marker: &str) -> bool {
        self.decorators.iter().any(|d| d.contains(marker))
    }
}

#[derive(Debug, Clone)]
struct Scope {
    indent_len: usize,
    name: String,
    is_class: bool,
}

fn indent_len(s: &str) -> usize {
    // Treat a tab as 8 columns, the Python tokenizer default.
    s.chars().map(|c| if c == '\t' { 8 } else { 1 }).sum()
}

/// Parses all function definitions in a source file.
pub fn parse_functions(source: &str) -> Vec<PyFunction> {
    let lines = logical_lines(source);
    let mut out = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending_decorators: Vec<(usize, String)> = Vec::new();

    for line in &lines {
        let this_indent = indent_len(&line.indent);
        match &line.kind {
            LineKind::Decorator { text } => {
                pending_decorators.push((line.start_line, text.clone()));
            }
            LineKind::FunctionDef { name, is_async } => {
                pop_scopes(&mut scopes, this_indent);
                let is_method = scopes.last().is_some_and(|s| s.is_class);
                let qualified_name = qualify(&scopes, name);
                let insert_line = pending_decorators
                    .first()
                    .map(|&(l, _)| l)
                    .unwrap_or(line.start_line);
                out.push(PyFunction {
                    name: name.clone(),
                    qualified_name: qualified_name.clone(),
                    def_line: line.start_line,
                    indent: line.indent.clone(),
                    decorators: pending_decorators.iter().map(|(_, d)| d.clone()).collect(),
                    insert_line,
                    is_async: *is_async,
                    is_method,
                });
                pending_decorators.clear();
                scopes.push(Scope {
                    indent_len: this_indent,
                    name: name.clone(),
                    is_class: false,
                });
            }
            LineKind::ClassDef { name } => {
                pop_scopes(&mut scopes, this_indent);
                pending_decorators.clear();
                scopes.push(Scope {
                    indent_len: this_indent,
                    name: name.clone(),
                    is_class: true,
                });
            }
            _ => {
                // Non-def content resets any dangling decorators (they did
                // not precede a def) and closes scopes it has dedented from.
                if !line.text.trim().is_empty() {
                    pop_scopes_strict(&mut scopes, this_indent);
                    pending_decorators.clear();
                }
            }
        }
    }
    out
}

/// Pops scopes whose bodies this def/class cannot be inside (indent <= scope).
fn pop_scopes(scopes: &mut Vec<Scope>, indent: usize) {
    while scopes.last().is_some_and(|s| indent <= s.indent_len) {
        scopes.pop();
    }
}

/// Pops scopes for ordinary statements: a statement at the same indent as a
/// scope header is *outside* that scope's body.
fn pop_scopes_strict(scopes: &mut Vec<Scope>, indent: usize) {
    while scopes.last().is_some_and(|s| indent <= s.indent_len) {
        scopes.pop();
    }
}

fn qualify(scopes: &[Scope], name: &str) -> String {
    let mut parts: Vec<&str> = scopes.iter().map(|s| s.name.as_str()).collect();
    parts.push(name);
    parts.join(".")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_top_level_functions() {
        let src = "def train():\n    pass\n\ndef test():\n    pass\n";
        let funcs = parse_functions(src);
        assert_eq!(funcs.len(), 2);
        assert_eq!(funcs[0].qualified_name, "train");
        assert_eq!(funcs[1].qualified_name, "test");
        assert_eq!(funcs[1].def_line, 3);
    }

    #[test]
    fn qualifies_methods() {
        let src = "class Trainer:\n    def fit(self):\n        pass\n    def evaluate(self):\n        pass\n";
        let funcs = parse_functions(src);
        assert_eq!(funcs[0].qualified_name, "Trainer.fit");
        assert!(funcs[0].is_method);
        assert_eq!(funcs[1].qualified_name, "Trainer.evaluate");
    }

    #[test]
    fn qualifies_nested_functions() {
        let src = "def outer():\n    def inner():\n        pass\n";
        let funcs = parse_functions(src);
        assert_eq!(funcs[1].qualified_name, "outer.inner");
        assert!(!funcs[1].is_method);
    }

    #[test]
    fn collects_decorators_and_insert_line() {
        let src = "@tf.function\n@other\ndef training_step(x):\n    pass\n";
        let funcs = parse_functions(src);
        assert_eq!(funcs[0].decorators, vec!["tf.function", "other"]);
        assert_eq!(funcs[0].insert_line, 0);
        assert_eq!(funcs[0].def_line, 2);
        assert!(funcs[0].has_decorator_containing("tf.function"));
    }

    #[test]
    fn sibling_after_nested_scope_is_top_level() {
        let src = "class A:\n    def m(self):\n        pass\n\ndef free():\n    pass\n";
        let funcs = parse_functions(src);
        assert_eq!(funcs[1].qualified_name, "free");
        assert!(!funcs[1].is_method);
    }

    #[test]
    fn statement_at_class_indent_closes_scope() {
        let src = "class A:\n    x = 1\nprint()\ndef f():\n    pass\n";
        let funcs = parse_functions(src);
        assert_eq!(funcs[0].qualified_name, "f");
    }

    #[test]
    fn async_methods_detected() {
        let src = "class S:\n    async def run(self):\n        pass\n";
        let funcs = parse_functions(src);
        assert!(funcs[0].is_async);
        assert_eq!(funcs[0].qualified_name, "S.run");
    }

    #[test]
    fn dangling_decorator_cleared_by_statement() {
        // A decorator-like line followed by a plain statement must not attach
        // to a later def.
        let src = "@not_a_decorator\nx = 1\ndef f():\n    pass\n";
        let funcs = parse_functions(src);
        assert!(funcs[0].decorators.is_empty());
        assert_eq!(funcs[0].insert_line, funcs[0].def_line);
    }
}
