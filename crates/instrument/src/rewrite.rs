//! Source rewriting: injects NVTX annotations into Python code.
//!
//! Implements the paper's step (1): every user-defined function receives an
//! `@nvtx.annotate("qualified.name")` decorator, and functions recognized as
//! epoch / training-step callbacks additionally receive `nvtx.mark(...)`
//! calls so the profiler records step and epoch boundary timestamps
//! (paper §2.2: "we inject NVTX marks into the training step and epoch
//! callback functions").

use crate::parser::{parse_functions, PyFunction};

/// Instrumentation options.
#[derive(Debug, Clone)]
pub struct InstrumentOptions {
    /// Decorator marker used both for emission and idempotency detection.
    pub annotate_marker: String,
    /// Function-name substrings treated as *epoch* callbacks.
    pub epoch_callback_patterns: Vec<String>,
    /// Function-name substrings treated as *step* callbacks.
    pub step_callback_patterns: Vec<String>,
    /// Skip dunder functions such as `__init__`.
    pub skip_dunder: bool,
}

impl Default for InstrumentOptions {
    fn default() -> Self {
        InstrumentOptions {
            annotate_marker: "nvtx.annotate".to_string(),
            epoch_callback_patterns: vec![
                "on_epoch_begin".into(),
                "on_epoch_end".into(),
                "epoch_callback".into(),
            ],
            step_callback_patterns: vec![
                "on_train_batch_begin".into(),
                "on_train_batch_end".into(),
                "on_test_batch_begin".into(),
                "on_test_batch_end".into(),
                "step_callback".into(),
                "training_step".into(),
                "validation_step".into(),
            ],
            skip_dunder: true,
        }
    }
}

/// Result of instrumenting one source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrumentedSource {
    pub source: String,
    /// Qualified names of newly annotated functions.
    pub annotated: Vec<String>,
    /// Qualified names of functions that already carried an annotation.
    pub skipped_existing: Vec<String>,
    /// Qualified names where a step/epoch mark call was injected.
    pub marked_callbacks: Vec<String>,
}

fn is_dunder(name: &str) -> bool {
    name.starts_with("__") && name.ends_with("__")
}

fn callback_kind(options: &InstrumentOptions, f: &PyFunction) -> Option<&'static str> {
    if options
        .epoch_callback_patterns
        .iter()
        .any(|p| f.name.contains(p.as_str()))
    {
        Some("epoch")
    } else if options
        .step_callback_patterns
        .iter()
        .any(|p| f.name.contains(p.as_str()))
    {
        Some("step")
    } else {
        None
    }
}

/// Finds the physical line index of the first statement of a function body,
/// given the `def` header line. Returns `None` for bodiless (stub) sources.
fn body_start(lines: &[&str], def_line: usize) -> Option<(usize, String)> {
    // Skip to the end of the (possibly multi-line) signature: the line whose
    // scrubbed content ends the header with ':'.
    let mut i = def_line;
    let mut depth = 0i32;
    loop {
        let line = lines.get(i)?;
        for c in line.chars() {
            match c {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 && line.trim_end().ends_with(':') {
            break;
        }
        i += 1;
        if i > def_line + 50 {
            return None;
        }
    }
    // First non-blank line after the header is the body start.
    let mut j = i + 1;
    while j < lines.len() && lines[j].trim().is_empty() {
        j += 1;
    }
    if j >= lines.len() {
        return None;
    }
    let indent: String = lines[j]
        .chars()
        .take_while(|c| *c == ' ' || *c == '\t')
        .collect();
    Some((j, indent))
}

/// Instruments one Python source. The transformation is idempotent: running
/// it on its own output changes nothing.
pub fn instrument_source(source: &str, options: &InstrumentOptions) -> InstrumentedSource {
    let functions = parse_functions(source);
    let lines: Vec<&str> = source.lines().collect();

    // Planned insertions: (physical line index, text). Inserting *before*
    // the given index; collected first, applied back-to-front.
    let mut insertions: Vec<(usize, String)> = Vec::new();
    let mut annotated = Vec::new();
    let mut skipped_existing = Vec::new();
    let mut marked_callbacks = Vec::new();

    for f in &functions {
        if options.skip_dunder && is_dunder(&f.name) {
            continue;
        }
        if f.has_decorator_containing(&options.annotate_marker) {
            skipped_existing.push(f.qualified_name.clone());
        } else {
            insertions.push((
                f.insert_line,
                format!(
                    "{}@{}(\"{}\")",
                    f.indent, options.annotate_marker, f.qualified_name
                ),
            ));
            annotated.push(f.qualified_name.clone());
        }

        if let Some(kind) = callback_kind(options, f) {
            if let Some((body_line, body_indent)) = body_start(&lines, f.def_line) {
                let mark = format!(
                    "{body_indent}nvtx.mark(\"extradeep.{kind}.{}\")",
                    f.qualified_name
                );
                // Idempotency: skip when the mark is already the first body
                // statement.
                if lines.get(body_line).map(|l| l.trim()) != Some(mark.trim()) {
                    insertions.push((body_line, mark));
                    marked_callbacks.push(f.qualified_name.clone());
                }
            }
        }
    }

    // Ensure `import nvtx` exists when we add any instrumentation.
    let has_nvtx_import = lines
        .iter()
        .any(|l| l.trim() == "import nvtx" || l.trim().starts_with("import nvtx "));
    if !insertions.is_empty() && !has_nvtx_import {
        // After an initial shebang / encoding comment block, before code.
        let mut at = 0;
        while at < lines.len() && (lines[at].starts_with("#!") || lines[at].starts_with("# -*-")) {
            at += 1;
        }
        insertions.push((at, "import nvtx".to_string()));
    }

    // Apply insertions bottom-up so indices stay valid. Stable ordering:
    // later line first; ties keep declaration order reversed so that a
    // decorator inserted at the same index as an import lands after it.
    insertions.sort_by_key(|ins| std::cmp::Reverse(ins.0));
    let mut out: Vec<String> = lines.iter().map(|s| s.to_string()).collect();
    for (idx, text) in insertions {
        let at = idx.min(out.len());
        out.insert(at, text);
    }

    let mut source_out = out.join("\n");
    if source.ends_with('\n') {
        source_out.push('\n');
    }
    InstrumentedSource {
        source: source_out,
        annotated,
        skipped_existing,
        marked_callbacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> InstrumentedSource {
        instrument_source(src, &InstrumentOptions::default())
    }

    #[test]
    fn annotates_simple_function() {
        let out = run("def train():\n    pass\n");
        assert!(out.source.contains("@nvtx.annotate(\"train\")"));
        assert!(out.source.starts_with("import nvtx\n"));
        assert_eq!(out.annotated, vec!["train"]);
    }

    #[test]
    fn annotates_methods_with_qualified_names() {
        let out = run("class Trainer:\n    def fit(self):\n        pass\n");
        assert!(out
            .source
            .contains("    @nvtx.annotate(\"Trainer.fit\")\n    def fit(self):"));
    }

    #[test]
    fn is_idempotent() {
        let src =
            "class T:\n    def fit(self):\n        pass\n\ndef training_step(x):\n    return x\n";
        let once = run(src);
        let twice = run(&once.source);
        assert_eq!(once.source, twice.source);
        assert!(twice.annotated.is_empty());
        assert_eq!(twice.skipped_existing.len(), 2);
    }

    #[test]
    fn injects_step_mark_into_callback() {
        let out = run("def training_step(images, labels):\n    return loss\n");
        assert!(out
            .source
            .contains("    nvtx.mark(\"extradeep.step.training_step\")"));
        assert_eq!(out.marked_callbacks, vec!["training_step"]);
    }

    #[test]
    fn injects_epoch_mark_into_callback() {
        let out = run("def on_epoch_end(self, epoch, logs):\n    save(epoch)\n");
        assert!(out
            .source
            .contains("nvtx.mark(\"extradeep.epoch.on_epoch_end\")"));
    }

    #[test]
    fn skips_dunder_functions() {
        let out = run("class M:\n    def __init__(self):\n        pass\n");
        assert!(!out.source.contains("@nvtx.annotate"));
        assert!(out.annotated.is_empty());
    }

    #[test]
    fn preserves_existing_decorators_above() {
        let out = run("@tf.function\ndef training_step(x):\n    return x\n");
        let annotate_pos = out.source.find("@nvtx.annotate").unwrap();
        let tf_pos = out.source.find("@tf.function").unwrap();
        let def_pos = out.source.find("def training_step").unwrap();
        assert!(annotate_pos < tf_pos || annotate_pos < def_pos);
        assert!(out.source.contains("@tf.function"));
    }

    #[test]
    fn does_not_duplicate_import() {
        let out = run("import nvtx\ndef f():\n    pass\n");
        assert_eq!(out.source.matches("import nvtx").count(), 1);
    }

    #[test]
    fn multiline_signature_mark_lands_in_body() {
        let src =
            "def training_step(\n    images,\n    labels,\n):\n    loss = 1\n    return loss\n";
        let out = run(src);
        let lines: Vec<&str> = out.source.lines().collect();
        let mark_idx = lines
            .iter()
            .position(|l| l.contains("nvtx.mark"))
            .expect("mark inserted");
        assert!(lines[mark_idx - 1].trim_end().ends_with("):"));
    }

    #[test]
    fn untouched_when_no_functions() {
        let src = "x = 1\nprint(x)\n";
        let out = run(src);
        assert_eq!(out.source, src);
        assert!(out.annotated.is_empty());
    }

    #[test]
    fn preserves_trailing_newline_semantics() {
        let with_nl = run("def f():\n    pass\n");
        assert!(with_nl.source.ends_with('\n'));
        let without_nl = run("def f():\n    pass");
        assert!(!without_nl.source.ends_with('\n'));
    }
}
