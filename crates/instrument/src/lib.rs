//! # extradeep-instrument
//!
//! Extra-Deep's "built-in automated instrumentation tool that uses static
//! code analysis to instrument the code using NVIDIA's Tools Extension
//! Library (NVTX)" (paper §2.1 step 1), rebuilt in Rust.
//!
//! It lexes and lightly parses Python sources (the only language the paper
//! supports), then rewrites them:
//!
//! * every user-defined function gets an `@nvtx.annotate("qualified.name")`
//!   decorator, so user code shows up next to framework kernels in profiles;
//! * epoch and training-step callback functions additionally receive
//!   `nvtx.mark(...)` calls — the timestamps the efficient sampling strategy
//!   uses to attribute kernel executions to steps (paper §2.2);
//! * the transformation is idempotent and string/comment-safe.
//!
//! ```
//! use extradeep_instrument::{instrument_source, InstrumentOptions};
//!
//! let src = "def training_step(images, labels):\n    return loss\n";
//! let out = instrument_source(src, &InstrumentOptions::default());
//! assert!(out.source.contains("@nvtx.annotate(\"training_step\")"));
//! assert!(out.source.contains("nvtx.mark(\"extradeep.step.training_step\")"));
//! ```

pub mod lexer;
pub mod parser;
pub mod rewrite;

pub use lexer::{logical_lines, LineKind, LogicalLine};
pub use parser::{parse_functions, PyFunction};
pub use rewrite::{instrument_source, InstrumentOptions, InstrumentedSource};
