//! The pre-optimization reference search driver.
//!
//! This is the original modeling path — per-shape design-matrix
//! construction, Gaussian-elimination OLS via [`hypothesis::fit`], and the
//! naive n-refit leave-one-out loop — preserved so the fast path in
//! [`crate::engine`] can be benchmarked against it honestly and
//! property-tested for equivalence. Production drivers never call it.

use crate::hypothesis::{self, FittedHypothesis, HypothesisShape};
use crate::measurement::{Coordinate, ExperimentData};
use crate::model::Model;
use crate::modeler::{self, ModelerOptions, ModelingError};
use crate::multi_param;
use rayon::prelude::*;

/// The original per-hypothesis evaluation: OLS fit, negativity and
/// cancellation guards, then the n-refit cross-validation loop.
pub fn evaluate_shape_reference(
    shape: &HypothesisShape,
    points: &[(Coordinate, f64)],
    options: &ModelerOptions,
    exponent_bounds: Option<(f64, f64)>,
) -> Option<FittedHypothesis> {
    if !crate::engine::shape_within_bounds(shape, exponent_bounds) {
        return None;
    }
    let mut fitted = hypothesis::fit(shape, points)?;
    if options.reject_negative_predictions {
        let negative = points
            .iter()
            .any(|(c, _)| fitted.function.evaluate(c) < 0.0);
        if negative {
            return None;
        }
        if let Some(far) = points
            .iter()
            .map(|(c, _)| c.clone())
            .max_by(|a, b| crate::modeler::cmp_coordinates(a, b))
        {
            for factor in [2.0, 8.0, 32.0] {
                let probe: Vec<f64> = far.iter().map(|x| x * factor).collect();
                if fitted.function.evaluate(&probe) < 0.0 {
                    return None;
                }
            }
        }
    }
    if let Some(far) = points
        .iter()
        .max_by(|a, b| crate::modeler::cmp_coordinates(&a.0, &b.0))
    {
        let value = fitted.function.evaluate(&far.0).abs().max(1e-30);
        let magnitude: f64 = fitted.function.constant.abs()
            + fitted
                .function
                .terms
                .iter()
                .map(|t| t.evaluate(&far.0).abs())
                .sum::<f64>();
        if magnitude > 10.0 * value {
            return None;
        }
    }
    if options.use_cross_validation {
        if let Some(cv) = hypothesis::cross_validate_naive(shape, points) {
            fitted.cv_smape = cv;
        }
    }
    Some(fitted)
}

/// The original search driver over an explicit shape list.
pub fn model_with_shapes_reference(
    data: &ExperimentData,
    options: &ModelerOptions,
    shapes: &[HypothesisShape],
) -> Result<Model, ModelingError> {
    let points = modeler::validated_points(data, options)?;
    let exponent_bounds = modeler::exponent_bounds(data, options, &points);
    let mut candidates: Vec<FittedHypothesis> = shapes
        .par_iter()
        .filter_map(|shape| evaluate_shape_reference(shape, &points, options, exponent_bounds))
        .collect();
    if let Some(c) = evaluate_shape_reference(&HypothesisShape::constant(), &points, options, None)
    {
        candidates.push(c);
    }
    let tolerance = modeler::noise_tolerance(data);
    let winner = modeler::select_winner(candidates, options.use_cross_validation, tolerance)
        .ok_or(ModelingError::NoViableHypothesis)?;
    Ok(modeler::finish_model(data, &points, winner))
}

/// The original single-parameter modeler.
pub fn model_single_parameter_reference(
    data: &ExperimentData,
    options: &ModelerOptions,
) -> Result<Model, ModelingError> {
    if data.num_parameters() != 1 {
        return Err(ModelingError::InvalidData(format!(
            "single-parameter modeler got {} parameters",
            data.num_parameters()
        )));
    }
    let shapes = options.search_space.univariate_hypotheses();
    model_with_shapes_reference(data, options, &shapes)
}

/// The original multi-parameter modeler: same sparse combination scheme, but
/// both the per-parameter line searches and the full-grid refit run on the
/// reference path.
pub fn model_multi_parameter_reference(
    data: &ExperimentData,
    options: &ModelerOptions,
) -> Result<Model, ModelingError> {
    let m = data.num_parameters();
    if m == 0 {
        return Err(ModelingError::InvalidData("no parameters".into()));
    }
    if m == 1 {
        return model_single_parameter_reference(data, options);
    }
    let plan = multi_param::search_plan(data, options, model_single_parameter_reference)?;
    model_with_shapes_reference(data, &plan.options, &plan.shapes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_recovers_case_study_shape() {
        let f = |x: f64| 158.58 + 0.58 * x.powf(2.0 / 3.0) * x.log2().powi(2);
        let pts: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&x| (x, f(x)))
            .collect();
        let data = ExperimentData::univariate("p", &pts);
        let model = model_single_parameter_reference(&data, &ModelerOptions::default()).unwrap();
        assert_eq!(model.big_o(), "O(p^(2/3) * log2(p)^2)");
    }

    #[test]
    fn reference_and_fast_path_agree_on_clean_data() {
        let f = |x: f64| 12.0 + 3.0 * x.log2() + 0.4 * x;
        let pts: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&x| (x, f(x)))
            .collect();
        let data = ExperimentData::univariate("p", &pts);
        let options = ModelerOptions::default();
        let slow = model_single_parameter_reference(&data, &options).unwrap();
        let fast = modeler::model_single_parameter(&data, &options).unwrap();
        assert_eq!(slow.big_o(), fast.big_o());
        let (a, b) = (fast.predict_at(128.0), slow.predict_at(128.0));
        assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn reference_path_rejects_nan_without_panicking() {
        // The far-point scan and candidate comparisons use total orderings;
        // NaN-bearing input must come back as a typed error, never a panic.
        for bad in [
            &[
                (2.0, 1.0),
                (4.0, f64::NAN),
                (8.0, 3.0),
                (16.0, 4.0),
                (32.0, 5.0),
            ][..],
            &[
                (f64::NAN, 1.0),
                (4.0, 2.0),
                (8.0, 3.0),
                (16.0, 4.0),
                (32.0, 5.0),
            ][..],
        ] {
            let data = ExperimentData::univariate("p", bad);
            assert!(model_single_parameter_reference(&data, &ModelerOptions::default()).is_err());
        }
    }
}
