//! Per-model fit diagnostics: residuals, error summaries, adjusted R²,
//! per-point leverage, and an empirical calibration check of the analytic
//! 95% band.
//!
//! The modeler reports *how it selected* a hypothesis (SMAPE, CV-SMAPE); this
//! module answers the operational question that comes after selection — *can
//! this model be trusted?* It works on any dataset, so the same machinery
//! serves the fit points (residual analysis) and held-out larger scales
//! (extrapolation validation, paper §4's predictive power).

use crate::confidence::RegressionBand;
use crate::measurement::{ExperimentData, Measurement};
use crate::metrics::{percentage_error, r_squared, smape};
use crate::model::Model;
use serde::{Deserialize, Serialize};

/// Diagnostics of one measurement point under one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointDiagnostic {
    pub coordinate: Vec<f64>,
    pub predicted: f64,
    /// The fitted statistic of the repetitions (median).
    pub measured: f64,
    /// `measured - predicted`.
    pub residual: f64,
    /// `|predicted - measured| / measured`, percent.
    pub percent_error: f64,
    /// Hat-matrix leverage of this coordinate under the fit's design
    /// (absent when the model carries no band).
    pub leverage: Option<f64>,
}

/// Empirical calibration of the 95% prediction band: how many individual
/// repetition values actually fall inside it.
///
/// A well-calibrated band contains ~95% of new observations; substantially
/// lower coverage means the band understates the real run-to-run spread and
/// its confidence claim cannot be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BandCalibration {
    /// Repetition values checked against the band.
    pub total_values: usize,
    /// Values that fell inside the 95% prediction interval.
    pub inside: usize,
}

impl BandCalibration {
    /// Fraction of values inside the band, in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        if self.total_values == 0 {
            f64::NAN
        } else {
            self.inside as f64 / self.total_values as f64
        }
    }
}

/// Fit-quality summary of one model over one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitDiagnostics {
    pub points: Vec<PointDiagnostic>,
    /// Symmetric mean absolute percentage error, percent.
    pub smape: f64,
    /// Median percentage error, percent — the paper's headline measure.
    pub mpe: f64,
    /// Mean percentage error, percent.
    pub mean_percent_error: f64,
    /// R² of the model against this dataset's medians.
    pub r_squared: f64,
    /// R² penalized for model complexity:
    /// `1 - (1 - R²)(n - 1)/(n - k)` for `k` fitted coefficients.
    pub adjusted_r_squared: f64,
    /// Number of fitted coefficients (constant + one per term).
    pub num_coefficients: usize,
    /// Empirical 95%-band calibration (absent without a band).
    pub calibration: Option<BandCalibration>,
}

impl FitDiagnostics {
    /// Largest absolute residual, with its coordinate.
    pub fn worst_residual(&self) -> Option<&PointDiagnostic> {
        self.points
            .iter()
            .max_by(|a, b| a.residual.abs().total_cmp(&b.residual.abs()))
    }

    /// Empirical band coverage in `[0, 1]`, if a calibration was computed.
    pub fn coverage(&self) -> Option<f64> {
        self.calibration.map(|c| c.coverage())
    }
}

/// Checks every repetition value of `data` against the model's 95%
/// prediction band. `None` when the model carries no band (saturated or
/// degenerate fit) or the data has no repetition values.
pub fn band_calibration(model: &Model, data: &ExperimentData) -> Option<BandCalibration> {
    let band: &RegressionBand = model.band.as_ref()?;
    let mut total = 0usize;
    let mut inside = 0usize;
    for m in &data.measurements {
        let predicted = model.predict(&m.coordinate);
        let half = crate::confidence::t_quantile_975(band.degrees_of_freedom())
            * band.prediction_std_error(predicted, &m.coordinate);
        let (lo, hi) = (predicted - half, predicted + half);
        for &v in &m.values {
            if v.is_finite() {
                total += 1;
                if (lo..=hi).contains(&v) {
                    inside += 1;
                }
            }
        }
    }
    if total == 0 {
        return None;
    }
    Some(BandCalibration {
        total_values: total,
        inside,
    })
}

/// Per-point diagnostics of `model` against one measurement.
fn diagnose_point(model: &Model, m: &Measurement) -> PointDiagnostic {
    let predicted = model.predict(&m.coordinate);
    let measured = m.median();
    PointDiagnostic {
        coordinate: m.coordinate.clone(),
        predicted,
        measured,
        residual: measured - predicted,
        percent_error: percentage_error(predicted, measured),
        leverage: model.band.as_ref().map(|b| b.leverage(&m.coordinate)),
    }
}

/// Full fit diagnostics of `model` over `data`.
///
/// `data` may be the fit's own training points (residual analysis, leverage)
/// or a held-out dataset at larger scales (extrapolation validation). All
/// error summaries compare predictions against the per-point median of the
/// repetitions, matching the modeler's fitting statistic.
pub fn diagnose(model: &Model, data: &ExperimentData) -> FitDiagnostics {
    let _span = extradeep_obs::span("model.diagnose");
    let points: Vec<PointDiagnostic> = data
        .measurements
        .iter()
        .map(|m| diagnose_point(model, m))
        .collect();

    let predicted: Vec<f64> = points.iter().map(|p| p.predicted).collect();
    let actual: Vec<f64> = points.iter().map(|p| p.measured).collect();
    let mut errors: Vec<f64> = points.iter().map(|p| p.percent_error).collect();
    let mpe = crate::measurement::median(&errors);
    errors.retain(|e| e.is_finite());
    let mean_pe = if errors.is_empty() {
        f64::NAN
    } else {
        errors.iter().sum::<f64>() / errors.len() as f64
    };

    let r2 = r_squared(&predicted, &actual);
    let k = 1 + model.function.terms.len();
    let n = points.len();
    let adjusted = if n > k {
        1.0 - (1.0 - r2) * (n as f64 - 1.0) / ((n - k) as f64)
    } else {
        f64::NAN
    };

    FitDiagnostics {
        smape: smape(&predicted, &actual),
        mpe,
        mean_percent_error: mean_pe,
        r_squared: r2,
        adjusted_r_squared: adjusted,
        num_coefficients: k,
        calibration: band_calibration(model, data),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Measurement;
    use crate::modeler::{model_single_parameter, ModelerOptions};
    use crate::search_space::SearchSpace;
    use crate::Fraction;

    /// Noisy repetitions around a deterministic base value.
    fn reps(base: f64, spread: f64) -> Vec<f64> {
        vec![
            base * (1.0 - spread),
            base * (1.0 - 0.4 * spread),
            base,
            base * (1.0 + 0.4 * spread),
            base * (1.0 + spread),
        ]
    }

    fn linear_data(spread: f64) -> ExperimentData {
        ExperimentData::new(
            vec!["p".into()],
            [2.0, 4.0, 8.0, 16.0, 32.0]
                .iter()
                .map(|&x| Measurement::new(vec![x], reps(10.0 + 3.0 * x, spread)))
                .collect(),
        )
    }

    #[test]
    fn perfect_fit_diagnostics_are_clean() {
        let data = ExperimentData::univariate(
            "p",
            &[
                (2.0, 16.0),
                (4.0, 22.0),
                (8.0, 34.0),
                (16.0, 58.0),
                (32.0, 106.0),
            ],
        );
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let d = diagnose(&model, &data);
        assert!(d.mpe < 1e-6, "mpe {}", d.mpe);
        assert!(d.smape < 1e-6);
        assert!(d.r_squared > 1.0 - 1e-9);
        assert!(d.adjusted_r_squared > 1.0 - 1e-9);
        assert_eq!(d.points.len(), 5);
        for p in &d.points {
            assert!(p.residual.abs() < 1e-6);
        }
    }

    #[test]
    fn leverages_reported_per_point_and_sum_to_k() {
        let data = linear_data(0.02);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let d = diagnose(&model, &data);
        let sum: f64 = d.points.iter().map(|p| p.leverage.unwrap()).sum();
        assert!(
            (sum - d.num_coefficients as f64).abs() < 1e-6,
            "leverage sum {sum} vs k {}",
            d.num_coefficients
        );
    }

    #[test]
    fn calibration_covers_most_repetitions_for_a_good_fit() {
        let data = linear_data(0.03);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let cal = band_calibration(&model, &data).expect("band exists");
        assert_eq!(cal.total_values, 25);
        let cov = cal.coverage();
        assert!((0.8..=1.0).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn misspecified_model_shows_large_holdout_error() {
        // Ground truth follows the paper's epoch-time shape; force a linear
        // hypothesis and validate at a held-out scale.
        let truth = |x: f64| 158.58 + 0.58 * x.powf(2.0 / 3.0) * x.log2().powi(2);
        let fit_pts: Vec<(f64, Vec<f64>)> = [2.0, 4.0, 6.0, 8.0, 10.0]
            .iter()
            .map(|&x| (x, reps(truth(x), 0.01)))
            .collect();
        let fit_data = ExperimentData::univariate_with_reps("p", &fit_pts);
        let holdout = ExperimentData::univariate_with_reps(
            "p",
            &[
                (48.0, reps(truth(48.0), 0.01)),
                (64.0, reps(truth(64.0), 0.01)),
            ],
        );

        let mut linear_only = ModelerOptions::default();
        linear_only.search_space = SearchSpace {
            poly_exponents: vec![Fraction::whole(1)],
            log_exponents: vec![0],
            allow_negative_exponents: false,
            max_terms: 1,
        };
        linear_only.growth_bound_margin = None;
        let wrong = model_single_parameter(&fit_data, &linear_only).unwrap();
        let right = model_single_parameter(&fit_data, &ModelerOptions::default()).unwrap();

        let wrong_holdout = diagnose(&wrong, &holdout);
        let right_holdout = diagnose(&right, &holdout);
        assert!(
            wrong_holdout.mpe > 10.0,
            "linear fit should miss at scale, mpe {}",
            wrong_holdout.mpe
        );
        assert!(
            right_holdout.mpe < 5.0,
            "correct shape should extrapolate, mpe {}",
            right_holdout.mpe
        );
        assert!(wrong_holdout.mpe > 3.0 * right_holdout.mpe);
    }

    #[test]
    fn worst_residual_finds_the_outlier() {
        let mut data = linear_data(0.0);
        // Perturb one point hard.
        data.measurements[2].values = vec![60.0];
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let d = diagnose(&model, &data);
        let worst = d.worst_residual().unwrap();
        assert_eq!(worst.coordinate, vec![8.0]);
    }

    #[test]
    fn empty_dataset_yields_nan_summaries() {
        let data = linear_data(0.0);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let empty = ExperimentData::new(vec!["p".into()], Vec::new());
        let d = diagnose(&model, &empty);
        assert!(d.points.is_empty());
        assert!(d.mpe.is_nan());
        assert!(d.smape.is_nan());
        assert!(d.calibration.is_none());
    }
}
