//! # extradeep-model
//!
//! The empirical performance-modeling engine of the Extra-Deep reproduction:
//! a from-scratch implementation of the Extra-P core methodology that
//! Extra-Deep builds on (Ritter & Wolf, SC-W 2023, §2.3).
//!
//! A performance model expresses a metric (runtime, visits, bytes) as a
//! function of execution parameters using the *performance model normal form*
//! (PMNF):
//!
//! ```text
//! f(x_1, ..., x_m) = c_0 + Σ_k c_k · Π_l x_l^{i_kl} · log2^{j_kl}(x_l)
//! ```
//!
//! Model creation instantiates the PMNF with exponents from a search space,
//! fits each hypothesis's coefficients by ordinary least squares, and selects
//! the hypothesis with the smallest cross-validated SMAPE.
//!
//! ## Example
//!
//! ```
//! use extradeep_model::{ExperimentData, ModelerOptions, model_single_parameter};
//!
//! // Training time per epoch measured at five scales (weak scaling).
//! let data = ExperimentData::univariate("ranks", &[
//!     (2.0, 160.2), (4.0, 163.9), (8.0, 172.1), (16.0, 187.3), (32.0, 213.8),
//! ]);
//! let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
//! let predicted_64 = model.predict_at(64.0);
//! assert!(predicted_64 > 213.8); // training time keeps growing with scale
//! println!("T_epoch(ranks) = {}", model.formatted());
//! ```

#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod batch;
pub mod confidence;
pub mod diagnostics;
pub mod engine;
pub mod fraction;
pub mod function;
pub mod hypothesis;
pub mod linalg;
pub mod measurement;
pub mod metrics;
pub mod model;
pub mod modeler;
pub mod multi_param;
pub mod reference;
pub mod search_space;
pub mod segmentation;
mod simd;
pub mod term;

pub use confidence::{bootstrap_interval, RegressionBand};
pub use diagnostics::{band_calibration, diagnose, BandCalibration, FitDiagnostics};
pub use engine::SearchEngine;
pub use fraction::Fraction;
pub use function::{GrowthKey, PerformanceFunction};
pub use hypothesis::{FittedHypothesis, HypothesisShape};
pub use measurement::{AggregationStat, Coordinate, ExperimentData, Measurement};
pub use model::Model;
pub use modeler::{
    cmp_coordinates, model_single_parameter, model_single_parameter_engine, ModelerOptions,
    ModelingError, MIN_MEASUREMENT_POINTS,
};
pub use multi_param::{model_multi_parameter, model_multi_parameter_engine};
pub use reference::{model_multi_parameter_reference, model_single_parameter_reference};
pub use search_space::{SearchSpace, TermShape};
pub use segmentation::{detect_change_point, SegmentationOptions, SegmentedModel};
pub use term::{CompoundTerm, SimpleTerm};
