//! The user-facing fitted model type.

use crate::confidence::RegressionBand;
use crate::function::PerformanceFunction;
use crate::metrics::percentage_error;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A fitted performance model: the selected PMNF function plus fit quality
/// statistics and (when available) an analytic confidence band.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Names of the modeled parameters, in coordinate order.
    pub parameters: Vec<String>,
    /// The selected performance function.
    pub function: PerformanceFunction,
    /// SMAPE of the fit against its training points, percent.
    pub smape: f64,
    /// Cross-validated SMAPE used for selection, percent (NaN if CV skipped).
    pub cv_smape: f64,
    pub rss: f64,
    pub r_squared: f64,
    /// Number of measurement points used for the fit.
    pub num_points: usize,
    /// Analytic 95% band (absent for saturated or degenerate fits).
    pub band: Option<RegressionBand>,
}

impl Model {
    /// Evaluates the model at a parameter vector.
    pub fn predict(&self, point: &[f64]) -> f64 {
        self.function.evaluate(point)
    }

    /// Single-parameter convenience.
    pub fn predict_at(&self, x: f64) -> f64 {
        self.function.evaluate_at(x)
    }

    /// 95% confidence interval of the mean response, if a band exists.
    pub fn confidence_interval(&self, point: &[f64]) -> Option<(f64, f64)> {
        self.band
            .as_ref()
            .map(|b| b.confidence_interval(self.predict(point), point))
    }

    /// 95% prediction interval for a new observation, if a band exists.
    pub fn prediction_interval(&self, point: &[f64]) -> Option<(f64, f64)> {
        self.band
            .as_ref()
            .map(|b| b.prediction_interval(self.predict(point), point))
    }

    /// Percentage error of the model against a measured value at a point —
    /// the paper's model-accuracy / predictive-power measure.
    pub fn percentage_error_at(&self, point: &[f64], measured: f64) -> f64 {
        percentage_error(self.predict(point), measured)
    }

    /// Renders the function with this model's parameter names.
    pub fn formatted(&self) -> String {
        let names: Vec<&str> = self.parameters.iter().map(String::as_str).collect();
        self.function.format_with(&names)
    }

    /// Big-O of the dominant growth term.
    pub fn big_o(&self) -> String {
        let names: Vec<&str> = self.parameters.iter().map(String::as_str).collect();
        self.function.big_o(&names)
    }
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [SMAPE {:.2}%, R² {:.4}]",
            self.formatted(),
            self.smape,
            self.r_squared
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;
    use crate::term::CompoundTerm;

    fn toy_model() -> Model {
        Model {
            parameters: vec!["p".into()],
            function: PerformanceFunction::new(
                158.58,
                vec![CompoundTerm::univariate(0.58, Fraction::new(2, 3), 2)],
            ),
            smape: 0.5,
            cv_smape: 0.8,
            rss: 1.0,
            r_squared: 0.999,
            num_points: 5,
            band: None,
        }
    }

    #[test]
    fn predict_and_errors() {
        let m = toy_model();
        let p = m.predict_at(40.0);
        assert!((p - 352.37).abs() < 2.5);
        let err = m.percentage_error_at(&[40.0], 350.0);
        assert!(err < 1.0);
    }

    #[test]
    fn formatting_uses_parameter_names() {
        let m = toy_model();
        assert!(m.formatted().contains("p^(2/3)"));
        assert_eq!(m.big_o(), "O(p^(2/3) * log2(p)^2)");
        assert!(m.to_string().contains("SMAPE"));
    }

    #[test]
    fn intervals_absent_without_band() {
        let m = toy_model();
        assert!(m.confidence_interval(&[8.0]).is_none());
        assert!(m.prediction_interval(&[8.0]).is_none());
    }
}
