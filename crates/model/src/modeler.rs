//! The single-parameter modeler: hypothesis search, fit, cross-validated
//! selection (paper §2.3, following Extra-P's core methodology).

use crate::confidence::RegressionBand;
use crate::engine;
use crate::hypothesis::{FittedHypothesis, HypothesisShape};
use crate::measurement::{AggregationStat, Coordinate, ExperimentData};
use crate::model::Model;
use crate::search_space::SearchSpace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The paper's minimum: five measurement points per modeled parameter.
pub const MIN_MEASUREMENT_POINTS: usize = 5;

/// Reasons a model cannot be created.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelingError {
    /// Fewer than [`MIN_MEASUREMENT_POINTS`] distinct coordinates (paper:
    /// "if the kernel appears in less than five of the applications'
    /// configurations, no model will be created").
    InsufficientPoints { required: usize, available: usize },
    /// No parameters or mismatched coordinate arity.
    InvalidData(String),
    /// Every hypothesis in the search space failed to fit.
    NoViableHypothesis,
}

impl std::fmt::Display for ModelingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelingError::InsufficientPoints {
                required,
                available,
            } => write!(
                f,
                "insufficient measurement points for modeling: need {required}, have {available}"
            ),
            ModelingError::InvalidData(msg) => write!(f, "invalid experiment data: {msg}"),
            ModelingError::NoViableHypothesis => {
                write!(f, "no hypothesis in the search space could be fitted")
            }
        }
    }
}

impl std::error::Error for ModelingError {}

/// Modeler configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelerOptions {
    pub search_space: SearchSpace,
    /// Statistic of the repetitions used as the fitting target.
    pub statistic: AggregationStat,
    /// Select by leave-one-out cross-validation (Extra-P's selection rule);
    /// when off, selection is by training SMAPE alone.
    pub use_cross_validation: bool,
    /// Minimum distinct coordinates required (default: the paper's 5).
    pub min_points: usize,
    /// Reject hypotheses that predict negative values at any training
    /// coordinate (a time/visits/bytes metric cannot be negative).
    pub reject_negative_predictions: bool,
    /// Growth-bound guard: reject hypotheses whose dominant polynomial
    /// exponent exceeds the *observed* log-log slope of the data by more
    /// than this margin (symmetrically below for decreasing data).
    ///
    /// Near-constant noisy series otherwise tempt the cross-validation into
    /// steep terms with tiny coefficients that explode under extrapolation —
    /// the noise-resilience concern of the Extra-P line of work. `None`
    /// disables the guard.
    pub growth_bound_margin: Option<f64>,
    /// Route leave-one-out cross-validation through the naive n-refit loop
    /// instead of the closed-form hat-matrix identity. A debugging and
    /// benchmarking aid: the two agree to ~1e-9 but the naive loop is an
    /// order of magnitude slower.
    #[serde(default)]
    pub use_naive_loocv: bool,
}

impl Default for ModelerOptions {
    fn default() -> Self {
        ModelerOptions {
            search_space: SearchSpace::default(),
            statistic: AggregationStat::Median,
            use_cross_validation: true,
            min_points: MIN_MEASUREMENT_POINTS,
            reject_negative_predictions: true,
            growth_bound_margin: Some(1.0),
            use_naive_loocv: false,
        }
    }
}

impl ModelerOptions {
    /// Options for strong-scaling metrics (negative exponents enabled).
    pub fn strong_scaling() -> Self {
        ModelerOptions {
            search_space: SearchSpace::strong_scaling(),
            ..ModelerOptions::default()
        }
    }
}

/// Primary selection score of a fitted hypothesis.
fn score(h: &FittedHypothesis, use_cv: bool) -> f64 {
    if use_cv && h.cv_smape.is_finite() {
        h.cv_smape
    } else {
        h.smape
    }
}

/// Growth penalty of a hypothesis: the dominant polynomial exponent plus a
/// smaller contribution per log factor. Scaled by the noise tolerance and
/// added to the CV score, it makes the selection prefer slower-growing
/// hypotheses whenever the data cannot distinguish them — without ever
/// overriding a clear CV winner.
fn growth_penalty(h: &FittedHypothesis) -> f64 {
    let (exp, log_exp) = h.function.growth_key().dominant();
    exp.as_f64().abs() + 0.3 * log_exp as f64
}

/// Selects the winner among fitted hypotheses: minimal
/// `cv_smape + tolerance · growth_penalty` (Occam within noise).
/// Near-constant noisy data otherwise tempts the CV into steep terms with
/// tiny coefficients that explode under extrapolation.
pub(crate) fn select_winner(
    candidates: Vec<FittedHypothesis>,
    use_cv: bool,
    tolerance: f64,
) -> Option<FittedHypothesis> {
    candidates.into_iter().min_by(|a, b| {
        let ka = score(a, use_cv) + tolerance * growth_penalty(a);
        let kb = score(b, use_cv) + tolerance * growth_penalty(b);
        ka.total_cmp(&kb)
            .then_with(|| a.shape.num_coefficients().cmp(&b.shape.num_coefficients()))
    })
}

/// Estimates the selection tolerance from the repetition spread of the
/// measurements: half the mean run-to-run variation, clamped to a sane band.
pub(crate) fn noise_tolerance(data: &ExperimentData) -> f64 {
    let variations: Vec<f64> = data
        .measurements
        .iter()
        .map(|m| m.run_to_run_variation_percent())
        .filter(|v| v.is_finite())
        .collect();
    if variations.is_empty() {
        return 1.0;
    }
    let mean = variations.iter().sum::<f64>() / variations.len() as f64;
    (mean / 2.0).clamp(0.5, 5.0)
}

/// Observed log-log slope of a (single-parameter) point set via least
/// squares on `(ln x, ln y)`. `None` when undefined (non-positive values,
/// no spread in x).
fn empirical_loglog_slope(points: &[(Coordinate, f64)]) -> Option<f64> {
    let mut xs = Vec::with_capacity(points.len());
    let mut ys = Vec::with_capacity(points.len());
    for (c, v) in points {
        let x = *c.first()?;
        if x <= 0.0 || *v <= 0.0 {
            return None;
        }
        xs.push(x.ln());
        ys.push(v.ln());
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx < 1e-12 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    Some(sxy / sxx)
}

/// Elementwise total order on coordinates, safe for any float input (the
/// distinct-coordinate count below must never panic on exotic values).
/// Public because every coordinate ordering in the workspace should go
/// through a NaN-total comparison rather than `partial_cmp().unwrap_or(..)`.
pub fn cmp_coordinates(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// Collapses repetitions via the configured statistic and validates the
/// result: every coordinate and metric value must be finite, and enough
/// distinct coordinates must remain. Shared by the fast and reference
/// search drivers.
pub(crate) fn validated_points(
    data: &ExperimentData,
    options: &ModelerOptions,
) -> Result<Vec<(Coordinate, f64)>, ModelingError> {
    let points: Vec<(Coordinate, f64)> = data
        .measurements
        .iter()
        .map(|m| (m.coordinate.clone(), m.statistic(options.statistic)))
        .collect();

    for (c, v) in &points {
        if c.iter().any(|x| !x.is_finite()) {
            return Err(ModelingError::InvalidData(format!(
                "non-finite coordinate {c:?}"
            )));
        }
        if !v.is_finite() {
            return Err(ModelingError::InvalidData(
                "non-finite metric value".to_string(),
            ));
        }
    }

    let distinct = {
        let mut coords: Vec<&Coordinate> = points.iter().map(|(c, _)| c).collect();
        coords.sort_by(|a, b| cmp_coordinates(a, b));
        coords.dedup();
        coords.len()
    };
    if distinct < options.min_points {
        return Err(ModelingError::InsufficientPoints {
            required: options.min_points,
            available: distinct,
        });
    }
    Ok(points)
}

/// Growth-bound guard: constrains candidate polynomial exponents to the
/// neighborhood of the observed log-log slope. Only meaningful for
/// single-parameter data (the slope of a grid projection would conflate the
/// parameters).
pub(crate) fn exponent_bounds(
    data: &ExperimentData,
    options: &ModelerOptions,
    points: &[(Coordinate, f64)],
) -> Option<(f64, f64)> {
    if data.num_parameters() != 1 {
        None
    } else {
        options.growth_bound_margin
    }
    .and_then(|margin| {
        empirical_loglog_slope(points).map(|slope| {
            if slope >= 0.0 {
                // Growing data: allow anything up to slope + margin; permit
                // mildly decreasing terms too (strong-scaling residuals).
                (-margin.min(1.0), slope + margin)
            } else {
                (slope - margin, margin.min(1.0))
            }
        })
    })
}

/// Pooled *relative* within-point repetition variance (squared coefficient
/// of variation) of a dataset: the run-to-run noise a prediction band must
/// add on top of the curve-fit residuals to be calibrated against individual
/// observations. Relative because performance noise is multiplicative — the
/// spread grows with the metric's magnitude, and the band re-scales it by
/// the predicted value. Zero without repetitions.
pub(crate) fn pooled_repetition_cv2(data: &ExperimentData) -> f64 {
    let mut weighted_cv2 = 0.0;
    let mut dof = 0usize;
    for m in &data.measurements {
        let n = m.values.len();
        let center = m.median();
        if n >= 2 && center.abs() > f64::EPSILON {
            let cv = m.std_dev() / center.abs();
            weighted_cv2 += cv * cv * (n - 1) as f64;
            dof += n - 1;
        }
    }
    if dof == 0 {
        0.0
    } else {
        weighted_cv2 / dof as f64
    }
}

/// Assembles the final [`Model`] from the winning hypothesis.
pub(crate) fn finish_model(
    data: &ExperimentData,
    points: &[(Coordinate, f64)],
    winner: FittedHypothesis,
) -> Model {
    let band = RegressionBand::from_fit(&winner.shape, points, winner.rss)
        .map(|b| b.with_repetition_noise(pooled_repetition_cv2(data)));
    Model {
        parameters: data.parameters.clone(),
        function: winner.function,
        smape: winner.smape,
        cv_smape: winner.cv_smape,
        rss: winner.rss,
        r_squared: winner.r_squared,
        num_points: points.len(),
        band,
    }
}

/// Creates a performance model for a single parameter from experiment data.
///
/// The data may contain repetitions per coordinate; the configured statistic
/// collapses them before fitting, mirroring Extra-Deep's median aggregation.
pub fn model_single_parameter(
    data: &ExperimentData,
    options: &ModelerOptions,
) -> Result<Model, ModelingError> {
    if data.num_parameters() != 1 {
        return Err(ModelingError::InvalidData(format!(
            "single-parameter modeler got {} parameters",
            data.num_parameters()
        )));
    }
    model_with_shapes(data, options, &options.search_space.univariate_hypotheses())
}

/// Single-parameter modeling on the per-shape engine path ([`engine`] +
/// within-search rayon) instead of the batched column-store kernel. Retained
/// for benchmarking and as the equivalence referee between the frozen
/// reference oracle and the batched kernel.
pub fn model_single_parameter_engine(
    data: &ExperimentData,
    options: &ModelerOptions,
) -> Result<Model, ModelingError> {
    if data.num_parameters() != 1 {
        return Err(ModelingError::InvalidData(format!(
            "single-parameter modeler got {} parameters",
            data.num_parameters()
        )));
    }
    model_with_shapes_engine(data, options, &options.search_space.univariate_hypotheses())
}

/// Shared search driver: evaluates the provided hypothesis shapes (plus the
/// constant hypothesis) and selects the best.
///
/// Dispatches to the batched column-store kernel
/// ([`crate::batch::model_with_shapes_batched`]): one pass over the sample
/// coordinates evaluates the basis columns of *all* candidate shapes, Gram
/// matrices assemble from cached column statistics, LDLᵀ factorizations are
/// shared across shapes extending one another, and dominated candidates are
/// pruned before cross-validation. The search itself is sequential —
/// parallelism lives *across* models ([`engine::SearchEngine::model_batch`]).
/// The per-shape engine driver survives as [`model_with_shapes_engine`], the
/// pre-optimization driver as
/// [`crate::reference::model_with_shapes_reference`]; all three select
/// bit-identical winners.
pub(crate) fn model_with_shapes(
    data: &ExperimentData,
    options: &ModelerOptions,
    shapes: &[HypothesisShape],
) -> Result<Model, ModelingError> {
    let _span = extradeep_obs::span("model.search");
    crate::batch::model_with_shapes_batched(data, options, shapes)
}

/// The per-shape engine driver: basis columns are evaluated once into a
/// shared [`engine::BasisCache`], each rayon worker reuses one scratch
/// [`engine::Workspace`] across all shapes it evaluates, and
/// cross-validation runs in closed form off the fit's own LDLᵀ
/// factorization.
pub(crate) fn model_with_shapes_engine(
    data: &ExperimentData,
    options: &ModelerOptions,
    shapes: &[HypothesisShape],
) -> Result<Model, ModelingError> {
    let _span = extradeep_obs::span("model.search");
    let points = validated_points(data, options)?;
    let bounds = exponent_bounds(data, options, &points);
    let cache = engine::BasisCache::build(shapes, &points);

    // The constant hypothesis is always a candidate; it is also the fallback
    // the search degenerates to for flat data.
    let mut candidates: Vec<FittedHypothesis> = shapes
        .par_iter()
        .map_init(engine::Workspace::default, |ws, shape| {
            engine::evaluate_shape_cached(shape, &points, options, bounds, &cache, ws)
        })
        .flatten()
        .collect();
    let mut ws = engine::Workspace::default();
    if let Some(c) = engine::evaluate_shape_cached(
        &HypothesisShape::constant(),
        &points,
        options,
        None,
        &cache,
        &mut ws,
    ) {
        candidates.push(c);
    }

    let tolerance = noise_tolerance(data);
    let winner = select_winner(candidates, options.use_cross_validation, tolerance)
        .ok_or(ModelingError::NoViableHypothesis)?;
    Ok(finish_model(data, &points, winner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;

    fn xs() -> Vec<f64> {
        vec![2.0, 4.0, 8.0, 16.0, 32.0]
    }

    fn data_from(f: impl Fn(f64) -> f64) -> ExperimentData {
        let pts: Vec<(f64, f64)> = xs().iter().map(|&x| (x, f(x))).collect();
        ExperimentData::univariate("p", &pts)
    }

    #[test]
    fn recovers_linear_growth() {
        let model =
            model_single_parameter(&data_from(|x| 3.0 + 2.0 * x), &ModelerOptions::default())
                .unwrap();
        assert_eq!(model.big_o(), "O(p)");
        assert!((model.predict_at(64.0) - 131.0).abs() < 1e-6);
    }

    #[test]
    fn recovers_log_growth() {
        let model = model_single_parameter(
            &data_from(|x| 1.0 + 4.0 * x.log2()),
            &ModelerOptions::default(),
        )
        .unwrap();
        assert_eq!(model.big_o(), "O(log2(p))");
    }

    #[test]
    fn recovers_case_study_shape() {
        // The paper's CIFAR-10 epoch-time model: 158.58 + 0.58 x^(2/3) log2(x)^2.
        let f = |x: f64| 158.58 + 0.58 * x.powf(2.0 / 3.0) * x.log2().powi(2);
        let model = model_single_parameter(&data_from(f), &ModelerOptions::default()).unwrap();
        assert_eq!(model.big_o(), "O(p^(2/3) * log2(p)^2)");
        // Extrapolation to 64 ranks matches the generator within 1%.
        let err = model.percentage_error_at(&[64.0], f(64.0));
        assert!(err < 1.0, "extrapolation error {err}%");
    }

    #[test]
    fn constant_data_yields_constant_model() {
        let model =
            model_single_parameter(&data_from(|_| 42.0), &ModelerOptions::default()).unwrap();
        assert!(model.function.is_constant());
        assert!((model.predict_at(1024.0) - 42.0).abs() < 1e-9);
    }

    #[test]
    fn strong_scaling_decreasing_runtime() {
        // Amdahl-ish strong scaling: t(p) = 10 + 100/p.
        let model = model_single_parameter(
            &data_from(|x| 10.0 + 100.0 / x),
            &ModelerOptions::strong_scaling(),
        )
        .unwrap();
        let p64 = model.predict_at(64.0);
        assert!((p64 - (10.0 + 100.0 / 64.0)).abs() < 0.5, "predicted {p64}");
        // The default (weak-scaling) space cannot express a positive
        // decreasing function this well; strong-scaling space must use a
        // negative exponent.
        let key = model.function.growth_key().dominant();
        assert!(key.0 <= Fraction::zero());
    }

    #[test]
    fn too_few_points_is_an_error() {
        let data = ExperimentData::univariate("p", &[(2.0, 1.0), (4.0, 2.0), (8.0, 3.0)]);
        match model_single_parameter(&data, &ModelerOptions::default()) {
            Err(ModelingError::InsufficientPoints {
                required,
                available,
            }) => {
                assert_eq!(required, 5);
                assert_eq!(available, 3);
            }
            other => panic!("expected InsufficientPoints, got {other:?}"),
        }
    }

    #[test]
    fn repetitions_collapse_by_median() {
        let pts: Vec<(f64, Vec<f64>)> = xs()
            .iter()
            .map(|&x| {
                let base = 5.0 * x;
                // Outlier repetition: the median rejects it.
                (x, vec![base, base * 1.01, base * 0.99, base * 10.0, base])
            })
            .collect();
        let data = ExperimentData::univariate_with_reps("p", &pts);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        assert!((model.predict_at(64.0) - 320.0).abs() / 320.0 < 0.05);
    }

    #[test]
    fn multi_parameter_data_is_rejected_here() {
        let data = ExperimentData::new(
            vec!["a".into(), "b".into()],
            vec![crate::measurement::Measurement::new(
                vec![1.0, 2.0],
                vec![3.0],
            )],
        );
        assert!(matches!(
            model_single_parameter(&data, &ModelerOptions::default()),
            Err(ModelingError::InvalidData(_))
        ));
    }

    #[test]
    fn noisy_linear_data_still_selects_linear() {
        // ±2% deterministic perturbation.
        let noise = [1.02, 0.98, 1.01, 0.99, 1.015];
        let pts: Vec<(f64, f64)> = xs()
            .iter()
            .zip(noise.iter())
            .map(|(&x, &n)| (x, (5.0 + 3.0 * x) * n))
            .collect();
        let data = ExperimentData::univariate("p", &pts);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let dominant = model.function.growth_key().dominant();
        // Linear-ish: exponent within [3/4, 5/4].
        assert!(
            dominant.0 >= Fraction::new(3, 4) && dominant.0 <= Fraction::new(5, 4),
            "dominant {dominant:?}"
        );
    }

    #[test]
    fn negative_prediction_guard_respected() {
        // A strongly decreasing series that would tempt a negative-coefficient
        // linear fit dipping below zero inside the range.
        let data = ExperimentData::univariate(
            "p",
            &[
                (2.0, 100.0),
                (4.0, 50.0),
                (8.0, 25.0),
                (16.0, 12.5),
                (32.0, 6.25),
            ],
        );
        let model = model_single_parameter(&data, &ModelerOptions::strong_scaling()).unwrap();
        for &x in &xs() {
            assert!(model.predict_at(x) >= 0.0);
        }
    }

    #[test]
    fn cmp_coordinates_totally_orders_nan() {
        use std::cmp::Ordering;
        let nan = f64::NAN;
        // NaN sorts after every finite value; the comparison never panics.
        assert_eq!(cmp_coordinates(&[1.0, nan], &[1.0, 2.0]), Ordering::Greater);
        assert_eq!(cmp_coordinates(&[nan], &[nan]), Ordering::Equal);
        assert_eq!(cmp_coordinates(&[1.0], &[1.0, 0.0]), Ordering::Less);
        let mut coords = vec![vec![nan], vec![2.0], vec![1.0], vec![nan]];
        coords.sort_by(|a, b| cmp_coordinates(a, b));
        assert_eq!(coords[0], vec![1.0]);
        assert_eq!(coords[1], vec![2.0]);
        assert!(coords[2][0].is_nan() && coords[3][0].is_nan());
    }

    #[test]
    fn nan_inputs_surface_typed_errors_not_panics() {
        // NaN metric value.
        let data = ExperimentData::univariate(
            "p",
            &[
                (2.0, 1.0),
                (4.0, f64::NAN),
                (8.0, 3.0),
                (16.0, 4.0),
                (32.0, 5.0),
            ],
        );
        assert!(matches!(
            model_single_parameter(&data, &ModelerOptions::default()),
            Err(ModelingError::InvalidData(_))
        ));
        // NaN coordinate.
        let data = ExperimentData::univariate(
            "p",
            &[
                (f64::NAN, 1.0),
                (4.0, 2.0),
                (8.0, 3.0),
                (16.0, 4.0),
                (32.0, 5.0),
            ],
        );
        assert!(matches!(
            model_single_parameter(&data, &ModelerOptions::default()),
            Err(ModelingError::InvalidData(_))
        ));
    }
}
