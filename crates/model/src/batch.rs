//! The batched hypothesis-search kernel.
//!
//! The per-shape engine in [`crate::engine`] already caches basis *factor*
//! columns, but it still rebuilds every design matrix, re-accumulates every
//! Gram matrix from `n·k²` multiplies, re-evaluates the extrapolation probe
//! rows (three `powf`-bearing basis evaluations per shape), and runs the
//! leave-one-out loop for every candidate. This module evaluates the whole
//! candidate batch in one pass over the sample coordinates instead:
//!
//! 1. **Structure-of-arrays column store.** Every distinct compound term of
//!    the batch becomes one contiguous basis column, built once by folding
//!    factor columns together ([`crate::simd`] elementwise kernels). Each
//!    column carries its sum, square sum, metric dot product, and probe-point
//!    values — so a shape's normal equations assemble from O(k²) cached
//!    scalars instead of O(n·k²) multiplies, and cross-column dots are shared
//!    across all shapes that contain the same term pair.
//! 2. **Shared LDLᵀ partial factorizations.** Hypotheses that extend another
//!    hypothesis by one appended term reuse its factor via
//!    [`linalg::ldlt_factor_append`] — bitwise identical to refactoring from
//!    scratch, because column `j` of an LDLᵀ factorization reads nothing
//!    beyond columns `< j`.
//! 3. **Dominance pruning.** The closed-form LOO-CV residual `e/(1−h)` has
//!    the same sign as and magnitude at least `|e|` (the full-fit residual),
//!    so for strictly positive metric values the cross-validated SMAPE is
//!    bounded below by the training SMAPE. A candidate whose
//!    `smape + tolerance·penalty` already exceeds the current best key can
//!    therefore never win and skips cross-validation entirely.
//! 4. **Winner-only instantiation.** Losing hypotheses never materialize a
//!    [`crate::function::PerformanceFunction`]; their growth penalty is
//!    computed directly from the raw coefficients.
//!
//! Winner selection stays bit-identical to the per-shape engine: every
//! floating-point reduction runs in the same order and over the same values
//! as the engine's loops (see the per-step notes below), and the streaming
//! best-candidate update replicates `Iterator::min_by` semantics (first
//! minimum wins). The search itself is sequential — parallelism moved *across*
//! models ([`crate::engine::SearchEngine::model_batch`]), which keeps every
//! core busy on a many-kernel campaign without intra-search nondeterminism.

use crate::engine::{self, obs_counters};
use crate::hypothesis::{self, FittedHypothesis, HypothesisShape};
use crate::linalg;
use crate::measurement::{Coordinate, ExperimentData};
use crate::metrics;
use crate::model::Model;
use crate::modeler::{self, ModelerOptions, ModelingError};
use crate::search_space::TermShape;
use crate::simd;
use crate::term::SimpleTerm;
use std::cmp::Ordering;
use std::collections::BTreeMap;

/// Extrapolation probe multiples of the farthest coordinate — must match the
/// engine's negativity guard.
const PROBE_FACTORS: [f64; 3] = [2.0, 8.0, 32.0];

/// One distinct compound-term basis column with its per-search statistics.
struct TermColumn {
    /// Basis values at the sample points (structure-of-arrays: one
    /// contiguous column per term, shared by every shape that uses it).
    col: Vec<f64>,
    /// `Σ col` — the Gram entry against the constant column.
    sum: f64,
    /// `Σ col²` — the Gram diagonal entry.
    sq_sum: f64,
    /// `Σ col·y` — the normal-equations right-hand-side entry.
    y_dot: f64,
    /// Basis values at the three extrapolation probe points.
    probes: [f64; 3],
}

/// The batched basis-column store: every distinct factor is evaluated once,
/// every distinct term column is built once, and all per-column reductions
/// the search needs are precomputed in sample order.
pub(crate) struct ColumnStore {
    n: usize,
    /// Metric values, aligned with the columns.
    actuals: Vec<f64>,
    /// `Σ y` — the constant row of the right-hand side.
    y_sum: f64,
    /// Index of the farthest sample coordinate (`None` only for empty input).
    far_index: Option<usize>,
    terms: Vec<TermColumn>,
}

impl ColumnStore {
    /// Builds the store and the per-shape term-id lists (aligned with
    /// `shapes`). Factor hit/miss accounting mirrors
    /// [`crate::engine::BasisCache`]: one miss per distinct factor, one hit
    /// per reuse.
    pub(crate) fn build(
        shapes: &[HypothesisShape],
        points: &[(Coordinate, f64)],
    ) -> (Self, Vec<Vec<usize>>) {
        let n = points.len();
        let actuals: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
        // Bitwise equal to the engine's `rhs[0] += 1.0 * y` accumulation:
        // separate accumulators summed in point order agree exactly.
        let y_sum: f64 = actuals.iter().sum();
        let far_index =
            (0..n).max_by(|&a, &b| modeler::cmp_coordinates(&points[a].0, &points[b].0));
        let probe_points: Vec<Vec<f64>> = match far_index {
            Some(far) => PROBE_FACTORS
                .iter()
                .map(|&factor| points[far].0.iter().map(|x| x * factor).collect())
                .collect(),
            None => Vec::new(),
        };

        // Distinct factor columns, evaluated once (with their probe values —
        // the engine re-runs these `powf`-bearing evaluations per shape).
        let mut factor_index: BTreeMap<(usize, TermShape), usize> = BTreeMap::new();
        let mut factor_cols: Vec<Vec<f64>> = Vec::new();
        let mut factor_probes: Vec<[f64; 3]> = Vec::new();
        for shape in shapes {
            for factors in &shape.terms {
                for &(param, ts) in factors {
                    if factor_index.contains_key(&(param, ts)) {
                        obs_counters::basis_hits().incr();
                        continue;
                    }
                    obs_counters::basis_misses().incr();
                    let term = SimpleTerm::new(param, ts.exponent, ts.log_exponent);
                    // analyze:allow(hot-path-alloc) memoized: one column per distinct factor, cache-miss path only
                    let col: Vec<f64> = points.iter().map(|(c, _)| term.evaluate(c)).collect();
                    let mut probes = [1.0f64; 3];
                    for (slot, p) in probes.iter_mut().zip(&probe_points) {
                        *slot = term.evaluate(p);
                    }
                    factor_index.insert((param, ts), factor_cols.len());
                    factor_cols.push(col);
                    factor_probes.push(probes);
                }
            }
        }

        // Distinct term columns: the product of their factor columns in
        // declaration order, starting from 1.0 — the exact sequence of
        // `BasisCache::fill_design`, so every entry is bitwise identical to
        // the engine's design matrix. Factor reads count as cache hits,
        // mirroring the engine's read accounting.
        let mut term_index: BTreeMap<Vec<(usize, TermShape)>, usize> = BTreeMap::new();
        let mut terms: Vec<TermColumn> = Vec::new();
        let mut shape_terms: Vec<Vec<usize>> = Vec::with_capacity(shapes.len());
        let mut reads = 0u64;
        for shape in shapes {
            // analyze:allow(hot-path-alloc) per-shape term-id list is the output being built
            let mut ids = Vec::with_capacity(shape.terms.len());
            for factors in &shape.terms {
                let id = match term_index.get(factors) {
                    Some(&id) => id,
                    None => {
                        // analyze:allow(hot-path-alloc) memoized: one column per distinct term
                        let mut col = vec![1.0; n];
                        let mut probes = [1.0f64; 3];
                        for &(param, ts) in factors {
                            reads += 1;
                            let fi = factor_index[&(param, ts)];
                            simd::mul_assign(&mut col, &factor_cols[fi]);
                            for (acc, &f) in probes.iter_mut().zip(&factor_probes[fi]) {
                                *acc *= f;
                            }
                        }
                        // Each reduction runs in sample order, matching the
                        // engine's interleaved Gram/rhs accumulation exactly.
                        let sum = col.iter().sum();
                        let sq_sum = col.iter().map(|&v| v * v).sum();
                        let y_dot = col.iter().zip(&actuals).map(|(&v, &y)| v * y).sum();
                        let id = terms.len();
                        term_index.insert(factors.clone(), id);
                        terms.push(TermColumn {
                            col,
                            sum,
                            sq_sum,
                            y_dot,
                            probes,
                        });
                        id
                    }
                };
                ids.push(id);
            }
            shape_terms.push(ids);
        }
        obs_counters::basis_hits().add(reads);

        (
            ColumnStore {
                n,
                actuals,
                y_sum,
                far_index,
                terms,
            },
            shape_terms,
        )
    }
}

/// Reusable per-search scratch buffers (the batched analogue of
/// [`crate::engine::Workspace`]).
#[derive(Default)]
struct Scratch {
    /// `k × k` Gram matrix, overwritten in place by its LDLᵀ factor.
    gram: Vec<f64>,
    rhs: Vec<f64>,
    coeffs: Vec<f64>,
    /// Coefficient-weighted column accumulator for the fitted values.
    acc: Vec<f64>,
    fitted: Vec<f64>,
    /// `k`-length design row of the current leave-one-out fold.
    row: Vec<f64>,
    /// Per-fold leverage solve.
    solve: Vec<f64>,
    loo: Vec<f64>,
}

/// A surviving candidate, kept in raw-coefficient form until the search ends
/// (only the winner ever instantiates a function).
struct BestCandidate {
    key: f64,
    num_coefficients: usize,
    shape_index: usize,
    coeffs: Vec<f64>,
    smape: f64,
    cv_smape: f64,
    rss: f64,
    r_squared: f64,
}

enum Eval {
    Rejected,
    Pruned,
    Candidate(BestCandidate),
}

/// The result of a batched search, exposing which candidates the dominance
/// bound skipped (the pruning-soundness test re-evaluates them in full).
pub struct BatchOutcome {
    pub winner: Option<FittedHypothesis>,
    /// Indices into `shapes` of the candidates the bound skipped. The
    /// trailing constant hypothesis is never pruned (its fit is a trivial
    /// 1×1 solve, and it is the fallback the search degenerates to).
    pub pruned: Vec<usize>,
}

struct BatchSearch<'a> {
    points: &'a [(Coordinate, f64)],
    options: &'a ModelerOptions,
    tolerance: f64,
    /// Whether every metric value is strictly positive — the precondition of
    /// the `cv_smape >= smape` dominance bound.
    all_positive: bool,
    store: ColumnStore,
    /// Cross-column dot products, keyed by unordered term-id pair (the
    /// elementwise products commute bitwise).
    cross: BTreeMap<(usize, usize), f64>,
    /// Shared LDLᵀ factors keyed by term-id prefix; `None` records a pivot
    /// collapse (every extension collapses at the same column).
    factors: BTreeMap<Vec<usize>, Option<Vec<f64>>>,
    ws: Scratch,
}

impl BatchSearch<'_> {
    fn evaluate(
        &mut self,
        shape: &HypothesisShape,
        tids: &[usize],
        bounds: Option<(f64, f64)>,
        best_key: Option<f64>,
    ) -> Eval {
        obs_counters::hypotheses().incr();
        if !engine::shape_within_bounds(shape, bounds) {
            return Eval::Rejected;
        }
        let n = self.store.n;
        let k = 1 + tids.len();
        if n < k {
            return Eval::Rejected;
        }

        // Normal equations from cached column statistics. `gram[0][0]` is the
        // engine's sum of `1.0 * 1.0` over all points — exactly `n as f64`.
        let ws = &mut self.ws;
        ws.gram.clear();
        ws.gram.resize(k * k, 0.0);
        ws.rhs.clear();
        ws.gram[0] = n as f64;
        ws.rhs.push(self.store.y_sum);
        for (j, &t) in tids.iter().enumerate() {
            let tc = &self.store.terms[t];
            ws.gram[j + 1] = tc.sum;
            ws.gram[(j + 1) * k] = tc.sum;
            ws.gram[(j + 1) * k + (j + 1)] = tc.sq_sum;
            ws.rhs.push(tc.y_dot);
        }
        for a in 0..tids.len() {
            for b in (a + 1)..tids.len() {
                let (lo, hi) = if tids[a] <= tids[b] {
                    (tids[a], tids[b])
                } else {
                    (tids[b], tids[a])
                };
                let d = match self.cross.get(&(lo, hi)) {
                    Some(&d) => d,
                    None => {
                        let d: f64 = self.store.terms[lo]
                            .col
                            .iter()
                            .zip(&self.store.terms[hi].col)
                            .map(|(&x, &y)| x * y)
                            .sum();
                        self.cross.insert((lo, hi), d);
                        d
                    }
                };
                ws.gram[(a + 1) * k + (b + 1)] = d;
                ws.gram[(b + 1) * k + (a + 1)] = d;
            }
        }

        // LDLᵀ with prefix sharing: a shape extending a previously factored
        // term list by one appended term reuses that factor bitwise.
        let factored = match self.factors.get(tids) {
            Some(None) => false,
            Some(Some(f)) => {
                ws.gram.copy_from_slice(f);
                true
            }
            None => {
                let prefix = tids.split_last().map(|(_, p)| self.factors.get(p));
                let ok = match prefix {
                    Some(Some(Some(pf))) if pf.len() == (k - 1) * (k - 1) => {
                        linalg::ldlt_factor_append(&mut ws.gram, k, pf)
                    }
                    // The leading block already collapsed; the full
                    // factorization would fail at that same column.
                    Some(Some(None)) => false,
                    _ => linalg::ldlt_factor_in_place(&mut ws.gram, k),
                };
                self.factors
                    .insert(tids.to_vec(), if ok { Some(ws.gram.clone()) } else { None });
                ok
            }
        };
        if !factored {
            return Eval::Rejected;
        }

        ws.coeffs.clear();
        ws.coeffs.extend_from_slice(&ws.rhs);
        linalg::ldlt_solve_in_place(&ws.gram, k, &mut ws.coeffs);
        if ws.coeffs.iter().any(|c| !c.is_finite()) {
            return Eval::Rejected;
        }

        // Fitted values: per element this is the engine's
        // `c0 + Σ_j c_j · b_j` left-to-right sum, run column-at-a-time.
        ws.acc.clear();
        ws.acc.resize(n, 0.0);
        for (j, &t) in tids.iter().enumerate() {
            simd::mul_add_assign(&mut ws.acc, &self.store.terms[t].col, ws.coeffs[j + 1]);
        }
        ws.fitted.clear();
        ws.fitted.resize(n, 0.0);
        simd::add_scalar(&mut ws.fitted, &ws.acc, ws.coeffs[0]);
        if ws.fitted.iter().any(|p| !p.is_finite()) {
            return Eval::Rejected;
        }

        if self.options.reject_negative_predictions {
            if ws.fitted.iter().any(|&p| p < 0.0) {
                return Eval::Rejected;
            }
            if self.store.far_index.is_some() {
                for p in 0..PROBE_FACTORS.len() {
                    let terms_sum: f64 = tids
                        .iter()
                        .enumerate()
                        .map(|(j, &t)| ws.coeffs[j + 1] * self.store.terms[t].probes[p])
                        .sum();
                    if ws.coeffs[0] + terms_sum < 0.0 {
                        return Eval::Rejected;
                    }
                }
            }
        }
        if let Some(far) = self.store.far_index {
            let value = ws.fitted[far].abs().max(1e-30);
            let magnitude: f64 = ws.coeffs[0].abs()
                + tids
                    .iter()
                    .enumerate()
                    .map(|(j, &t)| (ws.coeffs[j + 1] * self.store.terms[t].col[far]).abs())
                    .sum::<f64>();
            if magnitude > 10.0 * value {
                return Eval::Rejected;
            }
        }

        let smape = metrics::smape(&ws.fitted, &self.store.actuals);
        let growth = hypothesis::growth_key_from_coeffs(shape, &ws.coeffs).dominant();
        let penalty = growth.0.as_f64().abs() + 0.3 * growth.1 as f64;

        // Dominance pruning: with strictly positive actuals the closed-form
        // leave-one-out residual `e/(1−h)` only ever amplifies the full-fit
        // residual, so `cv_smape >= smape` fold by fold and the training
        // SMAPE is a lower bound on the selection score. A candidate whose
        // bound already exceeds the best key loses no matter what its
        // cross-validation would say (ties are not pruned — the coefficient-
        // count tiebreak must still see them).
        if self.options.use_cross_validation && !self.options.use_naive_loocv && self.all_positive {
            if let Some(best) = best_key {
                let bound = smape + self.tolerance * penalty;
                if bound.total_cmp(&best) == Ordering::Greater {
                    obs_counters::pruned().incr();
                    return Eval::Pruned;
                }
            }
        }

        let mut cv_smape = f64::NAN;
        if self.options.use_cross_validation {
            let cv = if self.options.use_naive_loocv {
                obs_counters::loocv_naive().add(n as u64);
                hypothesis::cross_validate_naive(shape, self.points)
            } else {
                self.loo(shape, tids, k)
            };
            if let Some(cv) = cv {
                cv_smape = cv;
            }
        }

        let score = if self.options.use_cross_validation && cv_smape.is_finite() {
            cv_smape
        } else {
            smape
        };
        let ws = &self.ws;
        Eval::Candidate(BestCandidate {
            key: score + self.tolerance * penalty,
            num_coefficients: k,
            shape_index: usize::MAX, // filled by the caller
            coeffs: ws.coeffs.clone(),
            smape,
            cv_smape,
            rss: metrics::rss(&ws.fitted, &self.store.actuals),
            r_squared: metrics::r_squared(&ws.fitted, &self.store.actuals),
        })
    }

    /// Closed-form LOO-CV off the already-computed factorization — the
    /// batched twin of the engine's `loo_from_workspace`, with design rows
    /// assembled from the term columns.
    fn loo(&mut self, shape: &HypothesisShape, tids: &[usize], k: usize) -> Option<f64> {
        let n = self.store.n;
        if n <= k {
            return None;
        }
        let ws = &mut self.ws;
        ws.loo.clear();
        let (mut fast_folds, mut fallback_folds) = (0u64, 0u64);
        for i in 0..n {
            ws.row.clear();
            ws.row.push(1.0);
            for &t in tids {
                ws.row.push(self.store.terms[t].col[i]);
            }
            ws.solve.clear();
            ws.solve.extend_from_slice(&ws.row);
            linalg::ldlt_solve_in_place(&ws.gram, k, &mut ws.solve);
            let leverage: f64 = ws.row.iter().zip(&ws.solve).map(|(a, b)| a * b).sum();
            let denom = 1.0 - leverage;
            let actual = self.store.actuals[i];
            let pred = actual - (actual - ws.fitted[i]) / denom;
            if denom < engine::LEVERAGE_EPS || !pred.is_finite() {
                fallback_folds += 1;
                match hypothesis::naive_fold_prediction(shape, self.points, i) {
                    Some(p) => ws.loo.push(p),
                    None => {
                        engine::flush_loo_counts(fast_folds, fallback_folds);
                        return None;
                    }
                }
            } else {
                fast_folds += 1;
                ws.loo.push(pred);
            }
        }
        engine::flush_loo_counts(fast_folds, fallback_folds);
        Some(metrics::smape(&ws.loo, &self.store.actuals))
    }
}

/// Runs the batched search over `shapes` plus the trailing constant
/// hypothesis, replicating `select_winner` over the engine's candidate order
/// (first minimal key wins; ties break toward fewer coefficients).
pub fn search_shapes(
    shapes: &[HypothesisShape],
    points: &[(Coordinate, f64)],
    options: &ModelerOptions,
    bounds: Option<(f64, f64)>,
    tolerance: f64,
) -> BatchOutcome {
    let (store, shape_terms) = ColumnStore::build(shapes, points);
    let n = store.n;
    let all_positive = store.actuals.iter().all(|&a| a > 0.0);
    let mut search = BatchSearch {
        points,
        options,
        tolerance,
        all_positive,
        store,
        cross: BTreeMap::new(),
        factors: BTreeMap::new(),
        ws: Scratch::default(),
    };
    // Seed the factor cache with the 1×1 constant-column Gram `[n]`, the
    // shared prefix of every single-term shape (and the constant hypothesis).
    {
        let mut unit = vec![n as f64];
        let ok = linalg::ldlt_factor_in_place(&mut unit, 1);
        search
            .factors
            .insert(Vec::new(), if ok { Some(unit) } else { None });
    }

    let constant = HypothesisShape::constant();
    let empty_ids: Vec<usize> = Vec::new();
    let mut best: Option<BestCandidate> = None;
    let mut pruned = Vec::new();
    for idx in 0..=shapes.len() {
        let (shape, tids, shape_bounds) = if idx < shapes.len() {
            (&shapes[idx], &shape_terms[idx], bounds)
        } else {
            (&constant, &empty_ids, None)
        };
        // The constant hypothesis is exempt from pruning: it keeps `pruned`
        // a set of indices into `shapes`, and skipping a 1×1 solve saves
        // nothing.
        let best_key = if idx < shapes.len() {
            best.as_ref().map(|b| b.key)
        } else {
            None
        };
        match search.evaluate(shape, tids, shape_bounds, best_key) {
            Eval::Rejected => {}
            Eval::Pruned => pruned.push(idx),
            Eval::Candidate(mut cand) => {
                cand.shape_index = idx;
                let replace = match &best {
                    None => true,
                    Some(b) => {
                        cand.key
                            .total_cmp(&b.key)
                            .then_with(|| cand.num_coefficients.cmp(&b.num_coefficients))
                            == Ordering::Less
                    }
                };
                if replace {
                    best = Some(cand);
                }
            }
        }
    }

    let winner = best.map(|b| {
        let shape = if b.shape_index < shapes.len() {
            &shapes[b.shape_index]
        } else {
            &constant
        };
        FittedHypothesis {
            function: shape.instantiate(&b.coeffs),
            smape: b.smape,
            cv_smape: b.cv_smape,
            rss: b.rss,
            r_squared: b.r_squared,
            shape: shape.clone(),
        }
    });
    BatchOutcome { winner, pruned }
}

/// The batched search driver: drop-in replacement for the per-shape engine
/// driver, selecting the bit-identical winner.
pub fn model_with_shapes_batched(
    data: &ExperimentData,
    options: &ModelerOptions,
    shapes: &[HypothesisShape],
) -> Result<Model, ModelingError> {
    let points = modeler::validated_points(data, options)?;
    let bounds = modeler::exponent_bounds(data, options, &points);
    let tolerance = modeler::noise_tolerance(data);
    let outcome = search_shapes(shapes, &points, options, bounds, tolerance);
    let winner = outcome.winner.ok_or(ModelingError::NoViableHypothesis)?;
    Ok(modeler::finish_model(data, &points, winner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::ExperimentData;

    fn univariate(f: impl Fn(f64) -> f64) -> ExperimentData {
        let pts: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .map(|&x| (x, f(x)))
            .collect();
        ExperimentData::univariate("p", &pts)
    }

    fn assert_same_fit(a: &Model, b: &Model) {
        assert_eq!(a.function, b.function, "selected functions differ");
        assert_eq!(a.smape.total_cmp(&b.smape), Ordering::Equal);
        assert_eq!(a.cv_smape.total_cmp(&b.cv_smape), Ordering::Equal);
        assert_eq!(a.rss.total_cmp(&b.rss), Ordering::Equal);
        assert_eq!(a.r_squared.total_cmp(&b.r_squared), Ordering::Equal);
    }

    #[test]
    fn batched_matches_engine_bitwise_on_univariate_searches() {
        let cases: Vec<ExperimentData> = vec![
            univariate(|x| 3.0 + 2.0 * x),
            univariate(|x| 1.0 + 4.0 * x.log2()),
            univariate(|x| 158.58 + 0.58 * x.powf(2.0 / 3.0) * x.log2().powi(2)),
            univariate(|_| 42.0),
            univariate(|x| 10.0 + 100.0 / x),
        ];
        for options in [ModelerOptions::default(), ModelerOptions::strong_scaling()] {
            let shapes = options.search_space.univariate_hypotheses();
            for data in &cases {
                let batched = model_with_shapes_batched(data, &options, &shapes).unwrap();
                let engine = modeler::model_with_shapes_engine(data, &options, &shapes).unwrap();
                assert_same_fit(&batched, &engine);
            }
        }
    }

    #[test]
    fn batched_matches_engine_on_two_term_spaces() {
        let mut options = ModelerOptions::strong_scaling();
        options.search_space = options.search_space.with_max_terms(2);
        let shapes = options.search_space.univariate_hypotheses();
        let data = univariate(|x| 5.0 + 0.8 * x + 0.1 * x * x.log2());
        let batched = model_with_shapes_batched(&data, &options, &shapes).unwrap();
        let engine = modeler::model_with_shapes_engine(&data, &options, &shapes).unwrap();
        assert_same_fit(&batched, &engine);
    }

    #[test]
    fn pruned_candidates_never_beat_the_winner() {
        // Deterministically perturbed linear data: many shapes survive the
        // guards with distinct scores, so the bound has something to prune.
        let noise = [1.02, 0.98, 1.01, 0.99, 1.015, 0.985];
        let pts: Vec<(f64, f64)> = [2.0f64, 4.0, 8.0, 16.0, 32.0, 64.0]
            .iter()
            .zip(noise.iter())
            .map(|(&x, &eps)| (x, (5.0 + 3.0 * x) * eps))
            .collect();
        let data = ExperimentData::univariate("p", &pts);
        let options = ModelerOptions::default();
        let shapes = options.search_space.univariate_hypotheses();
        let points = modeler::validated_points(&data, &options).unwrap();
        let bounds = modeler::exponent_bounds(&data, &options, &points);
        let tolerance = modeler::noise_tolerance(&data);

        let outcome = search_shapes(&shapes, &points, &options, bounds, tolerance);
        let winner = outcome.winner.expect("winner");
        assert!(
            !outcome.pruned.is_empty(),
            "the dominance bound must fire on noisy data"
        );

        let key_of = |h: &FittedHypothesis| {
            let score = if options.use_cross_validation && h.cv_smape.is_finite() {
                h.cv_smape
            } else {
                h.smape
            };
            let (exp, log_exp) = h.function.growth_key().dominant();
            score + tolerance * (exp.as_f64().abs() + 0.3 * log_exp as f64)
        };
        let winner_key = key_of(&winner);

        // Re-evaluate every pruned candidate in full on the engine path: its
        // true selection key must be strictly worse than the winner's.
        let cache = engine::BasisCache::build(&shapes, &points);
        let mut ws = engine::Workspace::default();
        for &idx in &outcome.pruned {
            let full = engine::evaluate_shape_cached(
                &shapes[idx],
                &points,
                &options,
                bounds,
                &cache,
                &mut ws,
            )
            .expect("pruned candidates passed the fit and guards");
            let key = key_of(&full);
            assert_eq!(
                key.total_cmp(&winner_key),
                Ordering::Greater,
                "pruned {:?} scored {key} vs winner {winner_key}",
                shapes[idx]
            );
        }
    }

    #[test]
    fn pruning_disabled_under_naive_loocv_and_nonpositive_data() {
        // Naive LOO-CV: the bound must not fire (the option exists to audit
        // the closed form, so the naive path must evaluate everything).
        let data = univariate(|x| 5.0 + 3.0 * x);
        let naive = ModelerOptions {
            use_naive_loocv: true,
            ..ModelerOptions::default()
        };
        let shapes = naive.search_space.univariate_hypotheses();
        let points = modeler::validated_points(&data, &naive).unwrap();
        let bounds = modeler::exponent_bounds(&data, &naive, &points);
        let outcome = search_shapes(&shapes, &points, &naive, bounds, 1.0);
        assert!(outcome.pruned.is_empty());
        assert!(outcome.winner.is_some());
    }

    #[test]
    fn empty_shape_list_still_fits_the_constant() {
        let data = univariate(|_| 7.5);
        let model = model_with_shapes_batched(&data, &ModelerOptions::default(), &[]).unwrap();
        assert!(model.function.is_constant());
        assert!((model.predict_at(512.0) - 7.5).abs() < 1e-9);
    }
}
