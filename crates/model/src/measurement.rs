//! Measurement points and experiment data for modeling.
//!
//! A *measurement point* `P(x1, ..., xm)` is one application configuration
//! (paper §2.3). Each point carries the metric values observed across
//! measurement repetitions; the modeler fits against a statistic of those
//! (median by default, matching Extra-Deep's aggregation).

use serde::{Deserialize, Serialize};

/// Values of the execution parameters at one configuration, in a fixed
/// parameter order shared by the whole experiment.
pub type Coordinate = Vec<f64>;

/// Which statistic of the repetitions the modeler fits against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AggregationStat {
    #[default]
    Median,
    Mean,
    Minimum,
    Maximum,
    /// Mean after clamping the lowest and highest [`WINSOR_TRIM`] fraction
    /// of repetitions to the surviving extremes: robust to straggler ranks
    /// and other outliers that survive repair, while using more of the data
    /// than the median when repetitions are few.
    WinsorizedMean,
}

/// The tail fraction clamped on each side by [`AggregationStat::WinsorizedMean`].
pub const WINSOR_TRIM: f64 = 0.25;

/// One measurement point: a coordinate plus the observed metric values of all
/// repetitions at that coordinate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    pub coordinate: Coordinate,
    pub values: Vec<f64>,
}

impl Measurement {
    pub fn new(coordinate: Coordinate, values: Vec<f64>) -> Self {
        Measurement { coordinate, values }
    }

    /// Single-parameter, single-repetition convenience constructor.
    pub fn single(x: f64, value: f64) -> Self {
        Measurement {
            coordinate: vec![x],
            values: vec![value],
        }
    }

    pub fn median(&self) -> f64 {
        median(&self.values)
    }

    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    pub fn minimum(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn maximum(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    pub fn winsorized_mean(&self) -> f64 {
        winsorized_mean(&self.values, WINSOR_TRIM)
    }

    pub fn statistic(&self, stat: AggregationStat) -> f64 {
        match stat {
            AggregationStat::Median => self.median(),
            AggregationStat::Mean => self.mean(),
            AggregationStat::Minimum => self.minimum(),
            AggregationStat::Maximum => self.maximum(),
            AggregationStat::WinsorizedMean => self.winsorized_mean(),
        }
    }

    /// Run-to-run variation: (max - min) / median, in percent.
    ///
    /// This is the quantity the paper reports as 0.6%..13.9% for the case
    /// study and ~12.6% / ~17.4% on average for DEEP / JURECA.
    pub fn run_to_run_variation_percent(&self) -> f64 {
        let med = self.median();
        if med == 0.0 || self.values.len() < 2 {
            return 0.0;
        }
        100.0 * (self.maximum() - self.minimum()) / med
    }

    /// Sample standard deviation of the repetitions.
    pub fn std_dev(&self) -> f64 {
        let n = self.values.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .values
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / (n as f64 - 1.0);
        var.sqrt()
    }
}

/// Median of a slice (interpolated for even lengths). NaN for empty input.
///
/// Non-finite values (NaN, ±∞) are ignored: a corrupted repetition must not
/// poison — let alone panic — the statistic the whole pipeline rests on.
/// When *no* finite value remains the result is NaN, which the modeler's
/// input validation converts into a typed [`crate::ModelingError`].
pub fn median(values: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Winsorized mean: values below the `trim` quantile (or above `1 - trim`)
/// are clamped to the surviving extremes before averaging. Non-finite values
/// are ignored; NaN for empty input. `trim` is clamped to `[0, 0.5)`.
pub fn winsorized_mean(values: &[f64], trim: f64) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if sorted.is_empty() {
        return f64::NAN;
    }
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let k = ((n as f64) * trim.clamp(0.0, 0.4999)).floor() as usize;
    let lo = sorted[k];
    let hi = sorted[n - 1 - k];
    sorted.iter().map(|v| v.clamp(lo, hi)).sum::<f64>() / n as f64
}

/// The data a modeler consumes: named parameters and a list of measurement
/// points with repetitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentData {
    /// Parameter names, defining the coordinate order (e.g. `["ranks"]`).
    pub parameters: Vec<String>,
    pub measurements: Vec<Measurement>,
}

impl ExperimentData {
    pub fn new(parameters: Vec<String>, measurements: Vec<Measurement>) -> Self {
        ExperimentData {
            parameters,
            measurements,
        }
    }

    /// Single-parameter constructor from `(x, value)` pairs.
    pub fn univariate(name: &str, points: &[(f64, f64)]) -> Self {
        ExperimentData {
            parameters: vec![name.to_string()],
            measurements: points
                .iter()
                .map(|&(x, v)| Measurement::single(x, v))
                .collect(),
        }
    }

    /// Single-parameter constructor with repetitions.
    pub fn univariate_with_reps(name: &str, points: &[(f64, Vec<f64>)]) -> Self {
        ExperimentData {
            parameters: vec![name.to_string()],
            measurements: points
                .iter()
                .map(|(x, vs)| Measurement::new(vec![*x], vs.clone()))
                .collect(),
        }
    }

    pub fn num_parameters(&self) -> usize {
        self.parameters.len()
    }

    pub fn len(&self) -> usize {
        self.measurements.len()
    }

    pub fn is_empty(&self) -> bool {
        self.measurements.is_empty()
    }

    /// Distinct values of one parameter, sorted ascending. Measurements with
    /// too few coordinate components (corrupted input) are skipped rather
    /// than panicking — validation reports them separately.
    pub fn parameter_values(&self, param: usize) -> Vec<f64> {
        let mut vals: Vec<f64> = self
            .measurements
            .iter()
            .filter_map(|m| m.coordinate.get(param).copied())
            .collect();
        vals.sort_by(f64::total_cmp);
        vals.dedup();
        vals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[7.0]), 7.0);
        assert!(median(&[]).is_nan());
    }

    #[test]
    fn median_ignores_non_finite_values() {
        assert_eq!(median(&[f64::NAN, 3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[f64::INFINITY, 5.0]), 5.0);
        assert!(median(&[f64::NAN, f64::NAN]).is_nan());
    }

    #[test]
    fn winsorized_mean_tames_outliers() {
        // 25% trim on 8 values clamps the 2 extremes (k = 2).
        let vals = [1.0, 10.0, 10.0, 10.0, 10.0, 10.0, 10.0, 1000.0];
        let w = winsorized_mean(&vals, 0.25);
        assert_eq!(w, 10.0);
        // Plain mean is dragged far away by the straggler.
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(mean > 100.0);
        // Degenerate cases.
        assert_eq!(winsorized_mean(&[7.0], 0.25), 7.0);
        assert!(winsorized_mean(&[], 0.25).is_nan());
        assert_eq!(winsorized_mean(&[f64::NAN, 4.0, 6.0], 0.0), 5.0);
    }

    #[test]
    fn winsorized_stat_dispatch() {
        let m = Measurement::new(vec![1.0], vec![10.0, 11.0, 12.0, 500.0]);
        let w = m.statistic(AggregationStat::WinsorizedMean);
        // n = 4, k = floor(4 · 0.25) = 1: both extremes clamp to [11, 12].
        assert_eq!(w, (11.0 + 11.0 + 12.0 + 12.0) / 4.0);
        assert!(w < m.mean());
    }

    #[test]
    fn measurement_statistics() {
        let m = Measurement::new(vec![4.0], vec![10.0, 12.0, 11.0, 9.0, 13.0]);
        assert_eq!(m.median(), 11.0);
        assert_eq!(m.mean(), 11.0);
        assert_eq!(m.minimum(), 9.0);
        assert_eq!(m.maximum(), 13.0);
        assert_eq!(m.statistic(AggregationStat::Median), 11.0);
        assert_eq!(m.statistic(AggregationStat::Maximum), 13.0);
    }

    #[test]
    fn run_to_run_variation() {
        let m = Measurement::new(vec![4.0], vec![100.0, 110.0, 105.0]);
        let v = m.run_to_run_variation_percent();
        assert!((v - 100.0 * 10.0 / 105.0).abs() < 1e-9);
        let single = Measurement::single(4.0, 100.0);
        assert_eq!(single.run_to_run_variation_percent(), 0.0);
    }

    #[test]
    fn std_dev_of_constant_values_is_zero() {
        let m = Measurement::new(vec![1.0], vec![5.0, 5.0, 5.0]);
        assert_eq!(m.std_dev(), 0.0);
    }

    #[test]
    fn experiment_parameter_values_sorted_dedup() {
        let data =
            ExperimentData::univariate("ranks", &[(8.0, 1.0), (2.0, 1.0), (4.0, 1.0), (2.0, 2.0)]);
        assert_eq!(data.parameter_values(0), vec![2.0, 4.0, 8.0]);
        assert_eq!(data.num_parameters(), 1);
        assert_eq!(data.len(), 4);
    }

    #[test]
    fn parameter_values_tolerate_nan_and_short_coordinates() {
        // NaN coordinates sort to the end under the total order instead of
        // panicking; out-of-range parameter indices and short coordinate
        // vectors are skipped rather than indexing out of bounds.
        let data = ExperimentData {
            parameters: vec!["p".into(), "q".into()],
            measurements: vec![
                Measurement::new(vec![4.0, 1.0], vec![1.0]),
                Measurement::new(vec![f64::NAN, 2.0], vec![1.0]),
                Measurement::new(vec![2.0], vec![1.0]), // corrupted: missing q
            ],
        };
        let p = data.parameter_values(0);
        assert_eq!(p.len(), 3);
        assert_eq!(&p[..2], &[2.0, 4.0]);
        assert!(p[2].is_nan());
        // The q column only exists on two rows; the short row is skipped.
        assert_eq!(data.parameter_values(1), vec![1.0, 2.0]);
        // A parameter index beyond every coordinate yields empty, not a panic.
        assert!(data.parameter_values(9).is_empty());
    }
}
