//! Generation of the PMNF hypothesis search space.
//!
//! A hypothesis *shape* fixes the exponents `(i, j)` of each term; only the
//! coefficients remain free and are found by linear regression. The search
//! space is the cross product of a set of polynomial exponents `I` and
//! logarithmic exponents `J` (paper Eq. 5 and §2.3), optionally mirrored to
//! negative polynomial exponents to support strong-scaling (decreasing)
//! behavior — one of Extra-Deep's extensions over stock Extra-P.

use crate::fraction::Fraction;
use serde::{Deserialize, Serialize};

/// The exponent pair of one single-parameter term factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TermShape {
    pub exponent: Fraction,
    pub log_exponent: u32,
}

impl TermShape {
    pub fn new(exponent: Fraction, log_exponent: u32) -> Self {
        TermShape {
            exponent,
            log_exponent,
        }
    }

    pub fn is_constant(&self) -> bool {
        self.exponent.is_zero() && self.log_exponent == 0
    }
}

/// Configuration of the hypothesis search space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Polynomial exponents `I` (non-negative; mirrored if `allow_negative`).
    pub poly_exponents: Vec<Fraction>,
    /// Logarithmic exponents `J`.
    pub log_exponents: Vec<u32>,
    /// Mirror the polynomial exponents to negative values so decreasing
    /// metrics (strong-scaling runtime) can be modeled.
    pub allow_negative_exponents: bool,
    /// Maximum number of compound terms `h` per hypothesis (besides `c_0`).
    pub max_terms: usize,
}

impl SearchSpace {
    /// The Extra-P default search space: a dense grid of rational exponents
    /// from 0 to 3 and log exponents {0, 1, 2}.
    pub fn extra_p_default() -> Self {
        let poly = [
            (0, 1),
            (1, 4),
            (1, 3),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (1, 1),
            (5, 4),
            (4, 3),
            (3, 2),
            (5, 3),
            (7, 4),
            (2, 1),
            (9, 4),
            (7, 3),
            (5, 2),
            (8, 3),
            (11, 4),
            (3, 1),
        ]
        .iter()
        .map(|&(n, d)| Fraction::new(n, d))
        .collect();
        SearchSpace {
            poly_exponents: poly,
            log_exponents: vec![0, 1, 2],
            allow_negative_exponents: false,
            max_terms: 1,
        }
    }

    /// The small illustrative space from the paper (`I = {0,1,2}`, `J = {0,1}`).
    pub fn paper_example() -> Self {
        SearchSpace {
            poly_exponents: vec![Fraction::zero(), Fraction::whole(1), Fraction::whole(2)],
            log_exponents: vec![0, 1],
            allow_negative_exponents: false,
            max_terms: 1,
        }
    }

    /// Default space extended with negative exponents for strong scaling.
    pub fn strong_scaling() -> Self {
        SearchSpace {
            allow_negative_exponents: true,
            ..SearchSpace::extra_p_default()
        }
    }

    /// Enables two-term hypotheses (a wider but much more expensive search).
    pub fn with_max_terms(mut self, h: usize) -> Self {
        self.max_terms = h.max(1);
        self
    }

    /// All candidate term shapes, excluding the constant shape `(0, 0)`
    /// (which is represented by `c_0` in every hypothesis).
    pub fn term_shapes(&self) -> Vec<TermShape> {
        let mut shapes = Vec::new();
        let mut polys: Vec<Fraction> = self.poly_exponents.clone();
        if self.allow_negative_exponents {
            let negatives: Vec<Fraction> = self
                .poly_exponents
                .iter()
                .filter(|f| !f.is_zero())
                .map(Fraction::neg)
                .collect();
            polys.extend(negatives);
        }
        for &i in &polys {
            for &j in &self.log_exponents {
                let shape = TermShape::new(i, j);
                if !shape.is_constant() {
                    shapes.push(shape);
                }
            }
        }
        shapes.sort_by(|a, b| (a.exponent, a.log_exponent).cmp(&(b.exponent, b.log_exponent)));
        shapes.dedup();
        shapes
    }

    /// All hypothesis shapes: single terms, plus unordered pairs when
    /// `max_terms >= 2`. (Extra-P's default modeler uses single compound
    /// terms; multi-term search is the refinement.)
    pub fn hypothesis_shapes(&self) -> Vec<Vec<TermShape>> {
        let singles = self.term_shapes();
        let mut out: Vec<Vec<TermShape>> = singles.iter().map(|&s| vec![s]).collect();
        if self.max_terms >= 2 {
            for a in 0..singles.len() {
                for b in (a + 1)..singles.len() {
                    // analyze:allow(hot-path-alloc) pair enumeration owns its terms; bounded by shape count
                    out.push(vec![singles[a], singles[b]]);
                }
            }
        }
        out
    }

    /// All single-parameter [`HypothesisShape`]s of this space (on parameter
    /// index 0), ready for the search driver. Precompute once — e.g. via
    /// [`crate::engine::SearchEngine`] — when modeling many kernel datasets
    /// with the same space.
    pub fn univariate_hypotheses(&self) -> Vec<crate::hypothesis::HypothesisShape> {
        self.hypothesis_shapes()
            .iter()
            .map(|shapes| crate::hypothesis::HypothesisShape::univariate(shapes))
            .collect()
    }
}

impl Default for SearchSpace {
    fn default() -> Self {
        SearchSpace::extra_p_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_has_expected_size() {
        let space = SearchSpace::extra_p_default();
        // 20 poly exponents x 3 log exponents = 60, minus the (0,0) constant.
        assert_eq!(space.term_shapes().len(), 59);
    }

    #[test]
    fn paper_example_space() {
        let space = SearchSpace::paper_example();
        // 3 x 2 = 6, minus the constant -> 5 shapes.
        assert_eq!(space.term_shapes().len(), 5);
    }

    #[test]
    fn negative_exponents_mirror_nonzero_polys() {
        let space = SearchSpace::strong_scaling();
        let shapes = space.term_shapes();
        assert!(shapes
            .iter()
            .any(|s| s.exponent == Fraction::new(-1, 1) && s.log_exponent == 0));
        // Zero exponent is not mirrored (no "-0").
        let zero_negatives = shapes
            .iter()
            .filter(|s| s.exponent.is_zero() && s.log_exponent == 0)
            .count();
        assert_eq!(zero_negatives, 0);
    }

    #[test]
    fn shapes_are_sorted_and_unique() {
        let shapes = SearchSpace::extra_p_default().term_shapes();
        for w in shapes.windows(2) {
            assert!(
                (w[0].exponent, w[0].log_exponent) < (w[1].exponent, w[1].log_exponent),
                "shapes must be strictly increasing"
            );
        }
    }

    #[test]
    fn two_term_hypotheses_are_pairs() {
        let space = SearchSpace::paper_example().with_max_terms(2);
        let n = space.term_shapes().len();
        let hyps = space.hypothesis_shapes();
        assert_eq!(hyps.len(), n + n * (n - 1) / 2);
        assert!(hyps.iter().all(|h| h.len() <= 2 && !h.is_empty()));
    }

    #[test]
    fn max_terms_clamped_to_one() {
        let space = SearchSpace::paper_example().with_max_terms(0);
        assert_eq!(space.max_terms, 1);
    }
}
