//! Multi-parameter modeling.
//!
//! Extra-P's sparse multi-parameter scheme (which Extra-Deep inherits): first
//! find the best single-parameter term for each parameter from the subsets of
//! points where the other parameters are held constant, then combine those
//! per-parameter terms additively and multiplicatively into multi-parameter
//! hypotheses, refit the coefficients on *all* points, and select by
//! cross-validated SMAPE.

use crate::hypothesis::HypothesisShape;
use crate::measurement::{ExperimentData, Measurement};
use crate::model::Model;
use crate::modeler::{self, ModelerOptions, ModelingError};
use crate::search_space::TermShape;

/// The modeler driving the per-parameter line searches: the fast path uses
/// [`modeler::model_single_parameter`], the frozen baseline its reference
/// twin — so old-vs-new benchmarks measure their whole pipeline honestly.
pub(crate) type LineModeler = fn(&ExperimentData, &ModelerOptions) -> Result<Model, ModelingError>;

/// Smallest observed value of every parameter, computed once per search
/// (the per-line scans previously recomputed the full minima vector for
/// each parameter).
fn coordinate_minima(data: &ExperimentData) -> Vec<f64> {
    let mut mins = vec![f64::INFINITY; data.num_parameters()];
    for meas in &data.measurements {
        for (slot, &x) in mins.iter_mut().zip(&meas.coordinate) {
            *slot = slot.min(x);
        }
    }
    mins
}

/// Finds, for one parameter, the subset of measurements where all *other*
/// parameters equal their smallest observed value (the canonical "line"
/// through the measurement grid).
fn parameter_line(data: &ExperimentData, param: usize, mins: &[f64]) -> Vec<Measurement> {
    let m = data.num_parameters();
    data.measurements
        .iter()
        .filter(|meas| (0..m).all(|p| p == param || (meas.coordinate[p] - mins[p]).abs() < 1e-12))
        .cloned()
        .collect()
}

/// Candidate term shapes for one parameter: the best-fit shape of its
/// canonical line plus a small set of generic alternatives (logarithmic,
/// linear, reciprocal), so the grid-level refit can correct a line-level
/// misjudgment. Empty when the line is flat (constant in that parameter).
fn candidate_shapes_for_parameter(
    data: &ExperimentData,
    param: usize,
    options: &ModelerOptions,
    mins: &[f64],
    line_modeler: LineModeler,
) -> Result<Vec<TermShape>, ModelingError> {
    let line = parameter_line(data, param, mins);
    let projected = ExperimentData::new(
        vec![data.parameters[param].clone()],
        line.iter()
            .map(|m| Measurement::new(vec![m.coordinate[param]], m.values.clone()))
            .collect(),
    );
    // Grid dimensions can legitimately decrease (e.g. per-epoch work falls
    // with batch size), so the line search always allows negative exponents.
    let mut line_options = options.clone();
    line_options.search_space.allow_negative_exponents = true;
    let model = line_modeler(&projected, &line_options)?;
    if model.function.is_constant() || model.function.terms.is_empty() {
        return Ok(Vec::new());
    }
    let factor = &model.function.terms[0].factors[0];
    let mut shapes = vec![
        TermShape::new(factor.exponent, factor.log_exponent),
        TermShape::new(crate::fraction::Fraction::zero(), 1),
        TermShape::new(crate::fraction::Fraction::whole(1), 0),
        TermShape::new(crate::fraction::Fraction::whole(-1), 0),
    ];
    shapes.dedup();
    Ok(shapes)
}

/// Builds candidate multi-parameter hypothesis shapes from the per-parameter
/// candidate pools: singles, additive combinations (one term per parameter),
/// multiplicative combinations (one compound term with one factor per
/// parameter), and additive+multiplicative interactions — each over the
/// cross product of the pools.
fn combine_shapes(per_param: &[(usize, Vec<TermShape>)]) -> Vec<HypothesisShape> {
    let mut out = Vec::new();
    // Singles.
    for (p, pool) in per_param {
        for &s in pool {
            out.push(HypothesisShape {
                // analyze:allow(hot-path-alloc) shape enumeration owns its terms; bounded by hypothesis count
                terms: vec![vec![(*p, s)]],
            });
        }
    }
    if per_param.len() < 2 {
        return out;
    }

    // Cross product of one shape per parameter.
    let mut picks: Vec<Vec<(usize, TermShape)>> = vec![Vec::new()];
    for (p, pool) in per_param {
        // analyze:allow(hot-path-alloc) cross-product frontier; bounded by shape-pool sizes
        let mut next = Vec::with_capacity(picks.len() * pool.len());
        for prefix in &picks {
            for &s in pool {
                let mut combo = prefix.clone();
                combo.push((*p, s));
                next.push(combo);
            }
        }
        picks = next;
    }

    for combo in &picks {
        // Additive: c0 + Σ_l c_l · term_l(x_l)
        out.push(HypothesisShape {
            // analyze:allow(hot-path-alloc) shape enumeration owns its terms; bounded by hypothesis count
            terms: combo.iter().map(|&(p, s)| vec![(p, s)]).collect(),
        });
        // Multiplicative: c0 + c1 · Π_l term_l(x_l)
        out.push(HypothesisShape {
            // analyze:allow(hot-path-alloc) shape enumeration owns its terms; bounded by hypothesis count
            terms: vec![combo.clone()],
        });
        // Additive + multiplicative interaction.
        let mut terms: Vec<Vec<(usize, TermShape)>> =
            combo.iter().map(|&(p, s)| vec![(p, s)]).collect(); // analyze:allow(hot-path-alloc) shape enumeration owns its terms
        terms.push(combo.clone());
        out.push(HypothesisShape { terms });
    }
    // Structural order on the term lists (TermShape derives Ord) — the
    // Debug-string sort this replaces allocated two format strings per
    // comparison and ordered identically only by accident of the derive.
    out.sort_by(|a, b| a.terms.cmp(&b.terms));
    out.dedup();
    out
}

/// The outcome of the sparse per-parameter search: the combined hypothesis
/// shapes to refit on the full grid and the options for that refit.
pub(crate) struct MultiParamPlan {
    pub shapes: Vec<HypothesisShape>,
    pub options: ModelerOptions,
}

/// Runs the per-parameter line searches and combines their candidate term
/// pools into full-grid hypotheses. Shared by the fast and reference
/// drivers, which differ only in the `line_modeler` they plug in and the
/// full-grid search path they feed the plan to.
pub(crate) fn search_plan(
    data: &ExperimentData,
    options: &ModelerOptions,
    line_modeler: LineModeler,
) -> Result<MultiParamPlan, ModelingError> {
    let m = data.num_parameters();
    let mins = coordinate_minima(data);
    let mut per_param = Vec::new();
    for p in 0..m {
        let pool = candidate_shapes_for_parameter(data, p, options, &mins, line_modeler)?;
        if !pool.is_empty() {
            per_param.push((p, pool));
        }
    }

    if per_param.is_empty() {
        // Constant in every parameter: fit the constant on all points.
        return Ok(MultiParamPlan {
            shapes: Vec::new(),
            options: options.clone(),
        });
    }

    let shapes = combine_shapes(&per_param);
    // Refit on all points with a relaxed point minimum: the full grid has at
    // least `min_points` per parameter by construction of the experiment.
    let mut full_options = options.clone();
    full_options.min_points = full_options.min_points.min(data.len());
    Ok(MultiParamPlan {
        shapes,
        options: full_options,
    })
}

/// Creates a multi-parameter model. Falls back to single-parameter modeling
/// when the data has one parameter.
pub fn model_multi_parameter(
    data: &ExperimentData,
    options: &ModelerOptions,
) -> Result<Model, ModelingError> {
    let _span = extradeep_obs::span("model.multi_param");
    let m = data.num_parameters();
    if m == 0 {
        return Err(ModelingError::InvalidData("no parameters".into()));
    }
    if m == 1 {
        return modeler::model_single_parameter(data, options);
    }
    let plan = search_plan(data, options, modeler::model_single_parameter)?;
    modeler::model_with_shapes(data, &plan.options, &plan.shapes)
}

/// Multi-parameter modeling on the per-shape engine path (the batched
/// kernel's equivalence referee): same sparse plan, line searches and
/// full-grid refit routed through [`modeler::model_single_parameter_engine`]
/// and [`modeler::model_with_shapes_engine`].
pub fn model_multi_parameter_engine(
    data: &ExperimentData,
    options: &ModelerOptions,
) -> Result<Model, ModelingError> {
    let _span = extradeep_obs::span("model.multi_param");
    let m = data.num_parameters();
    if m == 0 {
        return Err(ModelingError::InvalidData("no parameters".into()));
    }
    if m == 1 {
        return modeler::model_single_parameter_engine(data, options);
    }
    let plan = search_plan(data, options, modeler::model_single_parameter_engine)?;
    modeler::model_with_shapes_engine(data, &plan.options, &plan.shapes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::Measurement;

    /// Full grid over ranks x batch-size.
    fn grid(f: impl Fn(f64, f64) -> f64) -> ExperimentData {
        let ranks = [2.0, 4.0, 8.0, 16.0, 32.0];
        let batches = [32.0, 64.0, 128.0, 256.0, 512.0];
        let mut meas = Vec::new();
        for &r in &ranks {
            for &b in &batches {
                meas.push(Measurement::new(vec![r, b], vec![f(r, b)]));
            }
        }
        ExperimentData::new(vec!["ranks".into(), "batch".into()], meas)
    }

    #[test]
    fn additive_two_parameter_function() {
        // f(r, b) = 5 + 2r + 0.1b
        let data = grid(|r, b| 5.0 + 2.0 * r + 0.1 * b);
        let model = model_multi_parameter(&data, &ModelerOptions::default()).unwrap();
        let pred = model.predict(&[64.0, 1024.0]);
        let truth = 5.0 + 2.0 * 64.0 + 0.1 * 1024.0;
        assert!(
            (pred - truth).abs() / truth < 0.05,
            "pred {pred} vs {truth}"
        );
    }

    #[test]
    fn multiplicative_two_parameter_function() {
        // f(r, b) = 1 + 0.01 * r * b
        let data = grid(|r, b| 1.0 + 0.01 * r * b);
        let model = model_multi_parameter(&data, &ModelerOptions::default()).unwrap();
        let pred = model.predict(&[64.0, 1024.0]);
        let truth = 1.0 + 0.01 * 64.0 * 1024.0;
        assert!(
            (pred - truth).abs() / truth < 0.05,
            "pred {pred} vs {truth}"
        );
    }

    #[test]
    fn constant_in_one_parameter() {
        // f depends only on ranks; the batch term must vanish.
        let data = grid(|r, _| 3.0 + r * r);
        let model = model_multi_parameter(&data, &ModelerOptions::default()).unwrap();
        let a = model.predict(&[16.0, 32.0]);
        let b = model.predict(&[16.0, 512.0]);
        assert!(
            (a - b).abs() / a < 0.02,
            "batch must not matter: {a} vs {b}"
        );
    }

    #[test]
    fn fully_constant_grid() {
        let data = grid(|_, _| 7.0);
        let model = model_multi_parameter(&data, &ModelerOptions::default()).unwrap();
        assert!((model.predict(&[64.0, 64.0]) - 7.0).abs() < 1e-6);
    }

    #[test]
    fn single_parameter_fallback() {
        let data = ExperimentData::univariate(
            "p",
            &[
                (2.0, 4.0),
                (4.0, 8.0),
                (8.0, 16.0),
                (16.0, 32.0),
                (32.0, 64.0),
            ],
        );
        let model = model_multi_parameter(&data, &ModelerOptions::default()).unwrap();
        assert_eq!(model.big_o(), "O(p)");
    }

    #[test]
    fn zero_parameters_rejected() {
        let data = ExperimentData::new(vec![], vec![]);
        assert!(model_multi_parameter(&data, &ModelerOptions::default()).is_err());
    }
}
