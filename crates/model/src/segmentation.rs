//! Segmented modeling: change-point detection over the measurement range.
//!
//! The paper's discussion (§4.3) warns that "communication algorithms and
//! performed memory techniques might change depending on the application
//! scale" — behavior the PMNF cannot capture with a single function. Like
//! Extra-P's segmented regression, this module tests whether splitting the
//! measurement series into two regimes and fitting each separately explains
//! the data *dramatically* better than one model; if so, the user is warned
//! that their measurement range straddles a behavioral change and told where.

use crate::measurement::{ExperimentData, Measurement};
use crate::model::Model;
use crate::modeler::{model_single_parameter, ModelerOptions, ModelingError};
use serde::{Deserialize, Serialize};

/// A two-regime model with the detected change point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentedModel {
    /// Parameter value separating the regimes: points `<= split_at` belong
    /// to the left segment.
    pub split_at: f64,
    pub left: Model,
    pub right: Model,
    /// Combined fit SMAPE of the two segments, percent.
    pub segmented_smape: f64,
    /// Fit SMAPE of the single unsegmented model, percent.
    pub single_smape: f64,
}

impl SegmentedModel {
    /// Predicts with the segment the coordinate falls into.
    pub fn predict_at(&self, x: f64) -> f64 {
        if x <= self.split_at {
            self.left.predict_at(x)
        } else {
            self.right.predict_at(x)
        }
    }

    /// Relative improvement of the segmentation over the single model.
    pub fn improvement(&self) -> f64 {
        if self.single_smape <= 0.0 {
            return 0.0;
        }
        1.0 - self.segmented_smape / self.single_smape
    }
}

/// Options for change-point detection.
#[derive(Debug, Clone)]
pub struct SegmentationOptions {
    pub modeler: ModelerOptions,
    /// Minimum points per segment. The paper's five-point minimum cannot be
    /// met by both halves of a small series, so segment fits relax it; the
    /// resulting segment models are diagnostic, not predictive.
    pub min_segment_points: usize,
    /// Required relative improvement (e.g. 0.6 = the segmented fit must
    /// reduce SMAPE by at least 60%) before a change point is reported.
    pub min_improvement: f64,
    /// Single-model SMAPE below which the data is considered well explained
    /// and no change point is searched for (percent).
    pub smape_floor: f64,
}

impl Default for SegmentationOptions {
    fn default() -> Self {
        let mut modeler = ModelerOptions::strong_scaling();
        modeler.min_points = 3;
        modeler.use_cross_validation = false; // segments are tiny
        SegmentationOptions {
            modeler,
            min_segment_points: 4,
            min_improvement: 0.7,
            smape_floor: 3.0,
        }
    }
}

fn subset(data: &ExperimentData, pick: impl Fn(&Measurement) -> bool) -> ExperimentData {
    ExperimentData::new(
        data.parameters.clone(),
        data.measurements
            .iter()
            .filter(|m| pick(m))
            .cloned()
            .collect(),
    )
}

/// Detects a change point in a single-parameter series. Returns
/// `Ok(None)` when one PMNF instance explains the data adequately.
pub fn detect_change_point(
    data: &ExperimentData,
    options: &SegmentationOptions,
) -> Result<Option<SegmentedModel>, ModelingError> {
    if data.num_parameters() != 1 {
        return Err(ModelingError::InvalidData(
            "segmentation requires single-parameter data".into(),
        ));
    }
    let xs = data.parameter_values(0);
    if xs.len() < 2 * options.min_segment_points {
        return Ok(None);
    }

    // The reference: one model over everything (with the default minimum).
    let mut full_options = options.modeler.clone();
    full_options.min_points = full_options.min_points.max(xs.len().min(5));
    let single = model_single_parameter(data, &full_options)?;
    if single.smape <= options.smape_floor {
        return Ok(None);
    }

    let mut best: Option<SegmentedModel> = None;
    let split_candidates =
        &xs[(options.min_segment_points - 1)..(xs.len() - options.min_segment_points)];
    for &split_at in split_candidates {
        let left_data = subset(data, |m| m.coordinate[0] <= split_at);
        let right_data = subset(data, |m| m.coordinate[0] > split_at);
        let (Ok(left), Ok(right)) = (
            model_single_parameter(&left_data, &options.modeler),
            model_single_parameter(&right_data, &options.modeler),
        ) else {
            continue;
        };
        // Weighted combined SMAPE over all points.
        let n_l = left_data.len() as f64;
        let n_r = right_data.len() as f64;
        let combined = (left.smape * n_l + right.smape * n_r) / (n_l + n_r);
        let candidate = SegmentedModel {
            split_at,
            left,
            right,
            segmented_smape: combined,
            single_smape: single.smape,
        };
        if best
            .as_ref()
            .is_none_or(|b| candidate.segmented_smape < b.segmented_smape)
        {
            best = Some(candidate);
        }
    }

    Ok(best.filter(|b| b.improvement() >= options.min_improvement))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(f: impl Fn(f64) -> f64) -> ExperimentData {
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0];
        let pts: Vec<(f64, f64)> = xs.iter().map(|&x| (x, f(x))).collect();
        ExperimentData::univariate("p", &pts)
    }

    #[test]
    fn detects_an_algorithm_switch() {
        // A collective that switches algorithms at 32 ranks: logarithmic
        // below, steeply linear above (e.g. ring -> flat tree fallback).
        let f = |x: f64| {
            if x <= 32.0 {
                10.0 + 2.0 * x.log2()
            } else {
                0.5 * x + 5.0
            }
        };
        let seg = detect_change_point(&series(f), &SegmentationOptions::default())
            .unwrap()
            .expect("change point found");
        assert!(
            (16.0..=64.0).contains(&seg.split_at),
            "split at {}",
            seg.split_at
        );
        assert!(seg.improvement() > 0.6);
        // The segmented prediction matches each regime.
        assert!((seg.predict_at(8.0) - f(8.0)).abs() / f(8.0) < 0.1);
        assert!((seg.predict_at(128.0) - f(128.0)).abs() / f(128.0) < 0.1);
    }

    #[test]
    fn smooth_growth_has_no_change_point() {
        let f = |x: f64| 5.0 + 1.5 * x.sqrt();
        let seg = detect_change_point(&series(f), &SegmentationOptions::default()).unwrap();
        assert!(seg.is_none(), "spurious change point: {seg:?}");
    }

    #[test]
    fn constant_data_has_no_change_point() {
        let seg = detect_change_point(&series(|_| 42.0), &SegmentationOptions::default()).unwrap();
        assert!(seg.is_none());
    }

    #[test]
    fn too_few_points_yields_none() {
        let data = ExperimentData::univariate(
            "p",
            &[
                (2.0, 1.0),
                (4.0, 2.0),
                (8.0, 4.0),
                (16.0, 20.0),
                (32.0, 40.0),
            ],
        );
        let seg = detect_change_point(&data, &SegmentationOptions::default()).unwrap();
        assert!(seg.is_none(), "5 points cannot support 3+3 segments");
    }

    #[test]
    fn multi_parameter_data_is_rejected() {
        let data = ExperimentData::new(
            vec!["a".into(), "b".into()],
            vec![Measurement::new(vec![1.0, 2.0], vec![3.0])],
        );
        assert!(detect_change_point(&data, &SegmentationOptions::default()).is_err());
    }
}
