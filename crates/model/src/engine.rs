//! The fast-path hypothesis search engine.
//!
//! Profiling the modeling stage shows the naive leave-one-out loop dominates
//! its cost: for every one of the ~60 candidate shapes it refits the model
//! `n` times, and every refit rebuilds the design matrix, re-evaluates every
//! basis function, and solves the normal equations from scratch. This module
//! replaces that inner loop with three cooperating pieces:
//!
//! 1. **Closed-form LOO-CV.** For ordinary least squares the leave-one-out
//!    prediction follows exactly from the *full-data* fit via the hat-matrix
//!    identity `ŷ₋ᵢ = yᵢ − eᵢ / (1 − hᵢᵢ)`, where `eᵢ` is the full-fit
//!    residual and `hᵢᵢ = xᵢ'(XᵀX)⁻¹xᵢ` the leverage of point `i`. One LDLᵀ
//!    factorization of the Gram matrix therefore replaces the `n` refits.
//!    Folds whose leverage is ≈ 1 (removing the point makes the design
//!    rank-deficient) fall back to an exact refit of that fold, so the
//!    accept/reject behavior matches the naive loop.
//! 2. **A shared basis cache.** All candidate shapes draw their basis
//!    columns from the same small set of `(parameter, TermShape)` factors;
//!    [`BasisCache`] evaluates each distinct factor once per search and
//!    assembles per-shape design matrices from the cached columns.
//! 3. **Allocation-free workspaces.** Each rayon worker owns one
//!    [`Workspace`] of scratch buffers, reused across every shape it
//!    evaluates — the steady-state search loop performs no heap allocation
//!    beyond the winning hypothesis.
//!
//! The naive path survives as [`hypothesis::cross_validate_naive`]
//! (selectable per search via `ModelerOptions::use_naive_loocv`) and in
//! [`crate::reference`], the frozen pre-optimization driver used for
//! benchmarking and equivalence tests.

use crate::hypothesis::{self, FittedHypothesis, HypothesisShape};
use crate::linalg;
use crate::measurement::{Coordinate, ExperimentData};
use crate::metrics;
use crate::model::Model;
use crate::modeler::{self, ModelerOptions, ModelingError};
use crate::multi_param;
use crate::search_space::TermShape;
use crate::term::SimpleTerm;
use std::collections::BTreeMap;

/// A fold whose `1 − hᵢᵢ` is below this threshold would divide by ≈ 0 in the
/// hat-matrix identity; such folds are refit exactly instead.
pub(crate) const LEVERAGE_EPS: f64 = 1e-7;

/// Self-profiling counters. Resolved once per process (the registry lock is
/// taken on first use only); every increment afterwards is one relaxed
/// atomic check plus, when enabled, one relaxed add. Fold counts are
/// accumulated locally per cross-validation and flushed in one add.
pub(crate) mod obs_counters {
    use std::sync::OnceLock;

    macro_rules! cached_counter {
        ($fn_name:ident, $name:literal) => {
            pub(crate) fn $fn_name() -> &'static extradeep_obs::Counter {
                static C: OnceLock<&'static extradeep_obs::Counter> = OnceLock::new();
                C.get_or_init(|| extradeep_obs::counter($name))
            }
        };
    }

    cached_counter!(hypotheses, "model.search.hypotheses");
    cached_counter!(pruned, "model.search.pruned");
    cached_counter!(loocv_fastpath, "model.loocv.fastpath_folds");
    cached_counter!(loocv_fallback, "model.loocv.fallback_folds");
    cached_counter!(loocv_naive, "model.loocv.naive_folds");
    cached_counter!(basis_hits, "model.basis_cache.hits");
    cached_counter!(basis_misses, "model.basis_cache.misses");
}

/// Flushes locally accumulated LOO-CV fold counts (zero adds are skipped so
/// the disabled path stays at the enabled-flag check).
pub(crate) fn flush_loo_counts(fast: u64, fallback: u64) {
    if fast > 0 {
        obs_counters::loocv_fastpath().add(fast);
    }
    if fallback > 0 {
        obs_counters::loocv_fallback().add(fallback);
    }
}

/// Per-worker scratch buffers. One instance lives in each rayon worker and
/// is reused across every hypothesis that worker evaluates.
#[derive(Debug, Default)]
pub(crate) struct Workspace {
    /// Row-major `n × k` design matrix of the current shape.
    design: Vec<f64>,
    /// `k × k` Gram matrix `XᵀX`, overwritten in place by its LDLᵀ factor.
    gram: Vec<f64>,
    /// `Xᵀy`.
    rhs: Vec<f64>,
    coeffs: Vec<f64>,
    /// Fitted values at the training points.
    fitted: Vec<f64>,
    /// Metric values, aligned with the design-matrix rows.
    actuals: Vec<f64>,
    /// Leave-one-out predictions.
    loo: Vec<f64>,
    /// `k`-length scratch for the per-point leverage solves.
    scratch: Vec<f64>,
    probe_point: Vec<f64>,
    probe_row: Vec<f64>,
}

/// Shared basis-column cache: every distinct `(parameter, TermShape)` factor
/// appearing in the candidate shapes is evaluated exactly once per search.
pub(crate) struct BasisCache {
    len: usize,
    index: BTreeMap<(usize, TermShape), usize>,
    columns: Vec<Vec<f64>>,
}

impl BasisCache {
    pub(crate) fn build(shapes: &[HypothesisShape], points: &[(Coordinate, f64)]) -> Self {
        let mut cache = BasisCache {
            len: points.len(),
            index: BTreeMap::new(),
            columns: Vec::new(),
        };
        for shape in shapes {
            for factors in &shape.terms {
                for &(param, ts) in factors {
                    cache.insert(param, ts, points);
                }
            }
        }
        cache
    }

    fn insert(&mut self, param: usize, ts: TermShape, points: &[(Coordinate, f64)]) {
        if self.index.contains_key(&(param, ts)) {
            obs_counters::basis_hits().incr();
            return;
        }
        obs_counters::basis_misses().incr();
        let term = SimpleTerm::new(param, ts.exponent, ts.log_exponent);
        let column: Vec<f64> = points.iter().map(|(c, _)| term.evaluate(c)).collect();
        self.index.insert((param, ts), self.columns.len());
        self.columns.push(column);
    }

    /// Assembles the design matrix of `shape` into `ws.design` from cached
    /// columns. Factor products run in declaration order, so every entry is
    /// bitwise identical to [`HypothesisShape::design_row`].
    fn fill_design(&self, shape: &HypothesisShape, ws: &mut Workspace) {
        let (n, k) = (self.len, shape.num_coefficients());
        ws.design.clear();
        ws.design.resize(n * k, 1.0);
        // Every factor read here is a reuse of a column computed once in
        // `build` — a cache hit. Tallied locally, flushed in one add.
        let mut reads = 0u64;
        for (t, factors) in shape.terms.iter().enumerate() {
            for &(param, ts) in factors {
                reads += 1;
                let column = &self.columns[self.index[&(param, ts)]];
                for (i, &v) in column.iter().enumerate() {
                    ws.design[i * k + t + 1] *= v;
                }
            }
        }
        obs_counters::basis_hits().add(reads);
    }
}

/// `c₀ + Σ c_j·b_j` with the same summation order as
/// `PerformanceFunction::evaluate`, so guard decisions taken on raw design
/// rows agree bitwise with the instantiated function.
#[inline]
fn predict(coeffs: &[f64], row: &[f64]) -> f64 {
    let terms: f64 = coeffs[1..].iter().zip(&row[1..]).map(|(c, b)| c * b).sum();
    coeffs[0] + terms
}

/// OLS on the workspace's design matrix via normal equations and one LDLᵀ
/// factorization. Returns `false` on a non-positive-definite Gram matrix
/// (collinear basis columns) or non-finite output — the same rejections as
/// the Gaussian-elimination path in [`hypothesis::fit`].
fn fit_in_workspace(ws: &mut Workspace, n: usize, k: usize) -> bool {
    ws.gram.clear();
    ws.gram.resize(k * k, 0.0);
    ws.rhs.clear();
    ws.rhs.resize(k, 0.0);
    for i in 0..n {
        let row = &ws.design[i * k..(i + 1) * k];
        let y = ws.actuals[i];
        for a in 0..k {
            ws.rhs[a] += row[a] * y;
            for b in a..k {
                ws.gram[a * k + b] += row[a] * row[b];
            }
        }
    }
    // The factorization and solves read only the lower triangle.
    for a in 0..k {
        for b in 0..a {
            ws.gram[a * k + b] = ws.gram[b * k + a];
        }
    }
    if !linalg::ldlt_factor_in_place(&mut ws.gram, k) {
        return false;
    }
    ws.coeffs.clear();
    ws.coeffs.extend_from_slice(&ws.rhs);
    linalg::ldlt_solve_in_place(&ws.gram, k, &mut ws.coeffs);
    if ws.coeffs.iter().any(|c| !c.is_finite()) {
        return false;
    }
    ws.fitted.clear();
    for i in 0..n {
        let p = predict(&ws.coeffs, &ws.design[i * k..(i + 1) * k]);
        if !p.is_finite() {
            return false;
        }
        ws.fitted.push(p);
    }
    true
}

/// Closed-form LOO-CV from an already-fitted workspace. Returns `None` when
/// CV is undefined (`n ≤ k`) or a degenerate fold's exact refit fails —
/// matching [`hypothesis::cross_validate_naive`].
fn loo_from_workspace(
    shape: &HypothesisShape,
    points: &[(Coordinate, f64)],
    ws: &mut Workspace,
    n: usize,
    k: usize,
) -> Option<f64> {
    if n <= k {
        return None;
    }
    ws.loo.clear();
    let (mut fast_folds, mut fallback_folds) = (0u64, 0u64);
    for i in 0..n {
        ws.scratch.clear();
        ws.scratch.extend_from_slice(&ws.design[i * k..(i + 1) * k]);
        linalg::ldlt_solve_in_place(&ws.gram, k, &mut ws.scratch);
        let leverage: f64 = ws.design[i * k..(i + 1) * k]
            .iter()
            .zip(&ws.scratch)
            .map(|(a, b)| a * b)
            .sum();
        let denom = 1.0 - leverage;
        let pred = ws.actuals[i] - (ws.actuals[i] - ws.fitted[i]) / denom;
        if denom < LEVERAGE_EPS || !pred.is_finite() {
            fallback_folds += 1;
            match hypothesis::naive_fold_prediction(shape, points, i) {
                Some(p) => ws.loo.push(p),
                None => {
                    flush_loo_counts(fast_folds, fallback_folds);
                    return None;
                }
            }
        } else {
            fast_folds += 1;
            ws.loo.push(pred);
        }
    }
    flush_loo_counts(fast_folds, fallback_folds);
    Some(metrics::smape(&ws.loo, &ws.actuals))
}

/// Standalone closed-form LOO-CV entry point (backs
/// [`hypothesis::cross_validate`]). Allocates its own workspace; the search
/// loop instead goes through [`evaluate_shape_cached`], which reuses the
/// factorization already computed for the fit.
pub(crate) fn cross_validate_closed_form(
    shape: &HypothesisShape,
    points: &[(Coordinate, f64)],
) -> Option<f64> {
    let n = points.len();
    let k = shape.num_coefficients();
    if n <= k {
        return None;
    }
    let mut ws = Workspace::default();
    for (c, _) in points {
        shape.design_row_into(c, &mut ws.probe_row);
        ws.design.extend_from_slice(&ws.probe_row);
    }
    ws.actuals.extend(points.iter().map(|&(_, v)| v));
    if !fit_in_workspace(&mut ws, n, k) {
        return None;
    }
    loo_from_workspace(shape, points, &mut ws, n, k)
}

/// Whether every polynomial exponent of the shape lies inside the growth
/// bounds (shared by the fast and reference drivers).
pub(crate) fn shape_within_bounds(shape: &HypothesisShape, bounds: Option<(f64, f64)>) -> bool {
    match bounds {
        None => true,
        Some((lo, hi)) => shape.terms.iter().flatten().all(|(_, s)| {
            let e = s.exponent.as_f64();
            e >= lo && e <= hi
        }),
    }
}

/// Fits one hypothesis end to end on the fast path: cached design assembly,
/// LDLᵀ fit, the negativity/cancellation guards of the reference driver, and
/// closed-form cross-validation reusing the fit's factorization.
pub(crate) fn evaluate_shape_cached(
    shape: &HypothesisShape,
    points: &[(Coordinate, f64)],
    options: &ModelerOptions,
    exponent_bounds: Option<(f64, f64)>,
    cache: &BasisCache,
    ws: &mut Workspace,
) -> Option<FittedHypothesis> {
    obs_counters::hypotheses().incr();
    if !shape_within_bounds(shape, exponent_bounds) {
        return None;
    }
    let n = points.len();
    let k = shape.num_coefficients();
    if n < k {
        return None;
    }
    cache.fill_design(shape, ws);
    ws.actuals.clear();
    ws.actuals.extend(points.iter().map(|&(_, v)| v));
    if !fit_in_workspace(ws, n, k) {
        return None;
    }

    let far_index =
        (0..n).max_by(|&a, &b| crate::modeler::cmp_coordinates(&points[a].0, &points[b].0));
    if options.reject_negative_predictions {
        if ws.fitted.iter().any(|&p| p < 0.0) {
            return None;
        }
        // A runtime/visits/bytes model must stay non-negative under
        // extrapolation too: probe a few multiples of the largest coordinate
        // (decaying models with a negative constant otherwise cross zero
        // just outside the fit range).
        if let Some(far) = far_index {
            for factor in [2.0, 8.0, 32.0] {
                ws.probe_point.clear();
                ws.probe_point
                    .extend(points[far].0.iter().map(|x| x * factor));
                shape.design_row_into(&ws.probe_point, &mut ws.probe_row);
                if predict(&ws.coeffs, &ws.probe_row) < 0.0 {
                    return None;
                }
            }
        }
    }
    // Cancellation guard: a fit whose terms are individually huge but cancel
    // to the measured magnitude is numerically meaningless outside the fit
    // range (two opposing growing terms explode under extrapolation).
    if let Some(far) = far_index {
        let row = &ws.design[far * k..(far + 1) * k];
        let value = ws.fitted[far].abs().max(1e-30);
        let magnitude: f64 = ws.coeffs[0].abs()
            + ws.coeffs[1..]
                .iter()
                .zip(&row[1..])
                .map(|(c, b)| (c * b).abs())
                .sum::<f64>();
        if magnitude > 10.0 * value {
            return None;
        }
    }

    let mut cv_smape = f64::NAN;
    if options.use_cross_validation {
        let cv = if options.use_naive_loocv {
            obs_counters::loocv_naive().add(n as u64);
            hypothesis::cross_validate_naive(shape, points)
        } else {
            loo_from_workspace(shape, points, ws, n, k)
        };
        if let Some(cv) = cv {
            cv_smape = cv;
        }
    }

    Some(FittedHypothesis {
        function: shape.instantiate(&ws.coeffs),
        smape: metrics::smape(&ws.fitted, &ws.actuals),
        rss: metrics::rss(&ws.fitted, &ws.actuals),
        r_squared: metrics::r_squared(&ws.fitted, &ws.actuals),
        cv_smape,
        shape: shape.clone(),
    })
}

/// A reusable hypothesis search engine.
///
/// Precomputes the univariate hypothesis shapes of its search space once, so
/// modeling hundreds of kernel datasets (the per-kernel loop of the paper's
/// step 4) does not regenerate them per kernel. Dispatches on the parameter
/// count of each dataset.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    options: ModelerOptions,
    univariate: Vec<HypothesisShape>,
}

impl SearchEngine {
    pub fn new(options: ModelerOptions) -> Self {
        let univariate = options.search_space.univariate_hypotheses();
        SearchEngine {
            options,
            univariate,
        }
    }

    pub fn options(&self) -> &ModelerOptions {
        &self.options
    }

    /// Models one dataset: single-parameter data goes through the cached
    /// shape list, multi-parameter data through the sparse combination
    /// search (whose grid refit shares the same fast path).
    pub fn model(&self, data: &ExperimentData) -> Result<Model, ModelingError> {
        match data.num_parameters() {
            0 => Err(ModelingError::InvalidData("no parameters".into())),
            1 => modeler::model_with_shapes(data, &self.options, &self.univariate),
            _ => multi_param::model_multi_parameter(data, &self.options),
        }
    }

    /// Fits a PMNF growth model to one derived metric series: `points` are
    /// `(scale, replicate values)` pairs, e.g. the per-repetition step-skew
    /// values at each rank count. This is the workload observatory's entry
    /// point — a thin wrapper over [`SearchEngine::model`] so callers asking
    /// "does this metric grow with scale?" don't assemble [`ExperimentData`]
    /// by hand.
    pub fn model_series(
        &self,
        parameter: &str,
        points: &[(f64, Vec<f64>)],
    ) -> Result<Model, ModelingError> {
        self.model(&ExperimentData::univariate_with_reps(parameter, points))
    }

    /// Models a batch of datasets, sharding *across models*: one rayon
    /// work-stealing pool over the whole kernel list instead of within-one-
    /// model parallelism. Each search runs sequentially on the batched
    /// column-store kernel, so a many-kernel campaign keeps every core busy
    /// with zero intra-search coordination; the result order matches the
    /// input order, keeping downstream reports deterministic.
    pub fn model_batch(&self, datasets: &[ExperimentData]) -> Vec<Result<Model, ModelingError>> {
        use rayon::prelude::*;
        datasets.par_iter().map(|data| self.model(data)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;
    use crate::measurement::ExperimentData;

    fn pts(raw: &[(f64, f64)]) -> Vec<(Coordinate, f64)> {
        raw.iter().map(|&(x, v)| (vec![x], v)).collect()
    }

    #[test]
    fn basis_cache_matches_design_row() {
        let shapes = vec![
            HypothesisShape::univariate(&[TermShape::new(Fraction::new(2, 3), 2)]),
            HypothesisShape::univariate(&[
                TermShape::new(Fraction::whole(1), 0),
                TermShape::new(Fraction::zero(), 1),
            ]),
        ];
        let points = pts(&[(2.0, 1.0), (4.0, 2.0), (8.0, 3.0), (16.0, 4.0)]);
        let cache = BasisCache::build(&shapes, &points);
        let mut ws = Workspace::default();
        for shape in &shapes {
            cache.fill_design(shape, &mut ws);
            let k = shape.num_coefficients();
            for (i, (c, _)) in points.iter().enumerate() {
                let expected = shape.design_row(c);
                assert_eq!(&ws.design[i * k..(i + 1) * k], expected.as_slice());
            }
        }
    }

    #[test]
    fn workspace_fit_matches_reference_fit() {
        let shape = HypothesisShape::univariate(&[
            TermShape::new(Fraction::whole(1), 0),
            TermShape::new(Fraction::zero(), 1),
        ]);
        let points = pts(&[
            (2.0, 8.1),
            (4.0, 15.2),
            (8.0, 25.9),
            (16.0, 45.3),
            (32.0, 79.8),
        ]);
        let cache = BasisCache::build(std::slice::from_ref(&shape), &points);
        let mut ws = Workspace::default();
        cache.fill_design(&shape, &mut ws);
        ws.actuals.extend(points.iter().map(|&(_, v)| v));
        assert!(fit_in_workspace(
            &mut ws,
            points.len(),
            shape.num_coefficients()
        ));
        let reference = hypothesis::fit(&shape, &points).unwrap();
        let coeffs = [
            reference.function.constant,
            reference.function.terms[0].coefficient,
            reference.function.terms[1].coefficient,
        ];
        for (fast, slow) in ws.coeffs.iter().zip(coeffs) {
            assert!(
                (fast - slow).abs() < 1e-9 * (1.0 + slow.abs()),
                "{fast} vs {slow}"
            );
        }
    }

    #[test]
    fn search_engine_models_univariate_data() {
        let data = ExperimentData::univariate(
            "p",
            &[
                (2.0, 7.0),
                (4.0, 11.0),
                (8.0, 19.0),
                (16.0, 35.0),
                (32.0, 67.0),
            ],
        );
        let engine = SearchEngine::new(ModelerOptions::default());
        let model = engine.model(&data).unwrap();
        assert_eq!(model.big_o(), "O(p)");
        assert!((model.predict_at(64.0) - 131.0).abs() < 1e-6);
    }

    #[test]
    fn model_series_fits_replicated_metric_points() {
        // A metric that grows linearly with scale, three replicates each.
        let points: Vec<(f64, Vec<f64>)> = [2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&x| (x, vec![1.0 + 0.5 * x; 3]))
            .collect();
        let engine = SearchEngine::new(ModelerOptions::default());
        let model = engine.model_series("ranks", &points).unwrap();
        assert_eq!(model.big_o(), "O(ranks)");
        assert!((model.predict_at(64.0) - 33.0).abs() < 1e-6);
    }

    #[test]
    fn search_engine_rejects_zero_parameters() {
        let data = ExperimentData::new(vec![], vec![]);
        let engine = SearchEngine::new(ModelerOptions::default());
        assert!(matches!(
            engine.model(&data),
            Err(ModelingError::InvalidData(_))
        ));
    }

    #[test]
    fn naive_flag_produces_same_model() {
        let f = |x: f64| 3.5 + 0.25 * x * x.log2();
        let points: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&x| (x, f(x)))
            .collect();
        let data = ExperimentData::univariate("p", &points);
        let fast = modeler::model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let naive_options = ModelerOptions {
            use_naive_loocv: true,
            ..ModelerOptions::default()
        };
        let naive = modeler::model_single_parameter(&data, &naive_options).unwrap();
        assert_eq!(fast.big_o(), naive.big_o());
        let (a, b) = (fast.predict_at(64.0), naive.predict_at(64.0));
        assert!((a - b).abs() < 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn engine_rejects_nan_input_without_panicking() {
        // The far-point max_by inside the fit loop orders coordinates with a
        // NaN-total comparison; garbage input must fail typed, not panic.
        let engine = SearchEngine::new(ModelerOptions::default());
        for bad in [
            &[
                (2.0, 1.0),
                (4.0, 2.0),
                (8.0, f64::NAN),
                (16.0, 4.0),
                (32.0, 5.0),
            ][..],
            &[
                (2.0, 1.0),
                (f64::NAN, 2.0),
                (8.0, 3.0),
                (16.0, 4.0),
                (32.0, 5.0),
            ][..],
            &[
                (2.0, f64::INFINITY),
                (4.0, 2.0),
                (8.0, 3.0),
                (16.0, 4.0),
                (32.0, 5.0),
            ][..],
        ] {
            let data = ExperimentData::univariate("p", bad);
            assert!(engine.model(&data).is_err());
        }
    }
}
