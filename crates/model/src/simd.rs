//! Elementwise f64 kernels for the batched search path.
//!
//! Only *elementwise maps* are vectorized here — term-column products,
//! coefficient-scaled column accumulation, and the constant-offset pass that
//! turns an accumulator into fitted values. Every *reduction* in the batched
//! kernel (column sums, Gram dots, leverage dot products) deliberately stays
//! scalar and sequential: winner selection must be bit-identical to the
//! reference engine, and reassociating a floating-point sum changes its
//! rounding. Elementwise lanes are safe because each output element runs the
//! exact scalar operation sequence of [`crate::engine::predict`] and
//! `BasisCache::fill_design`, just four at a time.
//!
//! Two implementations share one signature set:
//!
//! * `simd` feature (nightly, `std::simd`): `f64x4` vector ops. IEEE-754
//!   lane arithmetic is identical to scalar arithmetic, so results stay
//!   bitwise equal.
//! * default (stable): a hand-unrolled 4-lane scalar version. The four lane
//!   statements are independent, which lets the backend keep four
//!   multiply-add chains in flight even without explicit vector types.

#[cfg(feature = "simd")]
mod imp {
    use std::simd::f64x4;

    /// `dst[i] *= src[i]` — one factor column folded into a term column.
    pub fn mul_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (dst, src) = (&mut dst[..n], &src[..n]);
        let (d4, d_tail) = dst.as_chunks_mut::<4>();
        let (s4, s_tail) = src.as_chunks::<4>();
        for (d, s) in d4.iter_mut().zip(s4) {
            *d = (f64x4::from_array(*d) * f64x4::from_array(*s)).to_array();
        }
        for (d, s) in d_tail.iter_mut().zip(s_tail) {
            *d *= s;
        }
    }

    /// `acc[i] += c * col[i]` — one coefficient-weighted basis column.
    pub fn mul_add_assign(acc: &mut [f64], col: &[f64], c: f64) {
        let n = acc.len().min(col.len());
        let (acc, col) = (&mut acc[..n], &col[..n]);
        let cv = f64x4::splat(c);
        let (a4, a_tail) = acc.as_chunks_mut::<4>();
        let (c4, c_tail) = col.as_chunks::<4>();
        for (a, b) in a4.iter_mut().zip(c4) {
            *a = (f64x4::from_array(*a) + cv * f64x4::from_array(*b)).to_array();
        }
        for (a, b) in a_tail.iter_mut().zip(c_tail) {
            *a += c * b;
        }
    }

    /// `out[i] = c0 + acc[i]` — fitted values from the term accumulator.
    pub fn add_scalar(out: &mut [f64], acc: &[f64], c0: f64) {
        let n = out.len().min(acc.len());
        let (out, acc) = (&mut out[..n], &acc[..n]);
        let cv = f64x4::splat(c0);
        let (o4, o_tail) = out.as_chunks_mut::<4>();
        let (a4, a_tail) = acc.as_chunks::<4>();
        for (o, a) in o4.iter_mut().zip(a4) {
            *o = (cv + f64x4::from_array(*a)).to_array();
        }
        for (o, a) in o_tail.iter_mut().zip(a_tail) {
            *o = c0 + a;
        }
    }
}

#[cfg(not(feature = "simd"))]
mod imp {
    /// `dst[i] *= src[i]` — one factor column folded into a term column.
    pub fn mul_assign(dst: &mut [f64], src: &[f64]) {
        let n = dst.len().min(src.len());
        let (dst, src) = (&mut dst[..n], &src[..n]);
        let mut i = 0;
        while i + 4 <= n {
            dst[i] *= src[i];
            dst[i + 1] *= src[i + 1];
            dst[i + 2] *= src[i + 2];
            dst[i + 3] *= src[i + 3];
            i += 4;
        }
        while i < n {
            dst[i] *= src[i];
            i += 1;
        }
    }

    /// `acc[i] += c * col[i]` — one coefficient-weighted basis column.
    pub fn mul_add_assign(acc: &mut [f64], col: &[f64], c: f64) {
        let n = acc.len().min(col.len());
        let (acc, col) = (&mut acc[..n], &col[..n]);
        let mut i = 0;
        while i + 4 <= n {
            acc[i] += c * col[i];
            acc[i + 1] += c * col[i + 1];
            acc[i + 2] += c * col[i + 2];
            acc[i + 3] += c * col[i + 3];
            i += 4;
        }
        while i < n {
            acc[i] += c * col[i];
            i += 1;
        }
    }

    /// `out[i] = c0 + acc[i]` — fitted values from the term accumulator.
    pub fn add_scalar(out: &mut [f64], acc: &[f64], c0: f64) {
        let n = out.len().min(acc.len());
        let (out, acc) = (&mut out[..n], &acc[..n]);
        let mut i = 0;
        while i + 4 <= n {
            out[i] = c0 + acc[i];
            out[i + 1] = c0 + acc[i + 1];
            out[i + 2] = c0 + acc[i + 2];
            out[i + 3] = c0 + acc[i + 3];
            i += 4;
        }
        while i < n {
            out[i] = c0 + acc[i];
            i += 1;
        }
    }
}

pub(crate) use imp::{add_scalar, mul_add_assign, mul_assign};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_assign_matches_scalar_loop() {
        for n in [0usize, 1, 3, 4, 5, 8, 11] {
            let src: Vec<f64> = (0..n).map(|i| 1.5 + i as f64 * 0.25).collect();
            let mut dst: Vec<f64> = (0..n).map(|i| 2.0 - i as f64 * 0.125).collect();
            let expected: Vec<f64> = dst.iter().zip(&src).map(|(d, s)| d * s).collect();
            mul_assign(&mut dst, &src);
            assert_eq!(dst, expected, "n = {n}");
        }
    }

    #[test]
    fn mul_add_assign_matches_scalar_loop() {
        for n in [0usize, 1, 4, 6, 9] {
            let col: Vec<f64> = (0..n).map(|i| 0.5 + i as f64).collect();
            let mut acc: Vec<f64> = (0..n).map(|i| i as f64 * 0.3).collect();
            let c = 1.75;
            let expected: Vec<f64> = acc.iter().zip(&col).map(|(a, b)| a + c * b).collect();
            mul_add_assign(&mut acc, &col, c);
            assert_eq!(acc, expected, "n = {n}");
        }
    }

    #[test]
    fn add_scalar_matches_scalar_loop() {
        for n in [0usize, 2, 4, 7] {
            let acc: Vec<f64> = (0..n).map(|i| i as f64 * 0.7).collect();
            let mut out = vec![0.0; n];
            add_scalar(&mut out, &acc, 3.25);
            let expected: Vec<f64> = acc.iter().map(|a| 3.25 + a).collect();
            assert_eq!(out, expected, "n = {n}");
        }
    }
}
