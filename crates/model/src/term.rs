//! PMNF terms: products of polynomial and logarithmic factors.
//!
//! The performance model normal form (paper Eq. 5) expresses a metric as
//!
//! ```text
//! f(x_1, ..., x_m) = c_0 + Σ_k  c_k · Π_l  x_l^{i_kl} · log2(x_l)^{j_kl}
//! ```
//!
//! A [`SimpleTerm`] is one factor `x_l^{i} · log2(x_l)^{j}` bound to a single
//! parameter; a [`CompoundTerm`] multiplies one factor per parameter with a
//! coefficient `c_k`.

use crate::fraction::Fraction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One factor of a compound term: `x^{exponent} * log2(x)^{log_exponent}`
/// applied to the parameter with index `parameter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SimpleTerm {
    /// Index of the parameter this factor applies to.
    pub parameter: usize,
    /// Polynomial exponent `i` (rational, may be negative for strong scaling).
    pub exponent: Fraction,
    /// Logarithmic exponent `j` (small non-negative integer).
    pub log_exponent: u32,
}

impl SimpleTerm {
    pub fn new(parameter: usize, exponent: Fraction, log_exponent: u32) -> Self {
        SimpleTerm {
            parameter,
            exponent,
            log_exponent,
        }
    }

    /// True when this factor is identically 1 (`x^0 * log^0`).
    pub fn is_unit(&self) -> bool {
        self.exponent.is_zero() && self.log_exponent == 0
    }

    /// Evaluates the factor at a parameter vector.
    ///
    /// Parameter values must be positive; `log2` of values `<= 0` would be
    /// undefined. Values are clamped to a tiny positive epsilon defensively.
    pub fn evaluate(&self, point: &[f64]) -> f64 {
        let x = point[self.parameter].max(f64::MIN_POSITIVE);
        let poly = if self.exponent.is_zero() {
            1.0
        } else {
            x.powf(self.exponent.as_f64())
        };
        let log = if self.log_exponent == 0 {
            1.0
        } else {
            x.log2().powi(self.log_exponent as i32)
        };
        poly * log
    }
}

/// A full PMNF term `c · Π_l x_l^{i_l} · log2(x_l)^{j_l}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompoundTerm {
    pub coefficient: f64,
    pub factors: Vec<SimpleTerm>,
}

impl CompoundTerm {
    pub fn new(coefficient: f64, factors: Vec<SimpleTerm>) -> Self {
        CompoundTerm {
            coefficient,
            factors,
        }
    }

    /// A single-parameter term `c * x^(i) * log2(x)^j` on parameter 0.
    pub fn univariate(coefficient: f64, exponent: Fraction, log_exponent: u32) -> Self {
        CompoundTerm::new(
            coefficient,
            vec![SimpleTerm::new(0, exponent, log_exponent)],
        )
    }

    /// Evaluates `Π_l factor_l(point)` without the coefficient.
    pub fn evaluate_basis(&self, point: &[f64]) -> f64 {
        self.factors.iter().map(|t| t.evaluate(point)).product()
    }

    /// Evaluates the full term including the coefficient.
    pub fn evaluate(&self, point: &[f64]) -> f64 {
        self.coefficient * self.evaluate_basis(point)
    }

    /// True if every factor is the unit factor (term degenerates to `c`).
    pub fn is_constant(&self) -> bool {
        self.factors.iter().all(SimpleTerm::is_unit)
    }
}

fn format_factor(t: &SimpleTerm, names: &[&str], out: &mut String) {
    use fmt::Write;
    let name = names.get(t.parameter).copied().unwrap_or("x");
    if !t.exponent.is_zero() {
        if t.exponent == Fraction::whole(1) {
            let _ = write!(out, "{name}");
        } else if t.exponent.denominator() == 1 {
            let _ = write!(out, "{name}^{}", t.exponent.numerator());
        } else {
            let _ = write!(out, "{name}^({})", t.exponent);
        }
    }
    if t.log_exponent > 0 {
        if !t.exponent.is_zero() {
            out.push_str(" * ");
        }
        if t.log_exponent == 1 {
            let _ = write!(out, "log2({name})");
        } else {
            let _ = write!(out, "log2({name})^{}", t.log_exponent);
        }
    }
}

impl CompoundTerm {
    /// Renders the term with parameter names, e.g. `0.58 * p^(2/3) * log2(p)^2`.
    pub fn format_with(&self, names: &[&str]) -> String {
        let mut s = format!("{:.4}", self.coefficient);
        for f in &self.factors {
            if f.is_unit() {
                continue;
            }
            s.push_str(" * ");
            format_factor(f, names, &mut s);
        }
        s
    }
}

impl fmt::Display for CompoundTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = (0..self.factors.len()).map(|_| "x").collect();
        write!(f, "{}", self.format_with(&names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_factor_evaluates_to_one() {
        let t = SimpleTerm::new(0, Fraction::zero(), 0);
        assert!(t.is_unit());
        assert_eq!(t.evaluate(&[37.0]), 1.0);
    }

    #[test]
    fn polynomial_factor() {
        let t = SimpleTerm::new(0, Fraction::whole(2), 0);
        assert_eq!(t.evaluate(&[3.0]), 9.0);
    }

    #[test]
    fn fractional_exponent() {
        let t = SimpleTerm::new(0, Fraction::new(2, 3), 0);
        assert!((t.evaluate(&[8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn negative_exponent_decreases() {
        let t = SimpleTerm::new(0, Fraction::new(-1, 1), 0);
        assert!((t.evaluate(&[4.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn log_factor() {
        let t = SimpleTerm::new(0, Fraction::zero(), 2);
        assert!((t.evaluate(&[8.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_factor_matches_case_study_shape() {
        // x^(2/3) * log2(x)^2 at x = 64: 16 * 36 = 576
        let t = SimpleTerm::new(0, Fraction::new(2, 3), 2);
        assert!((t.evaluate(&[64.0]) - 576.0).abs() < 1e-9);
    }

    #[test]
    fn compound_term_multiplies_parameters() {
        let term = CompoundTerm::new(
            2.0,
            vec![
                SimpleTerm::new(0, Fraction::whole(1), 0),
                SimpleTerm::new(1, Fraction::whole(1), 1),
            ],
        );
        // 2 * x0 * x1 * log2(x1) at (3, 4) = 2 * 3 * 4 * 2 = 48
        assert!((term.evaluate(&[3.0, 4.0]) - 48.0).abs() < 1e-12);
    }

    #[test]
    fn display_renders_readably() {
        let term = CompoundTerm::univariate(0.58, Fraction::new(2, 3), 2);
        assert_eq!(term.format_with(&["p"]), "0.5800 * p^(2/3) * log2(p)^2");
        let lin = CompoundTerm::univariate(1.5, Fraction::whole(1), 0);
        assert_eq!(lin.format_with(&["p"]), "1.5000 * p");
    }

    #[test]
    fn constant_term_detection() {
        let c = CompoundTerm::univariate(5.0, Fraction::zero(), 0);
        assert!(c.is_constant());
        assert_eq!(c.evaluate(&[123.0]), 5.0);
    }
}
