//! Exact rational exponents for PMNF terms.
//!
//! Extra-P's model search space uses fractional polynomial exponents such as
//! `2/3` or `5/4`. Storing them as reduced fractions (rather than `f64`)
//! keeps hypothesis identity exact, makes `Display` render the familiar
//! `x^(2/3)` notation, and gives a total order for growth comparison.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A reduced rational number `num/den` with `den > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fraction {
    num: i32,
    den: i32,
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Fraction {
    /// Creates a reduced fraction. Panics if `den == 0`.
    pub fn new(num: i32, den: i32) -> Self {
        assert!(den != 0, "fraction denominator must be nonzero");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num as i64, den as i64).max(1) as i32;
        Fraction {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The fraction 0/1.
    pub const fn zero() -> Self {
        Fraction { num: 0, den: 1 }
    }

    /// A whole number `n/1`.
    pub const fn whole(n: i32) -> Self {
        Fraction { num: n, den: 1 }
    }

    pub fn numerator(&self) -> i32 {
        self.num
    }

    pub fn denominator(&self) -> i32 {
        self.den
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Additive inverse.
    pub fn neg(&self) -> Self {
        Fraction {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Fraction {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fraction {
    fn cmp(&self, other: &Self) -> Ordering {
        // Cross-multiplication avoids float rounding; denominators are > 0.
        let lhs = self.num as i64 * other.den as i64;
        let rhs = other.num as i64 * self.den as i64;
        lhs.cmp(&rhs)
    }
}

impl fmt::Display for Fraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i32> for Fraction {
    fn from(n: i32) -> Self {
        Fraction::whole(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_lowest_terms() {
        let f = Fraction::new(4, 6);
        assert_eq!(f.numerator(), 2);
        assert_eq!(f.denominator(), 3);
    }

    #[test]
    fn normalizes_sign_into_numerator() {
        let f = Fraction::new(1, -2);
        assert_eq!(f.numerator(), -1);
        assert_eq!(f.denominator(), 2);
        assert!(f.is_negative());
    }

    #[test]
    fn zero_is_zero() {
        assert!(Fraction::zero().is_zero());
        assert!(Fraction::new(0, 5).is_zero());
        assert_eq!(Fraction::new(0, 5), Fraction::zero());
    }

    #[test]
    fn ordering_matches_float_value() {
        let half = Fraction::new(1, 2);
        let two_thirds = Fraction::new(2, 3);
        let three_quarters = Fraction::new(3, 4);
        assert!(half < two_thirds);
        assert!(two_thirds < three_quarters);
        assert!(Fraction::new(-1, 2) < Fraction::zero());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Fraction::new(2, 3).to_string(), "2/3");
        assert_eq!(Fraction::whole(2).to_string(), "2");
        assert_eq!(Fraction::new(-5, 4).to_string(), "-5/4");
    }

    #[test]
    fn as_f64_matches() {
        assert!((Fraction::new(2, 3).as_f64() - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn neg_roundtrips() {
        let f = Fraction::new(5, 4);
        assert_eq!(f.neg().neg(), f);
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Fraction::new(1, 0);
    }
}
