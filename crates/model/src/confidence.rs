//! Confidence intervals for model predictions.
//!
//! Figure 3 of the paper plots a 95% confidence band of the epoch-time model.
//! We provide the standard linear-regression analytic interval (via the
//! covariance of the fitted coefficients) and a nonparametric bootstrap over
//! measurement repetitions.

use crate::hypothesis::HypothesisShape;
use crate::linalg::{self, Matrix};
use crate::measurement::Coordinate;

use serde::{Deserialize, Serialize};

/// Two-sided Student-t quantiles for 95% confidence, indexed by degrees of
/// freedom 1..=30.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Anchor points `(df, t)` for 30 < df <= 100, linearly interpolated in
/// between. Values from standard t tables.
const T_975_ANCHORS: [(usize, f64); 8] = [
    (30, 2.042),
    (40, 2.021),
    (50, 2.009),
    (60, 2.000),
    (70, 1.994),
    (80, 1.990),
    (90, 1.987),
    (100, 1.984),
];

/// 97.5th percentile of the t distribution for `df` degrees of freedom.
///
/// Exact table values for df 1..=30, linear interpolation between tabulated
/// anchors up to df = 100, and the normal quantile 1.96 beyond that. The
/// result is monotonically non-increasing in `df`; `df = 0` (no residual
/// degrees of freedom) yields an infinite quantile, i.e. an unbounded band.
pub fn t_quantile_975(df: usize) -> f64 {
    if df == 0 {
        return f64::INFINITY;
    }
    if df <= 30 {
        return T_975[df - 1];
    }
    if df > 100 {
        return 1.96;
    }
    // Interpolate between the bracketing anchors. 30 < df <= 100 here, so a
    // bracketing window always exists; the fallthrough is unreachable but
    // returns the asymptote instead of panicking.
    for pair in T_975_ANCHORS.windows(2) {
        let (d1, t1) = pair[0];
        let (d2, t2) = pair[1];
        if df <= d2 {
            let frac = (df - d1) as f64 / (d2 - d1) as f64;
            return t1 + frac * (t2 - t1);
        }
    }
    1.96
}

/// Analytic confidence-interval machinery retained from a regression fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionBand {
    shape: HypothesisShape,
    /// `(X'X)^{-1}` stored row-major.
    xtx_inv: Vec<Vec<f64>>,
    /// Residual variance estimate `s^2 = RSS / (n - k)`.
    sigma2: f64,
    /// Residual degrees of freedom `n - k`.
    df: usize,
    /// Pooled *relative* within-point repetition variance (squared
    /// coefficient of variation). The fit regresses on a per-point statistic
    /// (median), so `sigma2` only captures how those statistics scatter
    /// around the curve; a *new observation* additionally carries run-to-run
    /// noise. Measured performance noise is multiplicative — spread grows
    /// with the metric's magnitude — so the band stores the relative spread
    /// and scales it by the predicted value, keeping the prediction interval
    /// calibrated at extrapolated scales. Zero when the data had no
    /// repetitions.
    #[serde(default)]
    rep_cv2: f64,
}

impl RegressionBand {
    /// The hypothesis shape this band was fitted for.
    pub fn shape(&self) -> &HypothesisShape {
        &self.shape
    }

    /// Builds the band from the fit inputs. Returns `None` when there are no
    /// residual degrees of freedom or the Gram matrix is singular.
    pub fn from_fit(
        shape: &HypothesisShape,
        points: &[(Coordinate, f64)],
        rss: f64,
    ) -> Option<Self> {
        let k = shape.num_coefficients();
        let n = points.len();
        if n <= k {
            return None;
        }
        let rows: Vec<Vec<f64>> = points.iter().map(|(c, _)| shape.design_row(c)).collect();
        let design = Matrix::from_rows(&rows);
        let inv = linalg::invert(&design.gram())?;
        let xtx_inv = (0..k)
            .map(|r| (0..k).map(|c| inv.get(r, c)).collect())
            .collect();
        Some(RegressionBand {
            shape: shape.clone(),
            xtx_inv,
            sigma2: rss / (n - k) as f64,
            df: n - k,
            rep_cv2: 0.0,
        })
    }

    /// Attaches the pooled relative repetition variance (squared coefficient
    /// of variation), widening the *prediction* interval (new observations
    /// carry run-to-run noise) while leaving the mean-response confidence
    /// interval untouched.
    pub fn with_repetition_noise(mut self, rep_cv2: f64) -> Self {
        self.rep_cv2 = rep_cv2.max(0.0);
        self
    }

    /// The pooled relative repetition variance (CV²) carried by this band.
    pub fn repetition_noise(&self) -> f64 {
        self.rep_cv2
    }

    pub fn degrees_of_freedom(&self) -> usize {
        self.df
    }

    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Standard error of the *mean response* at a point:
    /// `sqrt(s^2 * x0' (X'X)^{-1} x0)`.
    pub fn mean_std_error(&self, point: &[f64]) -> f64 {
        (self.sigma2 * self.leverage(point)).sqrt()
    }

    /// Standard error of a *new observation* (prediction interval) at a
    /// point with predicted value `predicted`:
    /// `sqrt(s^2 + cv_rep^2 · predicted^2 + s^2 * x0' (X'X)^{-1} x0)` —
    /// curve-scatter noise, run-to-run repetition noise (relative, scaled by
    /// the prediction), and mean-response uncertainty.
    pub fn prediction_std_error(&self, predicted: f64, point: &[f64]) -> f64 {
        let se_mean = self.mean_std_error(point);
        let rep_var = self.rep_cv2 * predicted * predicted;
        (self.sigma2 + rep_var + se_mean * se_mean).sqrt()
    }

    /// Leverage `h = x0' (X'X)^{-1} x0` of a point under this fit's design.
    ///
    /// For a training point this is its diagonal entry of the hat matrix:
    /// how strongly that measurement pulls the fit toward itself (the
    /// leverages of the training points sum to the number of coefficients).
    /// Evaluated at an extrapolation point it measures how far outside the
    /// sampled design the prediction is.
    pub fn leverage(&self, point: &[f64]) -> f64 {
        let x0 = self.shape.design_row(point);
        let k = x0.len();
        let mut quad = 0.0;
        for i in 0..k {
            for j in 0..k {
                quad += x0[i] * self.xtx_inv[i][j] * x0[j];
            }
        }
        quad.max(0.0)
    }

    /// 95% confidence interval of the mean response at a point.
    pub fn confidence_interval(&self, predicted: f64, point: &[f64]) -> (f64, f64) {
        let half = t_quantile_975(self.df) * self.mean_std_error(point);
        (predicted - half, predicted + half)
    }

    /// 95% prediction interval for a new measurement at a point.
    pub fn prediction_interval(&self, predicted: f64, point: &[f64]) -> (f64, f64) {
        let half = t_quantile_975(self.df) * self.prediction_std_error(predicted, point);
        (predicted - half, predicted + half)
    }
}

/// Nonparametric bootstrap of a fitted model's prediction at one point.
///
/// Resamples the measurement repetitions with replacement, refits the
/// *selected* hypothesis shape's coefficients on each resample, and returns
/// the `[2.5%, 97.5%]` percentile interval of the predictions. Complements
/// the analytic band: it reflects the actual repetition spread rather than
/// the homoscedastic-residual assumption.
///
/// Returns `None` when the model carries no band (saturated fit) or too few
/// resamples produce a valid refit.
pub fn bootstrap_interval(
    model: &crate::model::Model,
    data: &crate::measurement::ExperimentData,
    point: &[f64],
    iterations: usize,
    seed: u64,
) -> Option<(f64, f64)> {
    let shape = model.band.as_ref()?.shape().clone();

    // Local splitmix64/xorshift PRNG: the model crate stays dependency-free.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move |bound: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % bound.max(1) as u64) as usize
    };

    let mut predictions = Vec::with_capacity(iterations);
    for _ in 0..iterations.max(1) {
        let resampled: Vec<(Coordinate, f64)> = data
            .measurements
            .iter()
            .map(|m| {
                let vals = &m.values;
                let pick = if vals.is_empty() {
                    f64::NAN
                } else {
                    vals[next(vals.len())]
                };
                (m.coordinate.clone(), pick)
            })
            .collect();
        if resampled.iter().any(|(_, v)| !v.is_finite()) {
            continue;
        }
        if let Some(fitted) = crate::hypothesis::fit(&shape, &resampled) {
            let p = fitted.function.evaluate(point);
            if p.is_finite() {
                predictions.push(p);
            }
        }
    }
    if predictions.len() < 10 {
        return None;
    }
    predictions.sort_by(f64::total_cmp);
    let lo = predictions[(predictions.len() as f64 * 0.025) as usize];
    let hi = predictions[((predictions.len() as f64 * 0.975) as usize).min(predictions.len() - 1)];
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;
    use crate::hypothesis::{self, HypothesisShape};
    use crate::search_space::TermShape;

    fn pts(raw: &[(f64, f64)]) -> Vec<(Coordinate, f64)> {
        raw.iter().map(|&(x, v)| (vec![x], v)).collect()
    }

    #[test]
    fn t_quantiles_monotonically_decrease() {
        for df in 1..250 {
            assert!(
                t_quantile_975(df) >= t_quantile_975(df + 1),
                "t(df={}) = {} < t(df={}) = {}",
                df,
                t_quantile_975(df),
                df + 1,
                t_quantile_975(df + 1)
            );
        }
    }

    #[test]
    fn t_quantiles_pin_known_table_values() {
        // df = 0: no residual degrees of freedom, unbounded band.
        assert!(t_quantile_975(0).is_infinite());
        // df = 1: the heavy-tailed extreme of the table.
        assert!((t_quantile_975(1) - 12.706).abs() < 1e-12);
        assert!((t_quantile_975(2) - 4.303).abs() < 1e-12);
        assert!((t_quantile_975(10) - 2.228).abs() < 1e-12);
        assert!((t_quantile_975(30) - 2.042).abs() < 1e-12);
        // Tabulated anchors above 30.
        assert!((t_quantile_975(40) - 2.021).abs() < 1e-12);
        assert!((t_quantile_975(60) - 2.000).abs() < 1e-12);
        assert!((t_quantile_975(100) - 1.984).abs() < 1e-12);
        // Large-df fallback is the normal quantile.
        assert_eq!(t_quantile_975(101), 1.96);
        assert_eq!(t_quantile_975(1000), 1.96);
    }

    #[test]
    fn t_quantiles_interpolate_between_anchors() {
        // df = 35 is halfway between the df=30 and df=40 anchors.
        let expected = 0.5 * (2.042 + 2.021);
        assert!((t_quantile_975(35) - expected).abs() < 1e-12);
        // df = 45 between 40 and 50.
        let expected = 0.5 * (2.021 + 2.009);
        assert!((t_quantile_975(45) - expected).abs() < 1e-12);
        // Interpolated values stay inside the bracketing anchors.
        for df in 31..100 {
            let t = t_quantile_975(df);
            assert!((1.984..2.042).contains(&t), "t({df}) = {t}");
        }
    }

    #[test]
    fn leverage_of_training_points_sums_to_num_coefficients() {
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let data = pts(&[
            (2.0, 4.3),
            (4.0, 7.6),
            (8.0, 16.5),
            (16.0, 31.2),
            (32.0, 65.0),
        ]);
        let fitted = hypothesis::fit(&shape, &data).unwrap();
        let band = RegressionBand::from_fit(&shape, &data, fitted.rss).unwrap();
        let sum: f64 = data.iter().map(|(c, _)| band.leverage(c)).sum();
        // Two coefficients: c0 + c1 * x.
        assert!((sum - 2.0).abs() < 1e-9, "leverage sum {sum}");
        // The design extremes carry more leverage than the interior.
        assert!(band.leverage(&[32.0]) > band.leverage(&[8.0]));
        // Leverage keeps growing outside the sampled range.
        assert!(band.leverage(&[128.0]) > band.leverage(&[32.0]));
    }

    #[test]
    fn perfect_fit_has_zero_width_band() {
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let data = pts(&[
            (2.0, 4.0),
            (4.0, 8.0),
            (8.0, 16.0),
            (16.0, 32.0),
            (32.0, 64.0),
        ]);
        let fitted = hypothesis::fit(&shape, &data).unwrap();
        let band = RegressionBand::from_fit(&shape, &data, fitted.rss).unwrap();
        let (lo, hi) = band.confidence_interval(fitted.function.evaluate_at(10.0), &[10.0]);
        assert!((hi - lo).abs() < 1e-6, "band width {}", hi - lo);
    }

    #[test]
    fn noisy_fit_has_positive_band_growing_with_extrapolation() {
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let data = pts(&[
            (2.0, 4.3),
            (4.0, 7.6),
            (8.0, 16.5),
            (16.0, 31.2),
            (32.0, 65.0),
        ]);
        let fitted = hypothesis::fit(&shape, &data).unwrap();
        let band = RegressionBand::from_fit(&shape, &data, fitted.rss).unwrap();
        let near = band.mean_std_error(&[16.0]);
        let far = band.mean_std_error(&[128.0]);
        assert!(near > 0.0);
        assert!(
            far > near,
            "extrapolated SE {far} must exceed in-range {near}"
        );
    }

    #[test]
    fn prediction_interval_wider_than_confidence_interval() {
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let data = pts(&[
            (2.0, 4.3),
            (4.0, 7.6),
            (8.0, 16.5),
            (16.0, 31.2),
            (32.0, 65.0),
        ]);
        let fitted = hypothesis::fit(&shape, &data).unwrap();
        let band = RegressionBand::from_fit(&shape, &data, fitted.rss).unwrap();
        let p = fitted.function.evaluate_at(20.0);
        let (clo, chi) = band.confidence_interval(p, &[20.0]);
        let (plo, phi) = band.prediction_interval(p, &[20.0]);
        assert!(phi - plo > chi - clo);
    }

    #[test]
    fn bootstrap_interval_brackets_the_prediction() {
        use crate::measurement::{ExperimentData, Measurement};
        use crate::modeler::{model_single_parameter, ModelerOptions};
        // Noisy linear data with 5 repetitions per point.
        let xs = [2.0, 4.0, 8.0, 16.0, 32.0];
        let reps = |x: f64| -> Vec<f64> {
            let base = 10.0 + 3.0 * x;
            vec![base * 0.97, base * 0.99, base, base * 1.01, base * 1.03]
        };
        let data = ExperimentData::new(
            vec!["p".into()],
            xs.iter()
                .map(|&x| Measurement::new(vec![x], reps(x)))
                .collect(),
        );
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let (lo, hi) =
            super::bootstrap_interval(&model, &data, &[64.0], 200, 7).expect("bootstrap succeeds");
        let p = model.predict_at(64.0);
        assert!(lo <= p && p <= hi, "{lo} <= {p} <= {hi}");
        // Interval is non-degenerate but bounded by the ±3% repetition noise.
        assert!(hi - lo > 0.0);
        assert!((hi - lo) / p < 0.2, "width {}", (hi - lo) / p);
    }

    #[test]
    fn bootstrap_is_deterministic_per_seed() {
        use crate::measurement::ExperimentData;
        use crate::modeler::{model_single_parameter, ModelerOptions};
        let pts: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&x| (x, 5.0 + 2.0 * x))
            .collect();
        let data = ExperimentData::univariate("p", &pts);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let a = super::bootstrap_interval(&model, &data, &[64.0], 100, 42);
        let b = super::bootstrap_interval(&model, &data, &[64.0], 100, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn saturated_fit_has_no_band() {
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let data = pts(&[(2.0, 4.0), (4.0, 8.0)]);
        assert!(RegressionBand::from_fit(&shape, &data, 0.0).is_none());
    }

    #[test]
    fn bootstrap_survives_nan_repetitions() {
        use crate::measurement::ExperimentData;
        use crate::modeler::{model_single_parameter, ModelerOptions};
        let pts: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0]
            .iter()
            .map(|&x| (x, 5.0 + 2.0 * x))
            .collect();
        let clean = ExperimentData::univariate("p", &pts);
        let model = model_single_parameter(&clean, &ModelerOptions::default()).unwrap();
        // Resampling data whose repetitions contain NaN must not panic; the
        // poisoned resamples are skipped and the interval still computes from
        // the clean ones (or the call returns None — either is NaN-safe).
        let poisoned = ExperimentData::univariate_with_reps(
            "p",
            &[
                (2.0, vec![9.0, f64::NAN]),
                (4.0, vec![13.0, f64::NAN]),
                (8.0, vec![21.0, 21.0]),
                (16.0, vec![37.0, f64::NAN]),
                (32.0, vec![69.0, 69.0]),
            ],
        );
        let result = super::bootstrap_interval(&model, &poisoned, &[64.0], 200, 7);
        if let Some((lo, hi)) = result {
            assert!(lo.is_finite() && hi.is_finite() && lo <= hi);
        }
    }
}
