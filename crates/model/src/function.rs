//! The performance function `f(x) = c_0 + Σ_k c_k · Π_l x_l^{i} log2^{j}(x_l)`
//! together with asymptotic growth comparison used for bottleneck ranking.

use crate::fraction::Fraction;
use crate::term::{CompoundTerm, SimpleTerm};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A fitted PMNF performance function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerformanceFunction {
    /// The constant coefficient `c_0`.
    pub constant: f64,
    /// The non-constant compound terms.
    pub terms: Vec<CompoundTerm>,
}

impl PerformanceFunction {
    pub fn constant_only(c0: f64) -> Self {
        PerformanceFunction {
            constant: c0,
            terms: Vec::new(),
        }
    }

    pub fn new(constant: f64, terms: Vec<CompoundTerm>) -> Self {
        PerformanceFunction { constant, terms }
    }

    /// Evaluates the function at a parameter vector.
    pub fn evaluate(&self, point: &[f64]) -> f64 {
        self.constant + self.terms.iter().map(|t| t.evaluate(point)).sum::<f64>()
    }

    /// Convenience for single-parameter functions.
    pub fn evaluate_at(&self, x: f64) -> f64 {
        self.evaluate(&[x])
    }

    pub fn is_constant(&self) -> bool {
        self.terms.iter().all(CompoundTerm::is_constant)
    }

    /// Growth key of the dominant term, used to compare asymptotic behavior.
    ///
    /// For each parameter the dominant exponent pair is the lexicographic
    /// maximum of `(i, j)`: polynomial growth dominates any logarithmic
    /// factor. Across terms we take the per-parameter maximum so that
    /// multi-term functions compare by their fastest-growing component.
    pub fn growth_key(&self) -> GrowthKey {
        let mut per_param: Vec<(Fraction, u32)> = Vec::new();
        for term in &self.terms {
            // Terms with (numerically) vanishing coefficients do not grow.
            if term.coefficient.abs() < 1e-12 {
                continue;
            }
            for f in &term.factors {
                if per_param.len() <= f.parameter {
                    per_param.resize(f.parameter + 1, (Fraction::zero(), 0));
                }
                let entry = &mut per_param[f.parameter];
                let candidate = (f.exponent, f.log_exponent);
                if candidate > *entry {
                    *entry = candidate;
                }
            }
        }
        GrowthKey { per_param }
    }

    /// Big-O style rendering of the dominant growth, e.g. `O(p^(2/3) * log2(p)^2)`.
    pub fn big_o(&self, names: &[&str]) -> String {
        let key = self.growth_key();
        if key.per_param.iter().all(|(e, l)| e.is_zero() && *l == 0) {
            return "O(1)".to_string();
        }
        let mut parts = Vec::new();
        for (idx, (exp, log)) in key.per_param.iter().enumerate() {
            if exp.is_zero() && *log == 0 {
                continue;
            }
            let mut s = String::new();
            let t = SimpleTerm::new(idx, *exp, *log);
            let term = CompoundTerm::new(1.0, vec![t]);
            let rendered = term.format_with(names);
            // Strip the leading "1.0000 * " coefficient rendering.
            s.push_str(rendered.trim_start_matches("1.0000 * "));
            parts.push(s);
        }
        format!("O({})", parts.join(" * "))
    }

    /// Renders the full function, e.g. `158.58 + 0.58 * p^(2/3) * log2(p)^2`.
    pub fn format_with(&self, names: &[&str]) -> String {
        let mut s = format!("{:.4}", self.constant);
        for t in &self.terms {
            if t.coefficient >= 0.0 {
                s.push_str(" + ");
                s.push_str(&t.format_with(names));
            } else {
                // Render subtraction instead of "+ -c".
                let mut flipped = t.clone();
                flipped.coefficient = -flipped.coefficient;
                s.push_str(" - ");
                s.push_str(&flipped.format_with(names));
            }
        }
        s
    }
}

impl fmt::Display for PerformanceFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let max_param = self
            .terms
            .iter()
            .flat_map(|t| t.factors.iter().map(|s| s.parameter))
            .max()
            .unwrap_or(0);
        let default_names = ["x1", "x2", "x3", "x4", "x5", "x6"];
        let names: Vec<&str> = (0..=max_param)
            .map(|i| default_names.get(i).copied().unwrap_or("x"))
            .collect();
        write!(f, "{}", self.format_with(&names))
    }
}

/// Total order on asymptotic growth: compare per-parameter dominant `(i, j)`
/// pairs lexicographically, the overall key by the strongest parameter first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrowthKey {
    per_param: Vec<(Fraction, u32)>,
}

impl GrowthKey {
    /// Assembles a key from precomputed per-parameter dominant pairs — the
    /// batched search derives growth keys from raw coefficients without
    /// instantiating a [`PerformanceFunction`].
    pub(crate) fn from_per_param(per_param: Vec<(Fraction, u32)>) -> Self {
        GrowthKey { per_param }
    }

    pub fn per_parameter(&self) -> &[(Fraction, u32)] {
        &self.per_param
    }

    /// The single strongest `(exponent, log_exponent)` pair over all parameters.
    pub fn dominant(&self) -> (Fraction, u32) {
        self.per_param
            .iter()
            .copied()
            .max()
            .unwrap_or((Fraction::zero(), 0))
    }
}

impl PartialOrd for GrowthKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for GrowthKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dominant()
            .cmp(&other.dominant())
            .then_with(|| self.per_param.cmp(&other.per_param))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn case_study_model() -> PerformanceFunction {
        // T_epoch(x1) = 158.58 + 0.58 * x1^(2/3) * log2(x1)^2
        PerformanceFunction::new(
            158.58,
            vec![CompoundTerm::univariate(0.58, Fraction::new(2, 3), 2)],
        )
    }

    #[test]
    fn evaluates_case_study_prediction() {
        // Paper: at 40 ranks the model predicts ~352.37 s per epoch.
        let f = case_study_model();
        let t40 = f.evaluate_at(40.0);
        assert!((t40 - 352.37).abs() < 2.5, "got {t40}"); // paper rounds the printed coefficients
    }

    #[test]
    fn constant_function() {
        let f = PerformanceFunction::constant_only(42.0);
        assert!(f.is_constant());
        assert_eq!(f.evaluate_at(1e6), 42.0);
        assert_eq!(f.big_o(&["p"]), "O(1)");
    }

    #[test]
    fn display_matches_paper_notation() {
        let f = case_study_model();
        assert_eq!(
            f.format_with(&["x1"]),
            "158.5800 + 0.5800 * x1^(2/3) * log2(x1)^2"
        );
    }

    #[test]
    fn negative_terms_render_as_subtraction() {
        let f = PerformanceFunction::new(
            10.0,
            vec![CompoundTerm::univariate(-0.5, Fraction::whole(1), 0)],
        );
        assert_eq!(f.format_with(&["p"]), "10.0000 - 0.5000 * p");
    }

    #[test]
    fn growth_ranking_orders_polynomials_over_logs() {
        let lin = PerformanceFunction::new(
            0.0,
            vec![CompoundTerm::univariate(1.0, Fraction::whole(1), 0)],
        );
        let loglin = PerformanceFunction::new(
            0.0,
            vec![CompoundTerm::univariate(1.0, Fraction::whole(1), 1)],
        );
        let quad = PerformanceFunction::new(
            0.0,
            vec![CompoundTerm::univariate(1.0, Fraction::whole(2), 0)],
        );
        let logonly = PerformanceFunction::new(
            0.0,
            vec![CompoundTerm::univariate(1.0, Fraction::zero(), 2)],
        );
        assert!(quad.growth_key() > loglin.growth_key());
        assert!(loglin.growth_key() > lin.growth_key());
        assert!(lin.growth_key() > logonly.growth_key());
        assert!(logonly.growth_key() > PerformanceFunction::constant_only(9.0).growth_key());
    }

    #[test]
    fn zero_coefficient_terms_do_not_grow() {
        let f = PerformanceFunction::new(
            1.0,
            vec![CompoundTerm::univariate(0.0, Fraction::whole(3), 0)],
        );
        assert_eq!(
            f.growth_key(),
            PerformanceFunction::constant_only(1.0).growth_key()
        );
    }

    #[test]
    fn big_o_renders_dominant_term() {
        let f = case_study_model();
        assert_eq!(f.big_o(&["p"]), "O(p^(2/3) * log2(p)^2)");
    }

    #[test]
    fn multi_parameter_growth() {
        let f = PerformanceFunction::new(
            0.0,
            vec![CompoundTerm::new(
                1.0,
                vec![
                    SimpleTerm::new(0, Fraction::whole(1), 0),
                    SimpleTerm::new(1, Fraction::whole(2), 0),
                ],
            )],
        );
        assert_eq!(f.growth_key().dominant(), (Fraction::whole(2), 0));
    }
}
