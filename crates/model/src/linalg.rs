//! Minimal dense linear algebra for ordinary least squares.
//!
//! The PMNF hypothesis design matrices are tiny (a handful of points by at
//! most three coefficients), so a straightforward normal-equations solve with
//! partial pivoting is both adequate and dependency-free.

// Indexed loops mirror the textbook formulation of the algorithms; iterator
// adaptors would obscure the row/column arithmetic here.
#![allow(clippy::needless_range_loop)]

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged matrix rows");
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `A^T * A` (Gram matrix).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                g.set(i, j, s);
                g.set(j, i, s);
            }
        }
        g
    }

    /// `A^T * y`.
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c] += self.get(r, c) * y[r];
            }
        }
        out
    }

    /// `A * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut s = 0.0;
            for c in 0..self.cols {
                s += self.get(r, c) * x[c];
            }
            out[r] = s;
        }
        out
    }
}

/// Solves `A x = b` for square `A` via Gaussian elimination with partial
/// pivoting. Returns `None` when the system is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows, a.cols, "solve requires a square matrix");
    assert_eq!(b.len(), a.rows);
    let n = a.rows;
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: pick the row with the largest magnitude in `col`.
        let mut pivot_row = col;
        let mut pivot_val = m.get(col, col).abs();
        for r in (col + 1)..n {
            let v = m.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m.get(col, col);
        for r in (col + 1)..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for c in (row + 1)..n {
            s -= m.get(row, c) * x[c];
        }
        x[row] = s / m.get(row, row);
    }
    Some(x)
}

/// Inverts a square matrix (used for prediction-interval covariance).
/// Returns `None` for singular matrices.
pub fn invert(a: &Matrix) -> Option<Matrix> {
    let n = a.rows;
    let mut inv = Matrix::zeros(n, n);
    for col in 0..n {
        let mut e = vec![0.0; n];
        e[col] = 1.0;
        let x = solve(a, &e)?;
        for row in 0..n {
            inv.set(row, col, x[row]);
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_2x2() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // First pivot is zero; naive elimination would divide by zero.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn gram_and_transpose_mul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
        let aty = a.transpose_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(aty, vec![9.0, 12.0]);
    }

    #[test]
    fn invert_roundtrip() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = invert(&a).unwrap();
        // A * A^-1 = I
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += a.get(i, k) * inv.get(k, j);
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }
}
