//! Minimal dense linear algebra for ordinary least squares.
//!
//! The PMNF hypothesis design matrices are tiny (a handful of points by at
//! most three coefficients), so a straightforward normal-equations solve with
//! partial pivoting is both adequate and dependency-free.

// Indexed loops mirror the textbook formulation of the algorithms; iterator
// adaptors would obscure the row/column arithmetic here.
#![allow(clippy::needless_range_loop)]

/// Row-major dense matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    pub rows: usize,
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        assert!(rows.iter().all(|row| row.len() == c), "ragged matrix rows");
        let mut m = Matrix::zeros(r, c);
        for (i, row) in rows.iter().enumerate() {
            m.data[i * c..(i + 1) * c].copy_from_slice(row);
        }
        m
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// `A^T * A` (Gram matrix).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                g.set(i, j, s);
                g.set(j, i, s);
            }
        }
        g
    }

    /// `A^T * y`.
    pub fn transpose_mul_vec(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(y.len(), self.rows);
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[c] += self.get(r, c) * y[r];
            }
        }
        out
    }

    /// `A * x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols);
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut s = 0.0;
            for c in 0..self.cols {
                s += self.get(r, c) * x[c];
            }
            out[r] = s;
        }
        out
    }
}

/// LDLᵀ factorization of a symmetric positive-definite matrix — in practice
/// the Gram matrix `X'X` of a hypothesis design.
///
/// Factoring once and solving many right-hand sides is the backbone of the
/// fast modeling path: the same factor yields the OLS coefficients *and* the
/// hat-matrix leverages `h_ii = x_i' (X'X)^{-1} x_i` that the closed-form
/// leave-one-out cross-validation needs, without ever refitting.
#[derive(Debug, Clone, PartialEq)]
pub struct Ldlt {
    n: usize,
    /// Row-major `n × n` buffer: strictly-lower triangle holds `L` (the unit
    /// diagonal is implicit), the diagonal holds `D`.
    factor: Vec<f64>,
}

impl Ldlt {
    /// Factors a symmetric matrix. Returns `None` when a pivot collapses
    /// relative to the original diagonal (rank-deficient input).
    pub fn decompose(a: &Matrix) -> Option<Ldlt> {
        assert_eq!(a.rows, a.cols, "LDL^T requires a square matrix");
        let mut factor = a.data.clone();
        if ldlt_factor_in_place(&mut factor, a.rows) {
            Some(Ldlt { n: a.rows, factor })
        } else {
            None
        }
    }

    /// Solves `A x = b` in place.
    pub fn solve_into(&self, b: &mut [f64]) {
        ldlt_solve_in_place(&self.factor, self.n, b);
    }

    /// Solves `A x = b` into a fresh vector.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_into(&mut x);
        x
    }
}

/// Factors a symmetric positive-definite row-major `n × n` matrix in place:
/// the strictly-lower triangle receives `L` (unit diagonal implicit), the
/// diagonal receives `D`. Returns `false` when the matrix is numerically
/// rank-deficient.
///
/// The pivot test is *relative to the column's original diagonal entry*: the
/// Gram matrices of PMNF designs mix columns of wildly different magnitudes
/// (a constant column next to `x^3` at `x = 512`), so an absolute threshold
/// would either reject healthy systems or accept collapsed ones.
pub fn ldlt_factor_in_place(a: &mut [f64], n: usize) -> bool {
    const REL_TOL: f64 = 1e-12;
    for j in 0..n {
        let orig_diag = a[j * n + j];
        let mut d = orig_diag;
        for k in 0..j {
            let l = a[j * n + k];
            d -= l * l * a[k * n + k];
        }
        // A Gram pivot is non-negative in exact arithmetic; a collapse below
        // the original diagonal's scale means rank deficiency.
        if !(d > REL_TOL * orig_diag.abs().max(1e-300)) {
            return false;
        }
        a[j * n + j] = d;
        for i in (j + 1)..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k] * a[k * n + k];
            }
            a[i * n + j] = s / d;
        }
    }
    true
}

/// Extends an LDLᵀ factor by one appended row/column instead of refactoring
/// from scratch.
///
/// `a` is the row-major `n × n` symmetric input whose leading
/// `(n-1) × (n-1)` block has already been factored into `prefix` (row-major,
/// stride `n-1`, as produced by [`ldlt_factor_in_place`]). The prefix factor
/// is copied into `a` and only the last row and pivot are computed — the
/// exact arithmetic [`ldlt_factor_in_place`] would have performed for them,
/// because column `j` of the factorization reads nothing beyond columns
/// `< j`. The result in `a` is therefore bitwise identical to a full
/// factorization, which is what lets the batched search share partial
/// factors across hypotheses that differ by one appended term without
/// perturbing winner selection.
///
/// Returns `false` when the appended pivot collapses (the new column is
/// numerically dependent on the existing ones), mirroring the full
/// factorization's rejection.
pub fn ldlt_factor_append(a: &mut [f64], n: usize, prefix: &[f64]) -> bool {
    const REL_TOL: f64 = 1e-12;
    debug_assert!(n >= 1);
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(prefix.len(), (n - 1) * (n - 1));
    let m = n - 1;
    // Adopt the prefix factor (L below the diagonal, D on it). Entries above
    // the diagonal are never read by the solves.
    for i in 0..m {
        for j in 0..=i {
            a[i * n + j] = prefix[i * m + j];
        }
    }
    // Eliminate the appended row against each prior column, in column order —
    // the same statements the full factorization runs for row `n-1`.
    let last = n - 1;
    for j in 0..m {
        let mut s = a[last * n + j];
        for k in 0..j {
            s -= a[last * n + k] * a[j * n + k] * a[k * n + k];
        }
        a[last * n + j] = s / a[j * n + j];
    }
    // The appended pivot, with the same relative collapse test as
    // [`ldlt_factor_in_place`].
    let orig_diag = a[last * n + last];
    let mut d = orig_diag;
    for k in 0..m {
        let l = a[last * n + k];
        d -= l * l * a[k * n + k];
    }
    if !(d > REL_TOL * orig_diag.abs().max(1e-300)) {
        return false;
    }
    a[last * n + last] = d;
    true
}

/// Solves `A x = b` in place given a factor produced by
/// [`ldlt_factor_in_place`].
pub fn ldlt_solve_in_place(factor: &[f64], n: usize, b: &mut [f64]) {
    // Forward substitution with the unit lower triangle: L z = b.
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= factor[i * n + k] * b[k];
        }
        b[i] = s;
    }
    // Diagonal scaling: D w = z.
    for i in 0..n {
        b[i] /= factor[i * n + i];
    }
    // Backward substitution with the transpose: L^T x = w.
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= factor[k * n + i] * b[k];
        }
        b[i] = s;
    }
}

/// Solves `A x = b` for square `A` via Gaussian elimination with partial
/// pivoting. Returns `None` when the system is (numerically) singular.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert_eq!(a.rows, a.cols, "solve requires a square matrix");
    assert_eq!(b.len(), a.rows);
    let n = a.rows;
    let mut m = a.clone();
    let mut rhs = b.to_vec();

    for col in 0..n {
        // Partial pivot: pick the row with the largest magnitude in `col`.
        let mut pivot_row = col;
        let mut pivot_val = m.get(col, col).abs();
        for r in (col + 1)..n {
            let v = m.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-12 {
            return None;
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m.get(col, col);
        for r in (col + 1)..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut s = rhs[row];
        for c in (row + 1)..n {
            s -= m.get(row, c) * x[c];
        }
        x[row] = s / m.get(row, row);
    }
    Some(x)
}

/// Inverts a square matrix (used for prediction-interval covariance).
/// Returns `None` for singular matrices.
pub fn invert(a: &Matrix) -> Option<Matrix> {
    let n = a.rows;
    let mut inv = Matrix::zeros(n, n);
    let mut e = vec![0.0; n];
    for col in 0..n {
        e.fill(0.0);
        e[col] = 1.0;
        let x = solve(a, &e)?;
        for row in 0..n {
            inv.set(row, col, x[row]);
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let x = solve(&a, &[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![3.0, 4.0]);
    }

    #[test]
    fn solves_2x2() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn requires_pivoting() {
        // First pivot is zero; naive elimination would divide by zero.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn gram_and_transpose_mul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        assert_eq!(g.get(0, 0), 35.0);
        assert_eq!(g.get(0, 1), 44.0);
        assert_eq!(g.get(1, 1), 56.0);
        let aty = a.transpose_mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(aty, vec![9.0, 12.0]);
    }

    #[test]
    fn invert_roundtrip() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = invert(&a).unwrap();
        // A * A^-1 = I
        for i in 0..2 {
            for j in 0..2 {
                let mut s = 0.0;
                for k in 0..2 {
                    s += a.get(i, k) * inv.get(k, j);
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn ldlt_matches_gaussian_elimination() {
        // SPD Gram matrix of a tall design.
        let design = Matrix::from_rows(&[
            vec![1.0, 2.0, 4.0],
            vec![1.0, 4.0, 16.0],
            vec![1.0, 8.0, 64.0],
            vec![1.0, 16.0, 256.0],
            vec![1.0, 32.0, 1024.0],
        ]);
        let gram = design.gram();
        let b = design.transpose_mul_vec(&[3.0, 5.0, 9.0, 17.0, 33.0]);
        let ge = solve(&gram, &b).unwrap();
        let ldlt = Ldlt::decompose(&gram).unwrap().solve(&b);
        for (x, y) in ge.iter().zip(&ldlt) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn ldlt_rejects_singular_gram() {
        // Duplicate columns -> rank-deficient Gram matrix.
        let design = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        assert!(Ldlt::decompose(&design.gram()).is_none());
    }

    #[test]
    fn ldlt_handles_mixed_scale_diagonals() {
        // Constant column next to x^3 at large x: absolute pivot thresholds
        // would misjudge this; the relative test must accept it.
        let xs = [2.0f64, 4.0, 8.0, 16.0, 32.0, 64.0, 512.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x * x * x]).collect();
        let design = Matrix::from_rows(&rows);
        let gram = design.gram();
        let y: Vec<f64> = xs.iter().map(|&x| 5.0 + 2.0 * x * x * x).collect();
        let b = design.transpose_mul_vec(&y);
        let c = Ldlt::decompose(&gram).expect("well-posed system").solve(&b);
        assert!((c[0] - 5.0).abs() < 1e-6, "c0 = {}", c[0]);
        assert!((c[1] - 2.0).abs() < 1e-9, "c1 = {}", c[1]);
    }

    #[test]
    fn ldlt_append_is_bitwise_identical_to_full_factorization() {
        // Gram matrix of [1, x, x log2 x] on a geometric series.
        let xs = [2.0f64, 4.0, 8.0, 16.0, 32.0, 64.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x, x * x.log2()]).collect();
        let gram = Matrix::from_rows(&rows).gram();
        let n = 3;

        // Full factorization of the 3x3.
        let mut full = gram.data.clone();
        assert!(ldlt_factor_in_place(&mut full, n));

        // Factor the leading 2x2, then append the third row/column.
        let m = n - 1;
        let mut prefix = vec![0.0; m * m];
        for i in 0..m {
            for j in 0..m {
                prefix[i * m + j] = gram.get(i, j);
            }
        }
        assert!(ldlt_factor_in_place(&mut prefix, m));
        let mut appended = gram.data.clone();
        assert!(ldlt_factor_append(&mut appended, n, &prefix));

        // Bitwise identity on the lower triangle and diagonal (the parts the
        // solves read).
        for i in 0..n {
            for j in 0..=i {
                assert_eq!(
                    full[i * n + j].to_bits(),
                    appended[i * n + j].to_bits(),
                    "entry ({i}, {j}) differs"
                );
            }
        }
    }

    #[test]
    fn ldlt_append_rejects_dependent_column() {
        // Appending a duplicate of an existing column must fail the pivot
        // test exactly like the full factorization does.
        let rows: Vec<Vec<f64>> = [2.0f64, 4.0, 8.0, 16.0]
            .iter()
            .map(|&x| vec![1.0, x, x])
            .collect();
        let gram = Matrix::from_rows(&rows).gram();
        let mut full = gram.data.clone();
        assert!(!ldlt_factor_in_place(&mut full, 3));

        let mut prefix = vec![0.0; 4];
        for i in 0..2 {
            for j in 0..2 {
                prefix[i * 2 + j] = gram.get(i, j);
            }
        }
        assert!(ldlt_factor_in_place(&mut prefix, 2));
        let mut appended = gram.data.clone();
        assert!(!ldlt_factor_append(&mut appended, 3, &prefix));
    }

    #[test]
    fn ldlt_solve_in_place_roundtrip() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]);
        let mut f = vec![4.0, 2.0, 2.0, 3.0];
        assert!(ldlt_factor_in_place(&mut f, 2));
        let mut b = vec![10.0, 8.0];
        ldlt_solve_in_place(&f, 2, &mut b);
        // Verify A x = b.
        let ax = a.mul_vec(&b);
        assert!((ax[0] - 10.0).abs() < 1e-12);
        assert!((ax[1] - 8.0).abs() < 1e-12);
    }
}
