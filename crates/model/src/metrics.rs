//! Error metrics used for hypothesis selection and evaluation.
//!
//! Extra-P/Extra-Deep select the model hypothesis with the smallest symmetric
//! mean absolute percentage error (SMAPE); the paper's evaluation reports
//! plain percentage errors and median percentage errors (MPE).

/// Symmetric mean absolute percentage error, in percent (0..=200).
///
/// `smape = 100/n * Σ 2|p - a| / (|p| + |a|)`, skipping pairs where both
/// values are zero (defined as zero error).
pub fn smape(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    if predicted.is_empty() {
        return f64::NAN;
    }
    let mut total = 0.0;
    for (&p, &a) in predicted.iter().zip(actual) {
        let denom = p.abs() + a.abs();
        if denom > 0.0 {
            total += 2.0 * (p - a).abs() / denom;
        }
    }
    100.0 * total / predicted.len() as f64
}

/// Mean absolute percentage error relative to the actual values, in percent.
pub fn mape(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    if predicted.is_empty() {
        return f64::NAN;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for (&p, &a) in predicted.iter().zip(actual) {
        if a != 0.0 {
            total += ((p - a) / a).abs();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        100.0 * total / n as f64
    }
}

/// Percentage error of one prediction vs. one measured value, in percent.
///
/// This is the paper's accuracy measure: `|predicted - measured| / measured`.
pub fn percentage_error(predicted: f64, measured: f64) -> f64 {
    if measured == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        100.0 * ((predicted - measured) / measured).abs()
    }
}

/// Residual sum of squares.
pub fn rss(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    predicted
        .iter()
        .zip(actual)
        .map(|(&p, &a)| (p - a) * (p - a))
        .sum()
}

/// Coefficient of determination `R^2` (1 = perfect fit). Returns 1.0 when the
/// data has no variance and residuals are zero, 0.0 when variance is zero but
/// residuals are not.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len());
    let n = actual.len();
    if n == 0 {
        return f64::NAN;
    }
    let mean = actual.iter().sum::<f64>() / n as f64;
    let ss_tot: f64 = actual.iter().map(|&a| (a - mean) * (a - mean)).sum();
    let ss_res = rss(predicted, actual);
    if ss_tot == 0.0 {
        if ss_res == 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smape_zero_for_perfect_prediction() {
        assert_eq!(smape(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn smape_is_symmetric() {
        let a = smape(&[100.0], &[110.0]);
        let b = smape(&[110.0], &[100.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn smape_bounded_by_200() {
        // Opposite-sign extreme disagreement saturates at 200%.
        let s = smape(&[1.0], &[-1.0]);
        assert!((s - 200.0).abs() < 1e-12);
    }

    #[test]
    fn smape_skips_double_zero() {
        assert_eq!(smape(&[0.0, 1.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn percentage_error_matches_paper_definition() {
        assert!((percentage_error(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert!((percentage_error(90.0, 100.0) - 10.0).abs() < 1e-12);
        assert_eq!(percentage_error(0.0, 0.0), 0.0);
        assert!(percentage_error(1.0, 0.0).is_infinite());
    }

    #[test]
    fn mape_ignores_zero_actuals() {
        let e = mape(&[1.0, 5.0], &[0.0, 4.0]);
        assert!((e - 25.0).abs() < 1e-12);
    }

    #[test]
    fn rss_matches_manual() {
        assert_eq!(rss(&[1.0, 2.0], &[0.0, 4.0]), 1.0 + 4.0);
    }

    #[test]
    fn r_squared_perfect_and_mean_model() {
        assert_eq!(r_squared(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 1.0);
        // Predicting the mean everywhere gives R^2 = 0.
        let r = r_squared(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert!(r.abs() < 1e-12);
    }
}
