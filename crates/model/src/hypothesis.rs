//! Fitting one PMNF hypothesis shape to measurement data.
//!
//! For a fixed shape the model is linear in its coefficients, so ordinary
//! least squares on the design matrix `[1, basis_1(x), ..., basis_h(x)]`
//! recovers them (paper §2.3: "the coefficients c_k of the hypothesis are
//! calculated using linear regression").

use crate::function::PerformanceFunction;
use crate::linalg::{self, Matrix};
use crate::measurement::Coordinate;
use crate::metrics;
use crate::search_space::TermShape;
use crate::term::{CompoundTerm, SimpleTerm};
use serde::{Deserialize, Serialize};

/// A hypothesis shape for (possibly) multiple parameters: each compound term
/// is a list of per-parameter factors.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HypothesisShape {
    /// `terms[k][l]` = factor of term `k` on parameter index `factors.0`.
    pub terms: Vec<Vec<(usize, TermShape)>>,
}

impl HypothesisShape {
    /// Single-parameter shape on parameter 0.
    pub fn univariate(shapes: &[TermShape]) -> Self {
        HypothesisShape {
            terms: shapes.iter().map(|&s| vec![(0, s)]).collect(),
        }
    }

    /// The constant-only hypothesis `f(x) = c_0`.
    pub fn constant() -> Self {
        HypothesisShape { terms: Vec::new() }
    }

    pub fn num_coefficients(&self) -> usize {
        1 + self.terms.len()
    }

    fn basis_term(factors: &[(usize, TermShape)], point: &[f64]) -> f64 {
        factors
            .iter()
            .map(|&(param, shape)| {
                SimpleTerm::new(param, shape.exponent, shape.log_exponent).evaluate(point)
            })
            .product()
    }

    /// Builds the design matrix row for one coordinate: `[1, b_1, ..., b_h]`.
    pub fn design_row(&self, point: &[f64]) -> Vec<f64> {
        let mut row = Vec::with_capacity(self.num_coefficients());
        self.design_row_into(point, &mut row);
        row
    }

    /// Writes the design row into a reusable buffer (cleared first), so hot
    /// loops can evaluate probe points without allocating.
    pub fn design_row_into(&self, point: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.push(1.0);
        for factors in &self.terms {
            out.push(Self::basis_term(factors, point));
        }
    }

    /// Converts fitted coefficients into a [`PerformanceFunction`].
    pub fn instantiate(&self, coefficients: &[f64]) -> PerformanceFunction {
        assert_eq!(coefficients.len(), self.num_coefficients());
        let terms = self
            .terms
            .iter()
            .zip(&coefficients[1..])
            .map(|(factors, &c)| {
                CompoundTerm::new(
                    c,
                    factors
                        .iter()
                        .map(|&(param, shape)| {
                            SimpleTerm::new(param, shape.exponent, shape.log_exponent)
                        })
                        .collect(),
                )
            })
            .collect();
        PerformanceFunction::new(coefficients[0], terms)
    }
}

/// A fitted hypothesis with its quality statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FittedHypothesis {
    pub shape: HypothesisShape,
    pub function: PerformanceFunction,
    /// SMAPE of the fit against the training points, in percent.
    pub smape: f64,
    /// Leave-one-out cross-validated SMAPE, in percent (NaN when not run).
    pub cv_smape: f64,
    pub rss: f64,
    pub r_squared: f64,
}

/// Fits the hypothesis by OLS. Returns `None` when the normal equations are
/// singular (e.g. duplicate basis columns) or produce non-finite output.
pub fn fit(shape: &HypothesisShape, points: &[(Coordinate, f64)]) -> Option<FittedHypothesis> {
    let k = shape.num_coefficients();
    if points.len() < k {
        return None;
    }
    let rows: Vec<Vec<f64>> = points.iter().map(|(c, _)| shape.design_row(c)).collect();
    let y: Vec<f64> = points.iter().map(|&(_, v)| v).collect();
    let design = Matrix::from_rows(&rows);
    let coeffs = linalg::solve(&design.gram(), &design.transpose_mul_vec(&y))?;
    if coeffs.iter().any(|c| !c.is_finite()) {
        return None;
    }
    let function = shape.instantiate(&coeffs);
    let predicted = design.mul_vec(&coeffs);
    if predicted.iter().any(|p| !p.is_finite()) {
        return None;
    }
    Some(FittedHypothesis {
        smape: metrics::smape(&predicted, &y),
        rss: metrics::rss(&predicted, &y),
        r_squared: metrics::r_squared(&predicted, &y),
        cv_smape: f64::NAN,
        shape: shape.clone(),
        function,
    })
}

/// Leave-one-out cross-validated SMAPE, computed in closed form.
///
/// For OLS the leave-one-out prediction follows exactly from the full-data
/// fit via the hat-matrix identity `ŷ₋ᵢ = yᵢ − eᵢ / (1 − hᵢᵢ)`, where `eᵢ`
/// is the full-fit residual and `hᵢᵢ = xᵢ'(X'X)⁻¹xᵢ` the leverage — so one
/// LDLᵀ decomposition replaces the `n` refits of the naive loop. Degenerate
/// folds (leverage ≈ 1, i.e. removing the point makes the design
/// rank-deficient) automatically fall back to an exact refit of that fold.
/// Returns `None` when any fold is unfittable, exactly like
/// [`cross_validate_naive`].
pub fn cross_validate(shape: &HypothesisShape, points: &[(Coordinate, f64)]) -> Option<f64> {
    crate::engine::cross_validate_closed_form(shape, points)
}

/// The naive n-refit leave-one-out cross-validation: refit on `n-1` points,
/// score the held-out point, average the SMAPE contributions. Returns `None`
/// when any fold is unfittable.
///
/// Retained as the ground truth for the closed-form path: the equivalence
/// proptest asserts both agree, and [`crate::modeler::ModelerOptions`]
/// `use_naive_loocv` routes the whole search through this implementation.
pub fn cross_validate_naive(shape: &HypothesisShape, points: &[(Coordinate, f64)]) -> Option<f64> {
    let n = points.len();
    if n <= shape.num_coefficients() {
        return None;
    }
    let mut preds = Vec::with_capacity(n);
    let mut actuals = Vec::with_capacity(n);
    for holdout in 0..n {
        preds.push(naive_fold_prediction(shape, points, holdout)?);
        actuals.push(points[holdout].1);
    }
    Some(metrics::smape(&preds, &actuals))
}

/// Growth key of a shape under fitted coefficients, without instantiating a
/// [`PerformanceFunction`]. Replicates [`PerformanceFunction::growth_key`]
/// exactly — same vanishing-coefficient threshold, same lexicographic
/// per-parameter maximum — so the batched search can score growth penalties
/// for every candidate while materializing only the winner.
pub(crate) fn growth_key_from_coeffs(
    shape: &HypothesisShape,
    coeffs: &[f64],
) -> crate::function::GrowthKey {
    use crate::fraction::Fraction;
    let mut per_param: Vec<(Fraction, u32)> = Vec::new();
    for (factors, c) in shape.terms.iter().zip(&coeffs[1..]) {
        if c.abs() < 1e-12 {
            continue;
        }
        for &(param, ts) in factors {
            if per_param.len() <= param {
                per_param.resize(param + 1, (Fraction::zero(), 0));
            }
            let entry = &mut per_param[param];
            let candidate = (ts.exponent, ts.log_exponent);
            if candidate > *entry {
                *entry = candidate;
            }
        }
    }
    crate::function::GrowthKey::from_per_param(per_param)
}

/// Refits one leave-one-out fold and predicts the held-out point. Shared by
/// the naive loop and the closed-form path's degenerate-fold fallback.
pub(crate) fn naive_fold_prediction(
    shape: &HypothesisShape,
    points: &[(Coordinate, f64)],
    holdout: usize,
) -> Option<f64> {
    let training: Vec<(Coordinate, f64)> = points
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != holdout)
        .map(|(_, p)| p.clone())
        .collect();
    let fitted = fit(shape, &training)?;
    Some(fitted.function.evaluate(&points[holdout].0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;

    fn pts(raw: &[(f64, f64)]) -> Vec<(Coordinate, f64)> {
        raw.iter().map(|&(x, v)| (vec![x], v)).collect()
    }

    #[test]
    fn constant_hypothesis_fits_mean() {
        let shape = HypothesisShape::constant();
        let fitted = fit(&shape, &pts(&[(2.0, 10.0), (4.0, 12.0), (8.0, 14.0)])).unwrap();
        assert!((fitted.function.constant - 12.0).abs() < 1e-9);
        assert!(fitted.function.is_constant());
    }

    #[test]
    fn linear_hypothesis_recovers_exact_coefficients() {
        // y = 3 + 2x
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let data = pts(&[
            (2.0, 7.0),
            (4.0, 11.0),
            (8.0, 19.0),
            (16.0, 35.0),
            (32.0, 67.0),
        ]);
        let fitted = fit(&shape, &data).unwrap();
        assert!((fitted.function.constant - 3.0).abs() < 1e-8);
        assert!((fitted.function.terms[0].coefficient - 2.0).abs() < 1e-8);
        assert!(fitted.smape < 1e-8);
        assert!((fitted.r_squared - 1.0).abs() < 1e-10);
    }

    #[test]
    fn log_hypothesis_recovers_exact_coefficients() {
        // y = 1 + 5*log2(x)
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::zero(), 1)]);
        let data = pts(&[
            (2.0, 6.0),
            (4.0, 11.0),
            (8.0, 16.0),
            (16.0, 21.0),
            (32.0, 26.0),
        ]);
        let fitted = fit(&shape, &data).unwrap();
        assert!((fitted.function.constant - 1.0).abs() < 1e-8);
        assert!((fitted.function.terms[0].coefficient - 5.0).abs() < 1e-8);
    }

    #[test]
    fn too_few_points_is_rejected() {
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        assert!(fit(&shape, &pts(&[(2.0, 7.0)])).is_none());
    }

    #[test]
    fn degenerate_design_is_rejected() {
        // All x identical -> the linear column is collinear with the constant.
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let data = pts(&[(4.0, 1.0), (4.0, 2.0), (4.0, 3.0)]);
        assert!(fit(&shape, &data).is_none());
    }

    #[test]
    fn cross_validation_prefers_true_shape() {
        // y = 2 + 0.5 * x^2; quadratic CV error must be far below linear.
        let data = pts(&[
            (2.0, 4.0),
            (4.0, 10.0),
            (8.0, 34.0),
            (16.0, 130.0),
            (32.0, 514.0),
        ]);
        let quad = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(2), 0)]);
        let lin = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let cv_quad = cross_validate(&quad, &data).unwrap();
        let cv_lin = cross_validate(&lin, &data).unwrap();
        assert!(cv_quad < 1e-6, "quad cv = {cv_quad}");
        assert!(cv_lin > 1.0, "lin cv = {cv_lin}");
    }

    #[test]
    fn closed_form_cv_matches_naive_refit() {
        // Noisy quadratic-ish data: both paths must produce the same SMAPE.
        let data = pts(&[
            (2.0, 4.3),
            (4.0, 10.4),
            (8.0, 33.1),
            (16.0, 131.0),
            (32.0, 509.8),
            (64.0, 2061.0),
        ]);
        for shape in [
            HypothesisShape::constant(),
            HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]),
            HypothesisShape::univariate(&[TermShape::new(Fraction::whole(2), 0)]),
            HypothesisShape::univariate(&[
                TermShape::new(Fraction::whole(1), 0),
                TermShape::new(Fraction::zero(), 1),
            ]),
        ] {
            let fast = cross_validate(&shape, &data);
            let naive = cross_validate_naive(&shape, &data);
            match (fast, naive) {
                (Some(a), Some(b)) => {
                    assert!((a - b).abs() < 1e-9, "{a} vs {b} for {shape:?}")
                }
                (None, None) => {}
                other => panic!("rejection mismatch {other:?} for {shape:?}"),
            }
        }
    }

    #[test]
    fn closed_form_cv_rejects_degenerate_design_like_naive() {
        // All x identical: every fold is singular for a non-constant shape.
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let data = pts(&[(4.0, 1.0), (4.0, 2.0), (4.0, 3.0), (4.0, 4.0)]);
        assert_eq!(cross_validate(&shape, &data), None);
        assert_eq!(cross_validate_naive(&shape, &data), None);
    }

    #[test]
    fn closed_form_cv_falls_back_on_leverage_one_folds() {
        // One isolated point dominating a steep basis column: its leverage is
        // ~1, so the closed-form path must agree with the naive loop (here:
        // both reject, since the fold without it is rank-deficient).
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(3), 0)]);
        let data = pts(&[
            (2.0, 1.0),
            (2.0, 1.1),
            (2.0, 0.9),
            (2.0, 1.0),
            (1024.0, 500.0),
        ]);
        assert_eq!(
            cross_validate(&shape, &data),
            cross_validate_naive(&shape, &data)
        );
    }

    #[test]
    fn two_term_hypothesis_fits_mixed_function() {
        // y = 1 + 2x + 3*log2(x)
        let shape = HypothesisShape::univariate(&[
            TermShape::new(Fraction::whole(1), 0),
            TermShape::new(Fraction::zero(), 1),
        ]);
        let data = pts(&[
            (2.0, 8.0),
            (4.0, 15.0),
            (8.0, 26.0),
            (16.0, 45.0),
            (32.0, 80.0),
        ]);
        let fitted = fit(&shape, &data).unwrap();
        assert!((fitted.function.constant - 1.0).abs() < 1e-7);
        assert!((fitted.function.terms[0].coefficient - 2.0).abs() < 1e-7);
        assert!((fitted.function.terms[1].coefficient - 3.0).abs() < 1e-7);
    }

    #[test]
    fn growth_key_from_coeffs_matches_instantiated_function() {
        let shapes = [
            HypothesisShape::constant(),
            HypothesisShape::univariate(&[TermShape::new(Fraction::new(2, 3), 2)]),
            HypothesisShape::univariate(&[
                TermShape::new(Fraction::whole(1), 0),
                TermShape::new(Fraction::zero(), 1),
            ]),
            // Multi-parameter compound term.
            HypothesisShape {
                terms: vec![vec![
                    (0, TermShape::new(Fraction::whole(1), 0)),
                    (1, TermShape::new(Fraction::zero(), 1)),
                ]],
            },
        ];
        // Includes a sub-threshold coefficient, which must not contribute.
        let coeff_sets: [&[f64]; 3] = [&[1.0, 2.0, 3.0], &[0.5, 1e-13, 4.0], &[0.0, -2.5, 1e-15]];
        for shape in &shapes {
            for coeffs in coeff_sets {
                let k = shape.num_coefficients();
                let coeffs = &coeffs[..k.min(coeffs.len())];
                if coeffs.len() < k {
                    continue;
                }
                assert_eq!(
                    growth_key_from_coeffs(shape, coeffs),
                    shape.instantiate(coeffs).growth_key(),
                    "shape {shape:?} coeffs {coeffs:?}"
                );
            }
        }
    }

    #[test]
    fn multivariate_design_row() {
        // Shape: c0 + c1 * x0 * log2(x1)
        let shape = HypothesisShape {
            terms: vec![vec![
                (0, TermShape::new(Fraction::whole(1), 0)),
                (1, TermShape::new(Fraction::zero(), 1)),
            ]],
        };
        let row = shape.design_row(&[3.0, 4.0]);
        assert_eq!(row.len(), 2);
        assert!((row[1] - 6.0).abs() < 1e-12);
    }
}
