//! Property tests: the batched search kernel (`batch.rs`, the default path)
//! must be indistinguishable from the per-hypothesis engine and from the
//! frozen reference implementation — same winner, same coefficients (within
//! 1e-9 against the reference; bit-identical against the engine), and the
//! same accept/reject decision on degenerate inputs.
//!
//! The `miri_safe` module at the bottom exercises the batched path only
//! (it is rayon-free), so it can run under `cargo miri test`; the
//! cross-implementation properties need the rayon-backed engine/reference
//! and run in the ordinary test job.

use extradeep_model::{
    model_multi_parameter, model_multi_parameter_engine, model_multi_parameter_reference,
    model_single_parameter, model_single_parameter_engine, model_single_parameter_reference,
    ExperimentData, Measurement, Model, ModelerOptions,
};
use proptest::prelude::*;

const XS: [f64; 6] = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

fn univariate(values: &[f64]) -> ExperimentData {
    let pts: Vec<(f64, f64)> = XS.iter().copied().zip(values.iter().copied()).collect();
    ExperimentData::univariate("p", &pts)
}

/// Batched vs engine: the batched kernel replicates the engine's arithmetic
/// step for step, so the selected function must be *bit-identical*.
fn assert_bitwise(batched: &Model, engine: &Model) {
    assert_eq!(
        batched.function, engine.function,
        "batched kernel diverged from engine:\n  batched {}\n  engine  {}",
        batched.function, engine.function
    );
    assert!(
        batched.smape.total_cmp(&engine.smape).is_eq(),
        "smape {} vs {}",
        batched.smape,
        engine.smape
    );
}

/// Batched vs reference: same winner identity, coefficients within 1e-9
/// (the reference accumulates its normal equations in a different order).
fn assert_close(batched: &Model, reference: &Model) {
    assert_eq!(
        batched.function.to_string(),
        reference.function.to_string(),
        "batched kernel and reference selected different models"
    );
    for &x in &[2.0, 8.0, 64.0, 256.0] {
        let a = batched.predict_at(x);
        let b = reference.predict_at(x);
        assert!(
            (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs())),
            "prediction drift at {x}: {a} vs {b}"
        );
    }
}

fn assert_all_agree(data: &ExperimentData, options: &ModelerOptions) {
    let batched = model_single_parameter(data, options);
    let engine = model_single_parameter_engine(data, options);
    match (&batched, &engine) {
        (Ok(b), Ok(e)) => assert_bitwise(b, e),
        (Err(_), Err(_)) => {}
        other => panic!("batched/engine accept-reject mismatch: {other:?}"),
    }
    let reference = model_single_parameter_reference(data, options);
    match (&batched, &reference) {
        (Ok(b), Ok(r)) => assert_close(b, r),
        (Err(_), Err(_)) => {}
        other => panic!("batched/reference accept-reject mismatch: {other:?}"),
    }
}

const GRID_RANKS: [f64; 5] = [2.0, 4.0, 8.0, 16.0, 32.0];
const GRID_BATCHES: [f64; 5] = [32.0, 64.0, 128.0, 256.0, 512.0];

fn grid(values: &[f64]) -> ExperimentData {
    // Full 5 x 5 ranks x batch grid: five distinct values per parameter, so
    // the per-parameter line fits clear the default `min_points`.
    let mut m = Vec::new();
    let mut i = 0;
    for &r in &GRID_RANKS {
        for &b in &GRID_BATCHES {
            m.push(Measurement::new(vec![r, b], vec![values[i]]));
            i += 1;
        }
    }
    ExperimentData::new(vec!["ranks".into(), "batch".into()], m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary positive data: all three implementations agree on the
    /// single-parameter search (default and strong-scaling spaces).
    #[test]
    fn single_param_agrees_on_random_data(
        values in proptest::collection::vec(0.1f64..1e4, 6),
    ) {
        let data = univariate(&values);
        assert_all_agree(&data, &ModelerOptions::default());
        let mut strong = ModelerOptions::strong_scaling();
        strong.min_points = 5;
        assert_all_agree(&data, &strong);
    }

    /// Model-generated data with multiplicative noise — the case the search
    /// spends its time on, where dominance pruning actually fires.
    #[test]
    fn single_param_agrees_on_noisy_model_data(
        c0 in 0.5f64..200.0,
        c1 in 0.01f64..20.0,
        noise in proptest::collection::vec(-0.08f64..0.08, 6),
    ) {
        let values: Vec<f64> = noise
            .iter()
            .zip(XS.iter())
            .map(|(&n, &x)| (c0 + c1 * x.powf(0.5) * x.log2()) * (1.0 + n))
            .collect();
        assert_all_agree(&univariate(&values), &ModelerOptions::default());
    }

    /// Leverage ≈ 1: one isolated far point forces the closed-form LOO-CV
    /// into its exact-refit fallback. The batched kernel must take the same
    /// fallback and land on the same winner.
    #[test]
    fn single_param_agrees_on_leverage_one_designs(
        near in proptest::collection::vec(0.5f64..10.0, 5),
        far_v in 100.0f64..1e5,
    ) {
        let mut pts: Vec<(f64, Vec<f64>)> =
            near.iter().map(|&v| (4.0, vec![v])).collect();
        pts.push((2048.0, vec![far_v]));
        let data = ExperimentData::univariate_with_reps("p", &pts);
        assert_all_agree(&data, &ModelerOptions::default());
    }

    /// NaN repetitions: whatever the validation layer decides (drop, reject),
    /// the batched kernel and the engine must decide it identically.
    #[test]
    fn single_param_agrees_on_nan_inputs(
        values in proptest::collection::vec(0.5f64..100.0, 6),
        poisoned in 0usize..6,
    ) {
        let pts: Vec<(f64, Vec<f64>)> = XS
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                let v = if i == poisoned { f64::NAN } else { values[i] };
                (x, vec![v])
            })
            .collect();
        let data = ExperimentData::univariate_with_reps("p", &pts);
        let options = ModelerOptions::default();
        let batched = model_single_parameter(&data, &options);
        let engine = model_single_parameter_engine(&data, &options);
        match (&batched, &engine) {
            (Ok(b), Ok(e)) => assert_bitwise(b, e),
            (Err(_), Err(_)) => {}
            other => panic!("NaN handling mismatch: {other:?}"),
        }
    }

    /// Multi-parameter searches: per-parameter line fits plus the compound
    /// cross-product space, through all three implementations.
    #[test]
    fn multi_param_agrees(
        c0 in 1.0f64..50.0,
        cr in 0.05f64..5.0,
        cb in 0.001f64..0.5,
        noise in proptest::collection::vec(-0.05f64..0.05, 25),
    ) {
        let values: Vec<f64> = {
            let mut v = Vec::new();
            let mut i = 0;
            for &r in &GRID_RANKS {
                for &b in &GRID_BATCHES {
                    v.push((c0 + cr * r * r.log2() + cb * b) * (1.0 + noise[i]));
                    i += 1;
                }
            }
            v
        };
        let data = grid(&values);
        let options = ModelerOptions::default();
        let batched = model_multi_parameter(&data, &options);
        let engine = model_multi_parameter_engine(&data, &options);
        match (&batched, &engine) {
            (Ok(b), Ok(e)) => assert_bitwise(b, e),
            (Err(_), Err(_)) => {}
            other => panic!("batched/engine multi-param mismatch: {other:?}"),
        }
        let reference = model_multi_parameter_reference(&data, &options);
        match (&batched, &reference) {
            (Ok(b), Ok(r)) => assert_close(b, r),
            (Err(_), Err(_)) => {}
            other => panic!("batched/reference multi-param mismatch: {other:?}"),
        }
    }
}

/// Rayon-free checks of the batched path alone, runnable under miri:
/// `cargo miri test -p extradeep-model --test batch_equivalence miri_safe::`.
mod miri_safe {
    use super::*;
    use extradeep_model::hypothesis::{cross_validate, HypothesisShape};
    use extradeep_model::{Fraction, TermShape};

    #[test]
    fn batched_search_fits_clean_linear_data() {
        let values: Vec<f64> = XS.iter().map(|&x| 3.0 + 2.0 * x).collect();
        let model =
            model_single_parameter(&univariate(&values), &ModelerOptions::default()).unwrap();
        assert!(model.smape < 1e-6, "smape {} on exact data", model.smape);
        let at128 = model.predict_at(128.0);
        assert!(
            (at128 - (3.0 + 2.0 * 128.0)).abs() < 1.0,
            "extrapolation {at128}"
        );
    }

    #[test]
    fn batched_cv_score_matches_standalone_closed_form() {
        // The winner's cv_smape recorded by the batched search equals the
        // standalone closed-form LOO-CV of the winning shape on the same
        // points — the kernel shares the arithmetic, not just the contract.
        let values: Vec<f64> = XS
            .iter()
            .map(|&x| (5.0 + 0.7 * x) * (1.0 + 0.02 * x.sin()))
            .collect();
        let data = univariate(&values);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let shape = HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]);
        let points: Vec<(Vec<f64>, f64)> = data
            .measurements
            .iter()
            .map(|m| (m.coordinate.clone(), m.median()))
            .collect();
        if model.function.to_string().contains("x1") && !model.function.to_string().contains('^') {
            let cv = cross_validate(&shape, &points).expect("closed-form CV");
            assert!(
                (model.cv_smape - cv).abs() <= 1e-9 * (1.0 + cv.abs()),
                "cv {} vs standalone {}",
                model.cv_smape,
                cv
            );
        }
    }

    #[test]
    fn batched_search_rejects_too_few_points() {
        let data = ExperimentData::univariate("p", &[(2.0, 1.0), (4.0, 2.0)]);
        assert!(model_single_parameter(&data, &ModelerOptions::default()).is_err());
    }
}
