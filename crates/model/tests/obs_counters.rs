//! The search engine's self-profiling counters: on well-conditioned inputs
//! the closed-form LOO-CV fast path must dominate, with the per-fold exact
//! refit reserved for degenerate (leverage ≈ 1) folds.

use extradeep_model::{ExperimentData, ModelerOptions, SearchEngine};
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn well_conditioned_data() -> ExperimentData {
    // Smooth growth over a proper geometric coordinate spread: no fold is
    // anywhere near leverage 1.
    let f = |x: f64| 5.0 + 0.8 * x + 0.1 * x * x.log2();
    let pts: Vec<(f64, f64)> = [2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
        .iter()
        .map(|&x| (x, f(x)))
        .collect();
    ExperimentData::univariate("p", &pts)
}

#[test]
fn fast_path_dominates_on_well_conditioned_inputs() {
    let _l = LOCK.lock().unwrap();
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);
    let engine = SearchEngine::new(ModelerOptions::default());
    engine.model(&well_conditioned_data()).unwrap();
    extradeep_obs::set_enabled(false);
    let snap = extradeep_obs::drain();

    let hypotheses = snap.counter("model.search.hypotheses").unwrap_or(0);
    let fast = snap.counter("model.loocv.fastpath_folds").unwrap_or(0);
    let fallback = snap.counter("model.loocv.fallback_folds").unwrap_or(0);
    let naive = snap.counter("model.loocv.naive_folds").unwrap_or(0);

    assert!(hypotheses > 10, "search must try many shapes: {hypotheses}");
    assert!(fast > 0, "closed-form folds must be exercised");
    assert_eq!(naive, 0, "default options must not take the naive path");
    assert!(
        fast >= 20 * fallback.max(1) || fallback == 0,
        "fast path must dominate: {fast} fast vs {fallback} fallback folds"
    );
}

#[test]
fn naive_option_routes_folds_to_the_naive_counter() {
    let _l = LOCK.lock().unwrap();
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);
    let options = ModelerOptions {
        use_naive_loocv: true,
        ..ModelerOptions::default()
    };
    let engine = SearchEngine::new(options);
    engine.model(&well_conditioned_data()).unwrap();
    extradeep_obs::set_enabled(false);
    let snap = extradeep_obs::drain();

    assert!(snap.counter("model.loocv.naive_folds").unwrap_or(0) > 0);
    assert_eq!(snap.counter("model.loocv.fastpath_folds").unwrap_or(0), 0);
}

#[test]
fn basis_cache_hit_rate_is_high_across_the_shape_list() {
    let _l = LOCK.lock().unwrap();
    extradeep_obs::reset();
    extradeep_obs::set_enabled(true);
    // A two-term search space (as the application modeler uses): shapes
    // share factors, so the cache gets real cross-shape reuse on top of the
    // per-evaluation column reads.
    let mut options = ModelerOptions::strong_scaling();
    options.search_space = options.search_space.with_max_terms(2);
    let engine = SearchEngine::new(options);
    engine.model(&well_conditioned_data()).unwrap();
    extradeep_obs::set_enabled(false);
    let snap = extradeep_obs::drain();

    let hits = snap.counter("model.basis_cache.hits").unwrap_or(0);
    let misses = snap.counter("model.basis_cache.misses").unwrap_or(0);
    // Distinct factors are evaluated once; the (much longer) shape list
    // reuses them.
    assert!(misses > 0);
    assert!(
        hits > misses,
        "cache must be reused: {hits} hits / {misses} misses"
    );
}
