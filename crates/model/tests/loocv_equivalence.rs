//! Property tests: the closed-form leave-one-out cross-validation must be
//! indistinguishable from the naive n-refit loop — same SMAPE (within
//! floating-point tolerance) and, crucially, the same accept/reject decision
//! on degenerate designs (duplicate coordinates, leverage-one folds).

use extradeep_model::hypothesis::{cross_validate, cross_validate_naive, HypothesisShape};
use extradeep_model::{Fraction, TermShape};
use proptest::prelude::*;

type Points = Vec<(Vec<f64>, f64)>;

fn shape_pool() -> Vec<HypothesisShape> {
    vec![
        HypothesisShape::constant(),
        HypothesisShape::univariate(&[TermShape::new(Fraction::whole(1), 0)]),
        HypothesisShape::univariate(&[TermShape::new(Fraction::new(1, 2), 1)]),
        HypothesisShape::univariate(&[TermShape::new(Fraction::whole(2), 0)]),
        HypothesisShape::univariate(&[TermShape::new(Fraction::new(2, 3), 2)]),
        HypothesisShape::univariate(&[TermShape::new(Fraction::zero(), 2)]),
        HypothesisShape::univariate(&[
            TermShape::new(Fraction::whole(1), 0),
            TermShape::new(Fraction::zero(), 1),
        ]),
    ]
}

/// Mixed absolute/relative tolerance: SMAPE values live on [0, 200], and the
/// two paths accumulate rounding differently (one decomposition vs n
/// eliminations), so pure absolute 1e-9 is the bound for well-conditioned
/// fits and the relative part covers the pathological high-SMAPE tail.
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

fn assert_equivalent(shape: &HypothesisShape, points: &Points) {
    let fast = cross_validate(shape, points);
    let naive = cross_validate_naive(shape, points);
    match (fast, naive) {
        (Some(a), Some(b)) => {
            assert!(
                close(a, b),
                "closed-form {a} vs naive {b} for {shape:?} on {points:?}"
            );
        }
        (None, None) => {}
        other => panic!("rejection mismatch {other:?} for {shape:?} on {points:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary positive values at geometric coordinates: every shape in
    /// the pool produces the same CV score through both paths.
    #[test]
    fn agrees_on_random_data(
        values in proptest::collection::vec(0.1f64..1e4, 6..=10),
    ) {
        let points: Points = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (vec![(2u64 << i) as f64], v))
            .collect();
        for shape in &shape_pool() {
            assert_equivalent(shape, &points);
        }
    }

    /// Model-generated data with multiplicative noise — the realistic case
    /// the search spends its time on.
    #[test]
    fn agrees_on_noisy_model_data(
        c0 in 0.5f64..200.0,
        c1 in 0.01f64..20.0,
        noise in proptest::collection::vec(-0.08f64..0.08, 6),
    ) {
        let points: Points = noise
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let x = (2u64 << i) as f64;
                let y = (c0 + c1 * x.powf(2.0 / 3.0) * x.log2()) * (1.0 + n);
                (vec![x], y)
            })
            .collect();
        for shape in &shape_pool() {
            assert_equivalent(shape, &points);
        }
    }

    /// Near-singular designs: only two distinct coordinates, so removing
    /// the lone second-level point makes every non-constant fold
    /// rank-deficient. Both paths must agree on rejection (or, for the
    /// constant shape, on the value).
    #[test]
    fn agrees_on_near_singular_designs(
        lone in 0usize..6,
        values in proptest::collection::vec(0.5f64..100.0, 6),
    ) {
        let points: Points = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let x = if i == lone { 64.0 } else { 4.0 };
                (vec![x], v)
            })
            .collect();
        for shape in &shape_pool() {
            assert_equivalent(shape, &points);
        }
    }

    /// Fully collinear designs (every coordinate identical) must be
    /// rejected by both paths for every non-constant shape.
    #[test]
    fn agrees_on_fully_degenerate_designs(
        values in proptest::collection::vec(0.5f64..100.0, 5..=8),
    ) {
        let points: Points = values.iter().map(|&v| (vec![16.0], v)).collect();
        for shape in &shape_pool() {
            assert_equivalent(shape, &points);
        }
    }

    /// Leverage ≈ 1: one isolated far point dominates a steep basis column.
    /// The closed-form path must detect the degenerate fold and fall back to
    /// the exact refit, matching the naive loop's outcome.
    #[test]
    fn agrees_on_leverage_one_folds(
        far_x in 256.0f64..4096.0,
        values in proptest::collection::vec(0.5f64..10.0, 5),
        far_v in 100.0f64..1e5,
    ) {
        let mut points: Points = values.iter().map(|&v| (vec![2.0], v)).collect();
        points.push((vec![far_x], far_v));
        for shape in &shape_pool() {
            assert_equivalent(shape, &points);
        }
    }
}
