//! Property-based tests of the PMNF modeling engine.

use extradeep_model::{
    model_single_parameter, ExperimentData, Fraction, Measurement, ModelerOptions,
};
use proptest::prelude::*;

const XS: [f64; 5] = [2.0, 4.0, 8.0, 16.0, 32.0];

fn data_of(f: impl Fn(f64) -> f64) -> ExperimentData {
    let pts: Vec<(f64, f64)> = XS.iter().map(|&x| (x, f(x))).collect();
    ExperimentData::univariate("p", &pts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact log-growth data is recovered with small extrapolation error.
    #[test]
    fn recovers_logarithmic_growth(c0 in 0.5f64..500.0, c1 in 0.1f64..50.0) {
        let f = |x: f64| c0 + c1 * x.log2();
        let model = model_single_parameter(&data_of(f), &ModelerOptions::default()).unwrap();
        let err = model.percentage_error_at(&[128.0], f(128.0));
        prop_assert!(err < 5.0, "err {err}% for {}", model.formatted());
    }

    /// Exact sqrt-growth data extrapolates within a tight band.
    #[test]
    fn recovers_sqrt_growth(c0 in 0.5f64..500.0, c1 in 0.1f64..50.0) {
        let f = |x: f64| c0 + c1 * x.sqrt();
        let model = model_single_parameter(&data_of(f), &ModelerOptions::default()).unwrap();
        let err = model.percentage_error_at(&[128.0], f(128.0));
        prop_assert!(err < 10.0, "err {err}% for {}", model.formatted());
    }

    /// Scaling the data scales the model: f and k·f predict proportionally.
    #[test]
    fn prediction_is_scale_equivariant(k in 0.1f64..1000.0) {
        let base = |x: f64| 10.0 + 3.0 * x;
        let m1 = model_single_parameter(&data_of(base), &ModelerOptions::default()).unwrap();
        let m2 = model_single_parameter(&data_of(|x| k * base(x)), &ModelerOptions::default())
            .unwrap();
        let p1 = m1.predict_at(64.0);
        let p2 = m2.predict_at(64.0);
        prop_assert!((p2 / p1 / k - 1.0).abs() < 0.05, "ratio {}", p2 / p1 / k);
    }

    /// Models never predict negative values anywhere near the fit range when
    /// the data is positive (the negativity guard).
    #[test]
    fn positive_data_positive_predictions(
        c0 in 1.0f64..100.0,
        slope in -0.9f64..3.0,
    ) {
        let f = |x: f64| c0 * x.powf(slope).max(1e-6);
        let mut options = ModelerOptions::strong_scaling();
        options.min_points = 5;
        let model = model_single_parameter(&data_of(f), &options).unwrap();
        for mult in [1.0, 2.0, 8.0, 32.0] {
            let x = 32.0 * mult;
            prop_assert!(model.predict_at(x) >= 0.0, "negative at {x}");
        }
    }

    /// The fit-range SMAPE reported by the model matches a recomputation
    /// from its own predictions.
    #[test]
    fn reported_smape_is_consistent(c1 in 0.1f64..10.0) {
        let noise = [1.03, 0.98, 1.01, 0.97, 1.02];
        let pts: Vec<(f64, f64)> = XS
            .iter()
            .zip(noise.iter())
            .map(|(&x, &n)| (x, (5.0 + c1 * x) * n))
            .collect();
        let data = ExperimentData::univariate("p", &pts);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        let predicted: Vec<f64> = pts.iter().map(|&(x, _)| model.predict_at(x)).collect();
        let actual: Vec<f64> = pts.iter().map(|&(_, v)| v).collect();
        let recomputed = extradeep_model::metrics::smape(&predicted, &actual);
        prop_assert!((model.smape - recomputed).abs() < 1e-6);
    }

    /// Repetition order never changes the fit (median is order-free).
    #[test]
    fn repetition_order_is_irrelevant(seed in 0u64..1000) {
        let reps_at = |x: f64| -> Vec<f64> {
            let base = 4.0 + 2.0 * x;
            vec![base * 0.98, base, base * 1.02, base * (1.0 + (seed % 7) as f64 / 100.0)]
        };
        let fwd = ExperimentData::new(
            vec!["p".into()],
            XS.iter().map(|&x| Measurement::new(vec![x], reps_at(x))).collect(),
        );
        let rev = ExperimentData::new(
            vec!["p".into()],
            XS.iter()
                .map(|&x| {
                    let mut v = reps_at(x);
                    v.reverse();
                    Measurement::new(vec![x], v)
                })
                .collect(),
        );
        let opts = ModelerOptions::default();
        let m1 = model_single_parameter(&fwd, &opts).unwrap();
        let m2 = model_single_parameter(&rev, &opts).unwrap();
        prop_assert_eq!(m1.function, m2.function);
    }

    /// The confidence interval contains the point prediction and widens as
    /// the probe moves away from the data.
    #[test]
    fn confidence_band_well_formed(c1 in 0.5f64..10.0) {
        let noise = [1.02, 0.99, 1.01, 0.98, 1.015];
        let pts: Vec<(f64, f64)> = XS
            .iter()
            .zip(noise.iter())
            .map(|(&x, &n)| (x, (3.0 + c1 * x) * n))
            .collect();
        let data = ExperimentData::univariate("p", &pts);
        let model = model_single_parameter(&data, &ModelerOptions::default()).unwrap();
        if let (Some((lo_near, hi_near)), Some((lo_far, hi_far))) = (
            model.confidence_interval(&[16.0]),
            model.confidence_interval(&[512.0]),
        ) {
            let p_near = model.predict_at(16.0);
            prop_assert!(lo_near <= p_near && p_near <= hi_near);
            prop_assert!(hi_far - lo_far >= hi_near - lo_near);
        }
    }

    /// Fraction exponents respect exponent arithmetic through evaluation:
    /// x^(a/b) evaluated equals the float power.
    #[test]
    fn fraction_exponent_evaluation(num in 1i32..9, den in 1i32..5, x in 1.5f64..500.0) {
        use extradeep_model::{CompoundTerm, PerformanceFunction};
        let f = PerformanceFunction::new(
            0.0,
            vec![CompoundTerm::univariate(1.0, Fraction::new(num, den), 0)],
        );
        let expected = x.powf(num as f64 / den as f64);
        prop_assert!((f.evaluate_at(x) - expected).abs() / expected < 1e-12);
    }
}
