//! Step-window extraction (paper Fig. 2 step 1).
//!
//! The NVTX marks partition a rank's timeline into training steps, validation
//! steps, and the space between them. Every kernel execution is attributed to
//! the step containing it; asynchronous kernels that fall *between* two steps
//! are attributed to the step they trail (they belong to that step's work,
//! e.g. an overlapped allreduce), so they are aggregated "just like the other
//! kernels" as the paper prescribes.

use extradeep_trace::{Event, RankProfile, StepMark, StepPhase};

/// Where an event landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Inside the step with this index into the profile's `step_marks`.
    InStep(usize),
    /// After this step's end and before the next step's start.
    TrailingStep(usize),
    /// Before the first step (initialization) or in a stepless profile.
    Outside,
}

/// Attributes one event to a step window given step marks *sorted by start*.
pub fn place_event(steps: &[StepMark], event: &Event) -> Placement {
    let t = event.start_ns;
    // Binary search for the last step whose start is <= t.
    let idx = steps.partition_point(|s| s.start_ns <= t);
    if idx == 0 {
        return Placement::Outside;
    }
    let candidate = idx - 1;
    if steps[candidate].contains(t) {
        Placement::InStep(candidate)
    } else {
        Placement::TrailingStep(candidate)
    }
}

/// The per-step attribution of a rank profile: for each step mark index, the
/// indices of the events attributed to it; plus events outside all steps.
#[derive(Debug, Clone, Default)]
pub struct StepAttribution {
    /// `per_step[i]` holds event indices attributed to `step_marks[i]`.
    pub per_step: Vec<Vec<usize>>,
    /// Events before the first step (initialization etc.).
    pub outside: Vec<usize>,
}

/// Step marks of one epoch with a given warm-up exclusion applied.
pub fn usable_steps(profile: &RankProfile, warmup_epochs: u32) -> Vec<(usize, &StepMark)> {
    let max_epoch = profile.step_marks.iter().map(|s| s.epoch).max();
    // When all steps are in warm-up epochs, keep them (never drop everything).
    let cutoff = match max_epoch {
        Some(max) if max >= warmup_epochs => warmup_epochs,
        _ => 0,
    };
    profile
        .step_marks
        .iter()
        .enumerate()
        .filter(|(_, s)| s.epoch >= cutoff)
        .collect()
}

/// Builds the full attribution of a rank profile.
pub fn attribute_events(profile: &RankProfile) -> StepAttribution {
    let mut sorted: Vec<StepMark> = profile.step_marks.clone();
    sorted.sort_by_key(|s| s.start_ns);
    // Map sorted index -> original index.
    let mut order: Vec<usize> = (0..profile.step_marks.len()).collect();
    order.sort_by_key(|&i| profile.step_marks[i].start_ns);

    let mut attribution = StepAttribution {
        per_step: vec![Vec::new(); profile.step_marks.len()],
        outside: Vec::new(),
    };
    for (ei, event) in profile.events.iter().enumerate() {
        match place_event(&sorted, event) {
            Placement::InStep(si) | Placement::TrailingStep(si) => {
                attribution.per_step[order[si]].push(ei);
            }
            Placement::Outside => attribution.outside.push(ei),
        }
    }
    extradeep_obs::counter("agg.events_attributed").add(profile.events.len() as u64);
    attribution
}

/// Count of training/validation steps among a profile's marks.
pub fn step_counts(profile: &RankProfile) -> (usize, usize) {
    let train = profile
        .step_marks
        .iter()
        .filter(|s| s.phase == StepPhase::Training)
        .count();
    (train, profile.step_marks.len() - train)
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_trace::{ApiDomain, TraceBuilder};

    fn profile() -> RankProfile {
        let mut b = TraceBuilder::new(0);
        b.emit("cudaMalloc", ApiDomain::CudaApi, 100); // init, outside steps
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, 1000);
        b.end_step();
        // Async collective after step 0, before step 1.
        let gap_start = b.now_ns();
        b.emit_async("ncclAllReduce", ApiDomain::Nccl, gap_start + 10, 200);
        b.advance(500);
        b.begin_step(0, 1, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, 1100);
        b.end_step();
        b.begin_step(0, 0, StepPhase::Validation);
        b.emit("k", ApiDomain::CudaKernel, 400);
        b.end_step();
        b.end_epoch();
        b.finish()
    }

    #[test]
    fn events_in_steps_are_attributed() {
        let p = profile();
        let a = attribute_events(&p);
        // Step 0 gets its kernel plus the trailing async allreduce.
        assert_eq!(a.per_step[0].len(), 2);
        assert_eq!(a.per_step[1].len(), 1);
        assert_eq!(a.per_step[2].len(), 1);
        assert_eq!(a.outside.len(), 1); // cudaMalloc
    }

    #[test]
    fn attribution_partitions_all_events() {
        let p = profile();
        let a = attribute_events(&p);
        let total: usize = a.per_step.iter().map(Vec::len).sum::<usize>() + a.outside.len();
        assert_eq!(total, p.events.len());
    }

    #[test]
    fn placement_cases() {
        let steps = vec![
            StepMark::new(0, 0, StepPhase::Training, 100, 200),
            StepMark::new(0, 1, StepPhase::Training, 300, 400),
        ];
        let at = |t| place_event(&steps, &Event::new("e", ApiDomain::CudaKernel, t, 1));
        assert_eq!(at(50), Placement::Outside);
        assert_eq!(at(100), Placement::InStep(0));
        assert_eq!(at(199), Placement::InStep(0));
        assert_eq!(at(250), Placement::TrailingStep(0));
        assert_eq!(at(350), Placement::InStep(1));
        assert_eq!(at(450), Placement::TrailingStep(1));
    }

    #[test]
    fn warmup_exclusion_keeps_later_epochs() {
        let mut b = TraceBuilder::new(0);
        for e in 0..2 {
            b.begin_epoch(e);
            b.begin_step(e, 0, StepPhase::Training);
            b.emit("k", ApiDomain::CudaKernel, 10);
            b.end_step();
            b.end_epoch();
        }
        let p = b.finish();
        let usable = usable_steps(&p, 1);
        assert_eq!(usable.len(), 1);
        assert_eq!(usable[0].1.epoch, 1);
    }

    #[test]
    fn warmup_exclusion_never_drops_everything() {
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, 10);
        b.end_step();
        b.end_epoch();
        let p = b.finish();
        // Only epoch 0 exists; warm-up exclusion must not empty the data.
        assert_eq!(usable_steps(&p, 1).len(), 1);
    }

    #[test]
    fn counts_training_and_validation() {
        let p = profile();
        assert_eq!(step_counts(&p), (2, 1));
    }
}
