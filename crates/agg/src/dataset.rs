//! From aggregated profiles to modeling datasets: kernel filtering (Fig. 2
//! step 4), the derived per-epoch metrics (Eqs. 2-4), and application-level
//! category sums (Eqs. 6, 8-10).

use crate::aggregate::{
    aggregate_repetition, AggregationOptions, KernelConfigAggregate, KernelId, KernelRepAggregate,
};
use extradeep_model::{ExperimentData, Measurement};
use extradeep_trace::{ApiDomain, ExperimentProfiles, MeasurementConfig, MetricKind, TrainingMeta};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Application-model categories (paper §2.2: "categorize the kernels by
/// their type, i.e., computation, communication, or memory operation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AppCategory {
    Computation,
    Communication,
    MemoryOps,
}

impl AppCategory {
    pub const ALL: [AppCategory; 3] = [
        AppCategory::Computation,
        AppCategory::Communication,
        AppCategory::MemoryOps,
    ];

    pub fn label(self) -> &'static str {
        match self {
            AppCategory::Computation => "computation",
            AppCategory::Communication => "communication",
            AppCategory::MemoryOps => "memory ops.",
        }
    }

    /// Category of an API domain. Everything that is neither communication
    /// nor a memory operation counts as computation, so the three categories
    /// partition the application's time budget.
    pub fn of(domain: ApiDomain) -> AppCategory {
        match domain {
            ApiDomain::Mpi | ApiDomain::Nccl => AppCategory::Communication,
            ApiDomain::MemCpy | ApiDomain::MemSet => AppCategory::MemoryOps,
            _ => AppCategory::Computation,
        }
    }
}

/// One aggregated measurement configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatedConfig {
    pub config: MeasurementConfig,
    pub meta: TrainingMeta,
    pub kernels: BTreeMap<KernelId, KernelConfigAggregate>,
}

/// The preprocessed experiment: one [`AggregatedConfig`] per measurement
/// point — the "extradeep object" of the paper's Fig. 1 step 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatedExperiment {
    pub parameters: Vec<String>,
    pub configs: Vec<AggregatedConfig>,
}

/// Runs stages 1-3 of the preprocessing over a whole experiment.
pub fn aggregate_experiment(
    profiles: &ExperimentProfiles,
    options: &AggregationOptions,
) -> AggregatedExperiment {
    let _span = extradeep_obs::span("agg.experiment");
    let mut parameters = Vec::new();
    let mut configs: Vec<AggregatedConfig> = Vec::new();

    for config in profiles.configs() {
        let reps = profiles.repetitions_of(config);
        if parameters.is_empty() {
            parameters = config.parameter_names();
        } else if config.parameter_names() != parameters {
            // A configuration with different parameter names cannot share a
            // coordinate system with the rest; mixing them would silently
            // misalign coordinates. Skip it (a well-formed experiment never
            // produces this; imported traces might).
            continue;
        }
        let meta = reps[0].meta;
        let per_rep: Vec<BTreeMap<KernelId, KernelRepAggregate>> = reps
            .iter()
            .map(|p| aggregate_repetition(p, options))
            .collect(); // analyze:allow(hot-path-alloc) one map per repetition, bounded by rep count

        // analyze:allow(hot-path-alloc) per-config id list, bounded by kernel count
        let mut ids: Vec<KernelId> = per_rep.iter().flat_map(|m| m.keys().cloned()).collect();
        ids.sort();
        ids.dedup();

        let kernels = ids
            .into_iter()
            .map(|id| {
                let reps: Vec<KernelRepAggregate> = per_rep
                    .iter()
                    .map(|m| m.get(&id).copied().unwrap_or_default())
                    .collect(); // analyze:allow(hot-path-alloc) output rows own their rep vectors
                (id.clone(), KernelConfigAggregate { id, reps })
            })
            .collect(); // analyze:allow(hot-path-alloc) final per-config kernel map, built once

        configs.push(AggregatedConfig {
            config: config.clone(),
            meta,
            kernels,
        });
    }

    AggregatedExperiment {
        parameters,
        configs,
    }
}

impl AggregatedExperiment {
    /// Kernels present in at least `min_configs` configurations — the
    /// minimum-modeling-requirement filter (paper: a kernel appearing in
    /// fewer than five configurations gets no model).
    pub fn modelable_kernels(&self, min_configs: usize) -> Vec<KernelId> {
        let mut counts: BTreeMap<&KernelId, usize> = BTreeMap::new();
        for c in &self.configs {
            for id in c.kernels.keys() {
                *counts.entry(id).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .filter(|&(_, n)| n >= min_configs)
            .map(|(id, _)| id.clone())
            .collect()
    }

    /// Derived per-epoch metric of one kernel at one configuration for one
    /// repetition (Eq. 4): `F = n_t·ṽ_t + n_v·ṽ_v (+ outside-step share)`.
    pub fn kernel_epoch_value(
        meta: &TrainingMeta,
        rep: &KernelRepAggregate,
        metric: MetricKind,
    ) -> f64 {
        let n_t = meta.training_steps_per_epoch() as f64;
        let n_v = meta.validation_steps_per_epoch() as f64;
        let v = rep.metric(metric);
        n_t * v.train + n_v * v.val + v.outside
    }

    /// Builds the modeling dataset for one kernel and metric: one measurement
    /// per configuration, with per-repetition derived values.
    pub fn kernel_dataset(&self, id: &KernelId, metric: MetricKind) -> ExperimentData {
        let measurements = self
            .configs
            .iter()
            .filter_map(|c| {
                let k = c.kernels.get(id)?;
                let values: Vec<f64> = k
                    .reps
                    .iter()
                    .map(|r| Self::kernel_epoch_value(&c.meta, r, metric))
                    .collect();
                Some(Measurement::new(c.config.coordinate(), values))
            })
            .collect();
        ExperimentData::new(self.parameters.clone(), measurements)
    }

    /// Category sum for one configuration and repetition index (Eqs. 8-10):
    /// the derived per-epoch value of all kernels in `category`.
    fn category_value(
        config: &AggregatedConfig,
        rep_index: usize,
        metric: MetricKind,
        category: AppCategory,
    ) -> f64 {
        config
            .kernels
            .values()
            .filter(|k| AppCategory::of(k.id.domain) == category)
            .map(|k| {
                k.reps
                    .get(rep_index)
                    .map(|r| Self::kernel_epoch_value(&config.meta, r, metric))
                    .unwrap_or(0.0)
            })
            .sum()
    }

    /// Application-model dataset for one category (Eqs. 8-10), or for the
    /// whole application when `category` is `None` (Eq. 6).
    pub fn app_dataset(&self, metric: MetricKind, category: Option<AppCategory>) -> ExperimentData {
        let measurements = self
            .configs
            .iter()
            .map(|c| {
                let reps = c.kernels.values().map(|k| k.reps.len()).max().unwrap_or(0);
                let values: Vec<f64> = (0..reps.max(1))
                    .map(|ri| match category {
                        Some(cat) => Self::category_value(c, ri, metric, cat),
                        None => AppCategory::ALL
                            .iter()
                            .map(|&cat| Self::category_value(c, ri, metric, cat))
                            .sum(),
                    })
                    .collect();
                Measurement::new(c.config.coordinate(), values)
            })
            .collect();
        ExperimentData::new(self.parameters.clone(), measurements)
    }

    /// All kernels of one API domain that pass the config filter.
    pub fn kernels_in_domain(&self, domain: ApiDomain, min_configs: usize) -> Vec<KernelId> {
        self.modelable_kernels(min_configs)
            .into_iter()
            .filter(|k| k.domain == domain)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_trace::{ConfigProfile, StepPhase, TraceBuilder};

    fn meta(g: u32) -> TrainingMeta {
        TrainingMeta {
            batch_size: 250,
            train_samples: 10_000 * g as u64, // weak scaling
            val_samples: 1_000,
            data_parallel: g,
            model_parallel: 1,
            cores_per_rank: 8,
        }
    }

    /// Builds a small experiment: configs at x1 in {2,4,8,16,32}, 2 reps.
    /// Kernel "k" runs in every config; "rare" only at x1 = 2.
    fn experiment() -> ExperimentProfiles {
        let mut exp = ExperimentProfiles::new();
        for &ranks in &[2u32, 4, 8, 16, 32] {
            for rep in 0..2 {
                let mut cp = ConfigProfile::new(MeasurementConfig::ranks(ranks), rep, meta(ranks));
                let mut b = TraceBuilder::new(0);
                b.begin_epoch(0);
                for step in 0..3 {
                    b.begin_step(0, step, StepPhase::Training);
                    b.emit("k", ApiDomain::CudaKernel, 1_000 * ranks as u64);
                    b.emit_bytes("MPI_Allreduce", ApiDomain::Mpi, 500 * ranks as u64, 1 << 20);
                    b.emit_bytes("CUDA memcpy HtoD", ApiDomain::MemCpy, 200, 4096);
                    if ranks == 2 {
                        b.emit("rare", ApiDomain::CudaKernel, 10);
                    }
                    b.end_step();
                }
                b.begin_step(0, 0, StepPhase::Validation);
                b.emit("k", ApiDomain::CudaKernel, 400 * ranks as u64);
                b.end_step();
                b.end_epoch();
                cp.ranks.push(b.finish());
                exp.push(cp);
            }
        }
        exp
    }

    fn aggregated() -> AggregatedExperiment {
        aggregate_experiment(&experiment(), &AggregationOptions { warmup_epochs: 0 })
    }

    #[test]
    fn filter_drops_rare_kernels() {
        let agg = aggregated();
        let modelable = agg.modelable_kernels(5);
        assert!(modelable.iter().any(|k| k.name == "k"));
        assert!(modelable.iter().any(|k| k.name == "MPI_Allreduce"));
        assert!(!modelable.iter().any(|k| k.name == "rare"));
        // With a lower threshold "rare" qualifies.
        assert!(agg.modelable_kernels(1).iter().any(|k| k.name == "rare"));
    }

    #[test]
    fn derived_metric_extrapolates_to_full_epoch() {
        let agg = aggregated();
        let k = KernelId {
            name: "k".into(),
            domain: ApiDomain::CudaKernel,
        };
        let data = agg.kernel_dataset(&k, MetricKind::Time);
        assert_eq!(data.len(), 5);
        // At x1 = 2: n_t = 10000*2/2/250 = 40 steps, n_v = 1000/2/250 = 2.
        // v_t = 2000 ns, v_v = 800 ns -> F = 40*2e-6 + 2*0.8e-6 s.
        let m = &data.measurements[0];
        assert_eq!(m.coordinate, vec![2.0]);
        let expect = 40.0 * 2_000e-9 + 2.0 * 800e-9;
        assert!((m.values[0] - expect).abs() < 1e-12, "{}", m.values[0]);
    }

    #[test]
    fn visits_metric_counts_executions_per_epoch() {
        let agg = aggregated();
        let k = KernelId {
            name: "k".into(),
            domain: ApiDomain::CudaKernel,
        };
        let data = agg.kernel_dataset(&k, MetricKind::Visits);
        // 40 training steps * 1 visit + 2 validation steps * 1 visit.
        assert!((data.measurements[0].values[0] - 42.0).abs() < 1e-9);
    }

    #[test]
    fn app_categories_partition_time() {
        let agg = aggregated();
        let total = agg.app_dataset(MetricKind::Time, None);
        let parts: f64 = AppCategory::ALL
            .iter()
            .map(|&c| agg.app_dataset(MetricKind::Time, Some(c)).measurements[0].values[0])
            .sum();
        assert!((total.measurements[0].values[0] - parts).abs() < 1e-12);
    }

    #[test]
    fn communication_category_contains_only_mpi() {
        let agg = aggregated();
        let comm = agg.app_dataset(MetricKind::Time, Some(AppCategory::Communication));
        // At x1 = 2: 40 steps * 1000 ns MPI = 4e-5 s.
        assert!((comm.measurements[0].values[0] - 40.0 * 1_000e-9).abs() < 1e-12);
    }

    #[test]
    fn bytes_metric_flows_through() {
        let agg = aggregated();
        let mem = agg.app_dataset(MetricKind::Bytes, Some(AppCategory::MemoryOps));
        // 40 steps * 4096 B + 0 validation contribution... validation had no
        // memcpy, so F = 40 * 4096.
        assert!((mem.measurements[0].values[0] - 40.0 * 4096.0).abs() < 1e-9);
    }

    #[test]
    fn domain_listing() {
        let agg = aggregated();
        let mpi = agg.kernels_in_domain(ApiDomain::Mpi, 5);
        assert_eq!(mpi.len(), 1);
        assert_eq!(mpi[0].name, "MPI_Allreduce");
    }

    #[test]
    fn mismatched_parameter_names_are_skipped() {
        let mut exp = experiment();
        // A stray profile with a different parameter scheme.
        let mut odd = ConfigProfile::new(
            MeasurementConfig::new(vec![("threads".into(), 7.0)]),
            0,
            meta(7),
        );
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, 10);
        b.end_step();
        b.end_epoch();
        odd.ranks.push(b.finish());
        exp.push(odd);

        let agg = aggregate_experiment(&exp, &AggregationOptions { warmup_epochs: 0 });
        assert_eq!(agg.parameters, vec!["ranks"]);
        assert_eq!(agg.configs.len(), 5, "the stray config must be dropped");
    }

    #[test]
    fn repetitions_become_measurement_values() {
        let agg = aggregated();
        let k = KernelId {
            name: "k".into(),
            domain: ApiDomain::CudaKernel,
        };
        let data = agg.kernel_dataset(&k, MetricKind::Time);
        assert!(data.measurements.iter().all(|m| m.values.len() == 2));
    }

    #[test]
    fn category_of_domains() {
        assert_eq!(AppCategory::of(ApiDomain::Mpi), AppCategory::Communication);
        assert_eq!(AppCategory::of(ApiDomain::Nccl), AppCategory::Communication);
        assert_eq!(AppCategory::of(ApiDomain::MemCpy), AppCategory::MemoryOps);
        assert_eq!(AppCategory::of(ApiDomain::MemSet), AppCategory::MemoryOps);
        assert_eq!(
            AppCategory::of(ApiDomain::CudaKernel),
            AppCategory::Computation
        );
        assert_eq!(AppCategory::of(ApiDomain::Os), AppCategory::Computation);
    }
}
