//! The three-stage median aggregation (paper Fig. 2, Eqs. 1 and the
//! "median Ṽ" steps 2-3): per-step sums, per-rank medians, per-repetition
//! medians.

use crate::window::{attribute_events, usable_steps};
use extradeep_model::measurement::{median, winsorized_mean, WINSOR_TRIM};
use extradeep_trace::{ApiDomain, ConfigProfile, MetricKind, RankProfile, StepPhase};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-phase metric values of one kernel after aggregation over steps.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PhaseValues {
    /// Median per-training-step value (`ṽ_t`).
    pub train: f64,
    /// Median per-validation-step value (`ṽ_v`).
    pub val: f64,
    /// Per-epoch value of executions outside any step (init, checkpoint),
    /// normalized by the number of profiled epochs.
    pub outside: f64,
}

/// One kernel's aggregate for one repetition (all three metrics).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelRepAggregate {
    pub time: PhaseValues,
    pub visits: PhaseValues,
    pub bytes: PhaseValues,
}

impl KernelRepAggregate {
    pub fn metric(&self, metric: MetricKind) -> &PhaseValues {
        match metric {
            MetricKind::Time => &self.time,
            MetricKind::Visits => &self.visits,
            MetricKind::Bytes => &self.bytes,
        }
    }
}

/// One kernel's identity (name + domain) in an aggregated experiment.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct KernelId {
    pub name: String,
    pub domain: ApiDomain,
}

/// Aggregation options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregationOptions {
    /// Epochs at the start of the profile treated as warm-up and excluded
    /// (paper: "the first epoch acts as a warm-up round, and its
    /// measurements are not used for modeling").
    pub warmup_epochs: u32,
}

impl Default for AggregationOptions {
    fn default() -> Self {
        AggregationOptions { warmup_epochs: 1 }
    }
}

/// Stage 1+2 for a single rank: per-step sums (Eq. 1), then the median over
/// steps for each phase.
fn aggregate_rank(
    rank: &RankProfile,
    options: &AggregationOptions,
) -> BTreeMap<KernelId, KernelRepAggregate> {
    let attribution = attribute_events(rank);
    let usable: Vec<usize> = usable_steps(rank, options.warmup_epochs)
        .into_iter()
        .map(|(i, _)| i)
        .collect();
    let epochs = rank.epoch_marks.len().max(1) as f64;

    // kernel -> metric -> (per-train-step sums, per-val-step sums, outside).
    #[derive(Default)]
    struct Acc {
        train: Vec<f64>,
        val: Vec<f64>,
        outside: f64,
    }
    let mut accs: BTreeMap<KernelId, [Acc; 3]> = BTreeMap::new();
    let metrics = [MetricKind::Time, MetricKind::Visits, MetricKind::Bytes];

    for &si in &usable {
        let mark = rank.step_marks[si];
        // Sum each kernel's metric values inside this step (Eq. 1).
        let mut sums: BTreeMap<KernelId, [f64; 3]> = BTreeMap::new();
        for &ei in &attribution.per_step[si] {
            let e = &rank.events[ei];
            let id = KernelId {
                // analyze:allow(hot-path-alloc) KernelId must own its name; one short string per event
                name: e.name.to_string(),
                domain: e.domain,
            };
            let entry = sums.entry(id).or_default();
            for (mi, &m) in metrics.iter().enumerate() {
                entry[mi] += e.metric_value(m);
            }
        }
        for (id, vals) in sums {
            let acc = accs.entry(id).or_default();
            for mi in 0..3 {
                match mark.phase {
                    StepPhase::Training => acc[mi].train.push(vals[mi]),
                    StepPhase::Validation => acc[mi].val.push(vals[mi]),
                }
            }
        }
    }

    // Outside-step executions: a per-epoch constant.
    for &ei in &attribution.outside {
        let e = &rank.events[ei];
        let id = KernelId {
            // analyze:allow(hot-path-alloc) KernelId must own its name; one short string per event
            name: e.name.to_string(),
            domain: e.domain,
        };
        let acc = accs.entry(id).or_default();
        for (mi, &m) in metrics.iter().enumerate() {
            acc[mi].outside += e.metric_value(m) / epochs;
        }
    }

    // Steps where a kernel did not execute contribute a zero sum to Eq. 1;
    // the median must run over *all* usable steps of the phase, or a kernel
    // executing once per epoch (e.g. the checkpoint write trailing the last
    // step) would be extrapolated as if it ran every step.
    let (total_train, total_val) = {
        let mut t = 0usize;
        let mut v = 0usize;
        for &si in &usable {
            match rank.step_marks[si].phase {
                StepPhase::Training => t += 1,
                StepPhase::Validation => v += 1,
            }
        }
        (t, v)
    };
    let median_padded = |vals: &[f64], total: usize| -> f64 {
        if vals.is_empty() {
            return 0.0;
        }
        let mut padded = vals.to_vec();
        padded.resize(total.max(vals.len()), 0.0);
        median(&padded)
    };

    accs.into_iter()
        .map(|(id, acc)| {
            let phase = |a: &Acc| PhaseValues {
                train: median_padded(&a.train, total_train),
                val: median_padded(&a.val, total_val),
                outside: a.outside,
            };
            (
                id,
                KernelRepAggregate {
                    time: phase(&acc[0]),
                    visits: phase(&acc[1]),
                    bytes: phase(&acc[2]),
                },
            )
        })
        .collect()
}

/// Stage 2 output: one repetition of one configuration, aggregated over its
/// ranks by median (`Ṽ_r` in Fig. 2).
pub fn aggregate_repetition(
    profile: &ConfigProfile,
    options: &AggregationOptions,
) -> BTreeMap<KernelId, KernelRepAggregate> {
    let _span = extradeep_obs::span("agg.repetition");
    let per_rank: Vec<BTreeMap<KernelId, KernelRepAggregate>> = profile
        .ranks
        .iter()
        .map(|r| aggregate_rank(r, options))
        .collect();

    let mut ids: Vec<KernelId> = per_rank.iter().flat_map(|m| m.keys().cloned()).collect();
    ids.sort();
    ids.dedup();

    let mut out = BTreeMap::new();
    let mut vals: Vec<f64> = Vec::with_capacity(per_rank.len());
    for id in ids {
        let mut combined = KernelRepAggregate::default();
        let mut collect = |f: &dyn Fn(&KernelRepAggregate) -> f64| -> f64 {
            // The median over ranks *that executed the kernel*: a kernel
            // seen on a single rank only is usually irrelevant (the paper's
            // observation), but the median still handles it gracefully.
            vals.clear();
            vals.extend(per_rank.iter().filter_map(|m| m.get(&id)).map(f));
            median(&vals)
        };
        combined.time = PhaseValues {
            train: collect(&|k| k.time.train),
            val: collect(&|k| k.time.val),
            outside: collect(&|k| k.time.outside),
        };
        combined.visits = PhaseValues {
            train: collect(&|k| k.visits.train),
            val: collect(&|k| k.visits.val),
            outside: collect(&|k| k.visits.outside),
        };
        combined.bytes = PhaseValues {
            train: collect(&|k| k.bytes.train),
            val: collect(&|k| k.bytes.val),
            outside: collect(&|k| k.bytes.outside),
        };
        out.insert(id, combined);
    }
    out
}

/// Stage 3: median over repetitions (`Ṽ`), retaining the per-repetition
/// values so run-to-run variation and repetition-aware modeling remain
/// possible downstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelConfigAggregate {
    pub id: KernelId,
    /// One aggregate per measurement repetition.
    pub reps: Vec<KernelRepAggregate>,
}

impl KernelConfigAggregate {
    /// The median over repetitions for one metric/phase selection.
    pub fn median_over_reps(&self, f: impl Fn(&KernelRepAggregate) -> f64) -> f64 {
        let vals: Vec<f64> = self.reps.iter().map(f).collect();
        median(&vals)
    }

    /// Winsorized mean over repetitions: extreme repetitions (a straggler
    /// run, a clock-skewed rank that survived repair) are clamped to the
    /// trimmed quantiles instead of discarded, so partial configurations
    /// with few surviving repetitions keep every sample's vote while
    /// staying robust to the tails.
    pub fn winsorized_over_reps(&self, f: impl Fn(&KernelRepAggregate) -> f64) -> f64 {
        let vals: Vec<f64> = self.reps.iter().map(f).collect();
        winsorized_mean(&vals, WINSOR_TRIM)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_trace::{MeasurementConfig, TraceBuilder, TrainingMeta};

    fn meta() -> TrainingMeta {
        TrainingMeta {
            batch_size: 256,
            train_samples: 50_000,
            val_samples: 10_000,
            data_parallel: 2,
            model_parallel: 1,
            cores_per_rank: 8,
        }
    }

    /// Two ranks, two epochs; kernel "k" runs twice per training step with
    /// durations that differ per rank.
    fn two_rank_profile() -> ConfigProfile {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(2), 0, meta());
        for rank in 0..2u32 {
            let mut b = TraceBuilder::new(rank);
            b.emit("cudaMalloc", ApiDomain::CudaApi, 1000);
            for epoch in 0..2 {
                b.begin_epoch(epoch);
                for step in 0..3 {
                    b.begin_step(epoch, step, StepPhase::Training);
                    // Eq. 1: both executions must be summed within the step.
                    let base = 100 * (rank as u64 + 1); // rank 0: 100, rank 1: 200
                    b.emit("k", ApiDomain::CudaKernel, base);
                    b.emit("k", ApiDomain::CudaKernel, base);
                    b.end_step();
                }
                b.begin_step(epoch, 0, StepPhase::Validation);
                b.emit("k", ApiDomain::CudaKernel, 50);
                b.end_step();
                b.end_epoch();
            }
            cp.ranks.push(b.finish());
        }
        cp
    }

    #[test]
    fn step_sums_then_medians() {
        let cp = two_rank_profile();
        let agg = aggregate_repetition(&cp, &AggregationOptions::default());
        let k = agg
            .get(&KernelId {
                name: "k".into(),
                domain: ApiDomain::CudaKernel,
            })
            .unwrap();
        // Per step: rank 0 sums to 200 ns, rank 1 to 400 ns. Median over
        // ranks: 300 ns = 3e-7 s.
        assert!((k.time.train - 300e-9).abs() < 1e-15, "{}", k.time.train);
        assert!((k.visits.train - 2.0).abs() < 1e-12);
        assert!((k.time.val - 50e-9).abs() < 1e-15);
        assert!((k.visits.val - 1.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_epoch_is_excluded() {
        let mut cp = ConfigProfile::new(MeasurementConfig::ranks(1), 0, meta());
        let mut b = TraceBuilder::new(0);
        b.begin_epoch(0);
        b.begin_step(0, 0, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, 10_000); // inflated warm-up
        b.end_step();
        b.end_epoch();
        b.begin_epoch(1);
        b.begin_step(1, 0, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, 100);
        b.end_step();
        b.end_epoch();
        cp.ranks.push(b.finish());
        let agg = aggregate_repetition(&cp, &AggregationOptions::default());
        let k = agg
            .get(&KernelId {
                name: "k".into(),
                domain: ApiDomain::CudaKernel,
            })
            .unwrap();
        assert!(
            (k.time.train - 100e-9).abs() < 1e-15,
            "warm-up must be dropped"
        );
    }

    #[test]
    fn outside_events_normalized_per_epoch() {
        let cp = two_rank_profile();
        let agg = aggregate_repetition(&cp, &AggregationOptions::default());
        let malloc = agg
            .get(&KernelId {
                name: "cudaMalloc".into(),
                domain: ApiDomain::CudaApi,
            })
            .unwrap();
        // 1000 ns once, over 2 epochs -> 500 ns/epoch.
        assert!((malloc.time.outside - 500e-9).abs() < 1e-15);
        assert_eq!(malloc.time.train, 0.0);
    }

    #[test]
    fn rank_permutation_invariance() {
        let cp = two_rank_profile();
        let mut flipped = cp.clone();
        flipped.ranks.reverse();
        let a = aggregate_repetition(&cp, &AggregationOptions::default());
        let b = aggregate_repetition(&flipped, &AggregationOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn median_over_reps() {
        let k = KernelConfigAggregate {
            id: KernelId {
                name: "k".into(),
                domain: ApiDomain::CudaKernel,
            },
            reps: vec![
                KernelRepAggregate {
                    time: PhaseValues {
                        train: 1.0,
                        val: 0.0,
                        outside: 0.0,
                    },
                    ..Default::default()
                },
                KernelRepAggregate {
                    time: PhaseValues {
                        train: 3.0,
                        val: 0.0,
                        outside: 0.0,
                    },
                    ..Default::default()
                },
                KernelRepAggregate {
                    time: PhaseValues {
                        train: 2.0,
                        val: 0.0,
                        outside: 0.0,
                    },
                    ..Default::default()
                },
            ],
        };
        assert_eq!(k.median_over_reps(|r| r.time.train), 2.0);
    }

    #[test]
    fn winsorized_over_reps_tames_a_straggler_repetition() {
        let rep = |train: f64| KernelRepAggregate {
            time: PhaseValues {
                train,
                val: 0.0,
                outside: 0.0,
            },
            ..Default::default()
        };
        let k = KernelConfigAggregate {
            id: KernelId {
                name: "k".into(),
                domain: ApiDomain::CudaKernel,
            },
            // One straggler repetition 50x the rest.
            reps: vec![rep(10.0), rep(11.0), rep(12.0), rep(500.0)],
        };
        // n = 4, trim 0.25 => k = 1: both extremes clamp to [11, 12].
        let w = k.winsorized_over_reps(|r| r.time.train);
        assert!((w - 11.5).abs() < 1e-9, "winsorized mean {w}");
        // The straggler would have dragged a plain mean past 100.
        let mean: f64 = k.reps.iter().map(|r| r.time.train).sum::<f64>() / 4.0;
        assert!(mean > 100.0);
    }
}
