//! # extradeep-agg
//!
//! Extra-Deep's data preprocessing and aggregation stage (paper §2.2 and
//! Fig. 2): the machinery that makes the efficient measurement sampling
//! strategy work.
//!
//! Given NVTX-marked profiles of only a few training steps, it
//!
//! 1. attributes every kernel execution to a training/validation step and
//!    sums metric values per kernel per step (Eq. 1), handling asynchronous
//!    kernels that fall between step marks;
//! 2. takes the median over steps per rank, then the median over MPI ranks;
//! 3. takes the median over measurement repetitions;
//! 4. filters kernels that appear in fewer than five configurations;
//!
//! and finally derives full-epoch metric values
//! `F = n_t · ṽ_t + n_v · ṽ_v` (Eqs. 2-4) and the application-level
//! computation/communication/memory sums (Eqs. 6, 8-10) that the modeler
//! consumes.

pub mod aggregate;
pub mod dataset;
pub mod window;

pub use aggregate::{
    aggregate_repetition, AggregationOptions, KernelConfigAggregate, KernelId, KernelRepAggregate,
    PhaseValues,
};
pub use dataset::{aggregate_experiment, AggregatedConfig, AggregatedExperiment, AppCategory};
pub use window::{attribute_events, place_event, step_counts, usable_steps, Placement};
