//! Property-based tests of the aggregation pipeline.

use extradeep_agg::{
    aggregate_experiment, aggregate_repetition, AggregationOptions, AppCategory, KernelId,
};
use extradeep_trace::{
    ApiDomain, ConfigProfile, ExperimentProfiles, MeasurementConfig, MetricKind, StepPhase,
    TraceBuilder, TrainingMeta,
};
use proptest::prelude::*;

fn meta() -> TrainingMeta {
    meta_for(2)
}

fn meta_for(g: u32) -> TrainingMeta {
    TrainingMeta {
        batch_size: 100,
        train_samples: 10_000,
        val_samples: 1_000,
        data_parallel: g,
        model_parallel: 1,
        cores_per_rank: 4,
    }
}

fn profile_with_durations(durations: &[u64]) -> ConfigProfile {
    let mut cp = ConfigProfile::new(MeasurementConfig::ranks(2), 0, meta());
    let mut b = TraceBuilder::new(0);
    b.begin_epoch(0);
    for (i, &d) in durations.iter().enumerate() {
        b.begin_step(0, i as u32, StepPhase::Training);
        b.emit("k", ApiDomain::CudaKernel, d.max(1));
        b.end_step();
    }
    b.end_epoch();
    cp.ranks.push(b.finish());
    cp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The per-step median is invariant to the order in which steps occur.
    #[test]
    fn step_order_invariance(mut durations in proptest::collection::vec(1u64..1_000_000, 3..8)) {
        let opts = AggregationOptions { warmup_epochs: 0 };
        let a = aggregate_repetition(&profile_with_durations(&durations), &opts);
        durations.reverse();
        let b = aggregate_repetition(&profile_with_durations(&durations), &opts);
        let id = KernelId { name: "k".into(), domain: ApiDomain::CudaKernel };
        prop_assert_eq!(a[&id], b[&id]);
    }

    /// The aggregated per-step value is bounded by the min and max step sums.
    #[test]
    fn median_bounded_by_extremes(durations in proptest::collection::vec(1u64..1_000_000, 3..8)) {
        let opts = AggregationOptions { warmup_epochs: 0 };
        let agg = aggregate_repetition(&profile_with_durations(&durations), &opts);
        let id = KernelId { name: "k".into(), domain: ApiDomain::CudaKernel };
        let v = agg[&id].time.train;
        let lo = *durations.iter().min().unwrap() as f64 * 1e-9;
        let hi = *durations.iter().max().unwrap() as f64 * 1e-9;
        prop_assert!(v >= lo - 1e-15 && v <= hi + 1e-15, "{lo} <= {v} <= {hi}");
    }

    /// The three app categories always partition the total, for any mix of
    /// kernel domains.
    #[test]
    fn categories_partition_total(
        comm_ns in 1u64..100_000,
        mem_ns in 1u64..100_000,
        comp_ns in 1u64..100_000,
    ) {
        let mut exp = ExperimentProfiles::new();
        for ranks in [2u32, 4, 8, 16, 32] {
            let mut cp = ConfigProfile::new(MeasurementConfig::ranks(ranks), 0, meta());
            let mut b = TraceBuilder::new(0);
            b.begin_epoch(0);
            for step in 0..3 {
                b.begin_step(0, step, StepPhase::Training);
                b.emit("gemm", ApiDomain::CudaKernel, comp_ns);
                b.emit("allreduce", ApiDomain::Nccl, comm_ns);
                b.emit_bytes("memcpy", ApiDomain::MemCpy, mem_ns, 1024);
                b.end_step();
            }
            b.end_epoch();
            cp.ranks.push(b.finish());
            exp.push(cp);
        }
        let agg = aggregate_experiment(&exp, &AggregationOptions { warmup_epochs: 0 });
        let total = agg.app_dataset(MetricKind::Time, None);
        for (i, m) in total.measurements.iter().enumerate() {
            let parts: f64 = AppCategory::ALL
                .iter()
                .map(|&c| {
                    agg.app_dataset(MetricKind::Time, Some(c)).measurements[i].values[0]
                })
                .sum();
            prop_assert!((m.values[0] - parts).abs() < 1e-12);
        }
    }

    /// Visits per epoch equal steps-per-epoch x per-step executions.
    #[test]
    fn visits_extrapolation_exact(execs_per_step in 1u64..20) {
        let mut exp = ExperimentProfiles::new();
        for ranks in [2u32, 4, 8, 16, 32] {
            let mut cp = ConfigProfile::new(MeasurementConfig::ranks(ranks), 0, meta_for(ranks));
            let mut b = TraceBuilder::new(0);
            b.begin_epoch(0);
            for step in 0..4 {
                b.begin_step(0, step, StepPhase::Training);
                for _ in 0..execs_per_step {
                    b.emit("k", ApiDomain::CudaKernel, 100);
                }
                b.end_step();
            }
            b.end_epoch();
            cp.ranks.push(b.finish());
            exp.push(cp);
        }
        let agg = aggregate_experiment(&exp, &AggregationOptions { warmup_epochs: 0 });
        let id = KernelId { name: "k".into(), domain: ApiDomain::CudaKernel };
        let data = agg.kernel_dataset(&id, MetricKind::Visits);
        for m in &data.measurements {
            // n_t = (10000/g)/100 with g = ranks; n_v contributes nothing.
            let g = m.coordinate[0];
            let n_t = ((10_000.0 / g) / 100.0).floor().max(1.0);
            prop_assert!((m.values[0] - n_t * execs_per_step as f64).abs() < 1e-9);
        }
    }
}
