//! A PALEO-style analytical performance model (Qi et al., ICLR 2017), the
//! comparator class the paper discusses in §1.1/§4.3: layer-wise FLOP
//! counting against a platform-percent-of-peak, plus an analytical
//! communication model. Unlike Extra-Deep it needs *no measurements* — but
//! also cannot capture framework overheads, input pipelines, or system
//! noise, which is exactly the gap the paper's empirical approach fills.

use extradeep_sim::{collective_cost, Collective, ScalingMode, SystemConfig};
use extradeep_sim::{Benchmark, ParallelStrategy};
use serde::{Deserialize, Serialize};

/// PALEO's platform parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaleoPlatform {
    /// Percent of peak FLOPs the platform sustains (PALEO's PPP).
    pub platform_percent_of_peak: f64,
    /// Communication efficiency relative to line rate.
    pub communication_efficiency: f64,
}

impl Default for PaleoPlatform {
    fn default() -> Self {
        PaleoPlatform {
            platform_percent_of_peak: 0.45,
            communication_efficiency: 0.7,
        }
    }
}

/// The analytical prediction for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaleoPrediction {
    pub compute_seconds_per_step: f64,
    pub communication_seconds_per_step: f64,
    pub steps_per_epoch: u64,
    pub epoch_seconds: f64,
}

/// Predicts the epoch time of a data-parallel training job analytically.
pub fn predict_epoch(
    system: &SystemConfig,
    benchmark: &Benchmark,
    strategy: ParallelStrategy,
    scaling: ScalingMode,
    ranks: u32,
    platform: &PaleoPlatform,
) -> PaleoPrediction {
    let m = strategy.model_parallel_degree() as f64;
    let replicas = strategy.replicas(ranks);

    // Compute: forward + backward ≈ 3x forward FLOPs (PALEO's convention).
    let flops_per_step = 3.0
        * benchmark.architecture.forward_flops_per_sample() as f64
        * benchmark.batch_size as f64
        / m;
    let sustained = system.node.gpu.fp32_tflops * 1e12 * platform.platform_percent_of_peak;
    let compute = flops_per_step / sustained;

    // Communication: one ring allreduce of the gradients per step.
    let grad_bytes = (benchmark.architecture.gradient_bytes() as f64 / m) as u64;
    let comm = if ranks > 1 {
        collective_cost(system, Collective::Allreduce, grad_bytes, ranks).seconds
            / platform.communication_efficiency
    } else {
        0.0
    };

    let samples = benchmark.dataset.effective_train_samples(scaling, replicas);
    let steps_per_epoch =
        (samples as f64 / replicas as f64 / benchmark.batch_size as f64).floor() as u64;

    PaleoPrediction {
        compute_seconds_per_step: compute,
        communication_seconds_per_step: comm,
        steps_per_epoch,
        epoch_seconds: steps_per_epoch as f64 * (compute + comm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_sim::SyncMode;

    fn predict(ranks: u32) -> PaleoPrediction {
        predict_epoch(
            &SystemConfig::deep(),
            &Benchmark::cifar10(),
            ParallelStrategy::DataParallel,
            ScalingMode::Weak,
            ranks,
            &PaleoPlatform::default(),
        )
    }

    #[test]
    fn epoch_time_is_positive_and_grows_weakly() {
        let p2 = predict(2);
        let p64 = predict(64);
        assert!(p2.epoch_seconds > 0.0);
        assert!(p64.epoch_seconds > p2.epoch_seconds);
        assert_eq!(p2.steps_per_epoch, p64.steps_per_epoch);
    }

    #[test]
    fn paleo_underestimates_the_empirical_simulator() {
        // The analytical model misses input pipelines, host overhead, memory
        // traffic, stragglers, and MPI inefficiency — the exact blind spots
        // the paper attributes to analytical approaches.
        let sim_job = extradeep_sim::TrainingJob {
            system: SystemConfig::deep(),
            benchmark: Benchmark::cifar10(),
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks: 16,
        };
        let empirical = sim_job.epoch_seconds_estimate();
        let analytical = predict(16).epoch_seconds;
        assert!(
            analytical < empirical,
            "PALEO {analytical} should undercut the empirical substrate {empirical}"
        );
        // But both should be the same order of magnitude.
        assert!(analytical > empirical / 50.0);
    }

    #[test]
    fn single_rank_has_no_communication() {
        let p = predict(1);
        assert_eq!(p.communication_seconds_per_step, 0.0);
    }

    #[test]
    fn model_parallelism_shrinks_per_rank_compute() {
        let dp = predict(16);
        let tp = predict_epoch(
            &SystemConfig::deep(),
            &Benchmark::cifar10(),
            ParallelStrategy::TensorParallel { group: 4 },
            ScalingMode::Weak,
            16,
            &PaleoPlatform::default(),
        );
        assert!(tp.compute_seconds_per_step < dp.compute_seconds_per_step);
    }
}
