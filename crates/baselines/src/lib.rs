//! # extradeep-baselines
//!
//! The comparators the paper positions Extra-Deep against:
//!
//! * [`paleo`] — a PALEO-style *analytical* model (layer FLOPs over platform
//!   percent-of-peak plus an allreduce formula). Measurement-free, but blind
//!   to framework overheads and noise.
//! * [`full_profiling`] — the *standard profiling* baseline: profile entire
//!   epochs. Used by the Fig. 8 overhead study to quantify the ≈94.9%
//!   profiling-time reduction of the efficient sampling strategy.

pub mod full_profiling;
pub mod paleo;

pub use full_profiling::{compare_overhead, OverheadComparison};
pub use paleo::{predict_epoch, PaleoPlatform, PaleoPrediction};
