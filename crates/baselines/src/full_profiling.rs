//! The "standard profiling" baseline of the overhead study (paper §4.2.4,
//! Fig. 8): profiling entire training epochs instead of sampled steps, and
//! the resulting execution/profiling-time comparison.

use extradeep_sim::{
    profile_job, ProfilerOptions, SamplingStrategy, TrainingJob, PROFILING_OVERHEAD_FRACTION,
};
use serde::{Deserialize, Serialize};

/// The four bars of one Fig. 8 benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadComparison {
    /// Median execution time per epoch when profiling the full run, seconds.
    pub standard_execution_seconds: f64,
    /// Profiling time for the standard approach, seconds.
    pub standard_profiling_seconds: f64,
    /// Execution time the efficient strategy actually has to run, seconds.
    pub efficient_execution_seconds: f64,
    /// Profiling time for the efficient strategy, seconds.
    pub efficient_profiling_seconds: f64,
}

impl OverheadComparison {
    /// Relative reduction of profiling time (the paper's headline ≈94.9%).
    pub fn profiling_reduction_percent(&self) -> f64 {
        100.0 * (1.0 - self.efficient_profiling_seconds / self.standard_profiling_seconds)
    }

    /// Profiling overhead as a fraction of executed time (paper: ≈5.4%,
    /// identical for both strategies).
    pub fn overhead_fraction(&self) -> f64 {
        self.standard_profiling_seconds / self.standard_execution_seconds
    }
}

/// Measures the overhead comparison for one job.
///
/// The standard path is costed analytically from the engine's step plans
/// (profiling a full ImageNet epoch event-by-event would be pointless work —
/// the profiler's overhead model is a fixed fraction of executed time),
/// while the efficient path runs the real sampled profiler.
pub fn compare_overhead(job: &TrainingJob, sampled: SamplingStrategy) -> OverheadComparison {
    let epoch_seconds = job.epoch_seconds_estimate();
    let standard_execution = epoch_seconds;
    let standard_profiling = epoch_seconds * PROFILING_OVERHEAD_FRACTION;

    let opts = ProfilerOptions {
        sampling: sampled,
        max_recorded_ranks: 1,
        ..Default::default()
    };
    let profile = profile_job(job, &opts, 0);
    // Normalize the sampled execution to a per-epoch figure.
    let epochs = sampled.epochs().max(1) as f64;
    OverheadComparison {
        standard_execution_seconds: standard_execution,
        standard_profiling_seconds: standard_profiling,
        efficient_execution_seconds: profile.execution_seconds / epochs,
        efficient_profiling_seconds: profile.profiling_seconds / epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use extradeep_sim::{Benchmark, ParallelStrategy, ScalingMode, SyncMode, SystemConfig};

    fn job(benchmark: Benchmark) -> TrainingJob {
        TrainingJob {
            system: SystemConfig::deep(),
            benchmark,
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks: 64,
        }
    }

    #[test]
    fn efficient_sampling_reduces_profiling_time_massively() {
        let cmp = compare_overhead(
            &job(Benchmark::cifar10()),
            SamplingStrategy::paper_default(),
        );
        let red = cmp.profiling_reduction_percent();
        assert!(red > 85.0, "reduction {red}%");
        assert!(red < 100.0);
    }

    #[test]
    fn reduction_is_larger_for_long_benchmarks() {
        // Paper: "especially effective for large and long-running benchmarks
        // such as ImageNet and less effective for short-running ... IMDB".
        let imagenet = compare_overhead(
            &job(Benchmark::imagenet()),
            SamplingStrategy::paper_default(),
        );
        let imdb = compare_overhead(&job(Benchmark::imdb()), SamplingStrategy::paper_default());
        assert!(
            imagenet.profiling_reduction_percent() > imdb.profiling_reduction_percent(),
            "ImageNet {:.1}% vs IMDB {:.1}%",
            imagenet.profiling_reduction_percent(),
            imdb.profiling_reduction_percent()
        );
    }

    #[test]
    fn overhead_fraction_matches_the_profiler_constant() {
        let cmp = compare_overhead(
            &job(Benchmark::cifar10()),
            SamplingStrategy::paper_default(),
        );
        assert!((cmp.overhead_fraction() - PROFILING_OVERHEAD_FRACTION).abs() < 1e-9);
    }
}
