//! Experiment runner: executes a series of measurement configurations (rank
//! counts × repetitions) in parallel and collects the profiles.

use crate::dataset::ScalingMode;
use crate::engine::TrainingJob;
use crate::profiler::{profile_job, ProfilerOptions};
use crate::strategy::{ParallelStrategy, SyncMode};
use crate::system::SystemConfig;
use crate::workload::Benchmark;
use extradeep_trace::ExperimentProfiles;
use rayon::prelude::*;

/// A planned series of performance experiments for one application.
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    pub system: SystemConfig,
    pub benchmark: Benchmark,
    pub strategy: ParallelStrategy,
    pub scaling: ScalingMode,
    pub sync: SyncMode,
    /// Rank counts to measure, e.g. `[2, 4, 6, 8, 10]`.
    pub rank_counts: Vec<u32>,
    /// Batch sizes to sweep for multi-parameter experiments `P(x1, x2)`;
    /// empty = the benchmark's default batch size only.
    pub batch_sizes: Vec<u64>,
    /// Measurement repetitions per configuration.
    pub repetitions: u32,
    pub profiler: ProfilerOptions,
}

impl ExperimentSpec {
    /// The paper's case-study setup: ResNet-50 / CIFAR-10, data parallel,
    /// weak scaling on DEEP, five repetitions.
    pub fn case_study(rank_counts: Vec<u32>) -> Self {
        ExperimentSpec {
            system: SystemConfig::deep(),
            benchmark: Benchmark::cifar10(),
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            rank_counts,
            batch_sizes: Vec::new(),
            repetitions: 5,
            profiler: ProfilerOptions::default(),
        }
    }

    fn job(&self, ranks: u32, batch: u64) -> TrainingJob {
        let mut benchmark = self.benchmark.clone();
        benchmark.batch_size = batch;
        TrainingJob {
            system: self.system.clone(),
            benchmark,
            strategy: self.strategy,
            scaling: self.scaling,
            sync: self.sync,
            ranks,
        }
    }

    /// The effective batch sweep: the configured list, or the benchmark's
    /// default batch size.
    fn batches(&self) -> Vec<u64> {
        if self.batch_sizes.is_empty() {
            vec![self.benchmark.batch_size]
        } else {
            self.batch_sizes.clone()
        }
    }

    /// Runs every (configuration × repetition), parallelized with Rayon.
    pub fn run(&self) -> ExperimentProfiles {
        let _span = extradeep_obs::span("sim.run_experiment");
        let batches = self.batches();
        let mut profiler = self.profiler;
        // A swept batch size must appear in the coordinates, or different
        // configurations would collide.
        if self.batch_sizes.len() > 1 {
            profiler.record_batch_parameter = true;
        }
        let tasks: Vec<(u32, u64, u32)> = self
            .rank_counts
            .iter()
            .filter(|&&r| self.strategy.supports_ranks(r))
            .flat_map(|&r| {
                batches
                    .iter()
                    .flat_map(move |&b| (0..self.repetitions).map(move |rep| (r, b, rep)))
            })
            .collect();
        let profiles: Vec<_> = tasks
            .par_iter()
            .map(|&(ranks, batch, rep)| {
                let _span = extradeep_obs::span("sim.profile_job");
                profile_job(&self.job(ranks, batch), &profiler, rep)
            })
            .collect();
        let mut exp = ExperimentProfiles::new();
        for p in profiles {
            exp.push(p);
        }
        exp
    }

    /// Analytic (noise-free) epoch-time estimate at a rank count; used by
    /// overhead studies and as a ground-truth oracle in tests.
    pub fn epoch_seconds_estimate(&self, ranks: u32) -> f64 {
        self.job(ranks, self.benchmark.batch_size)
            .epoch_seconds_estimate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_configs_and_reps() {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6]);
        spec.repetitions = 3;
        spec.profiler.max_recorded_ranks = 2;
        let exp = spec.run();
        assert_eq!(exp.len(), 9);
        assert_eq!(exp.configs().len(), 3);
    }

    #[test]
    fn unsupported_rank_counts_are_skipped() {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6, 8]);
        spec.strategy = ParallelStrategy::TensorParallel { group: 4 };
        spec.repetitions = 1;
        spec.profiler.max_recorded_ranks = 1;
        let exp = spec.run();
        // 2 and 6 are not multiples of the tensor group (4).
        assert_eq!(exp.configs().len(), 2);
    }

    #[test]
    fn batch_sweep_creates_a_grid() {
        let mut spec = ExperimentSpec::case_study(vec![2, 4]);
        spec.batch_sizes = vec![128, 256, 512];
        spec.repetitions = 1;
        spec.profiler.max_recorded_ranks = 1;
        let exp = spec.run();
        assert_eq!(exp.configs().len(), 6);
        // Batch appears as the second coordinate.
        let c = exp.configs()[0].clone();
        assert_eq!(c.parameter_names(), vec!["ranks", "batch"]);
        // Larger batches mean fewer steps per epoch but longer steps; the
        // meta must reflect the swept batch.
        let b128 = exp
            .profiles
            .iter()
            .find(|p| p.config.value("batch") == Some(128.0))
            .unwrap();
        let b512 = exp
            .profiles
            .iter()
            .find(|p| p.config.value("batch") == Some(512.0))
            .unwrap();
        assert_eq!(b128.meta.batch_size, 128);
        assert!(b128.meta.training_steps_per_epoch() > b512.meta.training_steps_per_epoch());
    }

    #[test]
    fn run_is_deterministic() {
        let mut spec = ExperimentSpec::case_study(vec![2, 4]);
        spec.repetitions = 2;
        spec.profiler.max_recorded_ranks = 2;
        assert_eq!(spec.run(), spec.run());
    }

    #[test]
    fn repetitions_vary_but_share_medians_roughly() {
        let mut spec = ExperimentSpec::case_study(vec![4]);
        spec.repetitions = 2;
        spec.profiler.max_recorded_ranks = 1;
        let exp = spec.run();
        let a = exp.profiles[0].execution_seconds;
        let b = exp.profiles[1].execution_seconds;
        assert_ne!(a, b);
        assert!((a - b).abs() / a < 0.25, "reps too far apart: {a} vs {b}");
    }
}
