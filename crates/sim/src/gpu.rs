//! GPU kernel cost model.
//!
//! Converts a layer's work (FLOPs, activation traffic) into kernel execution
//! times on a given GPU. Tensor ops (conv/GEMM/LSTM/attention) are costed by
//! FLOPs against a utilization-scaled peak; elementwise and normalization
//! kernels are memory-bandwidth-bound; every kernel pays a launch overhead.

use crate::dnn::layer::{Layer, Shape};
use crate::system::GpuSpec;

/// Fraction of peak FP32 the GPU sustains for each tensor-op flavor.
/// Depthwise convolutions are memory-bound and sustain far less.
fn tensor_op_efficiency(layer: &Layer, spatial_elems: usize) -> f64 {
    let base = match layer {
        Layer::Conv2d {
            groups,
            in_channels,
            ..
        } if *groups == *in_channels && *groups > 1 => 0.10,
        Layer::Conv2d { .. } => 0.52,
        Layer::Dense { .. } => 0.60,
        Layer::Lstm { .. } => 0.30,
        Layer::SelfAttention { .. } => 0.42,
        Layer::TokenMlp { .. } => 0.55,
        _ => 0.40,
    };
    // Small problems underutilize the GPU: scale efficiency down when the
    // per-kernel work is tiny (few output elements to parallelize over).
    let utilization = (spatial_elems as f64 / 50_000.0).clamp(0.08, 1.0);
    base * utilization
}

/// Time for the forward kernel of `layer` over a batch, in seconds.
pub fn forward_kernel_seconds(gpu: &GpuSpec, layer: &Layer, input: &Shape, batch: u64) -> f64 {
    let launch = gpu.launch_overhead_us * 1e-6;
    let out_elems = layer.output_shape(input).elements();
    if layer.is_tensor_op() {
        let flops = layer.forward_flops(input) as f64 * batch as f64;
        let eff = tensor_op_efficiency(layer, out_elems * batch as usize);
        launch + flops / (gpu.fp32_tflops * 1e12 * eff)
    } else {
        // Read input + write output, fp32.
        let bytes = 4.0 * (input.elements() + out_elems) as f64 * batch as f64;
        // Elementwise kernels reach ~70% of peak bandwidth.
        launch + bytes / (gpu.mem_bandwidth_gbs * 1e9 * 0.7)
    }
}

/// Time for the backward kernels of `layer`, in seconds. Backward performs
/// roughly twice the forward work for tensor ops (dgrad + wgrad) and the same
/// traffic again for elementwise layers.
pub fn backward_kernel_seconds(gpu: &GpuSpec, layer: &Layer, input: &Shape, batch: u64) -> f64 {
    let fwd = forward_kernel_seconds(gpu, layer, input, batch);
    if layer.is_tensor_op() {
        2.0 * fwd
    } else {
        fwd
    }
}

/// Time for the optimizer update of `params` parameters (SGD+momentum reads
/// and writes weights, gradients, and momentum: ~6 fp32 streams).
pub fn weight_update_seconds(gpu: &GpuSpec, params: u64) -> f64 {
    let bytes = 6.0 * 4.0 * params as f64;
    gpu.launch_overhead_us * 1e-6 + bytes / (gpu.mem_bandwidth_gbs * 1e9 * 0.7)
}

/// Host-to-device copy time for `bytes` over the staging link.
pub fn h2d_seconds(host_to_device_gbs: f64, bytes: u64) -> f64 {
    bytes as f64 / (host_to_device_gbs * 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::GpuSpec;

    fn v100() -> GpuSpec {
        GpuSpec::v100()
    }

    #[test]
    fn conv_forward_time_scales_with_batch() {
        let l = Layer::conv(64, 64, 3, 1);
        let s = Shape::chw(64, 56, 56);
        let t32 = forward_kernel_seconds(&v100(), &l, &s, 32);
        let t256 = forward_kernel_seconds(&v100(), &l, &s, 256);
        assert!(t256 > 6.0 * t32, "t32 {t32} t256 {t256}");
    }

    #[test]
    fn backward_is_about_twice_forward_for_convs() {
        let l = Layer::conv(64, 128, 3, 1);
        let s = Shape::chw(64, 28, 28);
        let f = forward_kernel_seconds(&v100(), &l, &s, 128);
        let b = backward_kernel_seconds(&v100(), &l, &s, 128);
        assert!((b / f - 2.0).abs() < 1e-9);
    }

    #[test]
    fn elementwise_is_bandwidth_bound() {
        let relu = Layer::Activation(crate::dnn::layer::Activation::Relu);
        let s = Shape::chw(256, 56, 56);
        let t = forward_kernel_seconds(&v100(), &relu, &s, 64);
        // 2 * 4B * 256*56*56 * 64 / (900 GB/s * 0.7) ≈ 0.65 ms.
        assert!(t > 1e-4 && t < 3e-3, "t {t}");
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let relu = Layer::Activation(crate::dnn::layer::Activation::Relu);
        let s = Shape::vec1(16);
        let t = forward_kernel_seconds(&v100(), &relu, &s, 1);
        assert!(t >= 5e-6);
    }

    #[test]
    fn a100_is_faster_than_v100() {
        let l = Layer::conv(128, 128, 3, 1);
        let s = Shape::chw(128, 28, 28);
        let tv = forward_kernel_seconds(&GpuSpec::v100(), &l, &s, 256);
        let ta = forward_kernel_seconds(&GpuSpec::a100(), &l, &s, 256);
        assert!(ta < tv);
    }

    #[test]
    fn depthwise_conv_is_inefficient() {
        // Same FLOPs take longer per FLOP as a depthwise conv.
        let s = Shape::chw(128, 28, 28);
        let full = Layer::conv(128, 128, 3, 1);
        let dw = Layer::depthwise(128, 3, 1);
        let t_full = forward_kernel_seconds(&v100(), &full, &s, 64);
        let t_dw = forward_kernel_seconds(&v100(), &dw, &s, 64);
        // Depthwise has 128x fewer FLOPs but takes far more than 1/128 time.
        assert!(t_dw > t_full / 60.0);
    }

    #[test]
    fn weight_update_scales_with_params() {
        let small = weight_update_seconds(&v100(), 1_000_000);
        let large = weight_update_seconds(&v100(), 25_000_000);
        assert!(large > 10.0 * small);
    }

    #[test]
    fn h2d_matches_link_speed() {
        // 1.2 GB over 12 GB/s = 0.1 s.
        let t = h2d_seconds(12.0, 1_200_000_000);
        assert!((t - 0.1).abs() < 1e-9);
    }
}
