//! The five application benchmarks of the paper's evaluation: one synthetic
//! training application per dataset, each pairing a dataset with the DNN
//! architecture the paper uses for it (§4.1).

use crate::dataset::DatasetSpec;
use crate::dnn::arch::Architecture;
use serde::{Deserialize, Serialize};

/// One benchmark: a dataset, the DNN trained on it, and the batch size per
/// worker the paper's experiments use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Benchmark {
    pub name: String,
    pub dataset: DatasetSpec,
    pub architecture: Architecture,
    /// Batch size per worker `B`.
    pub batch_size: u64,
}

impl Benchmark {
    /// The short names accepted by [`Benchmark::from_name`], in paper order.
    pub const NAMES: &'static [&'static str] =
        &["cifar10", "cifar100", "imagenet", "imdb", "speech_commands"];

    /// Resolves a short benchmark name (see [`Benchmark::NAMES`]) to its
    /// paper configuration — the shared parser behind the CLI and the
    /// campaign spec.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        match name {
            "cifar10" => Some(Benchmark::cifar10()),
            "cifar100" => Some(Benchmark::cifar100()),
            "imagenet" => Some(Benchmark::imagenet()),
            "imdb" => Some(Benchmark::imdb()),
            "speech_commands" => Some(Benchmark::speech_commands()),
            _ => None,
        }
    }

    /// ResNet-50 on CIFAR-10 with B = 256 — the paper's case study.
    pub fn cifar10() -> Self {
        Benchmark {
            name: "CIFAR-10".to_string(),
            dataset: DatasetSpec::cifar10(),
            architecture: Architecture::resnet50(32, 10),
            batch_size: 256,
        }
    }

    pub fn cifar100() -> Self {
        Benchmark {
            name: "CIFAR-100".to_string(),
            dataset: DatasetSpec::cifar100(),
            architecture: Architecture::resnet50(32, 100),
            batch_size: 256,
        }
    }

    pub fn imagenet() -> Self {
        Benchmark {
            name: "ImageNet".to_string(),
            dataset: DatasetSpec::imagenet(),
            architecture: Architecture::efficientnet_b0(224, 1000),
            batch_size: 128,
        }
    }

    pub fn imdb() -> Self {
        Benchmark {
            name: "IMDB".to_string(),
            dataset: DatasetSpec::imdb(),
            architecture: Architecture::nnlm(20_000, 2),
            batch_size: 128,
        }
    }

    pub fn speech_commands() -> Self {
        Benchmark {
            name: "Speech Commands".to_string(),
            dataset: DatasetSpec::speech_commands(),
            architecture: Architecture::cnn10(12),
            batch_size: 128,
        }
    }

    /// Extension workload beyond the paper's five: a GPT-style Transformer
    /// language model on a WikiText-like corpus (the paper's introduction
    /// motivates Extra-Deep with exactly this class of models).
    pub fn gpt_small() -> Self {
        Benchmark {
            name: "GPT-small".to_string(),
            dataset: DatasetSpec::wikitext(),
            architecture: Architecture::transformer(12, 768, 12, 512, 50_257),
            batch_size: 16,
        }
    }

    /// All five benchmarks in the paper's presentation order.
    pub fn all() -> Vec<Benchmark> {
        vec![
            Benchmark::cifar10(),
            Benchmark::cifar100(),
            Benchmark::imagenet(),
            Benchmark::imdb(),
            Benchmark::speech_commands(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_benchmarks_cover_the_paper() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 5);
        let names: Vec<&str> = all.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "CIFAR-10",
                "CIFAR-100",
                "ImageNet",
                "IMDB",
                "Speech Commands"
            ]
        );
    }

    #[test]
    fn architecture_pairing_matches_paper() {
        assert_eq!(Benchmark::cifar10().architecture.name, "ResNet-50");
        assert_eq!(Benchmark::cifar100().architecture.name, "ResNet-50");
        assert_eq!(Benchmark::imagenet().architecture.name, "EfficientNet-B0");
        assert_eq!(Benchmark::imdb().architecture.name, "NNLM");
        assert_eq!(Benchmark::speech_commands().architecture.name, "CNN-10");
    }

    #[test]
    fn case_study_batch_size_is_256() {
        assert_eq!(Benchmark::cifar10().batch_size, 256);
    }

    #[test]
    fn gpt_small_extension_workload() {
        let gpt = Benchmark::gpt_small();
        assert_eq!(gpt.architecture.name, "Transformer-12x768");
        // Per-step compute exceeds every paper benchmark despite the small
        // batch: exactly the GPT-scale motivation of the paper's intro.
        let per_step =
            |b: &Benchmark| b.architecture.forward_flops_per_sample() as f64 * b.batch_size as f64;
        let max_paper = Benchmark::all()
            .iter()
            .map(&per_step)
            .fold(0.0f64, f64::max);
        assert!(per_step(&gpt) > max_paper, "GPT must be the heaviest");
    }

    #[test]
    fn imagenet_is_the_heaviest_per_step() {
        let per_step =
            |b: &Benchmark| b.architecture.forward_flops_per_sample() as f64 * b.batch_size as f64;
        let all = Benchmark::all();
        let imagenet = per_step(&all[2]);
        let imdb = per_step(&all[3]);
        assert!(imagenet > 10.0 * imdb, "ratio {}", imagenet / imdb);
    }
}
