//! The training-step cost engine.
//!
//! For a [`TrainingJob`] (system × benchmark × strategy × scaling × ranks)
//! the engine builds deterministic *step plans*: the list of kernel rows one
//! rank executes for a training step, a validation step, program
//! initialization, and the epoch boundary. The profiler replays these plans
//! with noise to produce traces; analytic epoch-time estimates reuse the same
//! plans, so both paths agree by construction.

use crate::dataset::ScalingMode;
use crate::dnn::layer::Layer;
use crate::gpu;
use crate::kernels;
use crate::network::{collective_cost, Collective};
use crate::strategy::{ParallelStrategy, SyncMode};
use crate::system::SystemConfig;
use crate::workload::Benchmark;
use extradeep_trace::{ApiDomain, TrainingMeta};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Calibration constants of the simulator (documented in DESIGN.md).
mod calib {
    /// Fraction of raw InfiniBand bandwidth a host-staged (non-NCCL) Horovod
    /// allreduce sustains.
    pub const MPI_ALLREDUCE_EFFICIENCY: f64 = 0.12;
    /// Quadratic-in-log2(nodes) congestion factor of the flat MPI path; this
    /// is what bends weak-scaling communication into the `~log²` growth the
    /// paper measures (T_comm: 34 s @2 → 297 s @64 for the case study).
    pub const MPI_CONGESTION_PER_LOG2_SQ: f64 = 0.18;
    /// Python / framework host orchestration time per step, seconds.
    pub const HOST_OVERHEAD_PER_STEP: f64 = 0.045;
    /// CPU time of one library API dispatch (cuDNN/cuBLAS), seconds.
    pub const API_CALL_SECONDS: f64 = 18e-6;
    /// CPU time of one cudaLaunchKernel, seconds.
    pub const LAUNCH_API_SECONDS: f64 = 3.5e-6;
    /// Sustained read bandwidth of the parallel filesystem per rank, B/s.
    pub const FS_READ_BPS: f64 = 1.2e9;
    /// Sustained write bandwidth (checkpointing), B/s.
    pub const FS_WRITE_BPS: f64 = 0.8e9;
    /// Number of gradient fusion buffers Horovod negotiates per step.
    pub const FUSION_BUFFERS: u64 = 8;
}

/// Training-phase region of a planned row, for the NVTX call tree
/// (paper Fig. 1: "Calltree: kernel models"). Derived from the kernel's
/// identity: the six phases of §2.2 (I/O, preprocessing, forward,
/// backward, gradient exchange, weight update) plus host bookkeeping.
pub fn phase_region(name: &str, domain: ApiDomain) -> &'static str {
    match domain {
        ApiDomain::Mpi | ApiDomain::Nccl => "exchange",
        ApiDomain::Io => "input",
        ApiDomain::MemSet => "update",
        ApiDomain::MemCpy => {
            if name.contains("DtoH") {
                "output"
            } else {
                "input"
            }
        }
        ApiDomain::Os => {
            if name == "read" || name == "mmap" {
                "input"
            } else if name == "write" || name == "fsync" {
                "checkpoint"
            } else {
                "host"
            }
        }
        ApiDomain::CudaApi => "host",
        ApiDomain::Nvtx => {
            if name.contains("data_prep") {
                "input"
            } else {
                "host"
            }
        }
        ApiDomain::CudaKernel | ApiDomain::CuBlas | ApiDomain::CuDnn => {
            if name.contains("bgrad")
                || name.contains("_grad")
                || name.contains("Backward")
                || name.contains("bw_")
            {
                "backward"
            } else if name.contains("sgd") || name.contains("update") {
                "update"
            } else {
                "forward"
            }
        }
    }
}

/// One planned kernel row: `visits` executions totalling `seconds`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedKernel {
    pub name: Arc<str>,
    pub domain: ApiDomain,
    pub seconds: f64,
    pub visits: u64,
    pub bytes: Option<u64>,
    /// Whether this row is subject to run-to-run noise (communication and
    /// compute are; pure bookkeeping rows are not).
    pub noisy: bool,
}

/// An ordered list of kernel rows executed back to back.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StepPlan {
    pub rows: Vec<PlannedKernel>,
}

impl StepPlan {
    pub fn seconds(&self) -> f64 {
        self.rows.iter().map(|r| r.seconds).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// All plans of a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobPlans {
    /// Program start: dataset load, weight broadcast, allocator warm-up.
    pub init: StepPlan,
    /// One training step.
    pub train_step: StepPlan,
    /// One validation step (forward only).
    pub val_step: StepPlan,
    /// Epoch boundary: checkpointing.
    pub epoch_end: StepPlan,
    /// Communication the ASP mode issues *between* steps (empty under BSP).
    pub async_comm: StepPlan,
}

/// A fully specified simulated training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingJob {
    pub system: SystemConfig,
    pub benchmark: Benchmark,
    pub strategy: ParallelStrategy,
    pub scaling: ScalingMode,
    pub sync: SyncMode,
    /// Number of MPI ranks `x1` (one rank per GPU).
    pub ranks: u32,
}

/// Internal accumulator that merges rows by kernel name.
#[derive(Default)]
struct RowAccum {
    order: Vec<Arc<str>>,
    rows: BTreeMap<Arc<str>, PlannedKernel>,
}

impl RowAccum {
    fn add(
        &mut self,
        name: impl Into<Arc<str>>,
        domain: ApiDomain,
        seconds: f64,
        visits: u64,
        bytes: Option<u64>,
        noisy: bool,
    ) {
        let name = name.into();
        match self.rows.get_mut(&name) {
            Some(row) => {
                row.seconds += seconds;
                row.visits += visits;
                if let Some(b) = bytes {
                    row.bytes = Some(row.bytes.unwrap_or(0) + b);
                }
            }
            None => {
                self.order.push(name.clone());
                self.rows.insert(
                    name.clone(),
                    PlannedKernel {
                        name,
                        domain,
                        seconds,
                        visits,
                        bytes,
                        noisy,
                    },
                );
            }
        }
    }

    fn finish(mut self) -> StepPlan {
        StepPlan {
            rows: self
                .order
                .drain(..)
                .map(|n| self.rows.remove(&n).expect("row recorded"))
                .collect(),
        }
    }
}

impl TrainingJob {
    /// The analytic training values Extra-Deep needs once per application
    /// (paper §2.3.1), matching the paper's `G = x1` convention.
    pub fn training_meta(&self) -> TrainingMeta {
        let g = self.strategy.data_parallel_degree(self.ranks);
        let m = self.strategy.model_parallel_degree();
        let replicas = self.strategy.replicas(self.ranks);
        TrainingMeta {
            batch_size: self.benchmark.batch_size,
            train_samples: self
                .benchmark
                .dataset
                .effective_train_samples(self.scaling, replicas),
            val_samples: self.benchmark.dataset.val_samples,
            data_parallel: g,
            model_parallel: m,
            cores_per_rank: self.system.cores_per_rank,
        }
    }

    /// Number of GPUs sharing one model instance.
    fn model_shard(&self) -> f64 {
        self.strategy.model_parallel_degree() as f64
    }

    /// Straggler wait a BSP collective absorbs: the expected max of
    /// log-normal per-rank step times exceeds the median by roughly
    /// `exp(σ·sqrt(2·ln p)) - 1`.
    fn straggler_seconds(&self, compute_seconds: f64) -> f64 {
        let p = self.ranks.max(1) as f64;
        if p < 2.0 {
            return 0.0;
        }
        let sigma = self.system.noise.sigma_at(self.ranks);
        ((sigma * (2.0 * p.ln()).sqrt()).exp() - 1.0) * compute_seconds
    }

    /// Effective bandwidth of a flat host-staged MPI allreduce (the DEEP
    /// path): a small fraction of line rate, degrading quadratically in
    /// log2(nodes).
    fn mpi_allreduce_bandwidth_gbs(&self) -> f64 {
        let nodes = self.system.nodes_for_ranks(self.ranks).max(1) as f64;
        let l = nodes.log2();
        let mut bw = self.system.interconnect.bandwidth_gbs * calib::MPI_ALLREDUCE_EFFICIENCY
            / (1.0 + calib::MPI_CONGESTION_PER_LOG2_SQ * l * l);
        // Optional algorithm switch: beyond the threshold the MPI library
        // falls back to a slower algorithm — the scale-dependent behavior
        // change the paper's §4.3 warns measurement ranges can straddle.
        if let Some(switch) = self.system.interconnect.algorithm_switch_nodes {
            if nodes > switch as f64 {
                bw *= 0.45;
            }
        }
        bw
    }

    /// Time and wire bytes of the per-step gradient allreduce for `bytes`
    /// payload across the data-parallel width.
    fn gradient_allreduce(&self, bytes: u64) -> (f64, u64, &'static str, ApiDomain) {
        let p = self.ranks;
        if p <= 1 || bytes == 0 {
            return (0.0, 0, "MPI_Allreduce", ApiDomain::Mpi);
        }
        if self.system.nccl {
            let c = collective_cost(&self.system, Collective::Allreduce, bytes, p);
            (
                c.seconds,
                c.wire_bytes,
                Collective::Allreduce.nccl_name(),
                ApiDomain::Nccl,
            )
        } else {
            let bw = self.mpi_allreduce_bandwidth_gbs();
            let alpha = self.system.interconnect.latency_us * 1e-6;
            let ring = 2.0 * (p - 1) as f64 / p as f64 * bytes as f64 / (bw * 1e9);
            let latency = 2.0 * (p - 1) as f64 * alpha * calib::FUSION_BUFFERS as f64;
            let staging = 2.0 * bytes as f64 / (self.system.node.host_to_device_gbs * 1e9);
            let wire = (2.0 * bytes as f64 * (p - 1) as f64 / p as f64) as u64;
            (
                ring + latency + staging,
                wire,
                Collective::Allreduce.mpi_name(),
                ApiDomain::Mpi,
            )
        }
    }

    /// Builds the plan of one training or validation step.
    fn step_plan(&self, training: bool) -> StepPlan {
        let mut acc = RowAccum::default();
        let gpu = &self.system.node.gpu;
        let arch_prefix = kernels::gpu_arch_prefix(&gpu.name);
        let batch = self.benchmark.batch_size;
        let m = self.model_shard();
        let dataset = &self.benchmark.dataset;

        // --- Input pipeline: fetch, preprocess, stage to device. ---
        let sample_bytes = batch * dataset.bytes_per_sample;
        acc.add(
            "read",
            ApiDomain::Os,
            sample_bytes as f64 / calib::FS_READ_BPS,
            batch / 32 + 1,
            Some(sample_bytes),
            true,
        );
        let prep_seconds = dataset.preprocess_us_per_sample * 1e-6 * batch as f64
            / self.system.cores_per_rank.min(8) as f64;
        acc.add(
            "train.data_prep",
            ApiDomain::Nvtx,
            prep_seconds,
            1,
            None,
            true,
        );
        let input_tensor_bytes = 4 * self.benchmark.architecture.input.elements() as u64 * batch;
        acc.add(
            "CUDA memcpy HtoD",
            ApiDomain::MemCpy,
            gpu::h2d_seconds(self.system.node.host_to_device_gbs, input_tensor_bytes),
            2,
            Some(input_tensor_bytes),
            true,
        );

        // --- Forward (and backward) through the network. ---
        let mut shape = self.benchmark.architecture.input.clone();
        let mut launches: u64 = 0;
        let mut compute_seconds = 0.0;
        let mut tp_activation_bytes: u64 = 0;
        for nl in &self.benchmark.architecture.layers {
            let layer = &nl.layer;
            if matches!(layer, Layer::Flatten) {
                shape = layer.output_shape(&shape);
                continue;
            }
            // Model-parallel sharding divides per-rank work.
            let fwd = gpu::forward_kernel_seconds(gpu, layer, &shape, batch) / m;
            let fwd_name = kernels::forward_kernel_name(arch_prefix, layer, &nl.name);
            acc.add(fwd_name, ApiDomain::CudaKernel, fwd, 1, None, true);
            compute_seconds += fwd;
            launches += 1;
            if let Some(api) = kernels::api_call_name(layer, false) {
                let dom = if api.starts_with("cublas") {
                    ApiDomain::CuBlas
                } else {
                    ApiDomain::CuDnn
                };
                acc.add(api, dom, calib::API_CALL_SECONDS, 1, None, true);
            }

            if training {
                let bwd = gpu::backward_kernel_seconds(gpu, layer, &shape, batch) / m;
                let bwd_name = kernels::backward_kernel_name(arch_prefix, layer, &nl.name);
                acc.add(bwd_name, ApiDomain::CudaKernel, bwd, 1, None, true);
                compute_seconds += bwd;
                launches += 1;
                if let Some(api) = kernels::api_call_name(layer, true) {
                    let dom = if api.starts_with("cublas") {
                        ApiDomain::CuBlas
                    } else {
                        ApiDomain::CuDnn
                    };
                    acc.add(api, dom, calib::API_CALL_SECONDS, 1, None, true);
                }
            }

            if layer.is_tensor_op() {
                tp_activation_bytes += layer.activation_bytes(&shape) * batch;
            }
            shape = layer.output_shape(&shape);
        }

        // --- Strategy-specific communication. ---
        let grad_bytes = self.benchmark.architecture.gradient_bytes();
        match self.strategy {
            ParallelStrategy::DataParallel => {
                if training {
                    self.add_gradient_exchange(&mut acc, grad_bytes, compute_seconds);
                }
            }
            ParallelStrategy::TensorParallel { group } => {
                // Intra-group activation allgathers after every tensor op,
                // forward and (in training) backward.
                let group = group.min(self.ranks);
                let passes = if training { 2 } else { 1 };
                let payload = (tp_activation_bytes as f64 / m) as u64;
                let c = collective_cost(&self.system, Collective::Allgather, payload, group);
                let (name, dom) = if self.system.nccl {
                    (Collective::Allgather.nccl_name(), ApiDomain::Nccl)
                } else {
                    (Collective::Allgather.mpi_name(), ApiDomain::Mpi)
                };
                acc.add(
                    name,
                    dom,
                    c.seconds * passes as f64,
                    self.tensor_op_count() * passes,
                    Some(c.wire_bytes * passes),
                    true,
                );
                // Occasional layout exchange within the group.
                let at = collective_cost(&self.system, Collective::Alltoall, payload / 4, group);
                acc.add(
                    if self.system.nccl {
                        Collective::Alltoall.nccl_name()
                    } else {
                        Collective::Alltoall.mpi_name()
                    },
                    if self.system.nccl {
                        ApiDomain::Nccl
                    } else {
                        ApiDomain::Mpi
                    },
                    at.seconds,
                    1,
                    Some(at.wire_bytes),
                    true,
                );
                if training {
                    // Gradient allreduce of this rank's parameter shard
                    // across the replica groups.
                    self.add_gradient_exchange(
                        &mut acc,
                        (grad_bytes as f64 / m) as u64,
                        compute_seconds,
                    );
                }
            }
            ParallelStrategy::PipelineParallel {
                stages,
                microbatches,
            } => {
                let stages = stages.min(self.ranks);
                // Stage-boundary activations per microbatch, both directions.
                let micro = batch / microbatches.max(1) as u64;
                let cut_bytes = 4
                    * (self.benchmark.architecture.activation_bytes_per_sample()
                        / self.benchmark.architecture.layers.len() as u64)
                    * micro;
                let per_send = collective_cost(&self.system, Collective::SendRecv, cut_bytes, 2);
                let sends = microbatches as u64 * if training { 2 } else { 1 };
                acc.add(
                    Collective::SendRecv.mpi_name(),
                    ApiDomain::Mpi,
                    per_send.seconds * sends as f64,
                    sends,
                    Some(per_send.wire_bytes * sends),
                    true,
                );
                // Pipeline bubble: idle fraction (s-1)/(mb+s-1) of compute.
                let bubble = compute_seconds * (stages - 1) as f64
                    / (microbatches + stages - 1).max(1) as f64;
                acc.add(
                    "train.pipeline_flush",
                    ApiDomain::Nvtx,
                    bubble,
                    1,
                    None,
                    true,
                );
                if training {
                    self.add_gradient_exchange(
                        &mut acc,
                        (grad_bytes as f64 / m) as u64,
                        compute_seconds,
                    );
                }
            }
        }

        // --- Optimizer update (training only). ---
        if training {
            let upd = gpu::weight_update_seconds(gpu, grad_bytes / 4) / m;
            acc.add(
                "sgd_momentum_update_kernel",
                ApiDomain::CudaKernel,
                upd,
                1,
                None,
                true,
            );
            launches += 1;
            let memset_bytes = (grad_bytes as f64 / m) as u64;
            acc.add(
                "CUDA memset",
                ApiDomain::MemSet,
                memset_bytes as f64 / (gpu.mem_bandwidth_gbs * 1e9),
                1,
                Some(memset_bytes),
                true,
            );
        }

        // Loss scalar back to host.
        acc.add(
            "CUDA memcpy DtoH",
            ApiDomain::MemCpy,
            5e-6,
            1,
            Some(4 * batch),
            false,
        );

        // --- CUDA API and OS bookkeeping. ---
        acc.add(
            "cudaLaunchKernel",
            ApiDomain::CudaApi,
            launches as f64 * calib::LAUNCH_API_SECONDS,
            launches,
            None,
            false,
        );
        acc.add(
            "cudaStreamSynchronize",
            ApiDomain::CudaApi,
            12e-6,
            2,
            None,
            true,
        );
        acc.add("ioctl", ApiDomain::Os, 8e-6, 4, None, true);
        acc.add("sched_yield", ApiDomain::Os, 4e-6, 6, None, true);

        // Host-side framework orchestration.
        acc.add(
            if training {
                "train.training_step"
            } else {
                "test.validation_step"
            },
            ApiDomain::Nvtx,
            calib::HOST_OVERHEAD_PER_STEP,
            1,
            None,
            true,
        );

        acc.finish()
    }

    /// Adds the per-step gradient exchange (BSP: blocking row in the step;
    /// ASP handled by the profiler via [`JobPlans::async_comm`]).
    fn add_gradient_exchange(&self, acc: &mut RowAccum, bytes: u64, compute_seconds: f64) {
        if self.ranks <= 1 {
            return;
        }
        let (mut seconds, wire, name, domain) = self.gradient_allreduce(bytes);
        match self.sync {
            SyncMode::Bsp => {
                seconds += self.straggler_seconds(compute_seconds);
            }
            SyncMode::Asp => {
                // Overlapped: the blocking remainder in the step is small;
                // the bulk is emitted asynchronously by the profiler.
                seconds *= 0.25;
            }
        }
        acc.add(
            name,
            domain,
            seconds,
            calib::FUSION_BUFFERS,
            Some(wire),
            true,
        );
        // Horovod-style coordination traffic.
        acc.add(
            "MPI_Allgather",
            ApiDomain::Mpi,
            self.ranks as f64 * 2e-6,
            1,
            Some(64 * self.ranks as u64),
            true,
        );
    }

    fn tensor_op_count(&self) -> u64 {
        self.benchmark
            .architecture
            .layers
            .iter()
            .filter(|l| l.layer.is_tensor_op())
            .count() as u64
    }

    /// The initialization plan (program start / first use).
    fn init_plan(&self) -> StepPlan {
        let mut acc = RowAccum::default();
        let meta = self.training_meta();
        let replicas = self.strategy.replicas(self.ranks).max(1) as u64;
        let shard_bytes = meta.train_samples / replicas * self.benchmark.dataset.bytes_per_sample;
        acc.add(
            "read",
            ApiDomain::Os,
            shard_bytes as f64 / calib::FS_READ_BPS * 0.1, // streamed lazily
            64,
            Some(shard_bytes / 10),
            true,
        );
        acc.add("mmap", ApiDomain::Os, 300e-6, 12, None, false);
        acc.add("cudaMalloc", ApiDomain::CudaApi, 90e-3, 40, None, false);
        if self.ranks > 1 {
            let bytes = self.benchmark.architecture.gradient_bytes();
            let c = collective_cost(&self.system, Collective::Broadcast, bytes, self.ranks);
            acc.add(
                Collective::Broadcast.mpi_name(),
                ApiDomain::Mpi,
                c.seconds,
                1,
                Some(c.wire_bytes),
                true,
            );
            let b = collective_cost(&self.system, Collective::Barrier, 0, self.ranks);
            acc.add(
                Collective::Barrier.mpi_name(),
                ApiDomain::Mpi,
                b.seconds,
                1,
                None,
                true,
            );
        }
        acc.add("train", ApiDomain::Nvtx, 1e-3, 1, None, false);
        acc.finish()
    }

    /// Epoch-boundary plan: checkpoint write by every rank's shard.
    fn epoch_end_plan(&self) -> StepPlan {
        let mut acc = RowAccum::default();
        let ckpt_bytes = self.benchmark.architecture.gradient_bytes() / self.model_shard() as u64;
        acc.add(
            "write",
            ApiDomain::Os,
            ckpt_bytes as f64 / calib::FS_WRITE_BPS,
            8,
            Some(ckpt_bytes),
            true,
        );
        acc.add("fsync", ApiDomain::Os, 2e-3, 1, None, true);
        acc.finish()
    }

    /// Device memory one rank needs, in GB: model states (weights +
    /// gradients + optimizer momentum, fp32) on this rank's shard plus the
    /// activations of its batch (with gradient checkpointing assumed off).
    pub fn memory_required_gb(&self) -> f64 {
        let m = self.model_shard();
        let params = self.benchmark.architecture.params() as f64 / m;
        let states = 3.0 * 4.0 * params;
        let activations = self.benchmark.architecture.activation_bytes_per_sample() as f64
            * self.benchmark.batch_size as f64
            / m;
        (states + activations) / 1e9
    }

    /// Whether the job fits the GPU memory of the system — the technical
    /// feasibility boundary of the paper's Fig. 4a ("technically feasible").
    pub fn fits_in_memory(&self) -> bool {
        self.memory_required_gb() <= self.system.node.gpu.mem_gb
    }

    /// Builds all plans.
    pub fn plans(&self) -> JobPlans {
        let train_step = self.step_plan(true);
        let async_comm = match self.sync {
            SyncMode::Bsp => StepPlan::default(),
            SyncMode::Asp => {
                let mut acc = RowAccum::default();
                let bytes = self.benchmark.architecture.gradient_bytes();
                let (seconds, wire, name, domain) =
                    self.gradient_allreduce((bytes as f64 / self.model_shard()) as u64);
                acc.add(
                    name,
                    domain,
                    seconds * 0.75,
                    calib::FUSION_BUFFERS,
                    Some(wire),
                    true,
                );
                acc.finish()
            }
        };
        JobPlans {
            init: self.init_plan(),
            train_step,
            val_step: self.step_plan(false),
            epoch_end: self.epoch_end_plan(),
            async_comm,
        }
    }

    /// Noise-free per-epoch runtime estimate, in seconds.
    pub fn epoch_seconds_estimate(&self) -> f64 {
        let meta = self.training_meta();
        let plans = self.plans();
        let n_t = meta.training_steps_per_epoch() as f64;
        let n_v = meta.validation_steps_per_epoch() as f64;
        n_t * (plans.train_step.seconds() + plans.async_comm.seconds())
            + n_v * plans.val_step.seconds()
            + plans.epoch_end.seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ScalingMode;
    use crate::noise::NoiseProfile;

    fn cifar_job(ranks: u32) -> TrainingJob {
        TrainingJob {
            system: SystemConfig::deep(),
            benchmark: Benchmark::cifar10(),
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks,
        }
    }

    #[test]
    fn meta_matches_paper_conventions() {
        let job = cifar_job(8);
        let meta = job.training_meta();
        assert_eq!(meta.data_parallel, 8);
        assert_eq!(meta.model_parallel, 1);
        assert_eq!(meta.batch_size, 256);
        // Weak scaling: dataset grows with ranks, per-worker steps constant.
        assert_eq!(
            meta.training_steps_per_epoch(),
            cifar_job(2).training_meta().training_steps_per_epoch()
        );
    }

    #[test]
    fn strong_scaling_reduces_steps() {
        let weak = TrainingJob {
            scaling: ScalingMode::Weak,
            ..cifar_job(16)
        };
        let strong = TrainingJob {
            scaling: ScalingMode::Strong,
            ..cifar_job(16)
        };
        assert!(
            strong.training_meta().training_steps_per_epoch()
                < weak.training_meta().training_steps_per_epoch()
        );
    }

    #[test]
    fn train_step_has_rich_kernel_population() {
        let plan = cifar_job(4).plans().train_step;
        assert!(plan.rows.len() > 40, "only {} rows", plan.rows.len());
        let domains: std::collections::HashSet<ApiDomain> =
            plan.rows.iter().map(|r| r.domain).collect();
        for d in [
            ApiDomain::CudaKernel,
            ApiDomain::CuDnn,
            ApiDomain::CuBlas,
            ApiDomain::Mpi,
            ApiDomain::MemCpy,
            ApiDomain::MemSet,
            ApiDomain::Os,
            ApiDomain::Nvtx,
            ApiDomain::CudaApi,
        ] {
            assert!(domains.contains(&d), "missing domain {d:?}");
        }
    }

    #[test]
    fn validation_step_is_cheaper_and_commless() {
        let plans = cifar_job(8).plans();
        assert!(plans.val_step.seconds() < plans.train_step.seconds() * 0.75);
        assert!(!plans
            .val_step
            .rows
            .iter()
            .any(|r| r.name.contains("Allreduce")));
    }

    #[test]
    fn weak_scaling_epoch_time_grows_with_ranks() {
        let t2 = cifar_job(2).epoch_seconds_estimate();
        let t16 = cifar_job(16).epoch_seconds_estimate();
        let t64 = cifar_job(64).epoch_seconds_estimate();
        assert!(t2 < t16 && t16 < t64, "{t2} {t16} {t64}");
        // Growth is meaningful but sub-linear (the paper sees ~2-4x 2→64).
        assert!(t64 / t2 > 1.3 && t64 / t2 < 8.0, "ratio {}", t64 / t2);
    }

    #[test]
    fn communication_grows_superlinearly_under_weak_scaling() {
        let comm = |ranks: u32| -> f64 {
            cifar_job(ranks)
                .plans()
                .train_step
                .rows
                .iter()
                .filter(|r| matches!(r.domain, ApiDomain::Mpi | ApiDomain::Nccl))
                .map(|r| r.seconds)
                .sum()
        };
        let c2 = comm(2);
        let c64 = comm(64);
        assert!(
            c64 / c2 > 3.0,
            "paper: comm per epoch grows ~9x from 2 to 64 nodes; got {}",
            c64 / c2
        );
    }

    #[test]
    fn strong_scaling_epoch_time_decreases_then_flattens() {
        let strong = |r| {
            TrainingJob {
                scaling: ScalingMode::Strong,
                ..cifar_job(r)
            }
            .epoch_seconds_estimate()
        };
        let t2 = strong(2);
        let t16 = strong(16);
        assert!(t16 < t2, "strong scaling must speed up: {t2} -> {t16}");
    }

    #[test]
    fn single_rank_has_no_collectives() {
        let plan = cifar_job(1).plans().train_step;
        assert!(!plan
            .rows
            .iter()
            .any(|r| matches!(r.domain, ApiDomain::Mpi | ApiDomain::Nccl)));
    }

    #[test]
    fn jureca_uses_nccl_names() {
        let job = TrainingJob {
            system: SystemConfig::jureca(),
            ..cifar_job(16)
        };
        let plan = job.plans().train_step;
        assert!(plan.rows.iter().any(|r| r.name.contains("ncclAllReduce")));
        assert!(!plan.rows.iter().any(|r| &*r.name == "MPI_Allreduce"));
    }

    #[test]
    fn tensor_parallel_adds_allgather() {
        let job = TrainingJob {
            strategy: ParallelStrategy::TensorParallel { group: 4 },
            ..cifar_job(16)
        };
        let plan = job.plans().train_step;
        assert!(plan.rows.iter().any(|r| r.name.contains("Allgather")));
        assert!(plan.rows.iter().any(|r| r.name.contains("Alltoall")));
    }

    #[test]
    fn pipeline_parallel_has_sendrecv_and_bubble() {
        let job = TrainingJob {
            strategy: ParallelStrategy::PipelineParallel {
                stages: 4,
                microbatches: 8,
            },
            ..cifar_job(16)
        };
        let plan = job.plans().train_step;
        assert!(plan.rows.iter().any(|r| r.name.contains("Sendrecv")));
        assert!(plan.rows.iter().any(|r| r.name.contains("pipeline_flush")));
    }

    #[test]
    fn asp_moves_communication_off_the_step() {
        let bsp = cifar_job(16);
        let asp = TrainingJob {
            sync: SyncMode::Asp,
            ..cifar_job(16)
        };
        let bsp_plans = bsp.plans();
        let asp_plans = asp.plans();
        assert!(bsp_plans.async_comm.is_empty());
        assert!(!asp_plans.async_comm.is_empty());
        let step_comm = |p: &StepPlan| -> f64 {
            p.rows
                .iter()
                .filter(|r| r.name.contains("Allreduce"))
                .map(|r| r.seconds)
                .sum()
        };
        assert!(step_comm(&asp_plans.train_step) < step_comm(&bsp_plans.train_step));
    }

    #[test]
    fn quiet_system_has_no_straggler_wait() {
        let mut sys = SystemConfig::deep();
        sys.noise = NoiseProfile::quiet();
        let quiet = TrainingJob {
            system: sys,
            ..cifar_job(64)
        };
        let noisy = cifar_job(64);
        let comm = |j: &TrainingJob| -> f64 {
            j.plans()
                .train_step
                .rows
                .iter()
                .filter(|r| r.name.contains("Allreduce"))
                .map(|r| r.seconds)
                .sum()
        };
        assert!(comm(&quiet) < comm(&noisy));
    }

    #[test]
    fn init_plan_broadcasts_weights() {
        let plan = cifar_job(8).plans().init;
        assert!(plan.rows.iter().any(|r| &*r.name == "MPI_Bcast"));
        assert!(plan.rows.iter().any(|r| &*r.name == "cudaMalloc"));
    }

    #[test]
    fn epoch_end_checkpoints() {
        let plan = cifar_job(8).plans().epoch_end;
        assert!(plan.rows.iter().any(|r| &*r.name == "write"));
    }

    #[test]
    fn memory_feasibility_bounds_batch_size() {
        // CIFAR-10 ResNet-50 at B=256 fits a V100 (32 GB)...
        assert!(cifar_job(4).fits_in_memory());
        // ...but GPT-small at a huge batch does not.
        let mut big = cifar_job(4);
        big.benchmark = Benchmark::gpt_small();
        big.benchmark.batch_size = 512;
        assert!(
            !big.fits_in_memory(),
            "needs {:.1} GB",
            big.memory_required_gb()
        );
        // Tensor parallelism shards the model states and activations.
        let sharded = TrainingJob {
            strategy: ParallelStrategy::TensorParallel { group: 4 },
            ..big.clone()
        };
        assert!(sharded.memory_required_gb() < big.memory_required_gb());
    }

    #[test]
    fn algorithm_switch_bends_the_comm_curve() {
        let mut sys = SystemConfig::deep();
        sys.interconnect.algorithm_switch_nodes = Some(16);
        let comm = |system: &SystemConfig, ranks: u32| -> f64 {
            TrainingJob {
                system: system.clone(),
                ..cifar_job(ranks)
            }
            .plans()
            .train_step
            .rows
            .iter()
            .filter(|r| r.name.contains("Allreduce"))
            .map(|r| r.seconds)
            .sum()
        };
        let plain = SystemConfig::deep();
        // Below the threshold: identical. Above: markedly slower.
        assert!((comm(&sys, 8) - comm(&plain, 8)).abs() < 1e-12);
        assert!(comm(&sys, 32) > 1.5 * comm(&plain, 32));
    }

    #[test]
    fn imagenet_epoch_dwarfs_imdb() {
        let imagenet = TrainingJob {
            benchmark: Benchmark::imagenet(),
            ..cifar_job(64)
        };
        let imdb = TrainingJob {
            benchmark: Benchmark::imdb(),
            ..cifar_job(64)
        };
        let ratio = imagenet.epoch_seconds_estimate() / imdb.epoch_seconds_estimate();
        assert!(ratio > 20.0, "ImageNet/IMDB epoch ratio {ratio}");
    }
}
