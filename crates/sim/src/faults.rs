//! Deterministic fault injection for profiles.
//!
//! Real profiling campaigns lose data: a rank's Nsight export is truncated
//! by a wall-clock limit, NVTX marks are dropped under buffer pressure,
//! node clocks drift, a straggling node inflates every duration, and files
//! are corrupted in flight. The modeling pipeline must degrade gracefully
//! under all of it, so this module can produce exactly those degradations —
//! seeded and reproducible — from a clean simulated experiment.
//!
//! A [`FaultPlan`] is applied *after* simulation, mutating the emitted
//! [`ExperimentProfiles`] (structural faults) and, separately, the
//! serialized JSON (byte-level corruption). Every mutation is drawn from a
//! [`Rng`] stream keyed by the plan seed and the profile's position, so the
//! same plan corrupts the same experiment identically on every run.

use crate::noise::Rng;
use extradeep_trace::{EpochMark, ExperimentProfiles, RankProfile, StepMark};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A seeded, deterministic description of which faults to inject.
///
/// All `*_prob` fields are probabilities in `[0, 1]`; a zeroed plan is a
/// no-op. Parse one from a CLI spec string with [`FaultPlan::parse`]:
///
/// ```
/// use extradeep_sim::FaultPlan;
/// let plan = FaultPlan::parse("seed=7,drop-rank=0.25,clock-skew-ns=5000").unwrap();
/// assert_eq!(plan.seed, 7);
/// assert!((plan.drop_rank_prob - 0.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Base seed of every fault stream.
    pub seed: u64,
    /// Probability that a rank's profile is lost entirely.
    pub drop_rank_prob: f64,
    /// Probability that a rank's profile is truncated (a tail of its events
    /// and marks is cut, as a killed profiler would leave it).
    pub truncate_rank_prob: f64,
    /// Probability that a rank loses *all* its epoch marks.
    pub drop_epoch_marks_prob: f64,
    /// Per-mark probability that a step mark is dropped.
    pub drop_step_mark_prob: f64,
    /// Per-mark probability that a step mark is duplicated (flushed twice).
    pub duplicate_step_mark_prob: f64,
    /// Maximum per-rank clock skew in nanoseconds; each rank is shifted by
    /// a uniform offset in `[0, max]`.
    pub clock_skew_max_ns: u64,
    /// Probability that a rank is a straggler (all durations inflated).
    pub straggler_prob: f64,
    /// Make exactly this rank a straggler in every profile, deterministically
    /// and without consuming any random draws — the knob the observatory's
    /// attribution tests and the CI smoke job use to know the answer upfront.
    pub straggler_rank: Option<u32>,
    /// Duration inflation factor for straggler ranks.
    pub straggler_factor: f64,
    /// Per-event probability that a duration is zeroed (a unit bug or a
    /// counter that wrapped negative and was clamped by the exporter).
    pub zero_duration_prob: f64,
    /// Probability that a rank's step marks are shuffled out of order.
    pub shuffle_steps_prob: f64,
    /// Number of bytes to corrupt in the serialized JSON (0 = none).
    pub corrupt_json_bytes: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0xFA_17,
            drop_rank_prob: 0.0,
            truncate_rank_prob: 0.0,
            drop_epoch_marks_prob: 0.0,
            drop_step_mark_prob: 0.0,
            duplicate_step_mark_prob: 0.0,
            clock_skew_max_ns: 0,
            straggler_prob: 0.0,
            straggler_rank: None,
            straggler_factor: 3.0,
            zero_duration_prob: 0.0,
            shuffle_steps_prob: 0.0,
            corrupt_json_bytes: 0,
        }
    }
}

/// A parse failure of a fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError(pub String);

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault spec: {}", self.0)
    }
}

impl std::error::Error for FaultSpecError {}

/// What a plan actually did to one experiment, for observability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSummary {
    pub ranks_dropped: u32,
    pub ranks_truncated: u32,
    pub ranks_skewed: u32,
    pub stragglers: u32,
    pub ranks_shuffled: u32,
    pub epoch_marks_dropped: u32,
    pub step_marks_dropped: u32,
    pub step_marks_duplicated: u32,
    pub durations_zeroed: u32,
    pub json_bytes_corrupted: u32,
}

impl FaultSummary {
    /// Total number of injected faults.
    pub fn total(&self) -> u64 {
        self.ranks_dropped as u64
            + self.ranks_truncated as u64
            + self.ranks_skewed as u64
            + self.stragglers as u64
            + self.ranks_shuffled as u64
            + self.epoch_marks_dropped as u64
            + self.step_marks_dropped as u64
            + self.step_marks_duplicated as u64
            + self.durations_zeroed as u64
            + self.json_bytes_corrupted as u64
    }
}

/// Which profiles/ranks specific faults landed on — the attribution record
/// [`FaultPlan::apply_detailed`] returns alongside the counts, so callers
/// (the observatory's CI smoke test, chiefly) can compare the *injected*
/// straggler against the one the analysis flags.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultLog {
    /// `(profile index, rank id)` of every straggler that was inflated.
    pub stragglers: Vec<(usize, u32)>,
}

impl FaultLog {
    /// Rank ids that straggled in any profile, deduplicated and sorted.
    pub fn straggler_ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self.stragglers.iter().map(|&(_, r)| r).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults (ranks: {} dropped, {} truncated, {} skewed, {} stragglers, \
             {} shuffled; marks: {} epoch dropped, {} step dropped, {} duplicated; \
             {} durations zeroed; {} JSON bytes corrupted)",
            self.total(),
            self.ranks_dropped,
            self.ranks_truncated,
            self.ranks_skewed,
            self.stragglers,
            self.ranks_shuffled,
            self.epoch_marks_dropped,
            self.step_marks_dropped,
            self.step_marks_duplicated,
            self.durations_zeroed,
            self.json_bytes_corrupted
        )
    }
}

fn parse_prob(key: &str, value: &str) -> Result<f64, FaultSpecError> {
    let v: f64 = value
        .parse()
        .map_err(|_| FaultSpecError(format!("'{key}' needs a number, got '{value}'")))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(FaultSpecError(format!(
            "'{key}' must be a probability in [0, 1], got {v}"
        )));
    }
    Ok(v)
}

impl FaultPlan {
    /// Parses a comma-separated `key=value` spec, e.g.
    /// `seed=7,drop-rank=0.2,truncate=0.3,zero-dur=0.05,corrupt-json=16`.
    ///
    /// Recognized keys: `seed`, `drop-rank`, `truncate`, `drop-epoch-marks`,
    /// `drop-step-mark`, `dup-step-mark`, `clock-skew-ns`, `straggler`,
    /// `straggler-rank`, `straggler-factor`, `zero-dur`, `shuffle-steps`,
    /// `corrupt-json`.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultSpecError> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| FaultSpecError(format!("'{part}' is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| FaultSpecError(format!("invalid seed '{value}'")))?;
                }
                "drop-rank" => plan.drop_rank_prob = parse_prob(key, value)?,
                "truncate" => plan.truncate_rank_prob = parse_prob(key, value)?,
                "drop-epoch-marks" => plan.drop_epoch_marks_prob = parse_prob(key, value)?,
                "drop-step-mark" => plan.drop_step_mark_prob = parse_prob(key, value)?,
                "dup-step-mark" => plan.duplicate_step_mark_prob = parse_prob(key, value)?,
                "clock-skew-ns" => {
                    plan.clock_skew_max_ns = value
                        .parse()
                        .map_err(|_| FaultSpecError(format!("invalid clock-skew-ns '{value}'")))?;
                }
                "straggler" => plan.straggler_prob = parse_prob(key, value)?,
                "straggler-rank" => {
                    plan.straggler_rank = Some(value.parse().map_err(|_| {
                        FaultSpecError(format!("invalid straggler-rank '{value}'"))
                    })?);
                }
                "straggler-factor" => {
                    let v: f64 = value.parse().map_err(|_| {
                        FaultSpecError(format!("invalid straggler-factor '{value}'"))
                    })?;
                    if v < 1.0 {
                        return Err(FaultSpecError(format!(
                            "straggler-factor must be >= 1, got {v}"
                        )));
                    }
                    plan.straggler_factor = v;
                }
                "zero-dur" => plan.zero_duration_prob = parse_prob(key, value)?,
                "shuffle-steps" => plan.shuffle_steps_prob = parse_prob(key, value)?,
                "corrupt-json" => {
                    plan.corrupt_json_bytes = value
                        .parse()
                        .map_err(|_| FaultSpecError(format!("invalid corrupt-json '{value}'")))?;
                }
                other => return Err(FaultSpecError(format!("unknown fault key '{other}'"))),
            }
        }
        Ok(plan)
    }

    /// True when applying this plan cannot change anything.
    pub fn is_noop(&self) -> bool {
        self.drop_rank_prob == 0.0
            && self.truncate_rank_prob == 0.0
            && self.drop_epoch_marks_prob == 0.0
            && self.drop_step_mark_prob == 0.0
            && self.duplicate_step_mark_prob == 0.0
            && self.clock_skew_max_ns == 0
            && self.straggler_prob == 0.0
            && self.straggler_rank.is_none()
            && self.zero_duration_prob == 0.0
            && self.shuffle_steps_prob == 0.0
            && self.corrupt_json_bytes == 0
    }

    /// A moderately hostile plan fuzzed from a seed: every fault class gets
    /// a chance to appear, with intensities drawn from the seed, bounded so
    /// that *some* data always survives. The chaos harness sweeps this over
    /// a seed matrix.
    pub fn fuzz(seed: u64) -> FaultPlan {
        let mut rng = Rng::stream(seed, &[0xF0_22]);
        let pick = |rng: &mut Rng, max: f64| -> f64 {
            // Half the draws disable the class entirely so plans differ in
            // *which* faults they combine, not only in intensity.
            if rng.next_f64() < 0.5 {
                0.0
            } else {
                rng.next_f64() * max
            }
        };
        FaultPlan {
            seed,
            drop_rank_prob: pick(&mut rng, 0.35),
            truncate_rank_prob: pick(&mut rng, 0.35),
            drop_epoch_marks_prob: pick(&mut rng, 0.5),
            drop_step_mark_prob: pick(&mut rng, 0.15),
            duplicate_step_mark_prob: pick(&mut rng, 0.2),
            clock_skew_max_ns: if rng.next_f64() < 0.5 {
                0
            } else {
                (rng.next_f64() * 1e7) as u64
            },
            straggler_prob: pick(&mut rng, 0.2),
            straggler_rank: None,
            // Fuzzed stragglers start at 2× so they clear the repair
            // module's cross-rank detection ratio with margin; milder
            // slowdowns blend into noise and are a different regime.
            straggler_factor: 2.0 + rng.next_f64() * 2.5,
            zero_duration_prob: pick(&mut rng, 0.05),
            shuffle_steps_prob: pick(&mut rng, 0.5),
            corrupt_json_bytes: if rng.next_f64() < 0.3 {
                1 + (rng.next_f64() * 32.0) as u32
            } else {
                0
            },
        }
    }

    /// Applies the structural faults to an experiment in place.
    ///
    /// Each configuration keeps at least one rank (a campaign that lost
    /// *every* rank of *every* scale has nothing left to repair — the
    /// interesting regime is partial loss). Determinism: streams are keyed
    /// by `(profile index, rank id)`, not collection order.
    pub fn apply(&self, experiment: &mut ExperimentProfiles) -> FaultSummary {
        self.apply_detailed(experiment).0
    }

    /// Like [`FaultPlan::apply`], but also returns a [`FaultLog`] recording
    /// where attribution-relevant faults (stragglers) landed.
    pub fn apply_detailed(&self, experiment: &mut ExperimentProfiles) -> (FaultSummary, FaultLog) {
        let _span = extradeep_obs::span("sim.inject_faults");
        let mut summary = FaultSummary::default();
        let mut log = FaultLog::default();
        for (pi, profile) in experiment.profiles.iter_mut().enumerate() {
            // Rank drops first, against the original rank list. The last
            // remaining rank is never dropped: total loss of a configuration
            // leaves nothing to repair, and the interesting regime for the
            // downstream pipeline is partial loss.
            let total = profile.ranks.len();
            let mut keep: Vec<RankProfile> = Vec::with_capacity(total);
            for (i, rank) in profile.ranks.drain(..).enumerate() {
                let mut rng = Rng::stream(self.seed, &[pi as u64, rank.rank as u64, 0xD0]);
                let must_keep = keep.is_empty() && i == total - 1;
                if !must_keep && self.drop_rank_prob > 0.0 && rng.next_f64() < self.drop_rank_prob {
                    summary.ranks_dropped += 1;
                    continue;
                }
                keep.push(rank);
            }
            for rank in &mut keep {
                let mut rng = Rng::stream(self.seed, &[pi as u64, rank.rank as u64, 0xFA]);
                if self.fault_rank(rank, &mut rng, &mut summary) {
                    log.stragglers.push((pi, rank.rank));
                }
            }
            profile.ranks = keep;
        }
        extradeep_obs::counter("faults.injected").add(summary.total());
        (summary, log)
    }

    /// Returns whether this rank became a straggler.
    fn fault_rank(
        &self,
        rank: &mut RankProfile,
        rng: &mut Rng,
        summary: &mut FaultSummary,
    ) -> bool {
        // Truncation: keep a prefix of events and of marks, as a profiler
        // killed mid-run would.
        if self.truncate_rank_prob > 0.0 && rng.next_f64() < self.truncate_rank_prob {
            let frac = 0.2 + 0.6 * rng.next_f64();
            let cut_events = ((rank.events.len() as f64) * frac) as usize;
            let cut_steps = ((rank.step_marks.len() as f64) * frac) as usize;
            rank.events.truncate(cut_events);
            rank.step_marks.truncate(cut_steps);
            // A truncated export usually loses the trailing epoch mark too.
            if !rank.epoch_marks.is_empty() {
                let keep = rank.epoch_marks.len() - 1;
                rank.epoch_marks.truncate(keep);
            }
            summary.ranks_truncated += 1;
        }

        if self.drop_epoch_marks_prob > 0.0 && rng.next_f64() < self.drop_epoch_marks_prob {
            summary.epoch_marks_dropped += rank.epoch_marks.len() as u32;
            rank.epoch_marks.clear();
        }

        if self.drop_step_mark_prob > 0.0 {
            let before = rank.step_marks.len();
            rank.step_marks
                .retain(|_| rng.next_f64() >= self.drop_step_mark_prob);
            summary.step_marks_dropped += (before - rank.step_marks.len()) as u32;
        }

        if self.duplicate_step_mark_prob > 0.0 {
            let mut duplicated: Vec<StepMark> = Vec::new();
            for &m in rank.step_marks.iter() {
                if rng.next_f64() < self.duplicate_step_mark_prob {
                    duplicated.push(m);
                }
            }
            summary.step_marks_duplicated += duplicated.len() as u32;
            rank.step_marks.extend(duplicated);
        }

        if self.shuffle_steps_prob > 0.0
            && rank.step_marks.len() > 1
            && rng.next_f64() < self.shuffle_steps_prob
        {
            // Fisher-Yates on the mark order (timestamps untouched).
            for i in (1..rank.step_marks.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                rank.step_marks.swap(i, j);
            }
            summary.ranks_shuffled += 1;
        }

        if self.clock_skew_max_ns > 0 {
            let skew = rng.next_u64() % (self.clock_skew_max_ns + 1);
            if skew > 0 {
                shift_rank(rank, skew);
                summary.ranks_skewed += 1;
            }
        }

        // The targeted rank straggles without consuming a draw, so adding
        // `straggler-rank` to a spec never reshuffles the other faults.
        let straggled = self.straggler_rank == Some(rank.rank)
            || (self.straggler_prob > 0.0 && rng.next_f64() < self.straggler_prob);
        if straggled {
            let f = self.straggler_factor.max(1.0);
            for e in &mut rank.events {
                e.duration_ns = ((e.duration_ns as f64) * f) as u64;
            }
            for m in &mut rank.step_marks {
                m.end_ns = m.start_ns + (((m.end_ns - m.start_ns) as f64) * f) as u64;
            }
            for m in &mut rank.epoch_marks {
                m.end_ns = m.start_ns + (((m.end_ns - m.start_ns) as f64) * f) as u64;
            }
            summary.stragglers += 1;
        }

        if self.zero_duration_prob > 0.0 {
            for e in &mut rank.events {
                if e.duration_ns > 0 && rng.next_f64() < self.zero_duration_prob {
                    e.duration_ns = 0;
                    summary.durations_zeroed += 1;
                }
            }
        }
        straggled
    }

    /// Corrupts up to `corrupt_json_bytes` bytes of a serialized profile
    /// in place (each replaced by `#`), returning how many were corrupted.
    /// A `#` outside a string literal breaks the JSON grammar; one inside a
    /// string merely mangles the value — both are realistic, and consumers
    /// must handle "unreadable" and "readable but wrong" alike.
    pub fn corrupt_json(&self, json: &mut String) -> u32 {
        if self.corrupt_json_bytes == 0 || json.is_empty() {
            return 0;
        }
        let mut rng = Rng::stream(self.seed, &[0x1A50_4A50]);
        // SAFETY-free approach: operate on a byte vector and rebuild the
        // string lossily; '#' is ASCII, so replacing any byte of a UTF-8
        // stream with it can only invalidate the sequence it was part of,
        // which from_utf8_lossy handles.
        let mut bytes = std::mem::take(json).into_bytes();
        let n = self.corrupt_json_bytes.min(bytes.len() as u32);
        for _ in 0..n {
            let pos = (rng.next_u64() % bytes.len() as u64) as usize;
            bytes[pos] = b'#';
        }
        *json = String::from_utf8_lossy(&bytes).into_owned();
        n
    }
}

/// Shifts every timestamp of a rank forward by `skew` nanoseconds.
fn shift_rank(rank: &mut RankProfile, skew: u64) {
    for e in &mut rank.events {
        e.start_ns = e.start_ns.saturating_add(skew);
    }
    for m in &mut rank.step_marks {
        m.start_ns = m.start_ns.saturating_add(skew);
        m.end_ns = m.end_ns.saturating_add(skew);
    }
    for m in &mut rank.epoch_marks {
        m.start_ns = m.start_ns.saturating_add(skew);
        m.end_ns = m.end_ns.saturating_add(skew);
    }
}

/// Reconstructs an [`EpochMark`] span from step marks (exposed for tests
/// that want the same span arithmetic the repair stage uses).
pub fn epoch_span_of_steps(steps: &[StepMark], epoch: u32) -> Option<EpochMark> {
    let mine: Vec<&StepMark> = steps.iter().filter(|s| s.epoch == epoch).collect();
    let start = mine.iter().map(|s| s.start_ns).min()?;
    let end = mine.iter().map(|s| s.end_ns).max()?;
    Some(EpochMark::new(epoch, start, end.max(start)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExperimentSpec;

    fn experiment() -> ExperimentProfiles {
        let mut spec = ExperimentSpec::case_study(vec![2, 4, 6]);
        spec.repetitions = 1;
        spec.profiler.max_recorded_ranks = 4;
        spec.run()
    }

    #[test]
    fn parse_roundtrip_of_all_keys() {
        let plan = FaultPlan::parse(
            "seed=9,drop-rank=0.1,truncate=0.2,drop-epoch-marks=0.3,drop-step-mark=0.05,\
             dup-step-mark=0.04,clock-skew-ns=1000,straggler=0.1,straggler-factor=2.5,\
             zero-dur=0.01,shuffle-steps=0.2,corrupt-json=8",
        )
        .unwrap();
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.clock_skew_max_ns, 1000);
        assert_eq!(plan.corrupt_json_bytes, 8);
        assert!((plan.straggler_factor - 2.5).abs() < 1e-12);
        assert!(!plan.is_noop());
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("drop-rank").is_err());
        assert!(FaultPlan::parse("drop-rank=2.0").is_err());
        assert!(FaultPlan::parse("warp-drive=0.5").is_err());
        assert!(FaultPlan::parse("straggler-factor=0.5").is_err());
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn apply_is_deterministic() {
        let plan = FaultPlan::fuzz(42);
        let mut a = experiment();
        let mut b = experiment();
        let sa = plan.apply(&mut a);
        let sb = plan.apply(&mut b);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn dropping_every_rank_keeps_one_survivor() {
        let plan = FaultPlan {
            drop_rank_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut exp = experiment();
        plan.apply(&mut exp);
        for p in &exp.profiles {
            assert_eq!(p.ranks.len(), 1, "one rank must survive per config");
        }
    }

    #[test]
    fn clock_skew_shifts_whole_rank() {
        let plan = FaultPlan {
            clock_skew_max_ns: 1_000_000,
            ..FaultPlan::default()
        };
        let mut exp = experiment();
        let before = exp.clone();
        let summary = plan.apply(&mut exp);
        assert!(summary.ranks_skewed > 0);
        // Shifts change start times but never durations.
        for (pa, pb) in exp.profiles.iter().zip(&before.profiles) {
            for (ra, rb) in pa.ranks.iter().zip(&pb.ranks) {
                for (ea, eb) in ra.events.iter().zip(&rb.events) {
                    assert_eq!(ea.duration_ns, eb.duration_ns);
                    assert!(ea.start_ns >= eb.start_ns);
                }
            }
        }
    }

    #[test]
    fn zeroed_durations_are_counted() {
        let plan = FaultPlan {
            zero_duration_prob: 1.0,
            ..FaultPlan::default()
        };
        let mut exp = experiment();
        let summary = plan.apply(&mut exp);
        assert!(summary.durations_zeroed > 0);
        assert!(exp
            .profiles
            .iter()
            .flat_map(|p| &p.ranks)
            .flat_map(|r| &r.events)
            .all(|e| e.duration_ns == 0));
    }

    #[test]
    fn json_corruption_is_never_lossless() {
        let plan = FaultPlan {
            corrupt_json_bytes: 16,
            ..FaultPlan::default()
        };
        let exp = experiment();
        let mut json = extradeep_trace::json::to_json(&exp).unwrap();
        let n = plan.corrupt_json(&mut json);
        assert_eq!(n, 16);
        // A corrupted byte inside a string literal leaves the document
        // parseable (with a mangled value); outside one it breaks the
        // grammar. Either way the original must not survive intact.
        match extradeep_trace::json::from_json(&json) {
            Err(_) => {}
            Ok(parsed) => assert_ne!(parsed, exp, "corruption must not be lossless"),
        }
    }

    #[test]
    fn targeted_straggler_hits_exactly_the_named_rank() {
        let plan = FaultPlan {
            straggler_rank: Some(1),
            straggler_factor: 3.0,
            ..FaultPlan::default()
        };
        let mut exp = experiment();
        let before = exp.clone();
        let (summary, log) = plan.apply_detailed(&mut exp);
        assert_eq!(summary.stragglers as usize, exp.profiles.len());
        assert_eq!(log.straggler_ranks(), vec![1]);
        assert_eq!(log.stragglers.len(), exp.profiles.len());
        for (pa, pb) in exp.profiles.iter().zip(&before.profiles) {
            for (ra, rb) in pa.ranks.iter().zip(&pb.ranks) {
                for (ea, eb) in ra.events.iter().zip(&rb.events) {
                    if ra.rank == 1 {
                        assert_eq!(ea.duration_ns, eb.duration_ns * 3);
                    } else {
                        assert_eq!(ea.duration_ns, eb.duration_ns);
                    }
                }
            }
        }
    }

    #[test]
    fn targeted_straggler_does_not_reshuffle_other_faults() {
        // Adding straggler-rank must not consume random draws, so the rest
        // of the plan's effects stay byte-identical.
        let base = FaultPlan::parse("seed=5,drop-step-mark=0.2,zero-dur=0.1").unwrap();
        let targeted = FaultPlan {
            straggler_rank: Some(0),
            ..base.clone()
        };
        let mut a = experiment();
        let mut b = experiment();
        base.apply(&mut a);
        targeted.apply(&mut b);
        for (pa, pb) in a.profiles.iter().zip(&b.profiles) {
            for (ra, rb) in pa.ranks.iter().zip(&pb.ranks) {
                assert_eq!(ra.step_marks.len(), rb.step_marks.len());
                if ra.rank != 0 {
                    assert_eq!(ra, rb);
                }
            }
        }
    }

    #[test]
    fn straggler_rank_parses_and_blocks_noop() {
        let plan = FaultPlan::parse("straggler-rank=2,straggler-factor=2.0").unwrap();
        assert_eq!(plan.straggler_rank, Some(2));
        assert!(!plan.is_noop());
        assert!(FaultPlan::parse("straggler-rank=x").is_err());
    }

    #[test]
    fn fuzzed_plans_differ_by_seed_but_not_by_call() {
        assert_eq!(FaultPlan::fuzz(1), FaultPlan::fuzz(1));
        assert_ne!(FaultPlan::fuzz(1), FaultPlan::fuzz(2));
    }

    #[test]
    fn epoch_span_reconstruction() {
        use extradeep_trace::StepPhase;
        let steps = vec![
            StepMark::new(1, 0, StepPhase::Training, 100, 200),
            StepMark::new(1, 1, StepPhase::Training, 250, 300),
            StepMark::new(2, 0, StepPhase::Training, 400, 500),
        ];
        let span = epoch_span_of_steps(&steps, 1).unwrap();
        assert_eq!((span.start_ns, span.end_ns), (100, 300));
        assert!(epoch_span_of_steps(&steps, 7).is_none());
    }
}
