//! The simulated profiler: replays a job's step plans with noise into
//! NVTX-marked trace profiles, under either the paper's efficient sampling
//! strategy or full-run profiling.

use crate::engine::{phase_region, StepPlan, TrainingJob};
use crate::noise::Rng;
use extradeep_trace::{ConfigProfile, MeasurementConfig, RankProfile, StepPhase, TraceBuilder};

/// Fraction of executed time the profiler itself costs (the paper measures
/// ≈5.4% across benchmarks, unchanged by the sampling strategy).
pub const PROFILING_OVERHEAD_FRACTION: f64 = 0.054;

/// How much of the run is profiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// The paper's efficient strategy: profile `steps` training steps (and
    /// up to `steps` validation steps) from each of `epochs` epochs — the
    /// default "five training and validation steps from two epochs".
    Efficient { steps: u32, epochs: u32 },
    /// Standard profiling: execute and profile `epochs` entire epochs.
    Full { epochs: u32 },
}

impl SamplingStrategy {
    /// The paper's default efficient configuration.
    pub fn paper_default() -> Self {
        SamplingStrategy::Efficient {
            steps: 5,
            epochs: 2,
        }
    }

    pub fn epochs(&self) -> u32 {
        match *self {
            SamplingStrategy::Efficient { epochs, .. } => epochs,
            SamplingStrategy::Full { epochs } => epochs,
        }
    }
}

/// Profiler configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilerOptions {
    pub sampling: SamplingStrategy,
    /// Record the traces of at most this many ranks. All ranks *execute*
    /// (their cost is part of every collective), but recording a subset
    /// keeps trace volume manageable at large scale; the median-based rank
    /// aggregation is insensitive to this (ranks are statistically
    /// exchangeable).
    pub max_recorded_ranks: u32,
    /// Base seed; every (config, repetition, rank) derives its own stream.
    pub seed: u64,
    /// Record the batch size as a second coordinate of the measurement
    /// configuration (for multi-parameter modeling over `P(x1, x2)`).
    pub record_batch_parameter: bool,
}

impl Default for ProfilerOptions {
    fn default() -> Self {
        ProfilerOptions {
            sampling: SamplingStrategy::paper_default(),
            max_recorded_ranks: 8,
            seed: 0xED05,
            record_batch_parameter: false,
        }
    }
}

/// Warm-up inflation of the first training steps of epoch 0: frameworks
/// autotune and allocate during the first steps (paper: "the first epoch acts
/// as a warm-up round ... one will encounter high variations").
pub(crate) fn warmup_factor(epoch: u32, step: u32) -> f64 {
    match (epoch, step) {
        (0, 0) => 2.6,
        (0, 1) => 1.35,
        (0, 2) => 1.1,
        _ => 1.0,
    }
}

fn emit_plan(
    b: &mut TraceBuilder,
    plan: &StepPlan,
    job: &TrainingJob,
    rng: &mut Rng,
    inflate: f64,
    run_factor: f64,
) {
    for row in &plan.rows {
        let mult = if row.noisy {
            job.system.noise.multiplier(rng, job.ranks) * inflate * run_factor
        } else {
            1.0
        };
        let dur_ns = extradeep_trace::units::secs_to_ns(row.seconds * mult).max(1);
        // Byte counts are exact (not noisy).
        b.push_region(phase_region(&row.name, row.domain));
        b.emit_aggregated(row.name.clone(), row.domain, dur_ns, row.visits, row.bytes);
        b.pop_region();
    }
}

/// Simulates and profiles one repetition of one configuration.
pub fn profile_job(job: &TrainingJob, options: &ProfilerOptions, repetition: u32) -> ConfigProfile {
    let meta = job.training_meta();
    let plans = job.plans();
    let n_t = meta.training_steps_per_epoch().max(1);
    let n_v = meta.validation_steps_per_epoch();

    let (train_steps_profiled, val_steps_profiled, epochs) = match options.sampling {
        SamplingStrategy::Efficient { steps, epochs } => (
            (steps as u64).min(n_t),
            (steps as u64).min(n_v),
            epochs.max(1),
        ),
        SamplingStrategy::Full { epochs } => (n_t, n_v, epochs.max(1)),
    };

    let recorded = job.ranks.min(options.max_recorded_ranks).max(1);
    let mut config = MeasurementConfig::ranks(job.ranks);
    if options.record_batch_parameter {
        // Multi-parameter experiments (paper §2.3, P(x1, x2)): the batch
        // size becomes the second modeled coordinate.
        config
            .parameters
            .push(("batch".to_string(), job.benchmark.batch_size as f64));
    }

    let mut profile = ConfigProfile::new(config, repetition, meta);

    // The run-level factor is shared by every rank of this repetition: it
    // models the correlated condition of the whole run (paper: run-to-run
    // variations of 12.6% on DEEP / 17.4% on JURECA on average).
    let mut run_rng = Rng::stream(
        options.seed,
        &[
            job.ranks as u64,
            job.benchmark.batch_size,
            repetition as u64,
            0x52_55_4E,
        ],
    );
    let run_factor = job.system.noise.run_multiplier(&mut run_rng, job.ranks);

    let mut ranks: Vec<RankProfile> = (0..recorded)
        .map(|rank| {
            let mut rng = Rng::stream(
                options.seed,
                &[
                    job.ranks as u64,
                    job.benchmark.batch_size,
                    repetition as u64,
                    rank as u64,
                ],
            );
            let mut b = TraceBuilder::new(rank);
            b.push_region("init");
            emit_plan(&mut b, &plans.init, job, &mut rng, 1.0, run_factor);
            b.pop_region();

            for epoch in 0..epochs {
                b.begin_epoch(epoch);
                for step in 0..train_steps_profiled {
                    b.begin_step(epoch, step as u32, StepPhase::Training);
                    b.push_region("train");
                    b.push_region("training_step");
                    emit_plan(
                        &mut b,
                        &plans.train_step,
                        job,
                        &mut rng,
                        warmup_factor(epoch, step as u32),
                        run_factor,
                    );
                    b.pop_region();
                    b.pop_region();
                    b.end_step();
                    // ASP communication lands between the step marks.
                    if !plans.async_comm.is_empty() {
                        let start = b.now_ns();
                        for row in &plans.async_comm.rows {
                            let mult =
                                job.system.noise.multiplier(&mut rng, job.ranks) * run_factor;
                            let dur = extradeep_trace::units::secs_to_ns(row.seconds * mult).max(1);
                            b.emit_async(row.name.clone(), row.domain, start, dur);
                            b.advance(dur / 4); // partially overlapped
                        }
                    }
                }
                for step in 0..val_steps_profiled {
                    b.begin_step(epoch, step as u32, StepPhase::Validation);
                    b.push_region("test");
                    b.push_region("validation_step");
                    emit_plan(&mut b, &plans.val_step, job, &mut rng, 1.0, run_factor);
                    b.pop_region();
                    b.pop_region();
                    b.end_step();
                }
                b.push_region("checkpoint");
                emit_plan(&mut b, &plans.epoch_end, job, &mut rng, 1.0, run_factor);
                b.pop_region();
                b.end_epoch();
            }
            b.finish()
        })
        .collect();

    let emitted: u64 = ranks.iter().map(|r| r.events.len() as u64).sum();
    extradeep_obs::counter("sim.trace_events").add(emitted);

    // Execution time covered by the profile: the slowest recorded rank.
    let span_seconds = ranks
        .iter()
        .map(|r| extradeep_trace::units::ns_to_secs(r.span_ns()))
        .fold(0.0, f64::max);
    profile.execution_seconds = span_seconds;
    profile.profiling_seconds = span_seconds * PROFILING_OVERHEAD_FRACTION;
    profile.ranks.append(&mut ranks);
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ScalingMode;
    use crate::strategy::{ParallelStrategy, SyncMode};
    use crate::system::SystemConfig;
    use crate::workload::Benchmark;
    use extradeep_trace::validate_config;

    fn job(ranks: u32) -> TrainingJob {
        TrainingJob {
            system: SystemConfig::deep(),
            benchmark: Benchmark::cifar10(),
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync: SyncMode::Bsp,
            ranks,
        }
    }

    #[test]
    fn efficient_profile_is_well_formed() {
        let p = profile_job(&job(4), &ProfilerOptions::default(), 0);
        assert_eq!(p.num_ranks(), 4);
        let issues = validate_config(&p);
        assert!(issues.is_empty(), "{issues:?}");
        // 2 epochs x (5 train + 5 val) steps.
        assert_eq!(p.ranks[0].step_marks.len(), 20);
        assert_eq!(p.ranks[0].epoch_marks.len(), 2);
    }

    #[test]
    fn recorded_ranks_are_capped() {
        let opts = ProfilerOptions {
            max_recorded_ranks: 8,
            ..Default::default()
        };
        let p = profile_job(&job(64), &opts, 0);
        assert_eq!(p.num_ranks(), 8);
        assert_eq!(p.config.value("ranks"), Some(64.0));
    }

    #[test]
    fn determinism_per_seed_and_repetition() {
        let opts = ProfilerOptions::default();
        let a = profile_job(&job(4), &opts, 1);
        let b = profile_job(&job(4), &opts, 1);
        assert_eq!(a, b);
        let c = profile_job(&job(4), &opts, 2);
        assert_ne!(a, c, "different repetitions must differ");
    }

    #[test]
    fn full_profiling_covers_every_step() {
        let opts = ProfilerOptions {
            sampling: SamplingStrategy::Full { epochs: 1 },
            max_recorded_ranks: 1,
            ..Default::default()
        };
        let p = profile_job(&job(2), &opts, 0);
        let n_t = p.meta.training_steps_per_epoch();
        let n_v = p.meta.validation_steps_per_epoch();
        assert_eq!(p.ranks[0].step_marks.len() as u64, n_t + n_v);
    }

    #[test]
    fn efficient_sampling_slashes_profiled_time() {
        let full = profile_job(
            &job(2),
            &ProfilerOptions {
                sampling: SamplingStrategy::Full { epochs: 1 },
                max_recorded_ranks: 1,
                ..Default::default()
            },
            0,
        );
        let eff = profile_job(
            &job(2),
            &ProfilerOptions {
                max_recorded_ranks: 1,
                ..Default::default()
            },
            0,
        );
        // Efficient profiles 2x(5+5) steps instead of ~195+39; the paper
        // reports ~94.9% average profiling-time reduction.
        let reduction = 1.0 - eff.profiling_seconds / full.profiling_seconds;
        assert!(reduction > 0.80, "reduction {reduction}");
    }

    #[test]
    fn warmup_inflates_first_epoch() {
        let p = profile_job(
            &job(2),
            &ProfilerOptions {
                max_recorded_ranks: 1,
                ..Default::default()
            },
            0,
        );
        let marks = &p.ranks[0].step_marks;
        let first = marks
            .iter()
            .find(|m| m.epoch == 0 && m.step == 0 && m.phase == StepPhase::Training)
            .unwrap();
        let later = marks
            .iter()
            .find(|m| m.epoch == 1 && m.step == 2 && m.phase == StepPhase::Training)
            .unwrap();
        assert!(
            first.duration_ns() as f64 > 1.5 * later.duration_ns() as f64,
            "warm-up step must be visibly slower"
        );
    }

    #[test]
    fn asp_emits_async_collectives_between_steps() {
        let asp = TrainingJob {
            sync: SyncMode::Asp,
            ..job(8)
        };
        let p = profile_job(
            &asp,
            &ProfilerOptions {
                max_recorded_ranks: 1,
                ..Default::default()
            },
            0,
        );
        let rank = &p.ranks[0];
        // At least one allreduce falls outside every training step mark.
        let outside = rank
            .events
            .iter()
            .filter(|e| e.name.contains("Allreduce"))
            .any(|e| {
                !rank
                    .step_marks
                    .iter()
                    .any(|m| m.contains(e.start_ns) && e.end_ns() <= m.end_ns)
            });
        assert!(outside, "ASP collectives should cross step boundaries");
    }

    #[test]
    fn events_carry_phase_call_paths() {
        let p = profile_job(
            &job(2),
            &ProfilerOptions {
                max_recorded_ranks: 1,
                ..Default::default()
            },
            0,
        );
        let rank = &p.ranks[0];
        let allreduce = rank
            .events
            .iter()
            .find(|e| e.name.contains("Allreduce"))
            .unwrap();
        assert_eq!(
            allreduce.call_path.as_deref(),
            Some("train/training_step/exchange")
        );
        let bgrad = rank
            .events
            .iter()
            .find(|e| e.name.contains("_bgrad"))
            .unwrap();
        assert_eq!(
            bgrad.call_path.as_deref(),
            Some("train/training_step/backward")
        );
        let malloc = rank
            .events
            .iter()
            .find(|e| &*e.name == "cudaMalloc")
            .unwrap();
        assert_eq!(malloc.call_path.as_deref(), Some("init/host"));
        let write = rank.events.iter().find(|e| &*e.name == "write").unwrap();
        assert_eq!(write.call_path.as_deref(), Some("checkpoint/checkpoint"));
    }

    #[test]
    fn profiling_overhead_fraction_is_constant() {
        let p = profile_job(&job(4), &ProfilerOptions::default(), 0);
        let frac = p.profiling_seconds / p.execution_seconds;
        assert!((frac - PROFILING_OVERHEAD_FRACTION).abs() < 1e-12);
    }
}
