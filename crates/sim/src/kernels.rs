//! Kernel naming: maps layers to the CUDA/cuDNN/cuBLAS kernel names a real
//! profile would contain.
//!
//! Names are keyed by layer *shape class*, so the same kernel appears across
//! all measurement configurations (a prerequisite for the ≥5-configs kernel
//! filter) while different layers still produce a rich kernel population.

use crate::dnn::layer::Layer;

/// GPU kernel name for the forward pass of a layer.
pub fn forward_kernel_name(gpu_arch: &str, layer: &Layer, layer_name: &str) -> String {
    match layer {
        Layer::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            groups,
            ..
        } => {
            if *groups == *in_channels && *groups > 1 {
                format!("{gpu_arch}_dwconv2d_fprop_c{in_channels}_k{kernel}s{stride}")
            } else {
                format!(
                    "{gpu_arch}_scudnn_implicit_gemm_fprop_{in_channels}x{out_channels}_k{kernel}s{stride}"
                )
            }
        }
        Layer::Dense { inputs, outputs } => {
            format!("{gpu_arch}_sgemm_{inputs}x{outputs}_tn")
        }
        Layer::Lstm { hidden, .. } => format!("{gpu_arch}_lstm_cell_fprop_h{hidden}"),
        Layer::SelfAttention { dim, heads } => {
            format!("{gpu_arch}_fmha_fprop_d{dim}_h{heads}")
        }
        Layer::TokenMlp { dim, hidden } => {
            format!("{gpu_arch}_sgemm_mlp_fprop_{dim}x{hidden}")
        }
        Layer::BatchNorm { .. } => "cudnn::bn_fw_tr_1C11_singleread_kernel".to_string(),
        Layer::LayerNorm { .. } => "layer_norm_fw_kernel".to_string(),
        Layer::Activation(a) => format!("EigenMetaKernel_{}", a.kernel_name()),
        Layer::Pool { .. } => "cudnn::pooling_fw_4d_kernel".to_string(),
        Layer::GlobalAveragePool => "EigenMetaKernel_MeanReducer".to_string(),
        Layer::Embedding { .. } => "embedding_lookup_kernel".to_string(),
        Layer::ResidualAdd => "EigenMetaKernel_Add".to_string(),
        Layer::Softmax => "softmax_warp_forward_kernel".to_string(),
        Layer::Dropout => "EigenMetaKernel_Dropout".to_string(),
        Layer::Flatten => format!("noop_{layer_name}"),
    }
}

/// GPU kernel name for the backward pass of a layer.
pub fn backward_kernel_name(gpu_arch: &str, layer: &Layer, layer_name: &str) -> String {
    match layer {
        Layer::Conv2d { .. }
        | Layer::Dense { .. }
        | Layer::Lstm { .. }
        | Layer::SelfAttention { .. }
        | Layer::TokenMlp { .. } => {
            format!("{}_bgrad", forward_kernel_name(gpu_arch, layer, layer_name))
        }
        Layer::BatchNorm { .. } => "cudnn::bn_bw_1C11_singleread_kernel".to_string(),
        _ => format!("{}_grad", forward_kernel_name(gpu_arch, layer, layer_name)),
    }
}

/// Library API call name dispatched on the CPU for a tensor-op layer.
pub fn api_call_name(layer: &Layer, backward: bool) -> Option<&'static str> {
    match (layer, backward) {
        (Layer::Conv2d { .. }, false) => Some("cudnnConvolutionForward"),
        (Layer::Conv2d { .. }, true) => Some("cudnnConvolutionBackwardData"),
        (Layer::Dense { .. }, false) => Some("cublasSgemm_v2"),
        (Layer::Dense { .. }, true) => Some("cublasSgemmStridedBatched"),
        (Layer::Lstm { .. }, false) => Some("cudnnRNNForwardTraining"),
        (Layer::Lstm { .. }, true) => Some("cudnnRNNBackwardData"),
        (Layer::SelfAttention { .. }, false) => Some("cublasGemmEx"),
        (Layer::SelfAttention { .. }, true) => Some("cublasGemmBatchedEx"),
        (Layer::TokenMlp { .. }, false) => Some("cublasSgemmStridedBatched"),
        (Layer::TokenMlp { .. }, true) => Some("cublasSgemmStridedBatched"),
        (Layer::BatchNorm { .. }, false) => Some("cudnnBatchNormalizationForwardTraining"),
        (Layer::BatchNorm { .. }, true) => Some("cudnnBatchNormalizationBackward"),
        (Layer::Pool { .. }, false) => Some("cudnnPoolingForward"),
        (Layer::Pool { .. }, true) => Some("cudnnPoolingBackward"),
        _ => None,
    }
}

/// The GPU architecture prefix used in kernel names.
pub fn gpu_arch_prefix(gpu_name: &str) -> &'static str {
    if gpu_name.contains("A100") {
        "ampere"
    } else if gpu_name.contains("V100") {
        "volta"
    } else {
        "sm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dnn::layer::Activation;

    #[test]
    fn conv_names_key_on_shape_class() {
        let a = Layer::conv(64, 128, 3, 2);
        let b = Layer::conv(64, 128, 3, 2);
        let c = Layer::conv(64, 256, 3, 2);
        assert_eq!(
            forward_kernel_name("volta", &a, "x"),
            forward_kernel_name("volta", &b, "y")
        );
        assert_ne!(
            forward_kernel_name("volta", &a, "x"),
            forward_kernel_name("volta", &c, "x")
        );
    }

    #[test]
    fn depthwise_uses_dwconv_name() {
        let dw = Layer::depthwise(96, 5, 2);
        assert!(forward_kernel_name("ampere", &dw, "x").contains("dwconv2d"));
    }

    #[test]
    fn backward_names_differ_from_forward() {
        let l = Layer::conv(64, 64, 3, 1);
        assert_ne!(
            forward_kernel_name("volta", &l, "x"),
            backward_kernel_name("volta", &l, "x")
        );
        assert!(backward_kernel_name("volta", &l, "x").ends_with("_bgrad"));
    }

    #[test]
    fn api_calls_for_tensor_ops_only() {
        assert_eq!(
            api_call_name(&Layer::conv(3, 16, 3, 1), false),
            Some("cudnnConvolutionForward")
        );
        assert_eq!(
            api_call_name(
                &Layer::Dense {
                    inputs: 8,
                    outputs: 2
                },
                false
            ),
            Some("cublasSgemm_v2")
        );
        assert_eq!(
            api_call_name(&Layer::Activation(Activation::Relu), false),
            None
        );
        assert_eq!(api_call_name(&Layer::Softmax, true), None);
    }

    #[test]
    fn gpu_prefixes() {
        assert_eq!(gpu_arch_prefix("NVIDIA V100"), "volta");
        assert_eq!(gpu_arch_prefix("NVIDIA A100"), "ampere");
        assert_eq!(gpu_arch_prefix("Unknown"), "sm");
    }

    #[test]
    fn eigen_kernels_for_elementwise() {
        assert_eq!(
            forward_kernel_name("volta", &Layer::Activation(Activation::Relu), "x"),
            "EigenMetaKernel_relu_kernel"
        );
        assert_eq!(
            forward_kernel_name("volta", &Layer::ResidualAdd, "x"),
            "EigenMetaKernel_Add"
        );
    }
}
