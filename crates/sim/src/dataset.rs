//! The five benchmark datasets (paper §4.1) and scaling-mode bookkeeping.

use serde::{Deserialize, Serialize};

/// Weak vs. strong scaling (paper §2: "Extra-Deep supports weak as well as
/// strong scaling scenarios").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScalingMode {
    /// The dataset is replicated/augmented with the data-parallel degree so
    /// every worker keeps a constant per-epoch workload (the paper's CIFAR-10
    /// case study: "we multiply the size of the training dataset by the
    /// number of MPI ranks ... then shard").
    Weak,
    /// The dataset stays fixed; more workers each process a smaller shard.
    Strong,
}

impl ScalingMode {
    pub fn label(self) -> &'static str {
        match self {
            ScalingMode::Weak => "weak",
            ScalingMode::Strong => "strong",
        }
    }

    /// Resolves a short scaling-mode name (`weak`, `strong`).
    pub fn from_name(name: &str) -> Option<ScalingMode> {
        match name {
            "weak" => Some(ScalingMode::Weak),
            "strong" => Some(ScalingMode::Strong),
            _ => None,
        }
    }
}

/// Static description of a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    pub name: String,
    /// Base number of training samples.
    pub train_samples: u64,
    /// Number of validation samples.
    pub val_samples: u64,
    /// On-disk bytes per sample (drives I/O and HtoD copy costs).
    pub bytes_per_sample: u64,
    /// CPU preprocessing cost per sample, in microseconds (decode + augment).
    pub preprocess_us_per_sample: f64,
    pub classes: usize,
}

impl DatasetSpec {
    pub fn cifar10() -> Self {
        DatasetSpec {
            name: "CIFAR-10".to_string(),
            train_samples: 50_000,
            val_samples: 10_000,
            bytes_per_sample: 3 * 32 * 32,
            preprocess_us_per_sample: 45.0,
            classes: 10,
        }
    }

    pub fn cifar100() -> Self {
        DatasetSpec {
            name: "CIFAR-100".to_string(),
            train_samples: 50_000,
            val_samples: 10_000,
            bytes_per_sample: 3 * 32 * 32,
            preprocess_us_per_sample: 45.0,
            classes: 100,
        }
    }

    pub fn imagenet() -> Self {
        DatasetSpec {
            name: "ImageNet".to_string(),
            train_samples: 1_281_167,
            val_samples: 50_000,
            bytes_per_sample: 110_000, // average JPEG size
            preprocess_us_per_sample: 900.0,
            classes: 1000,
        }
    }

    pub fn imdb() -> Self {
        DatasetSpec {
            name: "IMDB".to_string(),
            train_samples: 25_000,
            val_samples: 25_000,
            bytes_per_sample: 1_300, // tokenized review
            preprocess_us_per_sample: 12.0,
            classes: 2,
        }
    }

    pub fn speech_commands() -> Self {
        DatasetSpec {
            name: "Speech Commands".to_string(),
            train_samples: 85_000,
            val_samples: 10_000,
            bytes_per_sample: 32_000, // 1 s of 16 kHz int16 audio
            preprocess_us_per_sample: 240.0,
            classes: 12,
        }
    }

    /// WikiText-103-like corpus for the Transformer extension workload:
    /// token sequences of 512 tokens each.
    pub fn wikitext() -> Self {
        DatasetSpec {
            name: "WikiText".to_string(),
            train_samples: 230_000,
            val_samples: 5_000,
            bytes_per_sample: 2_048, // 512 tokens x 4 B ids
            preprocess_us_per_sample: 25.0,
            classes: 0,
        }
    }

    /// Effective training-set size for a scaling mode and data-parallel
    /// degree `g` (weak scaling replicates the dataset `g`-fold).
    pub fn effective_train_samples(&self, mode: ScalingMode, g: u32) -> u64 {
        match mode {
            ScalingMode::Weak => self.train_samples * g as u64,
            ScalingMode::Strong => self.train_samples,
        }
    }

    /// Samples each of the `g` data-parallel workers processes per epoch
    /// (the dataset "is sharded by the number of MPI ranks").
    pub fn samples_per_worker(&self, mode: ScalingMode, g: u32) -> u64 {
        self.effective_train_samples(mode, g) / g.max(1) as u64
    }

    /// Validation samples per worker.
    pub fn val_samples_per_worker(&self, g: u32) -> u64 {
        self.val_samples / g.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_sizes_match_the_literature() {
        assert_eq!(DatasetSpec::cifar10().train_samples, 50_000);
        assert_eq!(DatasetSpec::cifar100().classes, 100);
        assert!(DatasetSpec::imagenet().train_samples > 1_200_000);
        assert_eq!(DatasetSpec::imdb().train_samples, 25_000);
        assert_eq!(DatasetSpec::speech_commands().classes, 12);
    }

    #[test]
    fn weak_scaling_keeps_per_worker_constant() {
        let d = DatasetSpec::cifar10();
        for g in [1, 2, 8, 64] {
            assert_eq!(d.samples_per_worker(ScalingMode::Weak, g), 50_000);
        }
    }

    #[test]
    fn strong_scaling_shrinks_shards() {
        let d = DatasetSpec::cifar10();
        assert_eq!(d.samples_per_worker(ScalingMode::Strong, 2), 25_000);
        assert_eq!(d.samples_per_worker(ScalingMode::Strong, 50), 1_000);
    }

    #[test]
    fn imagenet_dwarfs_imdb_in_work() {
        // Motivates the Fig. 7 observation: IMDB models extrapolate best,
        // ImageNet worst — sheer scale of per-epoch work differs by ~50x.
        let imagenet = DatasetSpec::imagenet();
        let imdb = DatasetSpec::imdb();
        assert!(imagenet.train_samples > 50 * imdb.train_samples);
    }

    #[test]
    fn labels() {
        assert_eq!(ScalingMode::Weak.label(), "weak");
        assert_eq!(ScalingMode::Strong.label(), "strong");
    }
}
