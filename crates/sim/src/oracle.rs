//! Analytic ground truth for the workload observatory.
//!
//! [`activity_estimate`] replays a job's emission *schedule* — the same row
//! order, warm-up inflation, rounding, and ASP async placement the profiler
//! uses — but with every noise multiplier pinned to 1.0, and computes the
//! activity metrics (busy/idle split, comm/compute overlap, critical path)
//! directly from the resulting intervals with its own interval arithmetic.
//!
//! Because it shares no analysis code with `trace::timeline`, it serves as
//! an independent oracle: on a noise-free ("quiet") system the simulated
//! profile and this estimate must agree exactly, and `extradeep inspect`'s
//! overlap/idle/critical-path numbers are validated against it in the
//! integration tests. All ranks are statistically exchangeable and the
//! analytic replay is noise-free, so one replayed rank stands for every
//! rank and the cross-rank critical path equals the span.

use crate::engine::{StepPlan, TrainingJob};
use crate::profiler::{warmup_factor, ProfilerOptions, SamplingStrategy};
use extradeep_trace::units::{ns_to_secs, secs_to_ns};
use extradeep_trace::KernelCategory;

/// The analytic activity breakdown of one (noise-free) rank, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityEstimate {
    /// Wall-clock span of the replayed schedule.
    pub span_seconds: f64,
    /// Interval-union time per class (overlaps not double-counted).
    pub compute_seconds: f64,
    pub comm_seconds: f64,
    pub memory_seconds: f64,
    /// Union of all event intervals.
    pub busy_seconds: f64,
    /// `span - busy`.
    pub idle_seconds: f64,
    /// Communication hidden under compute or memory work.
    pub overlap_seconds: f64,
    /// `overlap / comm` (0 without communication).
    pub overlap_fraction: f64,
    /// With identical noise-free ranks every segment's max equals the
    /// rank's own duration, so the critical path is exactly the span.
    pub critical_path_seconds: f64,
}

/// Sorts half-open intervals and merges overlaps (oracle-local copy — the
/// point of this module is *not* sharing `trace::timeline`'s arithmetic).
fn merge(mut v: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    v.retain(|&(s, e)| e > s);
    v.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(v.len());
    for (s, e) in v {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

fn len_ns(merged: &[(u64, u64)]) -> u64 {
    merged.iter().map(|&(s, e)| e - s).sum()
}

fn overlap_ns(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Per-class interval collector with the profiler's class partition:
/// collectives are communication, memcpy/memset are memory, everything
/// else (kernels, CUDA API, I/O, host calls) counts as compute.
#[derive(Default)]
struct Collector {
    compute: Vec<(u64, u64)>,
    comm: Vec<(u64, u64)>,
    memory: Vec<(u64, u64)>,
}

impl Collector {
    fn push(&mut self, category: KernelCategory, start: u64, end: u64) {
        match category {
            KernelCategory::Communication => self.comm.push((start, end)),
            KernelCategory::MemoryOperation => self.memory.push((start, end)),
            _ => self.compute.push((start, end)),
        }
    }

    /// Replays one plan's rows serially from `clock`, with `inflate`
    /// applied to noisy rows only (mirrors `profiler::emit_plan` with the
    /// noise multiplier pinned at 1.0). Returns the advanced clock.
    fn replay(&mut self, plan: &StepPlan, inflate: f64, mut clock: u64) -> u64 {
        for row in &plan.rows {
            let mult = if row.noisy { inflate } else { 1.0 };
            let dur = secs_to_ns(row.seconds * mult).max(1);
            self.push(row.domain.default_category(), clock, clock + dur);
            clock += dur;
        }
        clock
    }
}

/// Replays the noise-free emission schedule of one rank of `job` under
/// `options` and returns its analytic activity breakdown.
pub fn activity_estimate(job: &TrainingJob, options: &ProfilerOptions) -> ActivityEstimate {
    let meta = job.training_meta();
    let plans = job.plans();
    let n_t = meta.training_steps_per_epoch().max(1);
    let n_v = meta.validation_steps_per_epoch();
    let (train_steps, val_steps, epochs) = match options.sampling {
        SamplingStrategy::Efficient { steps, epochs } => (
            (steps as u64).min(n_t),
            (steps as u64).min(n_v),
            epochs.max(1),
        ),
        SamplingStrategy::Full { epochs } => (n_t, n_v, epochs.max(1)),
    };

    let mut c = Collector::default();
    let mut clock: u64 = 0;
    clock = c.replay(&plans.init, 1.0, clock);
    for epoch in 0..epochs {
        for step in 0..train_steps {
            clock = c.replay(&plans.train_step, warmup_factor(epoch, step as u32), clock);
            if !plans.async_comm.is_empty() {
                // ASP collectives all launch at the step boundary; the
                // clock only advances a quarter of each duration (the
                // profiler's partial-overlap model).
                let start = clock;
                for row in &plans.async_comm.rows {
                    let dur = secs_to_ns(row.seconds).max(1);
                    c.push(row.domain.default_category(), start, start + dur);
                    clock += dur / 4;
                }
            }
        }
        for _ in 0..val_steps {
            clock = c.replay(&plans.val_step, 1.0, clock);
        }
        clock = c.replay(&plans.epoch_end, 1.0, clock);
    }

    let compute = merge(std::mem::take(&mut c.compute));
    let comm = merge(std::mem::take(&mut c.comm));
    let memory = merge(std::mem::take(&mut c.memory));
    let mut busy: Vec<(u64, u64)> = Vec::new();
    busy.extend_from_slice(&compute);
    busy.extend_from_slice(&comm);
    busy.extend_from_slice(&memory);
    let busy = merge(busy);
    let mut not_comm: Vec<(u64, u64)> = Vec::new();
    not_comm.extend_from_slice(&compute);
    not_comm.extend_from_slice(&memory);
    let not_comm = merge(not_comm);

    // Async tails can outlive the serial clock (they do not advance it),
    // exactly as `RankProfile::span_ns` extends to the last event end.
    let span = busy.last().map(|&(_, e)| e).unwrap_or(0).max(clock);
    let comm_ns = len_ns(&comm);
    let hidden_ns = overlap_ns(&comm, &not_comm);
    let span_seconds = ns_to_secs(span);
    ActivityEstimate {
        span_seconds,
        compute_seconds: ns_to_secs(len_ns(&compute)),
        comm_seconds: ns_to_secs(comm_ns),
        memory_seconds: ns_to_secs(len_ns(&memory)),
        busy_seconds: ns_to_secs(len_ns(&busy)),
        idle_seconds: ns_to_secs(span - len_ns(&busy)),
        overlap_seconds: ns_to_secs(hidden_ns),
        overlap_fraction: if comm_ns > 0 {
            hidden_ns as f64 / comm_ns as f64
        } else {
            0.0
        },
        critical_path_seconds: span_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::ScalingMode;
    use crate::noise::NoiseProfile;
    use crate::profiler::profile_job;
    use crate::strategy::{ParallelStrategy, SyncMode};
    use crate::system::SystemConfig;
    use crate::workload::Benchmark;
    use extradeep_trace::{analyze_rank, units};

    fn quiet_job(sync: SyncMode, ranks: u32) -> TrainingJob {
        let mut system = SystemConfig::deep();
        system.noise = NoiseProfile::quiet();
        TrainingJob {
            system,
            benchmark: Benchmark::cifar10(),
            strategy: ParallelStrategy::DataParallel,
            scaling: ScalingMode::Weak,
            sync,
            ranks,
        }
    }

    #[test]
    fn bsp_schedule_has_no_idle_and_no_overlap() {
        let est = activity_estimate(&quiet_job(SyncMode::Bsp, 4), &ProfilerOptions::default());
        // BSP rows run back to back on the monotone clock: events tile the
        // span with nothing hidden and nothing uncovered.
        assert_eq!(est.idle_seconds, 0.0);
        assert_eq!(est.overlap_seconds, 0.0);
        assert_eq!(est.overlap_fraction, 0.0);
        assert!((est.busy_seconds - est.span_seconds).abs() < 1e-15);
        assert!(est.comm_seconds > 0.0);
        assert!(est.compute_seconds > est.comm_seconds);
    }

    #[test]
    fn asp_schedule_hides_communication() {
        let est = activity_estimate(&quiet_job(SyncMode::Asp, 8), &ProfilerOptions::default());
        assert!(est.overlap_seconds > 0.0);
        assert!(est.overlap_fraction > 0.0 && est.overlap_fraction <= 1.0);
        // The async allreduce is partially hidden, so ASP overlaps more
        // than BSP's zero by construction.
        let bsp = activity_estimate(&quiet_job(SyncMode::Bsp, 8), &ProfilerOptions::default());
        assert!(est.overlap_fraction > bsp.overlap_fraction);
    }

    #[test]
    fn quiet_profile_matches_oracle_exactly() {
        for sync in [SyncMode::Bsp, SyncMode::Asp] {
            let job = quiet_job(sync, 4);
            let opts = ProfilerOptions {
                max_recorded_ranks: 2,
                ..Default::default()
            };
            let est = activity_estimate(&job, &opts);
            let profile = profile_job(&job, &opts, 0);
            // Quiet noise pins every multiplier at exactly 1.0, so the
            // profiler's span must equal the analytic replay to the ns.
            assert!(
                (profile.execution_seconds - est.span_seconds).abs() < 1e-12,
                "{sync:?}: span {} vs oracle {}",
                profile.execution_seconds,
                est.span_seconds
            );
            // And the timeline analysis of any recorded rank must agree on
            // every activity metric (independent interval arithmetic).
            for rank in &profile.ranks {
                let a = analyze_rank(rank);
                assert!(
                    (a.busy_seconds - est.busy_seconds).abs() < 1e-12,
                    "{sync:?} busy"
                );
                assert!(
                    (a.idle_seconds - est.idle_seconds).abs() < 1e-12,
                    "{sync:?} idle"
                );
                assert!(
                    (a.comm_seconds - est.comm_seconds).abs() < 1e-12,
                    "{sync:?} comm"
                );
                assert!(
                    (a.overlap_seconds - est.overlap_seconds).abs() < 1e-12,
                    "{sync:?} overlap {} vs {}",
                    a.overlap_seconds,
                    est.overlap_seconds
                );
            }
        }
    }

    #[test]
    fn estimate_is_close_to_epoch_estimate_scale() {
        // Sanity link to the engine's coarse per-epoch estimate: the
        // replayed span is on the same order (init + sampled steps only,
        // so it is below epochs * full-epoch seconds).
        let job = quiet_job(SyncMode::Bsp, 4);
        let est = activity_estimate(&job, &ProfilerOptions::default());
        let full = 2.0 * job.epoch_seconds_estimate() + job.plans().init.seconds();
        assert!(est.span_seconds > 0.0);
        assert!(
            est.span_seconds <= full * 1.01,
            "span {} vs full {}",
            est.span_seconds,
            full
        );
    }

    #[test]
    fn async_tail_extends_span_when_schedule_ends_on_comm() {
        // Synthetic check of the span rule: the clock advances dur/4 per
        // async row, so a trailing async comm row extends the span beyond
        // the serial clock. Use a tiny hand-built plan via the collector.
        let mut c = Collector::default();
        let clock = c.replay(
            &StepPlan {
                rows: vec![crate::engine::PlannedKernel {
                    name: std::sync::Arc::from("k"),
                    domain: extradeep_trace::ApiDomain::CudaKernel,
                    seconds: units::ns_to_secs(100),
                    visits: 1,
                    bytes: None,
                    noisy: false,
                }],
            },
            1.0,
            0,
        );
        c.push(
            extradeep_trace::ApiDomain::Nccl.default_category(),
            clock,
            clock + 80,
        );
        let comm = merge(std::mem::take(&mut c.comm));
        assert_eq!(comm, vec![(100, 180)]);
        assert_eq!(clock, 100);
    }
}
