//! The four DNN architectures of the paper's evaluation (§4.1):
//! ResNet-50 (CIFAR-10/100), EfficientNet-B0 (ImageNet), an NNLM (IMDB), and
//! a ten-hidden-layer CNN (Speech Commands).

use crate::dnn::layer::{Activation, Layer, PoolKind, Shape};
use serde::{Deserialize, Serialize};

/// A named layer in an architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedLayer {
    /// Stable layer name, e.g. `stage2.block1.conv2`; used for kernel naming.
    pub name: String,
    pub layer: Layer,
}

/// A costed DNN architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Architecture {
    pub name: String,
    /// Input shape of one sample.
    pub input: Shape,
    pub layers: Vec<NamedLayer>,
}

impl Architecture {
    fn push(&mut self, name: impl Into<String>, layer: Layer) {
        self.layers.push(NamedLayer {
            name: name.into(),
            layer,
        });
    }

    /// Total trainable parameters.
    pub fn params(&self) -> usize {
        self.layers.iter().map(|l| l.layer.params()).sum()
    }

    /// Gradient bytes exchanged per step under data parallelism (fp32).
    pub fn gradient_bytes(&self) -> u64 {
        4 * self.params() as u64
    }

    /// Forward FLOPs for one sample.
    pub fn forward_flops_per_sample(&self) -> u64 {
        self.walk().map(|(_, flops, _)| flops).sum()
    }

    /// Total activation bytes produced for one sample.
    pub fn activation_bytes_per_sample(&self) -> u64 {
        self.walk().map(|(_, _, act)| act).sum()
    }

    /// Iterates layers with per-layer `(index, forward_flops, activation
    /// bytes)`, threading the shape through the network.
    pub fn walk(&self) -> impl Iterator<Item = (usize, u64, u64)> + '_ {
        let mut shape = self.input.clone();
        self.layers.iter().enumerate().map(move |(i, nl)| {
            let flops = nl.layer.forward_flops(&shape);
            let act = nl.layer.activation_bytes(&shape);
            shape = nl.layer.output_shape(&shape);
            (i, flops, act)
        })
    }

    /// A ResNet-50 (bottleneck blocks `[3,4,6,3]`) for `hw`×`hw` inputs with
    /// `classes` outputs. Uses the CIFAR-style 3×3 stem for small inputs and
    /// the ImageNet 7×7/2 stem otherwise.
    pub fn resnet50(hw: usize, classes: usize) -> Self {
        let mut a = Architecture {
            name: "ResNet-50".to_string(),
            input: Shape::chw(3, hw, hw),
            layers: Vec::new(),
        };
        if hw >= 64 {
            a.push("stem.conv", Layer::conv(3, 64, 7, 2));
            a.push("stem.bn", Layer::BatchNorm { channels: 64 });
            a.push("stem.relu", Layer::Activation(Activation::Relu));
            a.push(
                "stem.maxpool",
                Layer::Pool {
                    kind: PoolKind::Max,
                    kernel: 2,
                    stride: 2,
                },
            );
        } else {
            a.push("stem.conv", Layer::conv(3, 64, 3, 1));
            a.push("stem.bn", Layer::BatchNorm { channels: 64 });
            a.push("stem.relu", Layer::Activation(Activation::Relu));
        }

        let stage_blocks = [3usize, 4, 6, 3];
        let stage_mid = [64usize, 128, 256, 512];
        let mut in_ch = 64;
        for (s, (&blocks, &mid)) in stage_blocks.iter().zip(&stage_mid).enumerate() {
            let out_ch = mid * 4;
            for b in 0..blocks {
                let prefix = format!("stage{}.block{}", s + 1, b + 1);
                let stride = if b == 0 && s > 0 { 2 } else { 1 };
                a.push(format!("{prefix}.conv1"), Layer::conv(in_ch, mid, 1, 1));
                a.push(format!("{prefix}.bn1"), Layer::BatchNorm { channels: mid });
                a.push(
                    format!("{prefix}.relu1"),
                    Layer::Activation(Activation::Relu),
                );
                a.push(format!("{prefix}.conv2"), Layer::conv(mid, mid, 3, stride));
                a.push(format!("{prefix}.bn2"), Layer::BatchNorm { channels: mid });
                a.push(
                    format!("{prefix}.relu2"),
                    Layer::Activation(Activation::Relu),
                );
                a.push(format!("{prefix}.conv3"), Layer::conv(mid, out_ch, 1, 1));
                a.push(
                    format!("{prefix}.bn3"),
                    Layer::BatchNorm { channels: out_ch },
                );
                a.push(format!("{prefix}.add"), Layer::ResidualAdd);
                a.push(
                    format!("{prefix}.relu3"),
                    Layer::Activation(Activation::Relu),
                );
                in_ch = out_ch;
            }
        }
        a.push("head.avgpool", Layer::GlobalAveragePool);
        a.push(
            "head.fc",
            Layer::Dense {
                inputs: 2048,
                outputs: classes,
            },
        );
        a.push("head.softmax", Layer::Softmax);
        a
    }

    /// EfficientNet-B0 for `hw`×`hw` inputs (MBConv stages, swish).
    pub fn efficientnet_b0(hw: usize, classes: usize) -> Self {
        let mut a = Architecture {
            name: "EfficientNet-B0".to_string(),
            input: Shape::chw(3, hw, hw),
            layers: Vec::new(),
        };
        a.push("stem.conv", Layer::conv(3, 32, 3, 2));
        a.push("stem.bn", Layer::BatchNorm { channels: 32 });
        a.push("stem.swish", Layer::Activation(Activation::Swish));

        // (expansion, channels, repeats, stride, kernel) per MBConv stage.
        let stages: [(usize, usize, usize, usize, usize); 7] = [
            (1, 16, 1, 1, 3),
            (6, 24, 2, 2, 3),
            (6, 40, 2, 2, 5),
            (6, 80, 3, 2, 3),
            (6, 112, 3, 1, 5),
            (6, 192, 4, 2, 5),
            (6, 320, 1, 1, 3),
        ];
        let mut in_ch = 32;
        for (s, &(expand, out_ch, repeats, stride, kernel)) in stages.iter().enumerate() {
            for r in 0..repeats {
                let prefix = format!("mbconv{}.r{}", s + 1, r + 1);
                let stride = if r == 0 { stride } else { 1 };
                let mid = in_ch * expand;
                if expand > 1 {
                    a.push(format!("{prefix}.expand"), Layer::conv(in_ch, mid, 1, 1));
                    a.push(
                        format!("{prefix}.expand_bn"),
                        Layer::BatchNorm { channels: mid },
                    );
                    a.push(
                        format!("{prefix}.expand_swish"),
                        Layer::Activation(Activation::Swish),
                    );
                }
                a.push(
                    format!("{prefix}.dwconv"),
                    Layer::Conv2d {
                        in_channels: mid,
                        out_channels: mid,
                        kernel,
                        stride,
                        padding: kernel / 2,
                        groups: mid,
                    },
                );
                a.push(
                    format!("{prefix}.dw_bn"),
                    Layer::BatchNorm { channels: mid },
                );
                a.push(
                    format!("{prefix}.dw_swish"),
                    Layer::Activation(Activation::Swish),
                );
                a.push(format!("{prefix}.project"), Layer::conv(mid, out_ch, 1, 1));
                a.push(
                    format!("{prefix}.project_bn"),
                    Layer::BatchNorm { channels: out_ch },
                );
                if stride == 1 && in_ch == out_ch {
                    a.push(format!("{prefix}.add"), Layer::ResidualAdd);
                }
                in_ch = out_ch;
            }
        }
        a.push("head.conv", Layer::conv(320, 1280, 1, 1));
        a.push("head.bn", Layer::BatchNorm { channels: 1280 });
        a.push("head.swish", Layer::Activation(Activation::Swish));
        a.push("head.avgpool", Layer::GlobalAveragePool);
        a.push(
            "head.fc",
            Layer::Dense {
                inputs: 1280,
                outputs: classes,
            },
        );
        a.push("head.softmax", Layer::Softmax);
        a
    }

    /// The ten-hidden-layer CNN used for Speech Commands: operates on
    /// spectrogram inputs (1×124×129 in the TF tutorial this benchmark
    /// mirrors; simplified to 1×124×128).
    pub fn cnn10(classes: usize) -> Self {
        let mut a = Architecture {
            name: "CNN-10".to_string(),
            input: Shape::chw(1, 124, 128),
            layers: Vec::new(),
        };
        let widths = [32usize, 32, 64, 64, 128, 128, 256, 256, 512, 512];
        let mut in_ch = 1;
        for (i, &w) in widths.iter().enumerate() {
            a.push(format!("conv{}", i + 1), Layer::conv(in_ch, w, 3, 1));
            a.push(format!("bn{}", i + 1), Layer::BatchNorm { channels: w });
            a.push(
                format!("relu{}", i + 1),
                Layer::Activation(Activation::Relu),
            );
            if i % 2 == 1 {
                a.push(
                    format!("pool{}", i / 2 + 1),
                    Layer::Pool {
                        kind: PoolKind::Max,
                        kernel: 2,
                        stride: 2,
                    },
                );
            }
            in_ch = w;
        }
        a.push("head.avgpool", Layer::GlobalAveragePool);
        a.push(
            "head.fc",
            Layer::Dense {
                inputs: 512,
                outputs: classes,
            },
        );
        a.push("head.softmax", Layer::Softmax);
        a
    }

    /// A decoder-style Transformer language model (extension workload).
    ///
    /// The paper's introduction motivates Extra-Deep with GPT-scale NLP
    /// models; this constructor provides a parameterizable Transformer so
    /// the framework can be exercised on attention-dominated workloads:
    /// `layers` blocks of (LN → multi-head self-attention → residual →
    /// LN → 4x MLP → residual) over `seq`-token sequences of width `dim`.
    pub fn transformer(layers: usize, dim: usize, heads: usize, seq: usize, vocab: usize) -> Self {
        let mut a = Architecture {
            name: format!("Transformer-{layers}x{dim}"),
            input: Shape::seq(seq, 1),
            layers: Vec::new(),
        };
        a.push("embedding", Layer::Embedding { vocab, dim });
        a.push("pos_dropout", Layer::Dropout);
        for l in 0..layers {
            let prefix = format!("block{}", l + 1);
            a.push(format!("{prefix}.ln1"), Layer::LayerNorm { dim });
            a.push(
                format!("{prefix}.attn"),
                Layer::SelfAttention { dim, heads },
            );
            a.push(format!("{prefix}.attn_drop"), Layer::Dropout);
            a.push(format!("{prefix}.add1"), Layer::ResidualAdd);
            a.push(format!("{prefix}.ln2"), Layer::LayerNorm { dim });
            a.push(
                format!("{prefix}.mlp"),
                Layer::TokenMlp {
                    dim,
                    hidden: 4 * dim,
                },
            );
            a.push(
                format!("{prefix}.gelu"),
                Layer::Activation(Activation::Gelu),
            );
            a.push(format!("{prefix}.add2"), Layer::ResidualAdd);
        }
        a.push("final_ln", Layer::LayerNorm { dim });
        a.push(
            "lm_head",
            Layer::Dense {
                inputs: dim,
                outputs: vocab,
            },
        );
        a.push("softmax", Layer::Softmax);
        a
    }

    /// A synthetic CNN generated from a seed: random depth, widths, kernel
    /// sizes, and downsampling. Used by robustness tests to verify that the
    /// whole pipeline (engine -> profiler -> aggregation -> modeling) holds
    /// for arbitrary architectures, not just the paper's four.
    pub fn synthetic(seed: u64) -> Self {
        // Tiny deterministic PRNG (kept local so the dnn module stays
        // self-contained).
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move |bound: usize| -> usize {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % bound as u64) as usize
        };

        let mut a = Architecture {
            name: format!("SyntheticCNN-{seed}"),
            input: Shape::chw(3, 64, 64),
            layers: Vec::new(),
        };
        let depth = 3 + next(8);
        let mut ch = 3;
        let mut hw = 64usize;
        for i in 0..depth {
            let out = [16, 32, 48, 64, 96, 128][next(6)];
            let kernel = [1, 3, 5][next(3)];
            let stride = if hw >= 8 && next(3) == 0 { 2 } else { 1 };
            a.push(format!("conv{i}"), Layer::conv(ch, out, kernel, stride));
            a.push(format!("bn{i}"), Layer::BatchNorm { channels: out });
            a.push(format!("act{i}"), Layer::Activation(Activation::Relu));
            if stride == 2 {
                hw /= 2;
            }
            ch = out;
        }
        a.push("head.pool", Layer::GlobalAveragePool);
        a.push(
            "head.fc",
            Layer::Dense {
                inputs: ch,
                outputs: 10,
            },
        );
        a.push("head.softmax", Layer::Softmax);
        a
    }

    /// The neural-network language model (NNLM) used for IMDB sentiment:
    /// token embedding + LSTM + dense head over 200-token reviews.
    pub fn nnlm(vocab: usize, classes: usize) -> Self {
        let mut a = Architecture {
            name: "NNLM".to_string(),
            input: Shape::seq(200, 1),
            layers: Vec::new(),
        };
        a.push("embedding", Layer::Embedding { vocab, dim: 64 });
        a.push("dropout1", Layer::Dropout);
        a.push(
            "lstm",
            Layer::Lstm {
                inputs: 64,
                hidden: 128,
            },
        );
        a.push("flatten", Layer::Flatten);
        a.push(
            "dense1",
            Layer::Dense {
                inputs: 200 * 128,
                outputs: 64,
            },
        );
        a.push("relu1", Layer::Activation(Activation::Relu));
        a.push("dropout2", Layer::Dropout);
        a.push(
            "dense2",
            Layer::Dense {
                inputs: 64,
                outputs: classes,
            },
        );
        a.push("softmax", Layer::Softmax);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_imagenet_flops_and_params_are_in_range() {
        let r = Architecture::resnet50(224, 1000);
        let params = r.params();
        // Reference ResNet-50: ~25.6M parameters.
        assert!(
            (20_000_000..32_000_000).contains(&params),
            "params {params}"
        );
        let gflops = r.forward_flops_per_sample() as f64 / 1e9;
        // Reference: ~3.8 GMACs = ~7.7 GFLOPs (multiply-accumulate counted as 2).
        assert!((5.0..10.0).contains(&gflops), "gflops {gflops}");
    }

    #[test]
    fn resnet50_cifar_is_much_cheaper_than_imagenet() {
        let cifar = Architecture::resnet50(32, 10).forward_flops_per_sample();
        let imagenet = Architecture::resnet50(224, 1000).forward_flops_per_sample();
        assert!(imagenet > 3 * cifar, "imagenet {imagenet} cifar {cifar}");
    }

    #[test]
    fn efficientnet_b0_is_lighter_than_resnet50_at_224() {
        let eff = Architecture::efficientnet_b0(224, 1000);
        let res = Architecture::resnet50(224, 1000);
        assert!(eff.forward_flops_per_sample() < res.forward_flops_per_sample() / 4);
        let params = eff.params();
        // Reference EfficientNet-B0: ~5.3M (we omit squeeze-excite, so a bit less).
        assert!((3_000_000..8_000_000).contains(&params), "params {params}");
    }

    #[test]
    fn cnn10_has_ten_conv_layers() {
        let c = Architecture::cnn10(12);
        let convs = c
            .layers
            .iter()
            .filter(|l| matches!(l.layer, Layer::Conv2d { .. }))
            .count();
        assert_eq!(convs, 10);
    }

    #[test]
    fn nnlm_is_tiny_compared_to_cnns() {
        let n = Architecture::nnlm(20_000, 2);
        let c = Architecture::cnn10(12);
        assert!(n.forward_flops_per_sample() < c.forward_flops_per_sample());
    }

    #[test]
    fn gradient_bytes_are_4x_params() {
        let r = Architecture::resnet50(32, 10);
        assert_eq!(r.gradient_bytes(), 4 * r.params() as u64);
    }

    #[test]
    fn walk_is_consistent_with_totals() {
        let a = Architecture::efficientnet_b0(224, 1000);
        let total: u64 = a.walk().map(|(_, f, _)| f).sum();
        assert_eq!(total, a.forward_flops_per_sample());
        assert_eq!(a.walk().count(), a.layers.len());
    }

    #[test]
    fn transformer_is_gpt2_sized() {
        // GPT-2 small: 12 layers, d=768, 12 heads, vocab 50257 -> ~124M
        // params with a tied LM head; ours unties the head (+38.6M).
        let t = Architecture::transformer(12, 768, 12, 512, 50_257);
        let params = t.params();
        assert!(
            (120_000_000..175_000_000).contains(&params),
            "params {params}"
        );
        // Attention + MLP dominate FLOPs.
        let gflops = t.forward_flops_per_sample() as f64 / 1e9;
        assert!(gflops > 50.0, "gflops {gflops}");
    }

    #[test]
    fn transformer_attention_cost_grows_quadratically_with_sequence() {
        let short = Architecture::transformer(4, 256, 4, 128, 1000);
        let long = Architecture::transformer(4, 256, 4, 1024, 1000);
        let fs = short.forward_flops_per_sample() as f64;
        let fl = long.forward_flops_per_sample() as f64;
        // 8x the sequence: linear terms give 8x, attention t^2 gives 64x.
        assert!(fl / fs > 8.0, "ratio {}", fl / fs);
    }

    #[test]
    fn layer_names_are_unique() {
        for arch in [
            Architecture::resnet50(32, 10),
            Architecture::efficientnet_b0(224, 1000),
            Architecture::cnn10(12),
            Architecture::nnlm(20_000, 2),
            Architecture::transformer(12, 768, 12, 512, 50_257),
        ] {
            let mut names: Vec<&str> = arch.layers.iter().map(|l| l.name.as_str()).collect();
            let before = names.len();
            names.sort_unstable();
            names.dedup();
            assert_eq!(
                names.len(),
                before,
                "duplicate layer names in {}",
                arch.name
            );
        }
    }
}
