//! DNN architecture and layer cost models.

pub mod arch;
pub mod layer;

pub use arch::{Architecture, NamedLayer};
pub use layer::{Activation, Layer, PoolKind, Shape};
