//! Layer-level compute/parameter/activation models.
//!
//! The simulator does not execute networks; it *costs* them. Each layer type
//! knows its output shape, trainable parameter count, forward FLOPs per
//! sample, and activation footprint — the quantities the GPU compute model
//! and the communication models consume.

use serde::{Deserialize, Serialize};

/// A tensor shape (without the batch dimension).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    pub fn chw(c: usize, h: usize, w: usize) -> Self {
        Shape(vec![c, h, w])
    }

    pub fn seq(tokens: usize, dim: usize) -> Self {
        Shape(vec![tokens, dim])
    }

    pub fn vec1(n: usize) -> Self {
        Shape(vec![n])
    }

    pub fn elements(&self) -> usize {
        self.0.iter().product()
    }
}

/// Activation function kinds (costed identically, named distinctly so kernel
/// populations differ between architectures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    Swish,
    Gelu,
    Sigmoid,
    Tanh,
}

impl Activation {
    pub fn kernel_name(self) -> &'static str {
        match self {
            Activation::Relu => "relu_kernel",
            Activation::Swish => "swish_kernel",
            Activation::Gelu => "gelu_kernel",
            Activation::Sigmoid => "sigmoid_kernel",
            Activation::Tanh => "tanh_kernel",
        }
    }
}

/// Pooling kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolKind {
    Max,
    Average,
}

/// One layer of a DNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution. `groups > 1` models grouped/depthwise convolutions
    /// (`groups == in_channels` is depthwise).
    Conv2d {
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
    },
    /// Fully connected layer.
    Dense {
        inputs: usize,
        outputs: usize,
    },
    BatchNorm {
        channels: usize,
    },
    LayerNorm {
        dim: usize,
    },
    Activation(Activation),
    Pool {
        kind: PoolKind,
        kernel: usize,
        stride: usize,
    },
    GlobalAveragePool,
    /// Token embedding lookup.
    Embedding {
        vocab: usize,
        dim: usize,
    },
    /// A (single-layer) LSTM over the whole sequence.
    Lstm {
        inputs: usize,
        hidden: usize,
    },
    /// Multi-head self-attention over the sequence.
    SelfAttention {
        dim: usize,
        heads: usize,
    },
    /// A per-token two-layer MLP (`dim -> hidden -> dim`), the feed-forward
    /// half of a Transformer block. Shape-preserving over the sequence.
    TokenMlp {
        dim: usize,
        hidden: usize,
    },
    /// Residual add of the block input.
    ResidualAdd,
    Softmax,
    Dropout,
    Flatten,
}

impl Layer {
    /// Convenience conv constructor (groups = 1).
    pub fn conv(in_channels: usize, out_channels: usize, kernel: usize, stride: usize) -> Layer {
        Layer::Conv2d {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding: kernel / 2,
            groups: 1,
        }
    }

    /// Depthwise conv constructor.
    pub fn depthwise(channels: usize, kernel: usize, stride: usize) -> Layer {
        Layer::Conv2d {
            in_channels: channels,
            out_channels: channels,
            kernel,
            stride,
            padding: kernel / 2,
            groups: channels,
        }
    }

    /// Output shape given the input shape.
    pub fn output_shape(&self, input: &Shape) -> Shape {
        match self {
            Layer::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
                ..
            } => {
                let (h, w) = (input.0[1], input.0[2]);
                let oh = (h + 2 * padding - kernel) / stride + 1;
                let ow = (w + 2 * padding - kernel) / stride + 1;
                Shape::chw(*out_channels, oh, ow)
            }
            Layer::Dense { outputs, .. } => Shape::vec1(*outputs),
            Layer::Pool { kernel, stride, .. } => {
                let (c, h, w) = (input.0[0], input.0[1], input.0[2]);
                Shape::chw(c, (h - kernel) / stride + 1, (w - kernel) / stride + 1)
            }
            Layer::GlobalAveragePool => Shape::vec1(input.0[0]),
            Layer::Embedding { dim, .. } => Shape::seq(input.0[0], *dim),
            Layer::Lstm { hidden, .. } => Shape::seq(input.0[0], *hidden),
            Layer::SelfAttention { .. } | Layer::TokenMlp { .. } => input.clone(),
            Layer::Flatten => Shape::vec1(input.elements()),
            Layer::BatchNorm { .. }
            | Layer::LayerNorm { .. }
            | Layer::Activation(_)
            | Layer::ResidualAdd
            | Layer::Softmax
            | Layer::Dropout => input.clone(),
        }
    }

    /// Trainable parameter count.
    pub fn params(&self) -> usize {
        match self {
            Layer::Conv2d {
                in_channels,
                out_channels,
                kernel,
                groups,
                ..
            } => kernel * kernel * (in_channels / groups) * out_channels + out_channels,
            Layer::Dense { inputs, outputs } => inputs * outputs + outputs,
            Layer::BatchNorm { channels } => 2 * channels,
            Layer::LayerNorm { dim } => 2 * dim,
            Layer::Embedding { vocab, dim } => vocab * dim,
            Layer::Lstm { inputs, hidden } => 4 * (hidden * (inputs + hidden) + hidden),
            Layer::SelfAttention { dim, .. } => 4 * dim * dim + 4 * dim,
            Layer::TokenMlp { dim, hidden } => 2 * dim * hidden + hidden + dim,
            _ => 0,
        }
    }

    /// Forward FLOPs for one sample with the given input shape.
    pub fn forward_flops(&self, input: &Shape) -> u64 {
        let out = self.output_shape(input);
        match self {
            Layer::Conv2d {
                in_channels,
                out_channels,
                kernel,
                groups,
                ..
            } => {
                let spatial = out.0[1] * out.0[2];
                (2 * kernel * kernel * (in_channels / groups) * out_channels * spatial) as u64
            }
            Layer::Dense { inputs, outputs } => (2 * inputs * outputs) as u64,
            Layer::BatchNorm { .. } => (4 * input.elements()) as u64,
            Layer::LayerNorm { .. } => (5 * input.elements()) as u64,
            Layer::Activation(_) => input.elements() as u64,
            Layer::Pool { kernel, .. } => (kernel * kernel * out.elements()) as u64,
            Layer::GlobalAveragePool => input.elements() as u64,
            Layer::Embedding { .. } => out.elements() as u64, // gather traffic
            Layer::Lstm { inputs, hidden } => {
                let tokens = input.0[0];
                (8 * tokens * hidden * (inputs + hidden)) as u64
            }
            Layer::SelfAttention { dim, .. } => {
                let tokens = input.0[0];
                // QKV + output projections: 8·t·d²; attention matrix: 4·t²·d.
                (8 * tokens * dim * dim + 4 * tokens * tokens * dim) as u64
            }
            Layer::TokenMlp { dim, hidden } => {
                let tokens = input.0[0];
                (4 * tokens * dim * hidden) as u64
            }
            Layer::ResidualAdd => input.elements() as u64,
            Layer::Softmax => (3 * input.elements()) as u64,
            Layer::Dropout => input.elements() as u64,
            Layer::Flatten => 0,
        }
    }

    /// Activation bytes produced for one sample (fp32).
    pub fn activation_bytes(&self, input: &Shape) -> u64 {
        4 * self.output_shape(input).elements() as u64
    }

    /// Whether this layer's forward pass is dominated by dense linear algebra
    /// (dispatched to cuBLAS/cuDNN) vs. elementwise/memory-bound kernels.
    pub fn is_tensor_op(&self) -> bool {
        matches!(
            self,
            Layer::Conv2d { .. }
                | Layer::Dense { .. }
                | Layer::Lstm { .. }
                | Layer::SelfAttention { .. }
                | Layer::TokenMlp { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_output_shape_and_params() {
        // 3x3 conv, 64->128, stride 2, pad 1 on 56x56.
        let l = Layer::conv(64, 128, 3, 2);
        let out = l.output_shape(&Shape::chw(64, 56, 56));
        assert_eq!(out, Shape::chw(128, 28, 28));
        assert_eq!(l.params(), 3 * 3 * 64 * 128 + 128);
    }

    #[test]
    fn conv_flops_match_textbook_formula() {
        let l = Layer::conv(3, 64, 7, 2);
        let input = Shape::chw(3, 224, 224);
        let out = l.output_shape(&input);
        assert_eq!(out.0[1], 112);
        let expected = 2u64 * 7 * 7 * 3 * 64 * 112 * 112;
        assert_eq!(l.forward_flops(&input), expected);
    }

    #[test]
    fn depthwise_conv_is_cheaper_than_full() {
        let input = Shape::chw(128, 28, 28);
        let full = Layer::conv(128, 128, 3, 1).forward_flops(&input);
        let dw = Layer::depthwise(128, 3, 1).forward_flops(&input);
        assert_eq!(full / dw, 128);
    }

    #[test]
    fn dense_layer_flops_and_params() {
        let l = Layer::Dense {
            inputs: 2048,
            outputs: 1000,
        };
        assert_eq!(l.forward_flops(&Shape::vec1(2048)), 2 * 2048 * 1000);
        assert_eq!(l.params(), 2048 * 1000 + 1000);
        assert_eq!(l.output_shape(&Shape::vec1(2048)), Shape::vec1(1000));
    }

    #[test]
    fn lstm_flops() {
        let l = Layer::Lstm {
            inputs: 64,
            hidden: 128,
        };
        let input = Shape::seq(100, 64);
        assert_eq!(l.forward_flops(&input), 8 * 100 * 128 * (64 + 128));
        assert_eq!(l.output_shape(&input), Shape::seq(100, 128));
    }

    #[test]
    fn attention_quadratic_in_sequence() {
        let l = Layer::SelfAttention { dim: 64, heads: 4 };
        let short = l.forward_flops(&Shape::seq(64, 64));
        let long = l.forward_flops(&Shape::seq(256, 64));
        assert!(long > 4 * short, "quadratic term must dominate");
    }

    #[test]
    fn pool_and_global_pool_shapes() {
        let p = Layer::Pool {
            kind: PoolKind::Max,
            kernel: 2,
            stride: 2,
        };
        assert_eq!(
            p.output_shape(&Shape::chw(64, 32, 32)),
            Shape::chw(64, 16, 16)
        );
        let g = Layer::GlobalAveragePool;
        assert_eq!(g.output_shape(&Shape::chw(2048, 7, 7)), Shape::vec1(2048));
    }

    #[test]
    fn embedding_shape_and_params() {
        let e = Layer::Embedding {
            vocab: 20_000,
            dim: 64,
        };
        assert_eq!(e.params(), 20_000 * 64);
        assert_eq!(e.output_shape(&Shape::seq(200, 1)), Shape::seq(200, 64));
    }

    #[test]
    fn shape_preserving_layers() {
        let input = Shape::chw(64, 8, 8);
        for l in [
            Layer::BatchNorm { channels: 64 },
            Layer::Activation(Activation::Relu),
            Layer::ResidualAdd,
            Layer::Softmax,
            Layer::Dropout,
        ] {
            assert_eq!(l.output_shape(&input), input);
        }
    }

    #[test]
    fn activation_bytes_are_fp32() {
        let l = Layer::conv(3, 16, 3, 1);
        let input = Shape::chw(3, 32, 32);
        assert_eq!(l.activation_bytes(&input), 4 * 16 * 32 * 32);
    }

    #[test]
    fn tensor_op_classification() {
        assert!(Layer::conv(3, 16, 3, 1).is_tensor_op());
        assert!(Layer::Dense {
            inputs: 1,
            outputs: 1
        }
        .is_tensor_op());
        assert!(!Layer::Softmax.is_tensor_op());
        assert!(!Layer::BatchNorm { channels: 4 }.is_tensor_op());
    }
}
