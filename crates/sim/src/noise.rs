//! Deterministic system-noise model.
//!
//! The paper emphasizes that run-to-run variation is substantial and grows
//! with scale: "depending on the system architecture... run-to-run variations
//! of 15% or more are common", with measured averages of ≈12.6% on DEEP and
//! ≈17.4% on JURECA, and larger variation at larger rank counts (Fig. 3).
//!
//! The model applies a median-neutral log-normal multiplier to every kernel
//! execution, with σ growing in `log2(ranks)`, plus rare OS-jitter spikes.
//! All randomness flows from explicit seeds (splitmix64 / xoshiro-style), so
//! any simulated experiment is exactly reproducible.

use serde::{Deserialize, Serialize};

/// A small, fast, seedable PRNG (xorshift64*), deterministic across runs.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

/// Splitmix64: turns correlated seeds into well-mixed initial states.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        let mut state = splitmix64(seed);
        if state == 0 {
            state = 0x853C_49E6_748F_EA9B;
        }
        Rng { state }
    }

    /// Derives an independent stream from a seed and arbitrary stream labels.
    pub fn stream(seed: u64, labels: &[u64]) -> Self {
        let mut s = splitmix64(seed);
        for &l in labels {
            s = splitmix64(s ^ l.wrapping_mul(0xA24B_AED4_963E_E407));
        }
        Rng::new(s)
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Standard normal via Box-Muller.
    pub fn next_gaussian(&mut self) -> f64 {
        // Avoid log(0).
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

/// Per-system noise climate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Baseline coefficient of variation at 1-2 ranks.
    pub base_sigma: f64,
    /// Additional σ per log2(ranks) (noise grows with scale).
    pub sigma_per_log2_ranks: f64,
    /// Probability of an OS-jitter spike per kernel execution.
    pub spike_probability: f64,
    /// Relative size of a spike (multiplier becomes `1 + spike_scale·u`).
    pub spike_scale: f64,
    /// σ of the *run-level* log-normal factor shared by all kernels of one
    /// measurement repetition at 1-2 ranks. Per-kernel noise averages out
    /// over an epoch; run-to-run variation in practice is dominated by
    /// correlated conditions (a slow node, a congested fabric, a busy
    /// filesystem) that shift the whole run.
    pub run_sigma: f64,
    /// Additional run-level σ per log2(ranks): larger allocations see more
    /// varied conditions (the paper's Fig. 3 observation).
    pub run_sigma_per_log2_ranks: f64,
}

impl NoiseProfile {
    /// Calibrated so average run-to-run variation lands near the paper's
    /// ≈12.6% on DEEP across the measured range.
    pub fn deep() -> Self {
        NoiseProfile {
            base_sigma: 0.008,
            sigma_per_log2_ranks: 0.006,
            spike_probability: 0.002,
            spike_scale: 1.5,
            run_sigma: 0.002,
            run_sigma_per_log2_ranks: 0.008,
        }
    }

    /// JURECA is noisier (≈17.4%): shared nodes, 4 GPUs, busier fabric.
    pub fn jureca() -> Self {
        NoiseProfile {
            base_sigma: 0.011,
            sigma_per_log2_ranks: 0.009,
            spike_probability: 0.003,
            spike_scale: 1.5,
            run_sigma: 0.003,
            run_sigma_per_log2_ranks: 0.011,
        }
    }

    /// A noise-free profile for calibration tests.
    pub fn quiet() -> Self {
        NoiseProfile {
            base_sigma: 0.0,
            sigma_per_log2_ranks: 0.0,
            spike_probability: 0.0,
            spike_scale: 0.0,
            run_sigma: 0.0,
            run_sigma_per_log2_ranks: 0.0,
        }
    }

    /// The log-normal σ at a given rank count.
    pub fn sigma_at(&self, ranks: u32) -> f64 {
        self.base_sigma + self.sigma_per_log2_ranks * (ranks.max(1) as f64).log2()
    }

    /// The run-level σ at a given rank count.
    pub fn run_sigma_at(&self, ranks: u32) -> f64 {
        self.run_sigma + self.run_sigma_per_log2_ranks * (ranks.max(1) as f64).log2()
    }

    /// Draws the run-level factor shared by all kernels of one repetition.
    pub fn run_multiplier(&self, rng: &mut Rng, ranks: u32) -> f64 {
        let sigma = self.run_sigma_at(ranks);
        if sigma > 0.0 {
            (sigma * rng.next_gaussian()).exp()
        } else {
            1.0
        }
    }

    /// Draws a median-neutral multiplicative noise factor for one kernel
    /// execution. Median 1.0: half the draws speed up, half slow down, and
    /// the median-based aggregation of Extra-Deep stays centered.
    pub fn multiplier(&self, rng: &mut Rng, ranks: u32) -> f64 {
        let sigma = self.sigma_at(ranks);
        let mut m = if sigma > 0.0 {
            (sigma * rng.next_gaussian()).exp()
        } else {
            1.0
        };
        if self.spike_probability > 0.0 && rng.next_f64() < self.spike_probability {
            m *= 1.0 + self.spike_scale * rng.next_f64();
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_differ_by_label() {
        let mut a = Rng::stream(1, &[1, 2, 3]);
        let mut b = Rng::stream(1, &[1, 2, 4]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = Rng::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sigma_grows_with_scale() {
        let p = NoiseProfile::deep();
        assert!(p.sigma_at(64) > p.sigma_at(2));
        assert!(NoiseProfile::jureca().sigma_at(64) > p.sigma_at(64));
    }

    #[test]
    fn quiet_profile_is_exactly_one() {
        let p = NoiseProfile::quiet();
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            assert_eq!(p.multiplier(&mut rng, 64), 1.0);
        }
    }

    #[test]
    fn multiplier_median_is_near_one() {
        let p = NoiseProfile::deep();
        let mut rng = Rng::new(5);
        let mut samples: Vec<f64> = (0..20_001).map(|_| p.multiplier(&mut rng, 16)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.01, "median {median}");
    }

    #[test]
    fn spikes_produce_heavy_tail() {
        let p = NoiseProfile {
            spike_probability: 0.05,
            spike_scale: 2.0,
            ..NoiseProfile::deep()
        };
        let mut rng = Rng::new(9);
        let big = (0..10_000)
            .map(|_| p.multiplier(&mut rng, 8))
            .filter(|&m| m > 1.5)
            .count();
        assert!(big > 100, "expected spikes, saw {big}");
    }
}
