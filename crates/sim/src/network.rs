//! Communication cost models: α–β collectives over the cluster fabric.
//!
//! The simulator distinguishes the DEEP path (flat MPI across all ranks, one
//! GPU per node, host staging) from the JURECA path (hierarchical NCCL:
//! NVLink ring inside the node, InfiniBand ring between nodes).

use crate::system::SystemConfig;
use serde::{Deserialize, Serialize};

/// Collective operations the training strategies issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    Allreduce,
    Allgather,
    ReduceScatter,
    Broadcast,
    Alltoall,
    Barrier,
    /// Point-to-point send+recv pair (pipeline stage boundary).
    SendRecv,
}

impl Collective {
    /// MPI function name as it appears in profiles.
    pub fn mpi_name(self) -> &'static str {
        match self {
            Collective::Allreduce => "MPI_Allreduce",
            Collective::Allgather => "MPI_Allgather",
            Collective::ReduceScatter => "MPI_Reduce_scatter",
            Collective::Broadcast => "MPI_Bcast",
            Collective::Alltoall => "MPI_Alltoall",
            Collective::Barrier => "MPI_Barrier",
            Collective::SendRecv => "MPI_Sendrecv",
        }
    }

    /// NCCL kernel name as it appears in profiles.
    pub fn nccl_name(self) -> &'static str {
        match self {
            Collective::Allreduce => "ncclAllReduce",
            Collective::Allgather => "ncclAllGather",
            Collective::ReduceScatter => "ncclReduceScatter",
            Collective::Broadcast => "ncclBroadcast",
            Collective::Alltoall => "ncclAllToAll",
            Collective::Barrier => "ncclBarrier",
            Collective::SendRecv => "ncclSendRecv",
        }
    }
}

/// Estimated cost of one collective call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollectiveCost {
    pub seconds: f64,
    /// Bytes this rank moved over interconnects (for the bytes metric).
    pub wire_bytes: u64,
}

/// Ring-based collective time over `p` participants with per-hop latency
/// `alpha` (s) and bandwidth `beta_gbs` (GB/s). `volume_factor` scales the
/// on-wire traffic relative to the payload (2·(p−1)/p for allreduce,
/// (p−1)/p for allgather/reduce-scatter).
fn ring_time(bytes: u64, p: u32, alpha: f64, beta_gbs: f64, volume_factor: f64) -> f64 {
    if p <= 1 || bytes == 0 {
        return 0.0;
    }
    let steps = match volume_factor {
        f if f > 1.0 => 2 * (p - 1),
        _ => p - 1,
    } as f64;
    let transfer = volume_factor * bytes as f64 / (beta_gbs * 1e9);
    steps * alpha + transfer
}

/// Cost model entry point: the time and wire volume one rank observes for a
/// collective of `bytes` payload across `ranks` ranks on `system`.
pub fn collective_cost(
    system: &SystemConfig,
    op: Collective,
    bytes: u64,
    ranks: u32,
) -> CollectiveCost {
    if ranks <= 1 {
        return CollectiveCost {
            seconds: 0.0,
            wire_bytes: 0,
        };
    }
    let nodes = system.nodes_for_ranks(ranks);
    let alpha = system.interconnect.latency_us * 1e-6;
    let beta = system.effective_bandwidth_gbs(nodes);

    let seconds = match op {
        Collective::Allreduce => {
            if system.nccl && system.node.gpus_per_node > 1 && system.node.nvlink_gbs > 0.0 {
                // Hierarchical NCCL: reduce-scatter+allgather inside the node
                // over NVLink, ring allreduce across nodes, broadcast back.
                let g = system.node.gpus_per_node.min(ranks);
                let intra = ring_time(bytes, g, 3e-6, system.node.nvlink_gbs, 2.0);
                let inter = if nodes > 1 {
                    ring_time(bytes, nodes, alpha, beta, 2.0)
                } else {
                    0.0
                };
                intra + inter
            } else {
                // Flat MPI ring over all ranks; payload staged through host.
                let staging = bytes as f64 / (system.node.host_to_device_gbs * 1e9);
                ring_time(bytes, ranks, alpha, beta, 2.0) + 2.0 * staging
            }
        }
        Collective::Allgather | Collective::ReduceScatter => {
            ring_time(bytes, ranks, alpha, beta, 1.0)
        }
        Collective::Broadcast => {
            // Binomial tree: log2(p) hops of the full payload.
            let hops = (ranks as f64).log2().ceil();
            hops * (alpha + bytes as f64 / (beta * 1e9))
        }
        Collective::Alltoall => {
            // Pairwise exchange: (p-1) messages of bytes/p each.
            let per_msg = bytes as f64 / ranks as f64;
            (ranks - 1) as f64 * (alpha + per_msg / (beta * 1e9))
        }
        Collective::Barrier => {
            // Dissemination barrier: log2(p) latency-bound rounds.
            (ranks as f64).log2().ceil() * alpha
        }
        Collective::SendRecv => alpha + bytes as f64 / (beta * 1e9),
    };

    let wire_bytes = match op {
        Collective::Allreduce => (2.0 * bytes as f64 * (ranks - 1) as f64 / ranks as f64) as u64,
        Collective::Allgather | Collective::ReduceScatter => {
            (bytes as f64 * (ranks - 1) as f64 / ranks as f64) as u64
        }
        Collective::Broadcast => bytes,
        Collective::Alltoall => (bytes as f64 * (ranks - 1) as f64 / ranks as f64) as u64,
        Collective::Barrier => 0,
        Collective::SendRecv => bytes,
    };

    CollectiveCost {
        seconds,
        wire_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deep() -> SystemConfig {
        SystemConfig::deep()
    }

    fn jureca() -> SystemConfig {
        SystemConfig::jureca()
    }

    const MB_100: u64 = 100 << 20; // ~ResNet-50 gradients (fp32)

    #[test]
    fn single_rank_is_free() {
        let c = collective_cost(&deep(), Collective::Allreduce, MB_100, 1);
        assert_eq!(c.seconds, 0.0);
        assert_eq!(c.wire_bytes, 0);
    }

    #[test]
    fn allreduce_time_grows_with_ranks() {
        let t2 = collective_cost(&deep(), Collective::Allreduce, MB_100, 2).seconds;
        let t16 = collective_cost(&deep(), Collective::Allreduce, MB_100, 16).seconds;
        let t64 = collective_cost(&deep(), Collective::Allreduce, MB_100, 64).seconds;
        assert!(t2 < t16 && t16 < t64, "{t2} {t16} {t64}");
    }

    #[test]
    fn allreduce_time_grows_with_bytes() {
        let small = collective_cost(&deep(), Collective::Allreduce, 1 << 20, 16).seconds;
        let large = collective_cost(&deep(), Collective::Allreduce, 1 << 28, 16).seconds;
        assert!(large > small * 10.0);
    }

    #[test]
    fn nccl_hierarchical_beats_flat_mpi_at_same_scale() {
        // 16 ranks on JURECA = 4 nodes of 4 GPUs via NVLink; DEEP = 16 nodes.
        let j = collective_cost(&jureca(), Collective::Allreduce, MB_100, 16).seconds;
        let d = collective_cost(&deep(), Collective::Allreduce, MB_100, 16).seconds;
        assert!(j < d, "NCCL {j} should beat flat MPI {d}");
    }

    #[test]
    fn intra_node_only_on_jureca_uses_nvlink() {
        // 4 ranks fit in one JURECA node: no inter-node component at all.
        let c4 = collective_cost(&jureca(), Collective::Allreduce, MB_100, 4).seconds;
        let c8 = collective_cost(&jureca(), Collective::Allreduce, MB_100, 8).seconds;
        assert!(c4 < c8 / 3.0, "one-node {c4} vs two-node {c8}");
    }

    #[test]
    fn allreduce_wire_volume_matches_ring_formula() {
        let c = collective_cost(&deep(), Collective::Allreduce, 1000, 4);
        assert_eq!(c.wire_bytes, 1500); // 2 * 1000 * 3/4
    }

    #[test]
    fn barrier_is_latency_only() {
        let c = collective_cost(&deep(), Collective::Barrier, 0, 64);
        assert_eq!(c.wire_bytes, 0);
        assert!(c.seconds > 0.0 && c.seconds < 1e-3);
    }

    #[test]
    fn broadcast_scales_logarithmically() {
        let t8 = collective_cost(&deep(), Collective::Broadcast, 1 << 20, 8).seconds;
        let t64 = collective_cost(&deep(), Collective::Broadcast, 1 << 20, 64).seconds;
        assert!(t64 / t8 < 3.0, "log growth expected: {t8} -> {t64}");
    }

    #[test]
    fn alltoall_scales_superlinearly_in_ranks() {
        let t4 = collective_cost(&deep(), Collective::Alltoall, 1 << 24, 4).seconds;
        let t32 = collective_cost(&deep(), Collective::Alltoall, 1 << 24, 32).seconds;
        assert!(t32 > t4);
    }

    #[test]
    fn mpi_and_nccl_names() {
        assert_eq!(Collective::Allreduce.mpi_name(), "MPI_Allreduce");
        assert_eq!(Collective::Allreduce.nccl_name(), "ncclAllReduce");
        assert_eq!(Collective::Alltoall.mpi_name(), "MPI_Alltoall");
    }
}
