//! Hardware models of the evaluation systems.
//!
//! Table 1 of the paper describes the two clusters used for all experiments.
//! The simulator reproduces their relevant characteristics: GPU throughput,
//! memory bandwidth, node topology (GPUs per node), interconnect latency and
//! bandwidth, NCCL availability, and the noise climate the paper reports
//! (≈12.6% average run-to-run variation on DEEP, ≈17.4% on JURECA).

use crate::noise::NoiseProfile;
use serde::{Deserialize, Serialize};

/// A GPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    pub name: String,
    /// Peak single-precision throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Device memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Device memory capacity in GB.
    pub mem_gb: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_overhead_us: f64,
}

impl GpuSpec {
    pub fn v100() -> Self {
        GpuSpec {
            name: "NVIDIA V100".to_string(),
            fp32_tflops: 15.7,
            mem_bandwidth_gbs: 900.0,
            mem_gb: 32.0,
            launch_overhead_us: 5.0,
        }
    }

    pub fn a100() -> Self {
        GpuSpec {
            name: "NVIDIA A100".to_string(),
            fp32_tflops: 19.5,
            mem_bandwidth_gbs: 1555.0,
            mem_gb: 40.0,
            launch_overhead_us: 4.0,
        }
    }
}

/// A compute node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub cpu_name: String,
    /// Physical CPU cores per node.
    pub cores: u32,
    /// RAM in GB.
    pub ram_gb: f64,
    pub gpus_per_node: u32,
    pub gpu: GpuSpec,
    /// Host memory bandwidth in GB/s (PCIe staging for HtoD copies).
    pub host_to_device_gbs: f64,
    /// Intra-node GPU-to-GPU bandwidth in GB/s (NVLink; 0 when PCIe-only).
    pub nvlink_gbs: f64,
}

/// The inter-node network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    pub name: String,
    /// Point-to-point bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Base point-to-point latency in microseconds.
    pub latency_us: f64,
    /// Bandwidth degradation per log2(nodes) from congestion/adaptive
    /// routing (fraction of bandwidth lost per doubling; 0 = ideal fabric).
    pub congestion_per_log2: f64,
    /// Node count beyond which the MPI library switches to a slower
    /// collective algorithm (`None` = no switch). Models the
    /// scale-dependent behavior changes the paper's discussion warns about;
    /// exercised by the change-point-detection tests.
    #[serde(default)]
    pub algorithm_switch_nodes: Option<u32>,
}

/// A full system preset (one row of the paper's Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    pub name: String,
    pub total_nodes: u32,
    pub node: NodeSpec,
    pub interconnect: InterconnectSpec,
    /// Whether NCCL collectives are available (JURECA yes, DEEP no).
    pub nccl: bool,
    pub noise: NoiseProfile,
    /// CPU cores a single MPI rank occupies (ϱ in the cost model, Eq. 14).
    pub cores_per_rank: u32,
}

impl SystemConfig {
    /// Resolves a short system name (`deep`, `jureca`) to its Table 1 preset.
    pub fn from_name(name: &str) -> Option<SystemConfig> {
        match name {
            "deep" => Some(SystemConfig::deep()),
            "jureca" => Some(SystemConfig::jureca()),
            _ => None,
        }
    }

    /// The DEEP Extreme Scale Booster: 75 nodes, 1x Xeon Silver 4215
    /// (8 cores / 16 threads), 48 GB DDR4, InfiniBand EDR (100 Gbit/s),
    /// 1x V100 per node, without NCCL support.
    pub fn deep() -> Self {
        SystemConfig {
            name: "DEEP".to_string(),
            total_nodes: 75,
            node: NodeSpec {
                cpu_name: "Intel Xeon Cascade Lake Silver 4215".to_string(),
                cores: 8,
                ram_gb: 48.0,
                gpus_per_node: 1,
                gpu: GpuSpec::v100(),
                host_to_device_gbs: 12.0,
                nvlink_gbs: 0.0,
            },
            interconnect: InterconnectSpec {
                name: "InfiniBand EDR (100 Gbit/s)".to_string(),
                bandwidth_gbs: 12.5,
                latency_us: 2.0,
                congestion_per_log2: 0.06,
                algorithm_switch_nodes: None,
            },
            nccl: false,
            noise: NoiseProfile::deep(),
            cores_per_rank: 8,
        }
    }

    /// The JURECA DC module: 192 nodes, 2x AMD EPYC 7742 (128 cores),
    /// 512 GB DDR4, 2x InfiniBand HDR, 4x A100 per node, with NCCL support.
    pub fn jureca() -> Self {
        SystemConfig {
            name: "JURECA".to_string(),
            total_nodes: 192,
            node: NodeSpec {
                cpu_name: "2x AMD EPYC 7742".to_string(),
                cores: 128,
                ram_gb: 512.0,
                gpus_per_node: 4,
                gpu: GpuSpec::a100(),
                host_to_device_gbs: 25.0,
                nvlink_gbs: 300.0,
            },
            interconnect: InterconnectSpec {
                name: "2x InfiniBand HDR (NVIDIA Mellanox Connect-X6)".to_string(),
                bandwidth_gbs: 50.0,
                latency_us: 1.5,
                congestion_per_log2: 0.08,
                algorithm_switch_nodes: None,
            },
            nccl: true,
            noise: NoiseProfile::jureca(),
            cores_per_rank: 32,
        }
    }

    /// Number of nodes occupied by `ranks` MPI ranks (one rank per GPU).
    pub fn nodes_for_ranks(&self, ranks: u32) -> u32 {
        ranks.div_ceil(self.node.gpus_per_node)
    }

    /// Total CPU cores billed for `ranks` MPI ranks (the `o` of Eq. 14).
    pub fn total_cores(&self, ranks: u32) -> u32 {
        ranks * self.cores_per_rank
    }

    /// Effective inter-node bandwidth at a given node count, accounting for
    /// fabric congestion.
    pub fn effective_bandwidth_gbs(&self, nodes: u32) -> f64 {
        let doublings = (nodes.max(1) as f64).log2();
        let degradation = 1.0 + self.interconnect.congestion_per_log2 * doublings;
        self.interconnect.bandwidth_gbs / degradation
    }

    /// Renders the Table-1 row for reports.
    pub fn table1_row(&self) -> String {
        format!(
            "{}: {} nodes, {} ({} cores), {:.0} GB RAM, {}, {}x {}, {} NCCL support",
            self.name,
            self.total_nodes,
            self.node.cpu_name,
            self.node.cores,
            self.node.ram_gb,
            self.interconnect.name,
            self.node.gpus_per_node,
            self.node.gpu.name,
            if self.nccl { "with" } else { "without" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        let deep = SystemConfig::deep();
        assert_eq!(deep.total_nodes, 75);
        assert_eq!(deep.node.gpus_per_node, 1);
        assert!(!deep.nccl);
        assert_eq!(deep.node.cores, 8);

        let jureca = SystemConfig::jureca();
        assert_eq!(jureca.total_nodes, 192);
        assert_eq!(jureca.node.gpus_per_node, 4);
        assert!(jureca.nccl);
        assert!(jureca.node.gpu.fp32_tflops > deep.node.gpu.fp32_tflops);
    }

    #[test]
    fn nodes_for_ranks_rounds_up() {
        let jureca = SystemConfig::jureca();
        assert_eq!(jureca.nodes_for_ranks(4), 1);
        assert_eq!(jureca.nodes_for_ranks(5), 2);
        assert_eq!(jureca.nodes_for_ranks(16), 4);
        let deep = SystemConfig::deep();
        assert_eq!(deep.nodes_for_ranks(16), 16);
    }

    #[test]
    fn cost_core_accounting() {
        let deep = SystemConfig::deep();
        assert_eq!(deep.total_cores(32), 256);
    }

    #[test]
    fn congestion_degrades_bandwidth_monotonically() {
        let deep = SystemConfig::deep();
        let b2 = deep.effective_bandwidth_gbs(2);
        let b64 = deep.effective_bandwidth_gbs(64);
        assert!(b2 > b64);
        assert!(b64 > 0.5 * deep.interconnect.bandwidth_gbs / 2.0);
    }

    #[test]
    fn table1_rows_render() {
        assert!(SystemConfig::deep().table1_row().contains("without NCCL"));
        assert!(SystemConfig::jureca().table1_row().contains("with NCCL"));
    }
}
