//! # extradeep-sim
//!
//! The hardware/profiling substrate of the Extra-Deep reproduction: a
//! distributed deep-learning *training simulator* that plays the role of the
//! DEEP and JURECA clusters, the TensorFlow/PyTorch + Horovod benchmark
//! applications, and the Nsight Systems profiler of the original paper.
//!
//! Extra-Deep itself only consumes profiles (kernel events per rank with NVTX
//! step/epoch marks); this crate produces exactly those, with calibrated
//! growth shapes: weak-scaling communication that bends upward in `~log²`
//! as ranks grow, NCCL vs. flat-MPI paths, scale-dependent system noise,
//! warm-up inflation of the first epoch, and the paper's efficient sampling
//! strategy (profile five steps of two epochs instead of full runs).
//!
//! ```
//! use extradeep_sim::{ExperimentSpec, ProfilerOptions};
//!
//! let mut spec = ExperimentSpec::case_study(vec![2, 4, 6]);
//! spec.repetitions = 1;
//! spec.profiler.max_recorded_ranks = 2;
//! let profiles = spec.run();
//! assert_eq!(profiles.configs().len(), 3);
//! ```

pub mod dataset;
pub mod dnn;
pub mod engine;
pub mod faults;
pub mod gpu;
pub mod kernels;
pub mod network;
pub mod noise;
pub mod oracle;
pub mod profiler;
pub mod runner;
pub mod strategy;
pub mod system;
pub mod workload;

pub use dataset::{DatasetSpec, ScalingMode};
pub use dnn::{Architecture, Layer, Shape};
pub use engine::{JobPlans, PlannedKernel, StepPlan, TrainingJob};
pub use faults::{FaultLog, FaultPlan, FaultSpecError, FaultSummary};
pub use network::{collective_cost, Collective, CollectiveCost};
pub use noise::{NoiseProfile, Rng};
pub use oracle::{activity_estimate, ActivityEstimate};
pub use profiler::{profile_job, ProfilerOptions, SamplingStrategy, PROFILING_OVERHEAD_FRACTION};
pub use runner::ExperimentSpec;
pub use strategy::{ParallelStrategy, SyncMode};
pub use system::{GpuSpec, InterconnectSpec, NodeSpec, SystemConfig};
pub use workload::Benchmark;
