//! Parallel training strategies (paper §4.1): pure data parallelism and two
//! hybrid forms — tensor parallelism and pipeline parallelism — plus the
//! BSP/ASP synchronization models.

use serde::{Deserialize, Serialize};

/// Synchronization model of the gradient exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SyncMode {
    /// Bulk-synchronous: every step ends with a blocking collective.
    #[default]
    Bsp,
    /// Asynchronous: communication overlaps the next step's computation;
    /// some collectives land *between* NVTX step marks (the async-kernel
    /// case of paper Fig. 2 step 1).
    Asp,
}

/// The parallel strategy used for distributed training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParallelStrategy {
    /// Pure data parallelism (TensorFlow + Horovod in the paper).
    DataParallel,
    /// Tensor (intra-layer model) parallelism in groups of `group` ranks,
    /// data parallelism between the groups (Mesh-TensorFlow in the paper).
    TensorParallel { group: u32 },
    /// Pipeline parallelism with `stages` pipeline stages per replica and
    /// `microbatches` in flight (PyTorch + Horovod in the paper).
    PipelineParallel { stages: u32, microbatches: u32 },
}

impl ParallelStrategy {
    pub fn label(self) -> &'static str {
        match self {
            ParallelStrategy::DataParallel => "data parallelism",
            ParallelStrategy::TensorParallel { .. } => "tensor parallelism",
            ParallelStrategy::PipelineParallel { .. } => "pipeline parallelism",
        }
    }

    /// The paper's evaluation configuration: `M = 1, G = x1` for data
    /// parallelism and `M = 4, G = x1 / 4` for the hybrid strategies.
    pub fn paper_default_hybrid() -> ParallelStrategy {
        ParallelStrategy::TensorParallel { group: 4 }
    }

    /// Degree of model parallelism `M`.
    pub fn model_parallel_degree(self) -> u32 {
        match self {
            ParallelStrategy::DataParallel => 1,
            ParallelStrategy::TensorParallel { group } => group,
            ParallelStrategy::PipelineParallel { stages, .. } => stages,
        }
    }

    /// Degree of data parallelism `G` for a rank count `x1`.
    ///
    /// Under the hybrids, `G = x1 / M` *replica groups* exist, but the paper
    /// defines `G` as the total rank count with `M` ranks cooperating per
    /// model instance (`G = x1`, `M = 4` ⇒ `G/M` data shards). We follow the
    /// paper: `G = x1`.
    pub fn data_parallel_degree(self, ranks: u32) -> u32 {
        let _ = self;
        ranks
    }

    /// Number of independent model replicas (`G / M`).
    pub fn replicas(self, ranks: u32) -> u32 {
        (ranks / self.model_parallel_degree()).max(1)
    }

    /// Whether a rank count is valid for this strategy.
    pub fn supports_ranks(self, ranks: u32) -> bool {
        let m = self.model_parallel_degree();
        ranks >= m && ranks.is_multiple_of(m)
    }

    /// Short machine-friendly name (`data`, `tensor`, `pipeline`) — the
    /// inverse of [`ParallelStrategy::from_name`], used in CLI flags, cell
    /// ids, and campaign specs.
    pub fn short_name(self) -> &'static str {
        match self {
            ParallelStrategy::DataParallel => "data",
            ParallelStrategy::TensorParallel { .. } => "tensor",
            ParallelStrategy::PipelineParallel { .. } => "pipeline",
        }
    }

    /// Resolves a short strategy name to the paper's evaluation
    /// configuration for it (`M = 4` for the hybrids).
    pub fn from_name(name: &str) -> Option<ParallelStrategy> {
        match name {
            "data" => Some(ParallelStrategy::DataParallel),
            "tensor" => Some(ParallelStrategy::TensorParallel { group: 4 }),
            "pipeline" => Some(ParallelStrategy::PipelineParallel {
                stages: 4,
                microbatches: 8,
            }),
            _ => None,
        }
    }
}

impl SyncMode {
    /// Short machine-friendly name (`bsp`, `asp`).
    pub fn short_name(self) -> &'static str {
        match self {
            SyncMode::Bsp => "bsp",
            SyncMode::Asp => "asp",
        }
    }

    /// Resolves a short sync-mode name.
    pub fn from_name(name: &str) -> Option<SyncMode> {
        match name {
            "bsp" => Some(SyncMode::Bsp),
            "asp" => Some(SyncMode::Asp),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_parallel_degrees() {
        let s = ParallelStrategy::DataParallel;
        assert_eq!(s.model_parallel_degree(), 1);
        assert_eq!(s.data_parallel_degree(16), 16);
        assert_eq!(s.replicas(16), 16);
        assert!(s.supports_ranks(2));
    }

    #[test]
    fn tensor_parallel_degrees_match_paper() {
        // Paper §4.2.1: G = x1, M = 4 for tensor/pipeline parallelism.
        let s = ParallelStrategy::TensorParallel { group: 4 };
        assert_eq!(s.model_parallel_degree(), 4);
        assert_eq!(s.data_parallel_degree(16), 16);
        assert_eq!(s.replicas(16), 4);
        assert!(s.supports_ranks(8));
        assert!(!s.supports_ranks(6));
        assert!(!s.supports_ranks(2));
    }

    #[test]
    fn pipeline_parallel_degrees() {
        let s = ParallelStrategy::PipelineParallel {
            stages: 4,
            microbatches: 8,
        };
        assert_eq!(s.model_parallel_degree(), 4);
        assert_eq!(s.replicas(32), 8);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(ParallelStrategy::DataParallel.label(), "data parallelism");
        assert_eq!(
            ParallelStrategy::TensorParallel { group: 4 }.label(),
            "tensor parallelism"
        );
        assert_eq!(
            ParallelStrategy::PipelineParallel {
                stages: 4,
                microbatches: 8
            }
            .label(),
            "pipeline parallelism"
        );
    }

    #[test]
    fn sync_mode_default_is_bsp() {
        assert_eq!(SyncMode::default(), SyncMode::Bsp);
    }
}
